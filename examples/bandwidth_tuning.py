#!/usr/bin/env python3
"""Scenario: choosing the smoothing parameter (paper §4 in action).

Sweeps the kernel bandwidth on a smooth synthetic file and on a
structured "real" file, prints the error curve, and marks where the
paper's two practical rules — normal scale and direct plug-in — land
on it.  The output shows the paper's Fig. 11 story in one screen:
on Normal data both rules sit near the optimum; on TIGER-like data
the normal scale rule oversmooths by an order of magnitude while the
plug-in rule stays close.

Run:  python examples/bandwidth_tuning.py
"""

import numpy as np

from repro import datasets
from repro.bandwidth import kernel_bandwidth, plugin_bandwidth
from repro.core.kernel import make_kernel_estimator
from repro.workload import generate_query_file, mean_relative_error


def sweep(dataset: str) -> None:
    relation = datasets.load(dataset)
    sample = relation.sample(2_000, seed=1)
    queries = generate_query_file(relation, 0.01, n_queries=300, seed=2)
    domain = relation.domain

    h_ns = min(kernel_bandwidth(sample), 0.499 * domain.width)
    h_dpi = min(plugin_bandwidth(sample, steps=2, domain=domain), 0.499 * domain.width)

    grid = np.geomspace(h_ns / 50, min(h_ns * 10, 0.499 * domain.width), 15)
    grid = np.unique(np.concatenate([grid, [h_ns, h_dpi]]))

    print(f"\n=== {dataset}: bandwidth sweep (1% queries) ===")
    print(f"{'bandwidth':>14} {'MRE':>9}  marker")
    print("-" * 40)
    for h in grid:
        estimator = make_kernel_estimator(sample, h, domain, boundary="kernel")
        mre = mean_relative_error(estimator, queries)
        marks = []
        if np.isclose(h, h_ns):
            marks.append("<- normal scale")
        if np.isclose(h, h_dpi):
            marks.append("<- plug-in (2 steps)")
        bar = "#" * min(60, int(mre * 120))
        print(f"{h:>14.1f} {mre:>9.2%}  {bar} {' '.join(marks)}")


def main() -> None:
    sweep("n(20)")  # smooth: both rules near the optimum
    sweep("rr1(22)")  # structured: NS oversmooths, DPI recovers
    print(
        "\nTakeaway (paper Fig. 11): the normal scale rule is excellent on "
        "smooth data\nand disastrous on structured data; the plug-in rule "
        "adapts to both."
    )


if __name__ == "__main__":
    main()
