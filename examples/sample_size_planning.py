#!/usr/bin/env python3
"""Scenario: planning the ANALYZE sample ("how much is enough?").

The paper's theory (§4) fixes the error of each estimator *family* at
its optimal smoothing as an exact power law of the sample size — which
turns around into a planning tool (the question Chaudhuri et al.,
SIGMOD 1998, cited by the paper, ask for histograms): given a target
accuracy for the statistics, how many records must ANALYZE sample?

This example plans sample sizes for a target density error on Normal
data, then *validates the plan empirically*: it builds estimators with
the planned n and measures whether they hit the target.

Run:  python examples/sample_size_planning.py
"""

import numpy as np

from repro.bandwidth import (
    histogram_sample_size,
    kernel_sample_size,
    normal_roughness,
    optimal_bandwidth,
    optimal_bin_width,
    sampling_sample_size,
)
from repro.core.histogram import EquiWidthHistogram
from repro.core.kernel import KernelSelectivityEstimator
from repro.data.domain import Interval
from repro.evaluation import NormalTruth, estimate_mise


def main() -> None:
    domain = Interval(0.0, 10.0)
    sigma = 1.5
    truth = NormalTruth(domain, mean=5.0, sigma=sigma)
    r1 = normal_roughness(1, sigma)
    r2 = normal_roughness(2, sigma)

    print("=== planning: samples needed per target AMISE ===\n")
    print(f"{'target AMISE':>14} {'histogram n':>12} {'kernel n':>10} {'ratio':>7}")
    print("-" * 48)
    for target in (3e-3, 1e-3, 3e-4, 1e-4):
        n_hist = histogram_sample_size(target, r1)
        n_kern = kernel_sample_size(target, r2)
        print(f"{target:>14.0e} {n_hist:>12,} {n_kern:>10,} {n_hist / n_kern:>6.1f}x")

    print(
        "\nThe kernel's n^(-4/5) rate compounds: the tighter the target, "
        "the bigger its\nsampling advantage over the histogram's n^(-2/3)."
    )

    # Validate one plan empirically.
    target = 1e-3
    n_kern = kernel_sample_size(target, r2)

    def build_kernel(sample: np.ndarray) -> KernelSelectivityEstimator:
        return KernelSelectivityEstimator(
            sample, optimal_bandwidth(sample.size, r2)
        )

    measured = estimate_mise(build_kernel, truth, n_kern, replications=15, grid_points=512)
    print(f"\n=== validation (kernel, target AMISE {target:.0e}) ===")
    print(f"planned n = {n_kern:,}; measured MISE = {measured:.2e}")
    assert measured < 3 * target, "plan missed by more than the AMISE approximation allows"

    n_hist = histogram_sample_size(target, r1)

    def build_hist(sample: np.ndarray) -> EquiWidthHistogram:
        width = optimal_bin_width(sample.size, r1)
        return EquiWidthHistogram(
            sample, domain, max(1, int(round(domain.width / width)))
        )

    measured_hist = estimate_mise(build_hist, truth, n_hist, replications=15, grid_points=512)
    print(f"planned n = {n_hist:,} (histogram); measured MISE = {measured_hist:.2e}")

    # And the single-query binomial plan.
    print("\n=== single-query plan: pure sampling, sigma = 5%, target se 0.5% ===")
    n = sampling_sample_size(0.05, 0.005)
    print(f"needed sample size: {n:,} records")


if __name__ == "__main__":
    main()
