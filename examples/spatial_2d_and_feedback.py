#!/usr/bin/env python3
"""Scenario: the paper's future-work items in action (§6).

Part 1 — **multidimensional kernel estimation**: rectangle-query
selectivities on a synthetic 2-D spatial relation (clusters, corridors
and street grids), product-Epanechnikov kernel vs. 2-D equi-width
grids of several resolutions.

Part 2 — **query feedback**: an estimator that starts from the
uniform assumption and learns the distribution purely from executed
queries (Chen & Roussopoulos 1994), without ever sampling the data.

Run:  python examples/spatial_2d_and_feedback.py
"""

import numpy as np

from repro import datasets
from repro.data.domain import Interval
from repro.feedback import AdaptiveHistogram
from repro.multidim import (
    EquiWidthHistogram2D,
    KernelEstimator2D,
    generate_query_file_2d,
    mean_relative_error_2d,
    plugin_bandwidths_2d,
)
from repro.multidim.relation2d import synthetic_spatial_2d
from repro.workload import generate_query_file, mean_relative_error


def part_multidim() -> None:
    print("=== 2-D rectangle queries on spatial data ===\n")
    relation = synthetic_spatial_2d(100_000, seed=5)
    sample = relation.sample(2_000, seed=6)
    queries = generate_query_file_2d(relation, 0.01, n_queries=300, seed=7)

    lineup = {
        "kernel (plug-in bandwidths)": KernelEstimator2D(
            sample,
            bandwidths=plugin_bandwidths_2d(sample),
            domain_x=relation.domain_x,
            domain_y=relation.domain_y,
        ),
        "kernel (normal scale — oversmooths)": KernelEstimator2D(
            sample, domain_x=relation.domain_x, domain_y=relation.domain_y
        ),
        "equi-width 8x8": EquiWidthHistogram2D(
            sample, relation.domain_x, relation.domain_y, 8, 8
        ),
        "equi-width 16x16": EquiWidthHistogram2D(
            sample, relation.domain_x, relation.domain_y, 16, 16
        ),
        "equi-width 48x48": EquiWidthHistogram2D(
            sample, relation.domain_x, relation.domain_y, 48, 48
        ),
    }
    for name, estimator in lineup.items():
        mre = mean_relative_error_2d(estimator, queries)
        print(f"  {name:<36} MRE = {mre:7.2%}")


def part_feedback() -> None:
    print("\n=== learning from query feedback (no sample at all) ===\n")
    relation = datasets.load("e(20)")  # skewed: uniform start is terrible
    domain: Interval = relation.domain
    train = generate_query_file(relation, 0.05, n_queries=400, seed=11)
    test = generate_query_file(relation, 0.05, n_queries=300, seed=12)

    estimator = AdaptiveHistogram(domain, bins=64, learning_rate=0.4)
    checkpoints = (0, 25, 100, 400)
    print(f"  {'queries observed':>17} {'MRE on fresh queries':>22}")
    observed = 0
    for target in checkpoints:
        while observed < target:
            i = observed
            estimator.observe(
                train.a[i], train.b[i], train.true_counts[i] / train.relation_size
            )
            observed += 1
        mre = mean_relative_error(estimator, test)
        print(f"  {observed:>17d} {mre:>22.2%}")

    print(
        "\nThe estimator never touched the relation or a sample — every bit "
        "of shape\nknowledge came from result sizes the system observed "
        "anyway."
    )


def main() -> None:
    part_multidim()
    part_feedback()


if __name__ == "__main__":
    main()
