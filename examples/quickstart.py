#!/usr/bin/env python3
"""Quickstart: estimate range-query selectivities from a small sample.

Builds every estimator family from the paper on the ``n(20)`` data
file (100,000 Normal-distributed records on a 2^20 integer domain),
answers the same 1%-sized query workload with each, and prints the
paper's error metric (mean relative error) side by side.

Run:  python examples/quickstart.py
"""

from repro import datasets, estimators
from repro.workload import generate_query_file, summarize_errors


def main() -> None:
    # 1. Load a paper data file and draw the paper's 2,000-record sample.
    relation = datasets.load("n(20)")
    sample = relation.sample(2_000, seed=42)
    print(f"relation: {relation}")
    print(f"sample:   {sample.size} records (drawn without replacement)\n")

    # 2. Generate the paper's query file F_D(1%): fixed-size range
    #    queries whose positions follow the data distribution.
    queries = generate_query_file(relation, 0.01, n_queries=500, seed=7)

    # 3. Build one estimator per family.  Each factory applies the
    #    paper's default smoothing rule.
    lineup = {
        "pure sampling": estimators.sampling(sample),
        "uniform (System R)": estimators.uniform(relation.domain),
        "equi-width histogram": estimators.equi_width(sample, relation.domain),
        "equi-depth histogram": estimators.equi_depth(sample, relation.domain),
        "max-diff histogram": estimators.max_diff(sample, relation.domain),
        "avg. shifted histogram": estimators.ash(sample, relation.domain),
        "kernel (normal scale)": estimators.kernel(sample, relation.domain),
        "kernel (plug-in)": estimators.kernel(
            sample, relation.domain, bandwidth="plug-in"
        ),
        "hybrid": estimators.hybrid(sample, relation.domain),
    }

    # 4. Evaluate: estimated result size vs. the exact count.
    print(f"{'estimator':<24} {'MRE':>8} {'MAE [records]':>14}")
    print("-" * 48)
    for name, estimator in lineup.items():
        summary = summarize_errors(estimator, queries)
        print(f"{name:<24} {summary.mre:>8.2%} {summary.mae:>14.1f}")

    # 5. A single ad-hoc query, the way an optimizer would use it.
    kernel = lineup["kernel (plug-in)"]
    center = relation.domain.center
    width = 0.01 * relation.domain.width
    a, b = center - width / 2, center + width / 2
    estimate = kernel.estimate_result_size(a, b, relation.size)
    print(
        f"\nQ({a:.0f}, {b:.0f}): estimated {estimate:.0f} records, "
        f"actual {relation.count(a, b)}"
    )


if __name__ == "__main__":
    main()
