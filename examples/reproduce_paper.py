#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one run.

Runs the experiment module behind each of the paper's Table 2 and
Figures 3-12 and prints the rows.  By default the FAST protocol is
used (150 queries per file, reduced data-file list); pass ``--paper``
for the full protocol (2,000 samples, 1,000 queries, all files —
several minutes).

Run:  python examples/reproduce_paper.py [--paper]
"""

import argparse
import sys
import time

from repro.experiments import DEFAULT, FAST
from repro.experiments import (
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    table2,
)

MODULES = (table2, fig03, fig04, fig05, fig06, fig07, fig08, fig09, fig10, fig11, fig12)


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--paper",
        action="store_true",
        help="run the paper's full protocol instead of the fast one",
    )
    parser.add_argument(
        "--only",
        metavar="ID",
        help="run a single experiment, e.g. fig12 or table2",
    )
    args = parser.parse_args(argv)
    config = DEFAULT if args.paper else FAST

    modules = MODULES
    if args.only:
        modules = tuple(m for m in MODULES if m.__name__.endswith(args.only))
        if not modules:
            parser.error(f"unknown experiment {args.only!r}")

    for module in modules:
        started = time.perf_counter()
        result = module.run(config)
        elapsed = time.perf_counter() - started
        print(result.render())
        print(f"[{module.__name__.split('.')[-1]}: {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
