#!/usr/bin/env python3
"""Scenario: the full System R loop — ANALYZE, estimate, EXPLAIN.

Builds a three-column spatial table (two correlated coordinates plus
an independent attribute), runs ``ANALYZE`` with kernel statistics and
a joint statistic on the correlated pair, then walks a small query
session showing

* estimated vs. actual cardinalities (with and without the joint
  statistic — the independence assumption is off by an order of
  magnitude on the correlated pair), and
* the access-path decision each estimate drives, EXPLAIN-style.

Run:  python examples/mini_optimizer.py
"""

import numpy as np

from repro.data.domain import Interval
from repro.db import Catalog, Planner, RangePredicate, Table


def build_table() -> Table:
    rng = np.random.default_rng(11)
    n = 200_000
    domain = Interval(0.0, 10_000.0)
    # Road-network-ish: x clustered; y tracks x (a diagonal corridor).
    x = np.clip(
        np.concatenate(
            [
                rng.normal(3_000, 600, n // 2),
                rng.normal(7_000, 900, n // 2),
            ]
        ),
        0,
        10_000,
    )
    y = np.clip(x + rng.normal(0, 300, n), 0, 10_000)
    value = np.clip(rng.exponential(1_500, n), 0, 10_000)
    return Table(
        "assets",
        {"x": (x, domain), "y": (y, domain), "value": (value, domain)},
    )


def main() -> None:
    table = build_table()
    print(f"table: {table}\n")

    catalog = Catalog(family="kernel", sample_size=2_000)
    catalog.analyze(table, joint=[("x", "y")], seed=3)
    planner = Planner(catalog)

    independent = Catalog(family="kernel", sample_size=2_000)
    independent.analyze(table, seed=3)
    naive = Planner(independent)

    session = [
        (
            "point-ish lookup in the first cluster",
            [RangePredicate("x", 2_950.0, 3_050.0)],
        ),
        (
            "corridor box (correlated pair!)",
            [RangePredicate("x", 2_500.0, 3_500.0), RangePredicate("y", 2_500.0, 3_500.0)],
        ),
        (
            "anti-correlated box (x low, y high)",
            [RangePredicate("x", 2_500.0, 3_500.0), RangePredicate("y", 6_500.0, 7_500.0)],
        ),
        (
            "broad value filter",
            [RangePredicate("value", 0.0, 5_000.0)],
        ),
    ]

    for label, predicates in session:
        true = table.count({p.column: (p.a, p.b) for p in predicates})
        joint_est = planner.cardinality(table, predicates)
        naive_est = naive.cardinality(table, predicates)
        plan = planner.plan(table, predicates)
        print(f"-- {label}")
        print(
            f"   actual rows {true:>8,}   joint estimate {joint_est:>10,.0f}   "
            f"independence {naive_est:>10,.0f}"
        )
        print(f"   EXPLAIN: {plan.explain()}\n")

    print(
        "On the correlated pair the independence assumption misses by an "
        "order of\nmagnitude in both directions; the joint 2-D kernel "
        "statistic stays close —\nthe §6 multidimensional extension doing "
        "optimizer work."
    )


if __name__ == "__main__":
    main()
