#!/usr/bin/env python3
"""Scenario: selectivity-driven access-path selection on spatial data.

The paper motivates selectivity estimation with query optimization:
the optimizer picks an index scan when few records qualify and a
sequential scan when many do.  This example plays that game on the
simulated TIGER/Line file ``arap1`` (street-map line endpoints, a
density full of change points):

* a simple cost model — index scan costs ``C_PROBE + selectivity * N *
  C_TUPLE_RANDOM``, sequential scan costs ``N * C_TUPLE_SEQ`` — makes
  the plan choice depend only on the selectivity estimate;
* each estimator from the paper drives the optimizer over the same
  workload, and we count wrong plan choices and the total simulated
  execution cost they cause.

The hybrid estimator, the paper's recommendation for exactly this kind
of data, should make the fewest costly mistakes.

Run:  python examples/spatial_query_optimizer.py
"""

import numpy as np

from repro import datasets, estimators
from repro.workload import generate_query_file

# Cost model (arbitrary units per record).
C_TUPLE_SEQ = 1.0  # sequential read per record
C_TUPLE_RANDOM = 8.0  # random read per qualifying record via the index
C_PROBE = 500.0  # fixed index lookup overhead


def plan_cost(selectivity: float, relation_size: int) -> tuple[float, float]:
    """(index scan cost, sequential scan cost) under the cost model."""
    index = C_PROBE + selectivity * relation_size * C_TUPLE_RANDOM
    seq = relation_size * C_TUPLE_SEQ
    return index, seq


def main() -> None:
    relation = datasets.load("arap1")
    sample = relation.sample(2_000, seed=3)
    # A mixed workload: small and mid-size range queries.
    files = [
        generate_query_file(relation, size, n_queries=250, seed=int(size * 1e4))
        for size in (0.01, 0.05, 0.10)
    ]

    lineup = {
        "uniform (System R)": estimators.uniform(relation.domain),
        "sampling": estimators.sampling(sample),
        "equi-width": estimators.equi_width(sample, relation.domain),
        "kernel (plug-in)": estimators.kernel(
            sample, relation.domain, bandwidth="plug-in"
        ),
        "hybrid": estimators.hybrid(
            sample,
            relation.domain,
            max_changepoints=20,
            min_bin_fraction=0.015,
            changepoint_kwargs={"min_separation": 0.012},
        ),
    }

    print(f"optimizing over {sum(len(f) for f in files)} queries on {relation}\n")
    print(
        f"{'estimator':<20} {'wrong plans':>12} {'excess cost':>12} {'vs oracle':>10}"
    )
    print("-" * 58)

    # Oracle cost: always pick the truly cheaper plan.
    oracle_cost = 0.0
    for queries in files:
        for true_count in queries.true_counts:
            index, seq = plan_cost(true_count / relation.size, relation.size)
            oracle_cost += min(index, seq)

    for name, estimator in lineup.items():
        wrong = 0
        total = 0.0
        for queries in files:
            estimated = estimator.selectivities(queries.a, queries.b)
            for sel_est, true_count in zip(estimated, queries.true_counts):
                true_sel = true_count / relation.size
                est_index, est_seq = plan_cost(sel_est, relation.size)
                true_index, true_seq = plan_cost(true_sel, relation.size)
                pick_index = est_index < est_seq
                best_is_index = true_index < true_seq
                wrong += pick_index != best_is_index
                total += true_index if pick_index else true_seq
        excess = total - oracle_cost
        print(
            f"{name:<20} {wrong:>12d} {excess:>12.0f} {total / oracle_cost:>9.3f}x"
        )

    print(
        "\nLower is better; 1.000x means every plan choice matched the "
        "clairvoyant optimizer."
    )


if __name__ == "__main__":
    main()
