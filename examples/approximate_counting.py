#!/usr/bin/env python3
"""Scenario: approximate COUNT(*) answers over a data-warehouse column.

The paper's second motivation: on very large databases, users accept
an *approximate* aggregate answer if it arrives much faster than the
exact one.  This example plays a warehouse session over the simulated
census instance-weight file (199,523 records):

* the exact answer touches all 199,523 records;
* the approximate answer touches only the 2,000-record sample that was
  collected once, via the kernel estimator — in a real warehouse that
  is the difference between scanning the table and reading a resident
  statistic;
* sampling-theory error bars (the paper's consistency discussion)
  frame how much to trust each answer.

Run:  python examples/approximate_counting.py
"""

from repro import datasets, estimators
from repro.core.sampling import SamplingEstimator


def main() -> None:
    relation = datasets.load("iw")
    sample = relation.sample(2_000, seed=9)
    kernel = estimators.kernel(sample, relation.domain, bandwidth="plug-in")
    sampling = SamplingEstimator(sample, relation.domain)

    session = [
        ("weights in the bulk", 0.03, 0.09),
        ("the first heavy stratum", 0.05, 0.055),
        ("long right tail", 0.25, 0.90),
        ("everything below the median-ish", 0.00, 0.07),
    ]

    touched_exact = relation.size
    touched_approx = sample.size
    print(f"relation: {relation}")
    print(
        f"records touched per answer: exact={touched_exact:,}, "
        f"approximate={touched_approx:,} "
        f"({touched_exact / touched_approx:.0f}x less data)\n"
    )
    print(
        f"{'predicate':<32} {'exact':>9} {'approx':>9} {'rel.err':>8} "
        f"{'+-1sigma':>9}"
    )
    print("-" * 72)
    for label, lo_frac, hi_frac in session:
        a = relation.domain.low + lo_frac * relation.domain.width
        b = relation.domain.low + hi_frac * relation.domain.width
        exact = relation.count(a, b)
        approx = kernel.estimate_result_size(a, b, relation.size)
        rel_err = abs(approx - exact) / max(exact, 1)
        sigma = sampling.standard_error(min(max(approx / relation.size, 0.0), 1.0))
        band = sigma * relation.size
        print(
            f"{label:<32} {exact:>9d} {approx:>9.0f} {rel_err:>8.2%} "
            f"{band:>9.0f}"
        )

    print(
        "\nThe error bars are the binomial +-1 sigma of a 2,000-record "
        "sample —\nthe kernel estimate typically lands well inside them "
        "(its convergence\nrate n^(-4/5) beats pure sampling's n^(-1/2), "
        "paper §2)."
    )


if __name__ == "__main__":
    main()
