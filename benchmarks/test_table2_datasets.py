"""Bench: regenerate Table 2 (data-file properties)."""

from conftest import BENCH, run_once

from repro.experiments import table2


def test_table2_datasets(benchmark, save_report):
    result = run_once(benchmark, table2.run, BENCH)
    save_report(result)
    rows = {row["data file"]: row for row in result.rows}
    # Declared counts reproduced exactly.
    assert rows["arap1"]["measured #records"] == 52_120
    assert rows["iw"]["measured #records"] == 199_523
    assert rows["rr1(22)"]["measured #records"] == 257_942
    # Duplicates grow as the domain shrinks (paper §5.2.1).
    assert rows["n(10)"]["#distinct"] < rows["n(15)"]["#distinct"] < rows["n(20)"]["#distinct"]
