"""Bench: Fig. 12 — the final shoot-out of the promising estimators.

Expected shape (paper §5.2.6): the kernel estimator wins on the
synthetic files u/n/e(20); the hybrid wins on the TIGER-like spatial
files; no method is catastrophically ahead or behind on the census
file.
"""

from conftest import BENCH, run_once

from repro.experiments import fig12

SYNTHETIC = ("u(20)", "n(20)", "e(20)")
TIGER = ("arap1", "arap2", "rr1(22)", "rr2(22)")
METHODS = ("EWH MRE", "Kernel MRE", "Hybrid MRE", "ASH MRE")


def test_fig12_final_comparison(benchmark, save_report):
    result = run_once(benchmark, fig12.run, BENCH)
    save_report(result)
    rows = {row["dataset"]: row for row in result.rows}

    # Kernel is the best (or tied-best) family on the synthetic files.
    for name in SYNTHETIC:
        kernel = float(rows[name]["Kernel MRE"])
        others = [float(rows[name][m]) for m in METHODS if m != "Kernel MRE"]
        assert kernel <= min(others) * 1.25, name

    # Hybrid wins on the majority of the TIGER-like files.
    hybrid_wins = sum(
        1
        for name in TIGER
        if float(rows[name]["Hybrid MRE"]) <= min(float(rows[name][m]) for m in METHODS)
    )
    assert hybrid_wins >= 2

    # Hybrid beats the plain kernel on TIGER-like data on average.
    mean_hybrid = sum(float(rows[n]["Hybrid MRE"]) for n in TIGER) / len(TIGER)
    mean_kernel = sum(float(rows[n]["Kernel MRE"]) for n in TIGER) / len(TIGER)
    assert mean_hybrid < mean_kernel
