"""Ablation: the choice of the kernel function.

The paper (§3.2, citing Silverman): varying the kernel matters far
less than varying the bandwidth.  This bench runs every compact-support
kernel (plus the Gaussian) at its own normal-scale bandwidth on n(20)
and checks the spread across kernels is small compared to the effect
of a mischosen bandwidth.
"""

import numpy as np
from conftest import BENCH, run_once

from repro.bandwidth.normal_scale import kernel_bandwidth
from repro.core.kernel import KERNELS, make_kernel_estimator
from repro.experiments.harness import load_context
from repro.experiments.reporting import make_result
from repro.workload.metrics import mean_relative_error

DATASET = "n(20)"


def _run():
    context = load_context(DATASET, BENCH)
    sample, domain, queries = context.sample, context.relation.domain, context.queries
    rows = []
    for name in sorted(KERNELS):
        h = kernel_bandwidth(sample, name)
        estimator = make_kernel_estimator(
            sample, h, domain, boundary="reflection", kernel=name
        )
        rows.append(
            {
                "kernel": name,
                "MRE": mean_relative_error(estimator, queries),
                "NS bandwidth": h,
            }
        )
    # Reference: the Epanechnikov kernel with a 8x-too-large bandwidth.
    h_bad = min(8.0 * kernel_bandwidth(sample), 0.499 * domain.width)
    rows.append(
        {
            "kernel": "epanechnikov (8x oversmoothed)",
            "MRE": mean_relative_error(
                make_kernel_estimator(sample, h_bad, domain, boundary="reflection"),
                queries,
            ),
            "NS bandwidth": h_bad,
        }
    )
    return make_result(
        "ablation-kernel-choice",
        f"Kernel-function choice on {DATASET} (each at its own NS bandwidth)",
        rows,
        notes="paper §3.2: kernel choice is second-order next to bandwidth choice",
    )


def test_ablation_kernel_choice(benchmark, save_report):
    result = run_once(benchmark, _run)
    save_report(result)
    proper = [row for row in result.rows if "oversmoothed" not in row["kernel"]]
    errors = np.array([float(r["MRE"]) for r in proper])
    oversmoothed = float(result.rows[-1]["MRE"])
    # All kernels within a narrow band of each other...
    assert errors.max() - errors.min() < 0.03
    # ...while a badly chosen bandwidth costs far more.
    assert oversmoothed > errors.max() + (errors.max() - errors.min())
