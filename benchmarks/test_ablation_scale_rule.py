"""Ablation: robust scale ``min(sd, IQR/1.348)`` vs. plain ``sd``.

The paper (§4.1) chooses the minimum because the plain standard
deviation was observed to oversmooth.  This bench quantifies the
choice: on the structured real files the plain-sd rule must never be
meaningfully better, and somewhere it should be clearly worse.
"""

import numpy as np
from conftest import BENCH, run_once

from repro.bandwidth.amise import normal_roughness, optimal_bandwidth
from repro.core.kernel import make_kernel_estimator
from repro.experiments.harness import load_context
from repro.experiments.reporting import make_result
from repro.workload.metrics import mean_relative_error

DATASETS = ("n(20)", "e(20)", "arap1", "rr1(22)", "iw")


def _run():
    rows = []
    for name in DATASETS:
        context = load_context(name, BENCH)
        sample, domain, queries = (
            context.sample,
            context.relation.domain,
            context.queries,
        )

        def bandwidth_from_scale(s: float) -> float:
            return min(
                optimal_bandwidth(sample.size, normal_roughness(2, s)),
                0.499 * domain.width,
            )

        sd = float(np.std(sample, ddof=1))
        from repro.bandwidth.scale import robust_scale

        robust = robust_scale(sample)
        rows.append(
            {
                "dataset": name,
                "robust-scale MRE": mean_relative_error(
                    make_kernel_estimator(
                        sample, bandwidth_from_scale(robust), domain, boundary="kernel"
                    ),
                    queries,
                ),
                "plain-sd MRE": mean_relative_error(
                    make_kernel_estimator(
                        sample, bandwidth_from_scale(sd), domain, boundary="kernel"
                    ),
                    queries,
                ),
                "robust scale": robust,
                "plain sd": sd,
            }
        )
    return make_result(
        "ablation-scale-rule",
        "Kernel NS bandwidth from robust scale vs. plain standard deviation",
        rows,
        notes="paper §4.1: plain sd oversmooths; the minimum rule should never lose badly",
    )


def test_ablation_scale_rule(benchmark, save_report):
    result = run_once(benchmark, _run)
    save_report(result)
    robust = np.array(result.column("robust-scale MRE"), dtype=float)
    plain = np.array(result.column("plain-sd MRE"), dtype=float)
    # The robust rule never loses meaningfully...
    assert (robust <= plain * 1.1 + 0.01).all()
    # ...and wins overall.
    assert robust.mean() <= plain.mean() + 1e-9
