"""Bench: Fig. 5 — the impact of the domain cardinality.

Expected shape: the achievable error grows considerably with the
domain cardinality — n(10) (nearly uniform truncated slice, heavy
duplicates) is easiest, n(20) (full bell, few duplicates) hardest.
"""

from conftest import BENCH, run_once

from repro.experiments import fig05


def test_fig05_domain_cardinality(benchmark, save_report):
    result = run_once(benchmark, fig05.run, BENCH)
    save_report(result)
    best = {
        name: min(float(row[f"{name} MRE"]) for row in result.rows)
        for name in ("n(10)", "n(15)", "n(20)")
    }
    assert best["n(10)"] < best["n(20)"]
    assert best["n(15)"] < best["n(20)"]
    # "Considerably higher" for the large domain (paper §5.2.1).
    assert best["n(20)"] > 1.5 * best["n(10)"]
