"""Ablation: number of shifts of the average shifted histogram.

The paper runs the ASH with ten shifts.  This bench sweeps the shift
count: going from 1 (a plain histogram) to a handful of shifts should
buy most of the improvement, with ten about saturated.
"""

import numpy as np
from conftest import BENCH, run_once

from repro.bandwidth.normal_scale import histogram_bin_count
from repro.core.histogram import AverageShiftedHistogram
from repro.experiments.harness import load_context
from repro.experiments.reporting import make_result
from repro.workload.metrics import mean_relative_error

DATASET = "n(20)"
SHIFTS = (1, 2, 3, 5, 10, 20)


def _run():
    context = load_context(DATASET, BENCH)
    sample, domain, queries = context.sample, context.relation.domain, context.queries
    bins = histogram_bin_count(sample, domain)
    rows = []
    for shifts in SHIFTS:
        ash = AverageShiftedHistogram(sample, domain, bins, shifts=shifts)
        rows.append(
            {"shifts": shifts, "MRE": mean_relative_error(ash, queries)}
        )
    return make_result(
        "ablation-ash-shifts",
        f"ASH shift count on {DATASET} (NS bin count = per-histogram bins)",
        rows,
        notes="expected: most of the gain by ~5 shifts; 10 (paper) saturated",
    )


def test_ablation_ash_shifts(benchmark, save_report):
    result = run_once(benchmark, _run)
    save_report(result)
    errors = {int(r["shifts"]): float(r["MRE"]) for r in result.rows}
    # More shifts help versus the plain histogram...
    assert errors[10] < errors[1]
    # ...and the effect saturates: 20 shifts buy almost nothing over 10.
    assert abs(errors[20] - errors[10]) < 0.02
