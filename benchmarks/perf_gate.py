"""Perf-regression gate over ``BENCH_perf.json``.

Compares a freshly measured benchmark export against the committed
baseline and fails (exit status 1) when any shared timing entry
regressed by more than the threshold (default: 25 % on the median).

Usage::

    # 1. preserve the committed numbers before benchmarks rewrite them
    cp BENCH_perf.json /tmp/bench_baseline.json
    # 2. re-measure (rewrites BENCH_perf.json in place)
    PYTHONPATH=src python -m pytest -q benchmarks/test_perf_batch_serving.py
    # 3. compare
    python benchmarks/perf_gate.py /tmp/bench_baseline.json BENCH_perf.json \
        --prefix perf_batch

Only entries present in *both* files are compared (partial benchmark
runs leave the untouched groups alone); per-entry comparison uses
``median_s`` and falls back to ``mean_s`` for single-round timings,
or to ``value`` for dimensioned entries.  The comparison is
*direction-aware*: the entry's ``kind`` (see ``repro.telemetry.bench``)
says whether bigger numbers are worse (``timing``) or better
(``ratio``/``rate``); legacy entries without a ``kind`` infer one from
the ``_x`` name suffix.  Entries measured with fewer than
:data:`MIN_STABLE_ROUNDS` rounds on either side carry single-shot
wall-clock noise, so they are held to the (wider) ``--noisy-threshold``
instead of being compared as if they were stable medians.

``--overhead BASE:LOADED`` additionally compares two entries *within
the current file* — e.g. the telemetry-disabled vs telemetry-enabled
timings of the same workload — and fails when ``LOADED/BASE`` exceeds
``--max-overhead`` (default 1.05, i.e. instrumentation may cost at
most 5 %).

``--qps ENTRY:FLOOR`` turns an entry of the current file into a
sustained-throughput check: ``1 / representative seconds`` must meet
the floor (used for the serving tier's queries-per-second bar).

Updating the baseline
---------------------
When a slowdown is intentional (an accuracy fix that costs time, a
protocol change), re-run the benchmarks locally and commit the
regenerated ``BENCH_perf.json`` — the gate always compares against the
committed file, so committing new numbers *is* the baseline update.
To make the gate itself stand down (e.g. on the very CI run that
commits the new baseline), set ``REPRO_PERF_BASELINE_UPDATE=1``; the
gate then reports the deltas but always exits 0.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

#: Largest tolerated current/baseline ratio before the gate fails.
DEFAULT_THRESHOLD = 1.25

#: Tolerated ratio for noisy (low-round) entries: a single wall-clock
#: round jitters far beyond the 25% band on a shared CI runner, so
#: holding ``rounds: 1`` entries to the stable-median threshold gates
#: on scheduler noise, not code.
DEFAULT_NOISY_THRESHOLD = 2.0

#: Fewest rounds (on both sides) for an entry to be compared at the
#: stable threshold; below this the --noisy-threshold applies.
MIN_STABLE_ROUNDS = 5

#: Largest tolerated loaded/base ratio for ``--overhead`` pairs.
DEFAULT_MAX_OVERHEAD = 1.05

#: Schema identifier the gate insists on (see repro.telemetry.bench).
BENCH_SCHEMA = "repro.telemetry.bench/v1"

#: Entry kinds where a larger number is the better one (mirrors
#: ``repro.telemetry.bench.HIGHER_IS_BETTER_KINDS`` — the gate stays
#: import-free so it runs without PYTHONPATH).
_HIGHER_IS_BETTER = frozenset({"ratio", "rate"})

_KNOWN_KINDS = frozenset({"timing", "ratio", "rate"})


def load_benchmarks(path: pathlib.Path) -> dict[str, dict[str, float]]:
    """The ``benchmarks`` map of one export file (schema-checked)."""
    payload = json.loads(path.read_text())
    if not isinstance(payload, dict) or payload.get("schema") != BENCH_SCHEMA:
        raise SystemExit(f"{path}: not a {BENCH_SCHEMA!r} export")
    return payload.get("benchmarks", {})


def entry_kind(name: str, entry: dict[str, float]) -> str:
    """Explicit ``kind`` field, else inferred from the ``_x`` suffix."""
    kind = entry.get("kind")
    if isinstance(kind, str) and kind in _KNOWN_KINDS:
        return kind
    return "ratio" if name.endswith("_x") else "timing"


def entry_direction(name: str, entry: dict[str, float]) -> str:
    """``"higher"`` or ``"lower"``: which way is better for the entry.

    An explicit ``better`` field wins (e.g. the telemetry-overhead
    ratio regresses upward); otherwise the kind decides.
    """
    better = entry.get("better")
    if better in ("higher", "lower"):
        return str(better)
    kind = entry_kind(name, entry)
    return "higher" if kind in _HIGHER_IS_BETTER else "lower"


def representative_seconds(entry: dict[str, float]) -> float | None:
    """The timing a gate comparison should use for one entry."""
    for key in ("median_s", "mean_s"):
        value = entry.get(key)
        if isinstance(value, (int, float)) and value > 0:
            return float(value)
    return None


def representative_value(entry: dict[str, float], kind: str) -> float | None:
    """The comparable number of one entry, per its kind.

    Timings read ``median_s``/``mean_s``; dimensioned entries read
    ``value``, falling back to the legacy mislabeled ``mean_s`` slot so
    a pre-migration baseline still compares against a new export.
    """
    if kind != "timing":
        value = entry.get("value")
        if isinstance(value, (int, float)) and value > 0:
            return float(value)
    return representative_seconds(entry)


def entry_rounds(entry: dict[str, float]) -> int:
    rounds = entry.get("rounds")
    return int(rounds) if isinstance(rounds, (int, float)) and rounds > 0 else 1


def compare(
    baseline: dict[str, dict[str, float]],
    current: dict[str, dict[str, float]],
    prefixes: tuple[str, ...],
    threshold: float,
    noisy_threshold: float = DEFAULT_NOISY_THRESHOLD,
) -> list[tuple[str, float, float, float]]:
    """Regressions as ``(name, baseline, current, badness_ratio)`` rows.

    ``badness_ratio`` is oriented so that > 1 always means "worse":
    current/baseline for timings, baseline/current for ratio and rate
    entries (where shrinking is the regression).
    """
    regressions = []
    for name in sorted(baseline):
        if prefixes and not any(name.startswith(p) for p in prefixes):
            continue
        if name not in current:
            continue
        kind = entry_kind(name, current[name])
        direction = entry_direction(name, current[name])
        before = representative_value(baseline[name], entry_kind(name, baseline[name]))
        after = representative_value(current[name], kind)
        if before is None or after is None:
            continue
        badness = before / after if direction == "higher" else after / before
        noisy = min(entry_rounds(baseline[name]), entry_rounds(current[name]))
        limit = noisy_threshold if noisy < MIN_STABLE_ROUNDS else threshold
        marker = "REGRESSED" if badness > limit else "ok"
        if noisy < MIN_STABLE_ROUNDS:
            marker += " (noisy: low rounds)"
        if kind == "timing":
            shown = f"{before * 1e3:.3f} ms -> {after * 1e3:.3f} ms"
        else:
            shown = f"{before:.3f} -> {after:.3f} ({kind}, {direction} is better)"
        print(f"  {name}: {shown} ({badness:.2f}x vs {limit:.2f}x cap) {marker}")
        if badness > limit:
            regressions.append((name, before, after, badness))
    return regressions


def check_overhead(
    current: dict[str, dict[str, float]],
    pairs: list[str],
    max_overhead: float,
) -> list[tuple[str, float]]:
    """Overhead pairs exceeding the cap, as ``(pair, ratio)`` rows.

    Each pair is ``BASE:LOADED``; both entries must exist in the
    current export (a missing entry fails loudly — an overhead gate
    that silently skips is no gate at all).
    """
    failures = []
    for pair in pairs:
        base_name, _, loaded_name = pair.partition(":")
        if not base_name or not loaded_name:
            raise SystemExit(f"--overhead needs BASE:LOADED, got {pair!r}")
        missing = [n for n in (base_name, loaded_name) if n not in current]
        if missing:
            raise SystemExit(f"--overhead: {', '.join(missing)} not in current export")
        base = representative_seconds(current[base_name])
        loaded = representative_seconds(current[loaded_name])
        if base is None or loaded is None:
            raise SystemExit(f"--overhead: no usable timing for {pair!r}")
        ratio = loaded / base
        marker = "EXCEEDED" if ratio > max_overhead else "ok"
        print(f"  overhead {pair}: {base * 1e3:.3f} ms -> {loaded * 1e3:.3f} ms "
              f"({ratio:.3f}x, cap {max_overhead:.2f}x) {marker}")
        if ratio > max_overhead:
            failures.append((pair, ratio))
    return failures


def check_qps(
    current: dict[str, dict[str, float]],
    floors: list[str],
) -> list[tuple[str, float, float]]:
    """Throughput floors not met, as ``(entry, qps, floor)`` rows.

    Each floor is ``ENTRY:QPS``; the entry's representative seconds
    are inverted into a sustained queries-per-second figure and must
    meet the floor.  A missing entry fails loudly, like ``--overhead``.
    """
    failures = []
    for spec in floors:
        name, _, floor_text = spec.partition(":")
        try:
            floor = float(floor_text)
        except ValueError:
            floor = -1.0
        if not name or floor <= 0:
            raise SystemExit(f"--qps needs ENTRY:FLOOR with a positive floor, got {spec!r}")
        if name not in current:
            raise SystemExit(f"--qps: {name} not in current export")
        seconds = representative_seconds(current[name])
        if seconds is None:
            raise SystemExit(f"--qps: no usable timing for {name!r}")
        qps = 1.0 / seconds
        marker = "BELOW FLOOR" if qps < floor else "ok"
        print(f"  qps {name}: {qps:,.0f} req/s (floor {floor:,.0f}) {marker}")
        if qps < floor:
            failures.append((name, qps, floor))
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=pathlib.Path, help="committed export")
    parser.add_argument("current", type=pathlib.Path, help="freshly measured export")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help=f"failing current/baseline ratio (default {DEFAULT_THRESHOLD})",
    )
    parser.add_argument(
        "--prefix",
        action="append",
        default=[],
        help="only gate entries with this prefix (repeatable; default: all)",
    )
    parser.add_argument(
        "--overhead",
        action="append",
        default=[],
        metavar="BASE:LOADED",
        help="also compare two entries within the current export; fail "
        "when LOADED/BASE exceeds --max-overhead (repeatable)",
    )
    parser.add_argument(
        "--qps",
        action="append",
        default=[],
        metavar="ENTRY:FLOOR",
        help="require the current export's ENTRY to sustain at least "
        "FLOOR queries per second (1 / representative seconds; repeatable)",
    )
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=DEFAULT_MAX_OVERHEAD,
        help=f"failing LOADED/BASE ratio for --overhead pairs "
        f"(default {DEFAULT_MAX_OVERHEAD})",
    )
    parser.add_argument(
        "--noisy-threshold",
        type=float,
        default=DEFAULT_NOISY_THRESHOLD,
        help="failing ratio for entries with fewer than "
        f"{MIN_STABLE_ROUNDS} rounds (default {DEFAULT_NOISY_THRESHOLD})",
    )
    args = parser.parse_args(argv)

    regressions = compare(
        load_benchmarks(args.baseline),
        load_benchmarks(args.current),
        tuple(args.prefix),
        args.threshold,
        args.noisy_threshold,
    )
    current_benchmarks = load_benchmarks(args.current)
    overhead_failures = check_overhead(
        current_benchmarks, args.overhead, args.max_overhead
    )
    if overhead_failures:
        for pair, ratio in overhead_failures:
            print(f"perf gate: overhead {pair} at {ratio:.3f}x exceeds "
                  f"{args.max_overhead:.2f}x cap")
        if os.environ.get("REPRO_PERF_BASELINE_UPDATE") == "1":
            print("REPRO_PERF_BASELINE_UPDATE=1: reporting only, not failing")
        else:
            return 1
    qps_failures = check_qps(current_benchmarks, args.qps)
    if qps_failures:
        for name, qps, floor in qps_failures:
            print(f"perf gate: {name} sustains only {qps:,.0f} req/s, "
                  f"below the {floor:,.0f} req/s floor")
        if os.environ.get("REPRO_PERF_BASELINE_UPDATE") == "1":
            print("REPRO_PERF_BASELINE_UPDATE=1: reporting only, not failing")
        else:
            return 1
    if not regressions:
        print("perf gate: no regressions beyond "
              f"{(args.threshold - 1.0) * 100:.0f}%")
        return 0
    print(f"perf gate: {len(regressions)} entr{'y' if len(regressions) == 1 else 'ies'} "
          f"regressed beyond {(args.threshold - 1.0) * 100:.0f}%:")
    for name, before, after, ratio in regressions:
        print(f"  {name}: {before:.6g} -> {after:.6g} ({ratio:.2f}x worse)")
    if os.environ.get("REPRO_PERF_BASELINE_UPDATE") == "1":
        print("REPRO_PERF_BASELINE_UPDATE=1: reporting only, not failing "
              "(commit the regenerated BENCH_perf.json to update the baseline)")
        return 0
    print("intentional? commit the regenerated BENCH_perf.json "
          "(or set REPRO_PERF_BASELINE_UPDATE=1 for this run)")
    return 1


if __name__ == "__main__":
    sys.exit(main())
