"""Ablation: the hybrid's change-point budget.

DESIGN.md calls out the change-point count and the merge threshold as
the hybrid's key knobs.  On change-point-rich spatial data more change
points must help (up to saturation); with zero change points the
hybrid degenerates to a single kernel estimator.
"""

import numpy as np
from conftest import BENCH, run_once

from repro.bandwidth.plugin import plugin_bandwidth
from repro.core.hybrid import HybridEstimator
from repro.experiments.harness import load_context
from repro.experiments.reporting import make_result
from repro.workload.metrics import mean_relative_error

DATASET = "rr1(22)"
BUDGETS = (0, 2, 5, 10, 20)


def _run():
    context = load_context(DATASET, BENCH)
    sample, domain, queries = context.sample, context.relation.domain, context.queries
    rows = []
    for budget in BUDGETS:
        estimator = HybridEstimator(
            sample,
            domain,
            max_changepoints=budget,
            min_bin_fraction=0.015,
            changepoint_kwargs={"min_separation": 0.012},
            bandwidth_rule=lambda s: plugin_bandwidth(s, steps=2),
        )
        rows.append(
            {
                "max change points": budget,
                "bins used": len(estimator.bins),
                "MRE": mean_relative_error(estimator, queries),
            }
        )
    return make_result(
        "ablation-hybrid-changepoints",
        f"Hybrid change-point budget on {DATASET}",
        notes="expected: more change points help on corridor-structured data",
        rows=rows,
    )


def test_ablation_hybrid_changepoints(benchmark, save_report):
    result = run_once(benchmark, _run)
    save_report(result)
    errors = {int(r["max change points"]): float(r["MRE"]) for r in result.rows}
    # A generous change-point budget clearly beats none.
    assert errors[20] < 0.8 * errors[0]
    # The trend is broadly monotone: the best budget is not 0 or 2.
    best = min(errors, key=errors.get)
    assert best >= 5
