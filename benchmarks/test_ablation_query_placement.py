"""Ablation: query positions — data-distributed vs. uniform.

The paper's protocol (§5.1.2) places queries where the *data* is
("the position of the queries follows the same distribution as the
corresponding data records").  This bench quantifies that design
choice on the exponential file: uniformly placed queries mostly land
in near-empty regions, where tiny absolute errors become huge
*relative* errors — inflating every method's MRE and compressing the
differences between methods the paper wants to expose.
"""

import numpy as np
from conftest import BENCH, run_once

from repro.bandwidth.plugin import plugin_bandwidth
from repro.core.histogram import EquiWidthHistogram
from repro.core.kernel import make_kernel_estimator
from repro.bandwidth.normal_scale import histogram_bin_count
from repro.data import registry
from repro.experiments.reporting import make_result
from repro.workload.metrics import mean_relative_error
from repro.workload.queries import QueryFile, generate_query_file

DATASET = "e(20)"


def _uniform_query_file(relation, size_fraction, n_queries, seed):
    """Fixed-size queries with *uniformly* distributed positions."""
    rng = np.random.default_rng(seed)
    domain = relation.domain
    width = max(1.0, float(round(size_fraction * domain.width)))
    half = 0.5 * width
    centers = rng.uniform(domain.low + half, domain.high - half, n_queries)
    a = np.floor(centers - half) + 0.5
    b = a + width
    values = relation.values
    counts = np.searchsorted(values, b, "right") - np.searchsorted(values, a, "left")
    return QueryFile(a, b, counts, relation.size, size_fraction=size_fraction)


def _run():
    relation = registry.load(DATASET, seed=BENCH.seed)
    sample = relation.sample(BENCH.sample_size, seed=BENCH.sample_seed(DATASET))
    domain = relation.domain
    data_queries = generate_query_file(
        relation, 0.01, n_queries=BENCH.n_queries, seed=BENCH.query_seed(DATASET, 0.01)
    )
    uniform_queries = _uniform_query_file(relation, 0.01, BENCH.n_queries, seed=77)

    bins = histogram_bin_count(sample, domain)
    h = min(plugin_bandwidth(sample, steps=2, domain=domain), 0.499 * domain.width)
    estimators = {
        "EWH": EquiWidthHistogram(sample, domain, bins),
        "Kernel": make_kernel_estimator(sample, h, domain, boundary="kernel"),
    }
    rows = []
    for label, estimator in estimators.items():
        rows.append(
            {
                "estimator": label,
                "data-positioned MRE": mean_relative_error(estimator, data_queries),
                "uniform-positioned MRE": mean_relative_error(estimator, uniform_queries),
                "empty uniform queries": int((uniform_queries.true_counts == 0).sum()),
            }
        )
    return make_result(
        "ablation-query-placement",
        f"Query placement policy on {DATASET} (1% queries)",
        rows,
        notes="uniform placement lands in the exponential tail; MRE inflates for every method",
    )


def test_ablation_query_placement(benchmark, save_report):
    result = run_once(benchmark, _run)
    save_report(result)
    for row in result.rows:
        assert float(row["uniform-positioned MRE"]) > 1.5 * float(
            row["data-positioned MRE"]
        ), row["estimator"]
