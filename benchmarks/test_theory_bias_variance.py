"""Theory bench: the bias-variance trade-off behind §4.2.

Regenerates the conceptual curve the paper's smoothing-parameter
theory rests on: integrated variance falls with h, integrated squared
bias rises with h, and their sum (the MISE) is minimized in between —
near the AMISE-optimal bandwidth of eq. 9.
"""

import numpy as np
from conftest import run_once

from repro.bandwidth.amise import normal_roughness, optimal_bandwidth
from repro.core.kernel import KernelSelectivityEstimator
from repro.data.domain import Interval
from repro.evaluation import NormalTruth, tradeoff_curve
from repro.experiments.reporting import make_result

DOMAIN = Interval(0.0, 10.0)
SIGMA = 1.5
N = 800


def _run():
    truth = NormalTruth(DOMAIN, mean=5.0, sigma=SIGMA)
    h_star = optimal_bandwidth(N, normal_roughness(2, SIGMA))
    smoothing = np.geomspace(h_star / 6, h_star * 6, 7)
    curve = tradeoff_curve(
        lambda sample, h: KernelSelectivityEstimator(sample, h),
        truth,
        smoothing,
        sample_size=N,
        replications=25,
        grid_points=512,
    )
    rows = [
        {
            "bandwidth": h,
            "integrated variance": d.integrated_variance,
            "integrated bias^2": d.integrated_squared_bias,
            "MISE": d.mise,
            "h/h*": h / h_star,
        }
        for h, d in curve
    ]
    return make_result(
        "theory-bias-variance",
        f"Bias-variance trade-off of the kernel estimator (n={N}, Normal truth)",
        rows,
        notes=f"AMISE-optimal bandwidth h* = {h_star:.3f} (eq. 9)",
    )


def test_theory_bias_variance(benchmark, save_report):
    result = run_once(benchmark, _run)
    save_report(result)
    variance = np.array(result.column("integrated variance"), dtype=float)
    bias = np.array(result.column("integrated bias^2"), dtype=float)
    mise = np.array(result.column("MISE"), dtype=float)
    ratio = np.array(result.column("h/h*"), dtype=float)

    # Complementary monotonicity (up to replication noise at the ends).
    assert variance[0] > variance[-1]
    assert bias[0] < bias[-1]
    # The measured MISE minimum sits near h* (within a factor ~2.5).
    best = ratio[int(np.argmin(mise))]
    assert 0.4 < best < 2.5
    # The interior minimum beats both extremes.
    assert mise.min() < 0.8 * mise[0]
    assert mise.min() < 0.8 * mise[-1]
