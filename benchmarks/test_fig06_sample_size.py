"""Bench: Fig. 6 — consistency in the sample size.

Expected shape: all three estimators improve with n (consistency);
kernel < equi-width < sampling at every meaningful size, matching the
convergence rates n^(-4/5) < n^(-2/3) < n^(-1/2).
"""

import numpy as np
from conftest import BENCH, run_once

from repro.experiments import fig06


def test_fig06_sample_size(benchmark, save_report):
    result = run_once(benchmark, fig06.run, BENCH)
    save_report(result)
    sizes = np.array(result.column("sample size"), dtype=float)
    sampling = np.array(result.column("sampling MRE"), dtype=float)
    ewh = np.array(result.column("equi-width MRE"), dtype=float)
    kernel = np.array(result.column("kernel MRE"), dtype=float)

    # Consistency: the error falls substantially from 200 to 10,000.
    for series in (sampling, ewh, kernel):
        assert series[-1] < 0.7 * series[0]
    # Ordering at the paper's headline sample size (2,000).
    at_2000 = int(np.argwhere(sizes == 2_000)[0][0])
    assert kernel[at_2000] < ewh[at_2000] < sampling[at_2000]
    # Mean ordering across the sweep.
    assert kernel.mean() < ewh.mean() < sampling.mean()
