"""Perf: incremental statistics refresh vs a full ANALYZE rebuild.

The point of the mergeable-summary lifecycle (docs/STREAMING.md) is
that absorbing a mutation batch costs O(delta + reservoir) instead of
the O(table) rescan a full ANALYZE pays.  This module times both paths
over the same mutated table so the perf gate can fail CI whenever the
incremental path stops being at least 5x cheaper
(``--overhead perf_refresh.full_rebuild:perf_refresh.incremental``
with a cap of 0.2 — the loaded/base ratio reads as "incremental must
cost at most 20% of a rebuild").

Both timed paths run against a fork of the same analyzed catalog, and
the full rebuild passes a ``Generator`` seed so it can never hit the
process-wide ANALYZE cache (a cached rebuild would be artificially
free and poison the ratio).
"""

import numpy as np
import pytest

from repro.data.domain import Interval
from repro.db import Catalog, Table

DOMAIN = Interval(0.0, 1_000_000.0)
N_ROWS = 200_000
N_DELTA = 2_000
FAMILY = "equi-depth"
SAMPLE_SIZE = 2_000


def _mutated_fixture():
    """A large analyzed table with one small unabsorbed delta batch."""
    rng = np.random.default_rng(0)
    base = np.clip(rng.normal(400_000.0, 120_000.0, N_ROWS), DOMAIN.low, DOMAIN.high)
    table = Table("events", {"x": (base, DOMAIN)})
    catalog = Catalog(family=FAMILY, sample_size=SAMPLE_SIZE)
    catalog.analyze(table, seed=3)
    delta = np.clip(
        np.random.default_rng(1).normal(800_000.0, 40_000.0, N_DELTA),
        DOMAIN.low,
        DOMAIN.high,
    )
    table.append({"x": delta})
    return table, catalog


@pytest.fixture(scope="module")
def mutated():
    return _mutated_fixture()


def test_perf_refresh_incremental(benchmark, mutated, perf_export):
    table, catalog = mutated

    def refresh_once():
        return catalog.fork().refresh(table)

    mode = benchmark(refresh_once)
    assert mode == "incremental"
    perf_export.record("perf_refresh", "incremental", benchmark.stats.stats)


def test_perf_refresh_full_rebuild(benchmark, mutated, perf_export):
    table, catalog = mutated

    def rebuild_once():
        fork = catalog.fork()
        # Generator seed: reproducible, but never statistics-cache
        # keyed — every round pays the honest O(table) rescan.
        fork.analyze(table, seed=np.random.default_rng(3))
        return fork

    rebuilt = benchmark(rebuild_once)
    assert rebuilt.has_statistics("events")
    perf_export.record("perf_refresh", "full_rebuild", benchmark.stats.stats)


def test_incremental_matches_full_rebuild(mutated):
    """The timed paths must agree on the estimates — speed without drift."""
    table, catalog = mutated
    incremental = catalog.fork()
    assert incremental.refresh(table) == "incremental"
    full = catalog.fork()
    full.analyze(table, seed=np.random.default_rng(3))
    inc_stat = incremental.column_statistic("events", "x")
    full_stat = full.column_statistic("events", "x")
    for a in np.linspace(50_000.0, 900_000.0, 9):
        assert inc_stat.selectivity(a, a + 80_000.0) == pytest.approx(
            full_stat.selectivity(a, a + 80_000.0), abs=0.02
        )
