"""Perf: Algorithm 1's windowed fast path vs. the Theta(n) scan.

The paper notes the kernel estimator drops from Theta(n) to
O(log n + k) with a search structure over the sorted sample.  This is
a genuine micro-benchmark (many rounds): the fast path must win
clearly for small queries on a large sample.
"""

import numpy as np
import pytest

from repro.core.kernel import KernelSelectivityEstimator

N_SAMPLES = 50_000
N_QUERIES = 200


@pytest.fixture(scope="module")
def estimator():
    sample = np.random.default_rng(0).uniform(0.0, 1.0, N_SAMPLES)
    return KernelSelectivityEstimator(sample, 0.001)


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(1)
    a = rng.uniform(0.1, 0.8, N_QUERIES)
    return a, a + 0.01


def test_perf_fast_path(benchmark, estimator, queries, perf_export):
    a, b = queries
    result = benchmark(estimator.selectivities, a, b)
    assert result.shape == (N_QUERIES,)
    perf_export.record("perf_kernel", "fast_path", benchmark.stats.stats)


def test_perf_reference_scan(benchmark, estimator, queries, perf_export):
    a, b = queries

    def scan_all():
        return np.array(
            [estimator.selectivity_scan(x, y) for x, y in zip(a, b)]
        )

    result = benchmark(scan_all)
    assert result.shape == (N_QUERIES,)
    perf_export.record("perf_kernel", "reference_scan", benchmark.stats.stats)


def test_fastpath_agrees_with_scan(estimator, queries):
    a, b = queries
    fast = estimator.selectivities(a, b)
    scan = np.array([estimator.selectivity_scan(x, y) for x, y in zip(a, b)])
    np.testing.assert_allclose(fast, scan, atol=1e-12)
