"""Extension bench: kernel-boosted online aggregation (paper §6).

Expected shape: scanning n(20) in random order, the kernel estimate of
a fixed set of range COUNTs converges to the truth markedly faster
than the raw running fraction — the paper's §6 motivation for
combining kernels with online aggregation.
"""

import numpy as np
from conftest import BENCH, run_once

from repro.data import registry
from repro.experiments.reporting import make_result
from repro.online import OnlineAggregator, OnlineKernelSelectivity

DATASET = "n(20)"
CHECKPOINTS = (500, 1_000, 2_000, 4_000, 8_000)
N_QUERIES = 40


def _run():
    relation = registry.load(DATASET, seed=BENCH.seed)
    rng = np.random.default_rng(33)
    width = 0.01 * relation.domain.width
    centers = relation.values[
        rng.integers(0, relation.size, size=N_QUERIES)
    ].clip(relation.domain.low + width, relation.domain.high - width)
    a, b = centers - width / 2, centers + width / 2
    truth = np.array([relation.selectivity(x, y) for x, y in zip(a, b)])

    kernel_stream = OnlineKernelSelectivity(relation, seed=1, batch=500)
    sampling_stream = OnlineAggregator(relation, seed=1)
    rows = []
    seen = 0
    for checkpoint in CHECKPOINTS:
        while seen < checkpoint:
            kernel_stream.advance(1)
            sampling_stream.advance(500)
            seen += 500
        kernel_err = np.mean(
            [
                abs(kernel_stream.selectivity(x, y) - t) / t
                for x, y, t in zip(a, b, truth)
                if t > 0
            ]
        )
        sampling_err = np.mean(
            [
                abs(sampling_stream.estimate(x, y).estimate - t) / t
                for x, y, t in zip(a, b, truth)
                if t > 0
            ]
        )
        rows.append(
            {
                "records scanned": checkpoint,
                "kernel MRE": float(kernel_err),
                "sampling MRE": float(sampling_err),
            }
        )
    return make_result(
        "ext-online",
        f"Online aggregation on {DATASET}: kernel vs. running fraction",
        rows,
    )


def test_ext_online(benchmark, save_report):
    result = run_once(benchmark, _run)
    save_report(result)
    kernel = np.array(result.column("kernel MRE"), dtype=float)
    sampling = np.array(result.column("sampling MRE"), dtype=float)
    # The kernel answer dominates the raw fraction through the scan...
    assert kernel.mean() < sampling.mean()
    assert (kernel <= sampling * 1.1).all()
    # ...and both converge.
    assert kernel[-1] < kernel[0]
    assert sampling[-1] < sampling[0]
