"""Perf: build and query cost of every estimator family.

Micro-benchmarks of what a database system would pay: building the
statistic from a 2,000-record sample (ANALYZE time) and answering a
300-query batch (optimization time).  Timings are exported through the
telemetry benchmark exporter into ``BENCH_perf.json`` at the repo root
(the machine-readable perf trajectory).
"""

import numpy as np
import pytest

from repro import estimators
from repro.data.domain import Interval

DOMAIN = Interval(0.0, 1_000_000.0)


@pytest.fixture(scope="module")
def sample():
    return np.random.default_rng(0).uniform(DOMAIN.low, DOMAIN.high, 2_000)


@pytest.fixture(scope="module")
def query_batch():
    rng = np.random.default_rng(1)
    a = rng.uniform(DOMAIN.low, DOMAIN.high * 0.99, 300)
    return a, a + 0.01 * DOMAIN.width


BUILDERS = {
    "sampling": lambda s: estimators.sampling(s, DOMAIN),
    "equi_width": lambda s: estimators.equi_width(s, DOMAIN),
    "equi_depth": lambda s: estimators.equi_depth(s, DOMAIN),
    "max_diff": lambda s: estimators.max_diff(s, DOMAIN),
    "ash": lambda s: estimators.ash(s, DOMAIN),
    "kernel_ns": lambda s: estimators.kernel(s, DOMAIN),
    "kernel_dpi": lambda s: estimators.kernel(s, DOMAIN, bandwidth="plug-in"),
    "hybrid": lambda s: estimators.hybrid(s, DOMAIN),
}


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_perf_build(benchmark, sample, name, perf_export):
    estimator = benchmark(BUILDERS[name], sample)
    assert estimator.selectivity(DOMAIN.low, DOMAIN.high) >= 0.0
    perf_export.record("perf_build", name, benchmark.stats.stats)


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_perf_query_batch(benchmark, sample, query_batch, name, perf_export):
    estimator = BUILDERS[name](sample)
    a, b = query_batch
    out = benchmark(estimator.selectivities, a, b)
    assert out.shape == a.shape
    perf_export.record("perf_query_batch", name, benchmark.stats.stats)
