"""Ablation: fixed vs. Abramson-adaptive kernel bandwidths.

Beyond the paper: sample-point adaptive bandwidths (Silverman ch. 5,
from the literature the paper builds on) against the paper's fixed-h
boundary-kernel estimator on the full data-file suite.  Expected
shape: roughly tied on smooth symmetric files, ahead on the skewed
and structured ones where one global h cannot fit both the dense head
and the sparse tail.
"""

from conftest import BENCH, run_once

from repro.bandwidth.plugin import plugin_bandwidth
from repro.core.kernel import AdaptiveKernelEstimator, make_kernel_estimator
from repro.experiments.harness import load_context
from repro.experiments.reporting import make_result
from repro.workload.metrics import mean_relative_error


def _run():
    rows = []
    for name in BENCH.datasets:
        context = load_context(name, BENCH)
        sample, domain, queries = (
            context.sample,
            context.relation.domain,
            context.queries,
        )
        h = min(plugin_bandwidth(sample, steps=2, domain=domain), 0.499 * domain.width)
        fixed = make_kernel_estimator(sample, h, domain, boundary="kernel")
        adaptive = AdaptiveKernelEstimator(sample, h, domain=domain)
        rows.append(
            {
                "dataset": name,
                "fixed-h MRE": mean_relative_error(fixed, queries),
                "adaptive MRE": mean_relative_error(adaptive, queries),
            }
        )
    return make_result(
        "ablation-adaptive-kernel",
        "Fixed plug-in bandwidth vs. Abramson-adaptive bandwidths (1% queries)",
        rows,
    )


def test_ablation_adaptive_kernel(benchmark, save_report):
    result = run_once(benchmark, _run)
    save_report(result)
    fixed = [float(r["fixed-h MRE"]) for r in result.rows]
    adaptive = [float(r["adaptive MRE"]) for r in result.rows]
    # The adaptive estimator never collapses (sanity)...
    assert all(a < 2.0 for a in adaptive)
    # ...and wins on at least a couple of the structured files.
    wins = sum(1 for f, a in zip(fixed, adaptive) if a < f)
    assert wins >= 2
