"""Bench: Fig. 11 — bandwidth selection rules for kernel estimators.

Expected shape: the normal scale rule is near-optimal on the smooth
synthetic files but oversmooths badly on the structured real files,
where the two-step direct plug-in clearly outperforms it while staying
within several points of the oracle.
"""

from conftest import BENCH, run_once

from repro.experiments import fig11

SYNTHETIC = ("u(20)", "n(20)", "e(20)")
REAL = ("arap1", "arap2", "rr1(22)", "rr2(22)", "iw")


def test_fig11_bandwidth_rules(benchmark, save_report):
    result = run_once(benchmark, fig11.run, BENCH)
    save_report(result)
    rows = {row["dataset"]: row for row in result.rows}

    # Oracle never loses.
    for row in result.rows:
        assert row["h-opt MRE"] <= min(row["h-NS MRE"], row["h-DPI2 MRE"]) + 1e-9

    # NS close to optimal on the smooth synthetic files.
    for name in SYNTHETIC:
        gap = float(rows[name]["h-NS MRE"]) - float(rows[name]["h-opt MRE"])
        assert gap < 0.06, name

    # On the real files DPI2 clearly beats NS (the paper's headline).
    dpi_wins = sum(
        1
        for name in REAL
        if float(rows[name]["h-DPI2 MRE"]) < 0.8 * float(rows[name]["h-NS MRE"])
    )
    assert dpi_wins >= 3
