"""Bench: Fig. 10 — boundary treatments compared.

Expected shape: the untreated estimator's relative error spikes near
both domain edges; reflection and boundary kernels both flatten the
spike to a small multiple of the interior error.
"""

import numpy as np
from conftest import BENCH, run_once

from repro.experiments import fig10


def test_fig10_boundary_treatments(benchmark, save_report):
    result = run_once(benchmark, fig10.run, BENCH)
    save_report(result)
    none = np.array(result.column("none rel. error"), dtype=float)
    reflection = np.array(result.column("reflection rel. error"), dtype=float)
    kernel = np.array(result.column("kernel rel. error"), dtype=float)

    edges = np.r_[0:5, -5:0]
    center = slice(len(none) // 2 - 5, len(none) // 2 + 5)

    # Untreated: edge error is an order of magnitude above the center.
    assert none[edges].mean() > 5 * none[center].mean()
    # Both treatments collapse the edge spike by a wide margin.
    assert reflection[edges].mean() < 0.4 * none[edges].mean()
    assert kernel[edges].mean() < 0.4 * none[edges].mean()
    # In the interior all three behave alike.
    assert abs(kernel[center].mean() - none[center].mean()) < 0.02
