"""Extension bench: the full estimator zoo (beyond the paper's Fig. 12).

Adds the state-of-the-art families the paper cites but does not
evaluate (V-optimal [7], wavelet [4], end-biased) to the final
comparison, at matched statistic sizes.

Expected shape: the cited comparators slot *between* the paper's EWH
and its kernel/hybrid winners — they refine histogram boundaries, but
none of them resolves the smoothing-parameter story the paper is
about, so the paper's conclusions survive the stronger baselines.
"""

from conftest import BENCH, run_once

from repro.experiments import extended


def test_ext_comparison(benchmark, save_report):
    result = run_once(benchmark, extended.run, BENCH)
    save_report(result)
    rows = {row["dataset"]: row for row in result.rows}

    # The paper's headline conclusions must survive the new baselines:
    # the kernel still wins the smooth synthetic files...
    for name in ("n(20)", "e(20)"):
        kernel = float(rows[name]["Kernel MRE"])
        for label in ("V-opt MRE", "Wavelet MRE", "End-biased MRE"):
            assert kernel <= float(rows[name][label]) * 1.15, (name, label)

    # ...and the hybrid still wins the TIGER-like files.
    for name in ("arap1", "rr1(22)"):
        hybrid = float(rows[name]["Hybrid MRE"])
        for label in ("V-opt MRE", "Wavelet MRE", "End-biased MRE"):
            assert hybrid <= float(rows[name][label]), (name, label)

    # Sanity: every method stays finite and below the uniform floor.
    for row in result.rows:
        for key, value in row.items():
            if key.endswith("MRE"):
                assert 0.0 <= float(value) < 5.0
