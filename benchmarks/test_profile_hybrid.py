"""Diagnostic bench: where the hybrid's Fig.-12 win comes from.

Measured shape on the arap1 stand-in: the hybrid beats the plain
kernel in *both* position bands — near detected change points (where
bin boundaries stop smoothing across density jumps) and away from
them (where the per-bin bandwidths adapt to local density in a way a
single global bandwidth cannot).  The bands also differ in data
density, so the comparison is within-band only: each band's hybrid
error against the same band's kernel error.
"""

from conftest import BENCH, run_once

from repro.experiments import profile


def test_profile_hybrid(benchmark, save_report):
    result = run_once(benchmark, profile.run, BENCH)
    save_report(result)
    rows = {row["region"]: row for row in result.rows}
    near = rows["near change points"]
    away = rows["away from change points"]

    assert near["queries"] > 5
    assert away["queries"] > 5
    # Within each band the hybrid is at least as good as the kernel.
    assert float(near["hybrid MRE"]) <= float(near["kernel MRE"]) * 1.05
    assert float(away["hybrid MRE"]) <= float(away["kernel MRE"]) * 1.05
    # And it is a strict improvement in at least one band.
    improvements = sum(
        1
        for band in (near, away)
        if float(band["hybrid MRE"]) < 0.95 * float(band["kernel MRE"])
    )
    assert improvements >= 1
