"""Extension bench: 2-D kernel vs. grid histograms (paper §6 future work).

Expected shape: the product kernel is competitive with the best grid
resolution and clearly better than mistuned grids — the 1-D smoothing
story carries over to rectangles.
"""

from conftest import run_once

from repro.experiments.reporting import make_result
from repro.multidim import (
    EquiWidthHistogram2D,
    KernelEstimator2D,
    generate_query_file_2d,
    mean_relative_error_2d,
    plugin_bandwidths_2d,
)
from repro.multidim.relation2d import synthetic_spatial_2d

GRIDS = (4, 8, 16, 32, 64)


def _run():
    relation = synthetic_spatial_2d(100_000, seed=5)
    sample = relation.sample(2_000, seed=6)
    queries = generate_query_file_2d(relation, 0.01, n_queries=300, seed=7)
    rows = [
        {
            "estimator": "kernel (plug-in bandwidths)",
            "MRE": mean_relative_error_2d(
                KernelEstimator2D(
                    sample,
                    bandwidths=plugin_bandwidths_2d(sample),
                    domain_x=relation.domain_x,
                    domain_y=relation.domain_y,
                ),
                queries,
            ),
        },
        {
            "estimator": "kernel (normal scale)",
            "MRE": mean_relative_error_2d(
                KernelEstimator2D(
                    sample, domain_x=relation.domain_x, domain_y=relation.domain_y
                ),
                queries,
            ),
        },
    ]
    for grid in GRIDS:
        rows.append(
            {
                "estimator": f"equi-width {grid}x{grid}",
                "MRE": mean_relative_error_2d(
                    EquiWidthHistogram2D(
                        sample, relation.domain_x, relation.domain_y, grid, grid
                    ),
                    queries,
                ),
            }
        )
    return make_result(
        "ext-multidim",
        "2-D rectangle queries: product kernel vs. grid histograms",
        rows,
    )


def test_ext_multidim(benchmark, save_report):
    result = run_once(benchmark, _run)
    save_report(result)
    errors = {row["estimator"]: float(row["MRE"]) for row in result.rows}
    plug_in = errors["kernel (plug-in bandwidths)"]
    ns = errors["kernel (normal scale)"]
    grids = [v for k, v in errors.items() if k.startswith("equi-width")]
    # The plug-in kernel matches the best grid and crushes the NS
    # kernel — the paper's 1-D Fig. 11 story carried into 2-D.
    assert plug_in < 1.2 * min(grids)
    assert plug_in < 0.5 * ns
    assert plug_in < max(grids)
