"""Perf: sustained throughput of the fault-tolerant serving tier.

Drives :class:`repro.serving.EstimationService` with a steady request
stream — a hot working set answered from the result cache, plus cold
misses and a degraded (breaker-open) fallback path — and exports the
sustained seconds-per-request under ``perf_serving.*``.

``benchmarks/perf_gate.py --qps perf_serving.request_sustained:FLOOR``
turns the sustained number into a CI throughput floor: the resilience
machinery (admission, deadline checks, breaker lookups, provenance
stamping) must never drag steady-state serving below the bar.
"""

import time

import numpy as np
import pytest

from repro.data.domain import Interval
from repro.db import RangePredicate, Table
from repro.serving import (
    EstimationService,
    FaultInjector,
    FaultRule,
    ServiceConfig,
)

DOMAIN = Interval(0.0, 1_000.0)
ROWS = 4_000

#: Requests per measured burst; enough for a stable per-request mean.
SUSTAINED_REQUESTS = 500

#: Acceptance floor asserted locally (the CI gate applies its own via
#: ``--qps``); deliberately far below observed throughput so only a
#: structural slowdown — not scheduler noise — can trip it.
MIN_SUSTAINED_QPS = 200.0


def _make_table():
    rng = np.random.default_rng(0)
    x = np.clip(rng.normal(400.0, 120.0, ROWS), 0, 1_000)
    z = rng.uniform(0, 1_000, ROWS)
    return Table("points", {"x": (x, DOMAIN), "z": (z, DOMAIN)})


def _service(faults=None):
    service = EstimationService(
        ServiceConfig(sample_size=2_000), seed=0, faults=faults
    )
    service.register(_make_table(), seed=7)
    return service


def _hot_requests(n, unique=16):
    """A request stream over a small working set (mostly cache hits)."""
    rng = np.random.default_rng(1)
    lows = rng.uniform(0.0, 800.0, unique)
    widths = rng.uniform(50.0, 200.0, unique)
    shapes = [
        [RangePredicate("x", float(a), float(min(a + w, 1_000.0)))]
        for a, w in zip(lows, widths)
    ]
    return [shapes[i % unique] for i in range(n)]


def _cold_requests(n):
    """Distinct query shapes: every request misses the result cache."""
    rng = np.random.default_rng(2)
    lows = rng.uniform(0.0, 800.0, n)
    widths = rng.uniform(50.0, 200.0, n)
    return [
        [RangePredicate("x", float(a), float(min(a + w, 1_000.0)))]
        for a, w in zip(lows, widths)
    ]


def test_perf_sustained_qps(perf_export):
    """Steady-state throughput over a hot working set, gated in CI."""
    service = _service()
    requests = _hot_requests(SUSTAINED_REQUESTS)
    # Warm the result cache so the measured burst is steady state.
    for predicates in _hot_requests(32):
        service.estimate("points", predicates)

    start = time.perf_counter()
    for predicates in requests:
        result = service.estimate("points", predicates)
        assert np.isfinite(result.plan.estimated_rows)
    elapsed = time.perf_counter() - start

    per_request = elapsed / len(requests)
    qps = 1.0 / per_request
    perf_export.record_seconds("perf_serving", "request_sustained", per_request)
    perf_export.record_value(
        "perf_serving", "qps_sustained_x", qps, kind="rate", unit="per_second"
    )
    assert qps >= MIN_SUSTAINED_QPS, (
        f"serving sustained only {qps:,.0f} req/s "
        f"(floor {MIN_SUSTAINED_QPS:,.0f})"
    )


def test_perf_cold_estimate(perf_export):
    """Cache-missing requests: every answer is planned from statistics."""
    service = _service()
    requests = _cold_requests(64)
    start = time.perf_counter()
    for predicates in requests:
        result = service.estimate("points", predicates)
        assert not result.cached
    elapsed = time.perf_counter() - start
    perf_export.record_seconds("perf_serving", "request_cold", elapsed / len(requests))


def test_perf_degraded_fallback(perf_export):
    """Serving with the primary tier breaker-open (fallback path cost)."""
    faults = FaultInjector(
        [FaultRule(site="tier.hybrid.estimate", kind="error", message="down")]
    )
    service = _service(faults=faults)
    # Trip the hybrid breaker, then measure the settled fallback path.
    for predicates in _cold_requests(8):
        service.estimate("points", predicates)
    assert service.breaker_states()[("points", "hybrid")] == "open"

    requests = _cold_requests(64)
    start = time.perf_counter()
    for predicates in requests:
        result = service.estimate("points", predicates)
        assert result.degraded and result.tier == "equi-depth"
    elapsed = time.perf_counter() - start
    perf_export.record_seconds("perf_serving", "request_degraded", elapsed / len(requests))


def test_degraded_path_is_not_slower_than_cold(perf_export):
    """Fallback must shed work, not add it: once the breaker is open the
    degraded path skips the primary tier entirely, so it may not cost
    more than a healthy cold request by more than measurement noise."""
    entries = perf_export.entries
    cold = entries.get("perf_serving.request_cold", {}).get("mean_s")
    degraded = entries.get("perf_serving.request_degraded", {}).get("mean_s")
    if cold is None or degraded is None:
        pytest.skip("run the cold and degraded benchmarks first")
    assert degraded <= cold * 3.0
