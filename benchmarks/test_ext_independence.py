"""Extension bench: the attribute-independence assumption vs. 2-D kernels.

Optimizers without multidimensional statistics estimate a conjunctive
range predicate as the *product* of per-attribute selectivities — the
independence assumption.  On correlated spatial data that is exactly
wrong.  This bench compares, on the synthetic 2-D spatial relation:

* independence: 1-D boundary-kernel estimators per axis, multiplied;
* the true joint estimator: the 2-D product kernel of
  :mod:`repro.multidim` (plug-in bandwidths).

Expected shape: the joint estimator clearly beats independence — the
quantitative argument for the paper's §6 multidimensional extension.
"""

import numpy as np
from conftest import run_once

from repro.bandwidth.plugin import plugin_bandwidth
from repro.core.kernel import make_kernel_estimator
from repro.experiments.reporting import make_result
from repro.multidim import (
    KernelEstimator2D,
    generate_query_file_2d,
    mean_relative_error_2d,
    plugin_bandwidths_2d,
)
from repro.multidim.relation2d import synthetic_spatial_2d


class IndependenceEstimator:
    """sigma(x-range) * sigma(y-range) from two 1-D estimators."""

    def __init__(self, sample: np.ndarray, domain_x, domain_y):
        hx = min(
            plugin_bandwidth(sample[:, 0], steps=2, domain=domain_x),
            0.499 * domain_x.width,
        )
        hy = min(
            plugin_bandwidth(sample[:, 1], steps=2, domain=domain_y),
            0.499 * domain_y.width,
        )
        self._x = make_kernel_estimator(sample[:, 0], hx, domain_x, boundary="kernel")
        self._y = make_kernel_estimator(sample[:, 1], hy, domain_y, boundary="kernel")

    def selectivity(self, ax, bx, ay, by):
        return self._x.selectivity(ax, bx) * self._y.selectivity(ay, by)


def _run():
    relation = synthetic_spatial_2d(100_000, seed=5)
    sample = relation.sample(2_000, seed=6)
    rows = []
    for size in (0.01, 0.04):
        queries = generate_query_file_2d(
            relation, size, n_queries=250, seed=int(1e4 * size)
        )
        joint = KernelEstimator2D(
            sample,
            bandwidths=plugin_bandwidths_2d(sample),
            domain_x=relation.domain_x,
            domain_y=relation.domain_y,
        )
        independent = IndependenceEstimator(
            sample, relation.domain_x, relation.domain_y
        )
        rows.append(
            {
                "query area": f"{size:.0%}",
                "independence MRE": mean_relative_error_2d(independent, queries),
                "joint 2-D kernel MRE": mean_relative_error_2d(joint, queries),
            }
        )
    return make_result(
        "ext-independence",
        "Conjunctive range predicates: independence assumption vs. 2-D kernel",
        rows,
        notes="correlated spatial attributes break the independence assumption",
    )


def test_ext_independence(benchmark, save_report):
    result = run_once(benchmark, _run)
    save_report(result)
    for row in result.rows:
        assert float(row["joint 2-D kernel MRE"]) < 0.8 * float(
            row["independence MRE"]
        ), row["query area"]
