"""Bench: Fig. 7 — the impact of the query size.

Expected shape: for every data file the MRE falls as queries grow from
1% to 10% of the domain (paper example: arap2 from 17.5% to 4.5%).
"""

from conftest import BENCH, run_once

from repro.experiments import fig07


def test_fig07_query_size(benchmark, save_report):
    result = run_once(benchmark, fig07.run, BENCH)
    save_report(result)
    for row in result.rows:
        small = float(row["1% MRE"])
        large = float(row["10% MRE"])
        assert large < small, row["dataset"]
    # On average the 10% queries are at least twice as easy.
    mean_small = sum(float(r["1% MRE"]) for r in result.rows) / len(result.rows)
    mean_large = sum(float(r["10% MRE"]) for r in result.rows) / len(result.rows)
    assert mean_large < 0.5 * mean_small
