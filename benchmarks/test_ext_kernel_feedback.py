"""Extension bench: query feedback for kernel estimators (§6, third item).

Trains the feedback-weighted kernel on an executed workload over a
*deliberately biased* ANALYZE sample and measures held-out error
against the static kernel (same sample, same bandwidth) and the
histogram-based adaptive estimator.

Expected shape: feedback repairs most of the sample bias; the kernel
variant beats the uniform-start adaptive histogram because it starts
from the sample instead of from nothing.
"""

import numpy as np
from conftest import BENCH, run_once

from repro.bandwidth.normal_scale import kernel_bandwidth
from repro.core.kernel import make_kernel_estimator
from repro.data.domain import Interval
from repro.data.relation import Relation
from repro.experiments.reporting import make_result
from repro.feedback import AdaptiveHistogram, FeedbackKernelEstimator
from repro.workload import generate_query_file, mean_relative_error

DOMAIN = Interval(0.0, 1_000.0)


def _biased_world():
    """A smooth 70/30 Gaussian mixture; the sample is drawn 50/50.

    Smoothness matters: the feedback kernel starts with the right
    *shapes* and only has to relearn the mixture proportions, while
    the uniform-start adaptive histogram must learn the bells from
    scratch through piecewise-constant glasses.
    """
    rng = np.random.default_rng(13)
    data = np.clip(
        np.concatenate(
            [
                rng.normal(280.0, 70.0, 140_000),
                rng.normal(720.0, 70.0, 60_000),
            ]
        ),
        0,
        1_000,
    )
    relation = Relation(data, DOMAIN)
    sample = np.clip(
        np.concatenate(
            [
                rng.normal(280.0, 70.0, 1_000),
                rng.normal(720.0, 70.0, 1_000),
            ]
        ),
        0,
        1_000,
    )
    return relation, sample


def _run():
    relation, sample = _biased_world()
    train = generate_query_file(relation, 0.05, n_queries=400, seed=1)
    test = generate_query_file(relation, 0.05, n_queries=BENCH.n_queries, seed=2)
    truths = train.true_counts / train.relation_size

    h = kernel_bandwidth(sample)
    static = make_kernel_estimator(sample, h, DOMAIN, boundary="reflection")
    feedback_kernel = FeedbackKernelEstimator(sample, h, DOMAIN, learning_rate=0.5)
    feedback_kernel.observe_workload(train.a, train.b, truths)
    adaptive = AdaptiveHistogram(DOMAIN, bins=64, learning_rate=0.4)
    adaptive.observe_workload(train.a, train.b, truths)

    rows = [
        {
            "estimator": "static kernel (biased sample)",
            "held-out MRE": mean_relative_error(static, test),
        },
        {
            "estimator": "feedback kernel",
            "held-out MRE": mean_relative_error(feedback_kernel, test),
        },
        {
            "estimator": "adaptive histogram (uniform start)",
            "held-out MRE": mean_relative_error(adaptive, test),
        },
    ]
    return make_result(
        "ext-kernel-feedback",
        "Query feedback repairing a biased ANALYZE sample (5% queries)",
        rows,
        notes="relation is a 70/30 Gaussian mixture; the sample was drawn 50/50",
    )


def test_ext_kernel_feedback(benchmark, save_report):
    result = run_once(benchmark, _run)
    save_report(result)
    errors = {row["estimator"]: float(row["held-out MRE"]) for row in result.rows}
    assert errors["feedback kernel"] < 0.6 * errors["static kernel (biased sample)"]
    assert errors["feedback kernel"] < errors["adaptive histogram (uniform start)"]
