"""Bench: Fig. 3 — the boundary problem of untreated kernel estimators.

Expected shape: signed error near zero in the domain center, large
negative error (hundreds of the ~1,000-record true result) where the
query touches a boundary.
"""

import numpy as np
from conftest import BENCH, run_once

from repro.experiments import fig03


def test_fig03_boundary_error(benchmark, save_report):
    result = run_once(benchmark, fig03.run, BENCH)
    save_report(result)
    errors = np.array(result.column("signed error [records]"), dtype=float)
    true = np.array(result.column("true result"), dtype=float)
    center = len(errors) // 2

    # Edge queries lose a large share of their ~1,000-record result.
    assert errors[0] < -0.3 * true[0]
    assert errors[-1] < -0.3 * true[-1]
    # Center queries are an order of magnitude more accurate.
    assert abs(errors[center]) < 0.1 * true[center]
    # The paper's headline number: error approaching 500 of 1,000.
    assert errors.min() < -350
