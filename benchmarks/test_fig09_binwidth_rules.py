"""Bench: Fig. 9 — bin-count selection rules for equi-width histograms.

Expected shape: the normal scale rule lands close to the observed
optimum on the synthetic files (paper: ~3 points above on average)
and degrades on the structured real files.
"""

from conftest import BENCH, run_once

from repro.experiments import fig09


def test_fig09_binwidth_rules(benchmark, save_report):
    result = run_once(benchmark, fig09.run, BENCH)
    save_report(result)
    rows = {row["dataset"]: row for row in result.rows}

    # h-opt is an oracle: it can never lose to the rule.
    for row in result.rows:
        assert row["h-opt MRE"] <= row["h-NS MRE"] + 1e-9, row["dataset"]

    # On the smooth synthetic files the rule is within a few points.
    for name in ("n(20)", "e(20)"):
        gap = float(rows[name]["h-NS MRE"]) - float(rows[name]["h-opt MRE"])
        assert gap < 0.06, name

    # The rule's NS bin count is in a sane range on Normal data
    # (paper's optimum was ~20 for n=2,000).
    assert 5 <= rows["n(20)"]["h-NS bins"] <= 200
