"""Ablation: cross-validation as a third bandwidth selection rule.

The paper evaluates the normal scale and direct plug-in rules; the
statistics literature it cites offers least-squares cross-validation
as the reference-free alternative.  Expected shape: LSCV behaves like
the plug-in — reasonable on smooth data, far better than NS on the
structured files — at a higher (O(n^2)) selection cost.
"""

from conftest import BENCH, run_once

from repro.bandwidth.cross_validation import lscv_bandwidth
from repro.bandwidth.normal_scale import kernel_bandwidth
from repro.bandwidth.plugin import plugin_bandwidth
from repro.core.kernel import make_kernel_estimator
from repro.experiments.harness import load_context
from repro.experiments.reporting import make_result
from repro.workload.metrics import mean_relative_error

DATASETS = ("n(20)", "e(20)", "arap1", "rr1(22)", "iw")


def _run():
    rows = []
    for name in DATASETS:
        context = load_context(name, BENCH)
        sample, domain, queries = (
            context.sample,
            context.relation.domain,
            context.queries,
        )
        cap = 0.499 * domain.width

        def error(h: float) -> float:
            estimator = make_kernel_estimator(
                sample, min(h, cap), domain, boundary="kernel"
            )
            return mean_relative_error(estimator, queries)

        rows.append(
            {
                "dataset": name,
                "h-NS MRE": error(kernel_bandwidth(sample)),
                "h-DPI2 MRE": error(plugin_bandwidth(sample, steps=2, domain=domain)),
                "h-LSCV MRE": error(lscv_bandwidth(sample)),
            }
        )
    return make_result(
        "ablation-lscv",
        "Bandwidth rules: normal scale vs. plug-in vs. cross-validation (1% queries)",
        rows,
    )


def test_ablation_lscv(benchmark, save_report):
    result = run_once(benchmark, _run)
    save_report(result)
    rows = {row["dataset"]: row for row in result.rows}
    # On the structured real files LSCV, like DPI, clearly beats NS.
    for name in ("arap1", "rr1(22)", "iw"):
        assert float(rows[name]["h-LSCV MRE"]) < 0.85 * float(rows[name]["h-NS MRE"])
    # On Normal data all three rules are in the same ballpark.
    normal = rows["n(20)"]
    spread = max(float(normal[k]) for k in ("h-NS MRE", "h-DPI2 MRE", "h-LSCV MRE"))
    assert spread < 0.10
