"""Perf: vectorized batch serving across batch sizes.

The optimizer-facing workload the paper motivates: one built statistic
(n = 2,000 samples, Epanechnikov kernel — the paper's protocol)
answering large query batches.  Timings are exported under
``perf_batch.*`` so ``benchmarks/perf_gate.py`` can hold the line
against regressions, and the vectorized path is proven both faster
than the per-query loop (>= 10x on the 10k batch) and exact against
the ``Theta(n)`` reference scan.
"""

import time

import numpy as np
import pytest

from repro.core.kernel import KernelSelectivityEstimator

N_SAMPLES = 2_000
BATCH_SIZES = (10, 100, 1_000, 10_000)
#: Least acceptable speedup of the vectorized 10k batch over the
#: per-query loop (the acceptance bar; observed far higher).
MIN_SPEEDUP = 10.0


@pytest.fixture(scope="module")
def estimator():
    sample = np.random.default_rng(0).uniform(0.0, 1.0, N_SAMPLES)
    return KernelSelectivityEstimator(sample, 0.05, kernel="epanechnikov")


def _query_batch(size: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(size)
    a = rng.uniform(-0.1, 1.05, size)
    return a, a + rng.uniform(0.0, 0.2, size)


@pytest.mark.parametrize("size", BATCH_SIZES)
def test_perf_batch(benchmark, estimator, size, perf_export):
    a, b = _query_batch(size)
    result = benchmark(estimator.selectivities, a, b)
    assert result.shape == (size,)
    perf_export.record("perf_batch", f"kernel_{size}", benchmark.stats.stats)


def test_batch_beats_per_query_loop(estimator, perf_export):
    """The vectorized batch path must be >= 10x the per-query loop."""
    a, b = _query_batch(10_000)

    start = time.perf_counter()
    loop = np.array([estimator.selectivity(x, y) for x, y in zip(a, b)])
    loop_seconds = time.perf_counter() - start

    # Best of three keeps the comparison honest against scheduler noise.
    batch_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        batch = estimator.selectivities(a, b)
        batch_seconds = min(batch_seconds, time.perf_counter() - start)

    perf_export.record_seconds("perf_batch", "loop_10000", loop_seconds)
    perf_export.record_value(
        "perf_batch", "speedup_10000_x", loop_seconds / batch_seconds,
        kind="ratio", unit="x",
    )
    np.testing.assert_array_equal(batch, loop)
    assert loop_seconds / batch_seconds >= MIN_SPEEDUP, (
        f"batch path only {loop_seconds / batch_seconds:.1f}x faster "
        f"(loop {loop_seconds:.3f}s vs batch {batch_seconds:.3f}s)"
    )


def test_batch_matches_reference_scan(estimator):
    """10k-batch results equal the ``Theta(n)`` scan within 1e-12."""
    a, b = _query_batch(10_000)
    batch = estimator.selectivities(a, b)
    scan = np.array([estimator.selectivity_scan(x, y) for x, y in zip(a, b)])
    np.testing.assert_allclose(batch, scan, atol=1e-12)
