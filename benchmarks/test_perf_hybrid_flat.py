"""Perf: the flattened hybrid hot paths vs the per-bin reference.

The hybrid estimator's serving cost used to scale with the number of
bins times the per-bin Python dispatch; the flat layout (one
concatenated sorted sample plus per-bin coefficient arrays, see
``repro.core.hybrid_flat``) answers a whole batch with two
``searchsorted`` calls and segmented reductions.  This module records
both paths over the same built statistic so the perf gate can fail CI
whenever the flat path stops beating the per-bin loop
(``--overhead perf_query_batch.hybrid_legacy:perf_query_batch.hybrid_flat``
with a cap of 1.0), and times the direct plug-in bandwidth whose
roughness functionals now run on the linear-binned convolution path.
"""

import numpy as np
import pytest

from repro.bandwidth.plugin import plugin_bandwidth
from repro.core.hybrid import HybridEstimator
from repro.data.domain import Interval

DOMAIN = Interval(0.0, 1_000_000.0)
N_SAMPLES = 2_000
N_QUERIES = 300


@pytest.fixture(scope="module")
def sample():
    # Bimodal with a sharp edge: exercises change-point detection and
    # yields a multi-bin partition (the regime the flat layout targets).
    rng = np.random.default_rng(0)
    values = np.concatenate(
        [
            rng.normal(250_000.0, 40_000.0, N_SAMPLES // 2),
            rng.uniform(600_000.0, 900_000.0, N_SAMPLES - N_SAMPLES // 2),
        ]
    )
    return np.clip(values, DOMAIN.low, DOMAIN.high)


@pytest.fixture(scope="module")
def estimator(sample):
    return HybridEstimator(sample, DOMAIN)


@pytest.fixture(scope="module")
def query_batch():
    rng = np.random.default_rng(1)
    a = rng.uniform(DOMAIN.low, DOMAIN.high * 0.99, N_QUERIES)
    return a, np.minimum(a + rng.uniform(0.0, 0.2, N_QUERIES) * DOMAIN.width, DOMAIN.high)


def test_perf_build_hybrid_flat(benchmark, sample, perf_export):
    built = benchmark(HybridEstimator, sample, DOMAIN)
    assert built.selectivity(DOMAIN.low, DOMAIN.high) > 0.99
    perf_export.record("perf_build", "hybrid_flat", benchmark.stats.stats)


def test_perf_query_hybrid_flat(benchmark, estimator, query_batch, perf_export):
    a, b = query_batch
    out = benchmark(estimator.selectivities, a, b)
    assert out.shape == a.shape
    perf_export.record("perf_query_batch", "hybrid_flat", benchmark.stats.stats)


def test_perf_query_hybrid_legacy(benchmark, estimator, query_batch, perf_export):
    a, b = query_batch
    out = benchmark(estimator.selectivities_reference, a, b)
    assert out.shape == a.shape
    perf_export.record("perf_query_batch", "hybrid_legacy", benchmark.stats.stats)


def test_perf_build_plugin_dpi(benchmark, sample, perf_export):
    bandwidth = benchmark(plugin_bandwidth, sample, domain=DOMAIN)
    assert np.isfinite(bandwidth) and bandwidth > 0
    perf_export.record("perf_build", "plugin_dpi", benchmark.stats.stats)


def test_flat_matches_legacy(estimator, query_batch):
    """The timed paths must agree — speed without drift."""
    a, b = query_batch
    np.testing.assert_allclose(
        estimator.selectivities(a, b),
        estimator.selectivities_reference(a, b),
        atol=1e-12,
    )
