"""Extension bench: query-feedback learning curve (paper §6 future work).

Expected shape: starting from the uniform assumption on skewed data,
the adaptive histogram's error on fresh queries falls monotonically
(up to noise) as executed-query feedback accumulates, ending far below
the starting point.
"""

from conftest import BENCH, run_once

from repro.data import registry
from repro.experiments.reporting import make_result
from repro.feedback import AdaptiveHistogram
from repro.workload import generate_query_file, mean_relative_error

DATASET = "e(20)"
CHECKPOINTS = (0, 10, 25, 50, 100, 200, 400)


def _run():
    relation = registry.load(DATASET, seed=BENCH.seed)
    train = generate_query_file(relation, 0.05, n_queries=max(CHECKPOINTS), seed=21)
    test = generate_query_file(relation, 0.05, n_queries=BENCH.n_queries, seed=22)
    estimator = AdaptiveHistogram(relation.domain, bins=64, learning_rate=0.4)
    rows = []
    observed = 0
    for checkpoint in CHECKPOINTS:
        while observed < checkpoint:
            i = observed
            estimator.observe(
                train.a[i], train.b[i], train.true_counts[i] / train.relation_size
            )
            observed += 1
        rows.append(
            {
                "queries observed": checkpoint,
                "MRE": mean_relative_error(estimator, test),
            }
        )
    return make_result(
        "ext-feedback",
        f"Query-feedback learning curve on {DATASET} (uniform start)",
        rows,
    )


def test_ext_feedback(benchmark, save_report):
    result = run_once(benchmark, _run)
    save_report(result)
    errors = [float(row["MRE"]) for row in result.rows]
    # Massive improvement end to end...
    assert errors[-1] < 0.3 * errors[0]
    # ...and the curve is broadly decreasing.
    assert errors[2] < errors[0]
    assert errors[-1] <= min(errors[:3])
