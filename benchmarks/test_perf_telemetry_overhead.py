"""Perf: instrumentation overhead of enabled telemetry on the hot path.

Observability only earns its place on the serving path if it is close
to free.  This benchmark times the same 10k-query batch-selectivity
workload with telemetry disabled (the default) and inside an enabled
``telemetry.session()``, then exports both medians plus their ratio
under ``perf_telemetry.*``.  ``benchmarks/perf_gate.py --overhead``
holds the enabled/disabled ratio under 5 % in CI; the local assertion
is looser (1.5x) so a loaded laptop does not flake.
"""

import time

import numpy as np

from repro import telemetry
from repro.core.kernel import KernelSelectivityEstimator

N_SAMPLES = 2_000
BATCH_SIZE = 10_000
REPEATS = 7
#: Local sanity ceiling on enabled/disabled; CI gates much tighter.
MAX_LOCAL_OVERHEAD = 1.5


def _workload():
    sample = np.random.default_rng(0).uniform(0.0, 1.0, N_SAMPLES)
    estimator = KernelSelectivityEstimator(sample, 0.05, kernel="epanechnikov")
    rng = np.random.default_rng(BATCH_SIZE)
    a = rng.uniform(-0.1, 1.05, BATCH_SIZE)
    return estimator, a, a + rng.uniform(0.0, 0.2, BATCH_SIZE)


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_perf_telemetry_overhead(perf_export):
    estimator, a, b = _workload()
    estimator.selectivities(a, b)  # warm caches before either timing

    assert telemetry.get_telemetry().enabled is False
    disabled = _best_of(lambda: estimator.selectivities(a, b))

    with telemetry.session():
        enabled = _best_of(lambda: estimator.selectivities(a, b))

    overhead = enabled / disabled
    perf_export.record_seconds("perf_telemetry", "batch_disabled", disabled)
    perf_export.record_seconds("perf_telemetry", "batch_enabled", enabled)
    # A ratio where *growth* is the regression (more instrumentation
    # cost), unlike speedup ratios — hence the explicit direction.
    perf_export.record_value(
        "perf_telemetry", "overhead_x", overhead,
        kind="ratio", unit="x", better="lower",
    )
    assert overhead <= MAX_LOCAL_OVERHEAD, (
        f"enabled telemetry costs {overhead:.2f}x "
        f"(disabled {disabled * 1e3:.3f}ms vs enabled {enabled * 1e3:.3f}ms)"
    )
