"""Shared benchmark configuration.

Every ``test_figXX_*`` module regenerates one table or figure of the
paper, prints the rows, saves them under ``benchmarks/reports/`` and
asserts the paper's qualitative shape.  The ``BENCH`` protocol keeps
the paper's sample size (2,000) and data files but uses 300 queries
per file instead of 1,000 — enough for stable MREs at a fraction of
the runtime.  Set ``REPRO_FULL_PROTOCOL=1`` to run the paper's exact
1,000-query protocol.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.harness import PAPER_BAR_DATASETS, ExperimentConfig
from repro.experiments.reporting import FigureResult
from repro.telemetry import BenchmarkExporter

_FULL = os.environ.get("REPRO_FULL_PROTOCOL", "") == "1"

#: Benchmark protocol: paper datasets and sample size, reduced queries.
BENCH = ExperimentConfig(
    n_queries=1_000 if _FULL else 300,
    datasets=PAPER_BAR_DATASETS,
)

REPORT_DIR = pathlib.Path(__file__).parent / "reports"

#: Machine-readable perf trajectory, at the repository root so diffs of
#: successive PRs show the movement (see repro.telemetry.bench).
BENCH_JSON = pathlib.Path(__file__).parent.parent / "BENCH_perf.json"

_EXPORTER = BenchmarkExporter()


@pytest.fixture()
def perf_export():
    """Recorder the ``test_perf_*`` modules feed their timings into."""
    return _EXPORTER


def pytest_sessionfinish(session, exitstatus):
    """Merge recorded perf timings into BENCH_perf.json (if any)."""
    _EXPORTER.export(BENCH_JSON)


@pytest.fixture()
def save_report():
    """Print a figure result and persist it under benchmarks/reports/."""

    def _save(result: FigureResult) -> FigureResult:
        REPORT_DIR.mkdir(exist_ok=True)
        text = result.render()
        print()
        print(text)
        (REPORT_DIR / f"{result.figure_id}.txt").write_text(text)
        (REPORT_DIR / f"{result.figure_id}.csv").write_text(result.to_csv())
        return result

    return _save


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer.

    The experiments are deterministic, so repeated rounds only repeat
    identical work; one timed round keeps the full harness run fast.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, iterations=1, rounds=1)
