"""Bench: Fig. 4 — MRE vs. number of bins (equi-width, Normal data).

Expected shape: U-curve whose minimum undercuts the flat pure-sampling
baseline by a factor of ~2, with both extremes (very few / very many
bins) far worse than the optimum.
"""

import numpy as np
from conftest import BENCH, run_once

from repro.experiments import fig04


def test_fig04_bins_sweep(benchmark, save_report):
    result = run_once(benchmark, fig04.run, BENCH)
    save_report(result)
    bins = np.array(result.column("bins"), dtype=float)
    errors = np.array(result.column("equi-width MRE"), dtype=float)
    sampling = float(result.rows[0]["sampling MRE"])

    best = errors.min()
    best_bins = bins[int(np.argmin(errors))]
    # The optimum clearly beats sampling (paper: 7% vs 17.5%).
    assert best < 0.7 * sampling
    # The optimum sits at a moderate bin count (paper: ~20).
    assert 5 <= best_bins <= 200
    # U-shape: both ends of the sweep are much worse than the optimum.
    assert errors[0] > 2 * best
    assert errors[-1] > 1.3 * best
