"""Bench: Fig. 8 — histogram estimators at observed-optimal bins.

Expected shape: the serious histograms are close to each other and
clearly better than pure sampling on synthetic files; max-diff does
NOT dominate on large metric domains (contradicting the small-domain
literature, which is the paper's point); the uniform estimator
collapses on every skewed file.
"""

import numpy as np
from conftest import BENCH, run_once

from repro.experiments import fig08


def test_fig08_histogram_comparison(benchmark, save_report):
    result = run_once(benchmark, fig08.run, BENCH)
    save_report(result)
    rows = {row["dataset"]: row for row in result.rows}

    # Uniform collapses on skewed files (paper: ~600% on the census file).
    for name in ("n(20)", "e(20)", "arap1", "iw"):
        assert rows[name]["uniform MRE"] > 3 * rows[name]["EWH MRE"], name

    # Histograms beat sampling on the synthetic files.
    for name in ("u(20)", "n(20)", "e(20)"):
        assert rows[name]["EWH MRE"] < rows[name]["sampling MRE"], name

    # Max-diff never wins by a meaningful margin, and loses clearly on
    # at least one smooth file (the paper's headline contradiction).
    mdh_losses = sum(
        1
        for row in result.rows
        if float(row["MDH MRE"]) > 1.2 * float(row["EWH MRE"])
    )
    assert mdh_losses >= 1
    ewh_mean = np.mean([float(r["EWH MRE"]) for r in result.rows])
    mdh_mean = np.mean([float(r["MDH MRE"]) for r in result.rows])
    assert ewh_mean <= mdh_mean * 1.05
