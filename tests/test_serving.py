"""Unit tests for the fault-tolerant serving tier (repro.serving).

Chaos-style end-to-end scenarios live in ``test_serving_chaos.py``;
this module pins down each component in isolation — breaker state
machine, retry backoff, fault scheduling, snapshot lifecycle, bounded
admission — plus the service-level fallback/caching/shedding behavior
under a controlled clock and injected faults.
"""

import threading

import numpy as np
import pytest

from repro import serving, telemetry
from repro.core.base import InvalidQueryError
from repro.data.domain import Interval
from repro.db import RangePredicate, Table
from repro.serving import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerConfig,
    CircuitBreaker,
    EstimationService,
    FaultInjector,
    FaultRule,
    RetryPolicy,
    ServiceConfig,
    SnapshotStore,
)
from repro.serving.breaker import BreakerBoard
from repro.serving.errors import (
    CircuitOpen,
    DeadlineExceeded,
    EstimatorUnavailable,
    InjectedFault,
    Overloaded,
    PoisonedResult,
    TransientServingError,
    is_transient,
)

DOMAIN = Interval(0.0, 1_000.0)


class FakeClock:
    """A hand-cranked monotonic clock for deterministic timing tests."""

    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _make_table(name="points", n=4_000, seed=0):
    rng = np.random.default_rng(seed)
    x = np.clip(rng.normal(400.0, 120.0, n), 0, 1_000)
    z = rng.uniform(0, 1_000, n)
    return Table(name, {"x": (x, DOMAIN), "z": (z, DOMAIN)})


def _service(config=None, *, faults=None, slos=(), seed=11):
    service = EstimationService(
        config or ServiceConfig(sample_size=500),
        seed=seed,
        slos=slos,
        faults=faults,
        sleep=lambda _s: None,  # no real backoff sleeps in unit tests
    )
    service.register(_make_table(), seed=7)
    return service


PREDICATES = [RangePredicate("x", 300.0, 500.0)]


class TestErrors:
    def test_hierarchy(self):
        from repro.core.base import EstimatorError
        from repro.serving.errors import ServingError

        for exc in (
            Overloaded("q", retry_after_s=0.1),
            DeadlineExceeded("d", deadline_s=1.0, elapsed_s=2.0),
            CircuitOpen("c", table="t", tier="hybrid"),
            EstimatorUnavailable("u", causes=()),
            InjectedFault("i", site="s"),
        ):
            assert isinstance(exc, ServingError)
            assert isinstance(exc, EstimatorError)

    def test_is_transient(self):
        assert is_transient(Overloaded("q", retry_after_s=0.1))
        assert is_transient(CircuitOpen("c", table="t", tier="hybrid"))
        assert is_transient(PoisonedResult("p"))
        assert not is_transient(DeadlineExceeded("d", deadline_s=1.0, elapsed_s=2.0))
        assert not is_transient(EstimatorUnavailable("u", causes=()))
        assert not is_transient(ValueError("v"))
        assert is_transient(InjectedFault("i", site="s", transient=True))
        assert not is_transient(InjectedFault("i", site="s", transient=False))


class TestFaultRule:
    def test_rejects_unknown_kind(self):
        with pytest.raises(InvalidQueryError):
            FaultRule(site="x", kind="explode")

    def test_rejects_bad_schedule(self):
        with pytest.raises(InvalidQueryError):
            FaultRule(site="x", kind="error", every=0)
        with pytest.raises(InvalidQueryError):
            FaultRule(site="x", kind="error", after=-1)
        with pytest.raises(InvalidQueryError):
            FaultRule(site="x", kind="latency", latency_s=-1.0)

    def test_prefix_matching(self):
        rule = FaultRule(site="tier.hybrid.*", kind="error")
        assert rule.matches("tier.hybrid.estimate")
        assert rule.matches("tier.hybrid.build")
        assert not rule.matches("tier.equi-depth.estimate")

    def test_schedule_after_every_times(self):
        rule = FaultRule(site="s", kind="error", after=2, every=2, times=2)
        fired = 0
        outcomes = []
        for call_index in range(8):
            due = rule.due(call_index, fired)
            outcomes.append(due)
            if due:
                fired += 1
        # Calls 0,1 skipped (after=2); then every 2nd eligible call,
        # capped at 2 firings: fires on call 2 and call 4.
        assert outcomes == [False, False, True, False, True, False, False, False]


class TestFaultInjector:
    def test_error_fault_is_deterministic(self):
        injector = FaultInjector(
            [FaultRule(site="s", kind="error", after=1, times=1, message="boom")]
        )
        assert injector.check("s") == ()
        with pytest.raises(InjectedFault, match="boom"):
            injector.check("s")
        assert injector.check("s") == ()
        assert injector.calls("s") == 3
        assert injector.fired("s") == 1

    def test_latency_fault_sleeps_capped_at_budget(self):
        slept = []
        clock = FakeClock()

        def sleep(seconds):
            slept.append(seconds)
            clock.advance(seconds)

        injector = FaultInjector(
            [FaultRule(site="s", kind="latency", latency_s=0.5)],
            base_clock=clock,
            sleep=sleep,
        )
        assert injector.check("s", budget_s=0.2) == ("latency",)
        assert slept == [pytest.approx(0.2)]
        assert injector.check("s") == ("latency",)
        assert slept[-1] == pytest.approx(0.5)

    def test_skew_fault_steps_the_clock(self):
        clock = FakeClock(100.0)
        injector = FaultInjector(
            [FaultRule(site="s", kind="skew", skew_s=10.0, times=1)],
            base_clock=clock,
        )
        assert injector.clock() == pytest.approx(100.0)
        injector.check("s")
        assert injector.clock() == pytest.approx(110.0)

    def test_poison_is_reported_not_raised(self):
        injector = FaultInjector([FaultRule(site="s", kind="poison", times=1)])
        assert injector.check("s") == ("poison",)
        assert injector.check("s") == ()

    def test_faults_counted_in_telemetry(self):
        with telemetry.session() as session:
            injector = FaultInjector([FaultRule(site="s", kind="poison")])
            injector.check("s")
            assert session.metrics.counter("serving.fault") == 1
            assert session.metrics.counter("serving.fault.poison") == 1


class TestCircuitBreaker:
    def _breaker(self, **overrides):
        clock = FakeClock()
        defaults = dict(
            window=8, failure_threshold=0.5, min_samples=4, cooldown_s=1.0,
            half_open_probes=2,
        )
        defaults.update(overrides)
        return CircuitBreaker(BreakerConfig(**defaults), clock=clock), clock

    def test_config_validation(self):
        with pytest.raises(InvalidQueryError):
            BreakerConfig(window=0)
        with pytest.raises(InvalidQueryError):
            BreakerConfig(failure_threshold=0.0)
        with pytest.raises(InvalidQueryError):
            BreakerConfig(failure_threshold=1.5)
        with pytest.raises(InvalidQueryError):
            BreakerConfig(half_open_probes=0)

    def test_stays_closed_below_min_samples(self):
        breaker, _clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_trips_open_at_failure_rate(self):
        breaker, _clock = self._breaker()
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.times_opened == 1

    def test_mixed_outcomes_respect_threshold(self):
        breaker, _clock = self._breaker()
        # 2 failures / 4 outcomes = exactly the 0.5 threshold: trips.
        for outcome in (True, False, True, False):
            breaker.record_success() if outcome else breaker.record_failure()
        assert breaker.state == OPEN

    def test_successes_age_failures_out_of_the_window(self):
        breaker, _clock = self._breaker(window=4)
        for _ in range(2):
            breaker.record_failure()
        for _ in range(4):
            breaker.record_success()
        # The window now holds only successes; more failures are needed
        # to trip than if the old ones still counted.
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_after_cooldown_then_closes(self):
        breaker, clock = self._breaker()
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

        clock.advance(1.01)
        assert breaker.allow()  # first probe admitted
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == HALF_OPEN  # needs half_open_probes successes
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_half_open_failure_reopens(self):
        breaker, clock = self._breaker()
        for _ in range(4):
            breaker.record_failure()
        clock.advance(1.01)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.times_opened == 2
        assert not breaker.allow()
        # The cooldown restarts from the reopen.
        clock.advance(1.01)
        assert breaker.allow()
        assert breaker.state == HALF_OPEN

    def test_half_open_limits_probes(self):
        breaker, clock = self._breaker(half_open_probes=1)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(1.01)
        assert breaker.allow()
        assert not breaker.allow()  # only one probe outstanding

    def test_state_gauge_and_open_counter(self):
        with telemetry.session() as session:
            clock = FakeClock()
            breaker = CircuitBreaker(
                BreakerConfig(min_samples=2, cooldown_s=1.0), clock=clock, name="t.hybrid"
            )
            breaker.record_failure()
            breaker.record_failure()
            assert breaker.state == OPEN
            assert session.metrics.gauge("serving.breaker.state.t.hybrid") == 1.0
            assert session.metrics.counter("serving.breaker.open.t.hybrid") == 1

    def test_board_reuses_breakers(self):
        board = BreakerBoard(BreakerConfig(), clock=FakeClock())
        first = board.get("t", "hybrid")
        assert board.get("t", "hybrid") is first
        assert board.get("t", "uniform") is not first
        first.record_failure()
        states = board.states()
        assert states[("t", "hybrid")] == CLOSED
        assert set(states) == {("t", "hybrid"), ("t", "uniform")}


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(InvalidQueryError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(InvalidQueryError):
            RetryPolicy(base_delay_s=-0.1)
        with pytest.raises(InvalidQueryError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(InvalidQueryError):
            RetryPolicy(jitter=1.5)

    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(
            base_delay_s=0.01, multiplier=2.0, max_delay_s=0.05, jitter=0.0
        )
        rng = np.random.default_rng(0)
        delays = [policy.delay_s(attempt, rng) for attempt in range(5)]
        assert delays[:3] == [pytest.approx(0.01), pytest.approx(0.02), pytest.approx(0.04)]
        assert delays[3] == pytest.approx(0.05)  # capped
        assert delays[4] == pytest.approx(0.05)

    def test_jitter_is_seeded_and_bounded(self):
        policy = RetryPolicy(base_delay_s=0.01, jitter=0.5)
        first = [policy.delay_s(0, np.random.default_rng(3)) for _ in range(4)]
        assert len(set(first)) == 1  # same seed, same draw
        rng = np.random.default_rng(3)
        for _ in range(100):
            delay = policy.delay_s(0, rng)
            assert 0.005 <= delay <= 0.015


class TestSnapshotStore:
    def test_empty_store_raises(self):
        store = SnapshotStore()
        assert store.version == 0
        with pytest.raises(InvalidQueryError):
            store.current()

    def test_publish_bumps_version(self):
        store = SnapshotStore()
        assert store.publish({"a": 1}).version == 1
        assert store.publish({"a": 2}).version == 2
        assert store.current().payload == {"a": 2}

    def test_pinned_reader_keeps_its_version_across_publish(self):
        store = SnapshotStore()
        store.publish({"v": 1})
        with store.pin() as snapshot:
            store.publish({"v": 2})
            assert snapshot.payload == {"v": 1}
            assert store.retired() == (1,)
            assert store.current().payload == {"v": 2}
        # Last pin released: the superseded snapshot is dropped.
        assert store.retired() == ()
        assert store.pinned() == {}

    def test_unpinned_publish_retires_nothing(self):
        store = SnapshotStore()
        store.publish({"v": 1})
        store.publish({"v": 2})
        assert store.retired() == ()

    def test_telemetry(self):
        with telemetry.session() as session:
            store = SnapshotStore()
            store.publish({})
            store.publish({})
            assert session.metrics.counter("serving.snapshot.publish") == 2
            assert session.metrics.gauge("serving.snapshot.version") == 2.0


class TestAdmission:
    def test_overloaded_when_queue_full(self):
        from repro.serving.service import _Admission

        clock = FakeClock()
        admission = _Admission(max_inflight=1, max_queue=0, clock=clock)
        admission.acquire(clock(), 1.0)
        with pytest.raises(Overloaded) as excinfo:
            admission.acquire(clock(), 1.0)
        assert excinfo.value.retry_after_s > 0

    def test_deadline_while_queued(self):
        import time as _time

        from repro.serving.service import _Admission

        admission = _Admission(max_inflight=1, max_queue=4, clock=_time.monotonic)
        start = _time.monotonic()
        admission.acquire(start, 10.0)
        with pytest.raises(DeadlineExceeded):
            admission.acquire(_time.monotonic(), 0.05)
        elapsed = _time.monotonic() - start
        assert elapsed < 1.0  # bounded wait, not a hang

    def test_release_unblocks_a_waiter(self):
        import time as _time

        from repro.serving.service import _Admission

        admission = _Admission(max_inflight=1, max_queue=4, clock=_time.monotonic)
        admission.acquire(_time.monotonic(), 1.0)
        waited = []

        def waiter():
            waited.append(admission.acquire(_time.monotonic(), 5.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        deadline = 100
        while admission.depth == 0 and deadline:
            deadline -= 1
            _time.sleep(0.005)
        admission.release(0.01)
        thread.join(timeout=5.0)
        assert len(waited) == 1 and waited[0] >= 0.0
        assert admission.depth == 0


class TestServiceConfig:
    def test_rejects_unknown_family(self):
        with pytest.raises(InvalidQueryError, match="unknown estimator families"):
            ServiceConfig(families=("hybrid", "magic"))

    def test_rejects_duplicates_and_empty(self):
        with pytest.raises(InvalidQueryError):
            ServiceConfig(families=())
        with pytest.raises(InvalidQueryError):
            ServiceConfig(families=("hybrid", "hybrid"))

    def test_rejects_bad_limits(self):
        with pytest.raises(InvalidQueryError):
            ServiceConfig(max_inflight=0)
        with pytest.raises(InvalidQueryError):
            ServiceConfig(default_deadline_s=0.0)


class TestServiceHappyPath:
    def test_primary_tier_serves_with_provenance(self):
        service = _service()
        result = service.estimate("points", PREDICATES)
        assert result.tier == "hybrid"
        assert not result.degraded
        assert result.fallbacks == ()
        assert result.snapshot_version == 1
        assert result.attempts == 1
        assert any(
            "served by hybrid tier (snapshot v1)" in note
            for note in result.plan.provenance
        )
        assert 0 <= result.plan.estimated_rows <= 4_000

    def test_result_cache_hit(self):
        service = _service()
        first = service.estimate("points", PREDICATES)
        second = service.estimate("points", PREDICATES)
        assert not first.cached and second.cached
        assert second.plan.estimated_rows == first.plan.estimated_rows

    def test_refresh_invalidates_by_snapshot_version(self):
        service = _service()
        service.estimate("points", PREDICATES)
        assert service.refresh("points") == 2
        result = service.estimate("points", PREDICATES)
        assert not result.cached
        assert result.snapshot_version == 2

    def test_unknown_table_is_a_caller_error(self):
        service = _service()
        with pytest.raises(InvalidQueryError, match="unknown table"):
            service.estimate("nope", PREDICATES)

    def test_invalid_deadline_is_a_caller_error(self):
        service = _service()
        with pytest.raises(InvalidQueryError):
            service.estimate("points", PREDICATES, deadline_s=0.0)
        with pytest.raises(InvalidQueryError):
            service.estimate("points", PREDICATES, deadline_s=float("inf"))

    def test_request_metrics(self):
        with telemetry.session() as session:
            service = _service()
            service.estimate("points", PREDICATES)
            assert session.metrics.counter("serving.request") == 1
            assert session.metrics.counter("serving.tier.hybrid") == 1
            assert session.metrics.summary("serving.request.seconds").count == 1
            assert session.metrics.counter("serving.degraded") == 0


class TestServiceFallback:
    def test_persistent_tier_failure_falls_back(self):
        faults = FaultInjector(
            [FaultRule(site="tier.hybrid.estimate", kind="error", message="down")]
        )
        service = _service(faults=faults)
        result = service.estimate("points", PREDICATES)
        assert result.tier == "equi-depth"
        assert result.degraded
        assert result.fallbacks == ("hybrid: InjectedFault",)
        assert any("degraded:" in note for note in result.plan.provenance)

    def test_degraded_results_are_not_cached(self):
        faults = FaultInjector(
            [FaultRule(site="tier.hybrid.estimate", kind="error", times=6)]
        )
        service = _service(faults=faults)
        assert service.estimate("points", PREDICATES).degraded
        # Faults exhausted: the primary tier recovers and serves fresh.
        result = service.estimate("points", PREDICATES)
        assert not result.cached

    def test_transient_failure_retries_then_succeeds(self):
        faults = FaultInjector(
            [FaultRule(site="tier.hybrid.estimate", kind="error", times=1)]
        )
        with telemetry.session() as session:
            service = _service(faults=faults)
            result = service.estimate("points", PREDICATES)
            assert result.tier == "hybrid"
            assert not result.degraded
            assert result.attempts == 2
            assert session.metrics.counter("serving.retry") == 1

    def test_non_transient_failure_does_not_retry(self):
        faults = FaultInjector(
            [FaultRule(site="tier.hybrid.estimate", kind="error", transient=False)]
        )
        service = _service(faults=faults)
        result = service.estimate("points", PREDICATES)
        assert result.tier == "equi-depth"
        assert result.attempts == 1

    def test_all_tiers_down_raises_unavailable_with_causes(self):
        faults = FaultInjector(
            [
                FaultRule(site=f"tier.{family}.estimate", kind="error")
                for family in ("hybrid", "equi-depth", "uniform")
            ]
        )
        service = _service(faults=faults)
        with pytest.raises(EstimatorUnavailable) as excinfo:
            service.estimate("points", PREDICATES)
        families = [family for family, _ in excinfo.value.causes]
        assert set(families) == {"hybrid", "equi-depth", "uniform"}
        assert all(
            isinstance(cause, InjectedFault) for _, cause in excinfo.value.causes
        )

    def test_degradation_metrics(self):
        faults = FaultInjector([FaultRule(site="tier.hybrid.estimate", kind="error")])
        with telemetry.session() as session:
            service = _service(faults=faults)
            service.estimate("points", PREDICATES)
            assert session.metrics.counter("serving.degraded") == 1
            assert session.metrics.counter("serving.degraded.points") == 1
            assert session.metrics.counter("serving.tier.equi-depth") == 1


class TestServiceBreakers:
    def _breaker_config(self):
        return BreakerConfig(
            window=4, failure_threshold=0.5, min_samples=2, cooldown_s=60.0,
            half_open_probes=1,
        )

    def test_repeated_failures_open_the_breaker(self):
        faults = FaultInjector([FaultRule(site="tier.hybrid.estimate", kind="error")])
        config = ServiceConfig(
            sample_size=500,
            breaker=self._breaker_config(),
            retry=RetryPolicy(max_attempts=1),
        )
        service = _service(config, faults=faults)
        service.estimate("points", PREDICATES)
        service.estimate("points", PREDICATES)
        assert service.breaker_states()[("points", "hybrid")] == "open"
        # With the breaker open the hybrid tier is skipped outright:
        # no estimate call reaches it, the fallback is immediate.
        before = faults.calls("tier.hybrid.estimate")
        result = service.estimate("points", PREDICATES)
        assert faults.calls("tier.hybrid.estimate") == before
        assert result.fallbacks == ("hybrid: breaker open",)
        assert result.degraded

    def test_breaker_recovers_through_half_open(self):
        faults = FaultInjector(
            [FaultRule(site="tier.hybrid.estimate", kind="error", times=2)]
        )
        config = ServiceConfig(
            sample_size=500,
            breaker=BreakerConfig(
                window=4, failure_threshold=0.5, min_samples=2, cooldown_s=0.0,
                half_open_probes=1,
            ),
            retry=RetryPolicy(max_attempts=1),
        )
        service = _service(config, faults=faults)
        service.estimate("points", PREDICATES)
        service.estimate("points", PREDICATES)
        # Cooldown 0: the next request probes half-open, succeeds
        # (faults exhausted), and the breaker closes again.
        result = service.estimate("points", PREDICATES)
        assert result.tier == "hybrid"
        assert service.breaker_states()[("points", "hybrid")] == "closed"


class TestServiceDeadlines:
    def test_latency_spike_fails_fast_not_late(self):
        slept = []
        clock = FakeClock()

        def fake_sleep(seconds):
            slept.append(seconds)
            clock.advance(seconds)

        faults = FaultInjector(
            [FaultRule(site="tier.hybrid.estimate", kind="latency", latency_s=5.0)],
            base_clock=clock,
            sleep=fake_sleep,
        )
        service = _service(faults=faults)
        with pytest.raises(DeadlineExceeded):
            service.estimate("points", PREDICATES, deadline_s=0.05)
        # The injected stall was capped at the remaining budget, not
        # the full 5 s spike.
        assert slept and max(slept) <= 0.05

    def test_deadline_counted(self):
        faults = FaultInjector(
            [FaultRule(site="tier.hybrid.estimate", kind="latency", latency_s=5.0)],
            sleep=lambda _s: None,
        )
        # The fake sleep doesn't advance time; inject skew so the clock
        # jumps past the deadline instead.
        with telemetry.session() as session:
            service = _service(faults=faults)
            real = service._clock
            with pytest.raises((DeadlineExceeded, EstimatorUnavailable)):
                service.estimate("points", PREDICATES, deadline_s=1e-9)
            del real
            assert (
                session.metrics.counter("serving.deadline.exceeded")
                + session.metrics.counter("serving.unavailable")
            ) >= 1

    def test_slow_tier_charges_the_breaker(self):
        import time as _time

        faults = FaultInjector(
            [FaultRule(site="tier.hybrid.estimate", kind="latency", latency_s=0.2)],
            sleep=_time.sleep,
        )
        config = ServiceConfig(
            sample_size=500,
            breaker=BreakerConfig(min_samples=1, failure_threshold=0.5, cooldown_s=60.0),
        )
        service = _service(config, faults=faults)
        with pytest.raises(DeadlineExceeded):
            service.estimate("points", PREDICATES, deadline_s=0.02)
        assert service.breaker_states()[("points", "hybrid")] == "open"


class TestServicePoisoning:
    def test_poisoned_cache_entry_recovers(self):
        faults = FaultInjector(
            [FaultRule(site="serving.cache.store", kind="poison", times=1)]
        )
        with telemetry.session() as session:
            service = _service(faults=faults)
            first = service.estimate("points", PREDICATES)
            assert np.isfinite(first.plan.estimated_rows)  # caller never sees NaN
            # The *stored* copy was poisoned: the next lookup detects
            # it, evicts, recomputes, and counts the event.
            second = service.estimate("points", PREDICATES)
            assert not second.cached
            assert np.isfinite(second.plan.estimated_rows)
            assert session.metrics.counter("serving.poisoned") == 1
            # Now the cache holds a clean entry.
            assert service.estimate("points", PREDICATES).cached


class TestServiceBuildFailures:
    def test_build_fault_degrades_the_tier_set(self):
        faults = FaultInjector([FaultRule(site="tier.hybrid.build", kind="error")])
        service = EstimationService(
            ServiceConfig(sample_size=500), seed=11, faults=faults, sleep=lambda _s: None
        )
        service.register(_make_table(), seed=7)
        assert service.tiers("points") == ("equi-depth", "uniform")
        failures = service.build_failures("points")
        assert len(failures) == 1 and failures[0][0] == "hybrid"
        result = service.estimate("points", PREDICATES)
        assert result.tier == "equi-depth"

    def test_all_builds_failing_raises(self):
        faults = FaultInjector([FaultRule(site="tier.*", kind="error")])
        service = EstimationService(
            ServiceConfig(sample_size=500), seed=11, faults=faults, sleep=lambda _s: None
        )
        with pytest.raises(EstimatorUnavailable):
            service.register(_make_table(), seed=7)

    def test_refresh_does_not_block_pinned_readers(self):
        service = _service()
        with service._store.pin() as snapshot:
            assert snapshot.version == 1
            service.refresh("points")
            assert service.snapshot_version == 2
            assert service.retired_snapshots() == (1,)
            entry = snapshot.payload["points"]
            plan = entry.tiers[0].planner.plan(entry.table, PREDICATES)
            assert np.isfinite(plan.estimated_rows)
        assert service.retired_snapshots() == ()


class TestServiceShedding:
    def test_burning_slo_sheds_the_primary_tier(self):
        with telemetry.session() as session:
            from repro.telemetry.slo import SERVING_SLOS

            service = _service(slos=SERVING_SLOS)
            # Feed the latency series well past the p99 objective.
            for _ in range(30):
                session.metrics.observe("serving.request.seconds", 10.0)
            assert service.refresh_shed()
            assert service.shedding
            result = service.estimate("points", PREDICATES)
            assert result.tier == "equi-depth"
            assert result.degraded
            assert any("shed (slo burn" in step for step in result.fallbacks)
            assert session.metrics.counter("serving.shed") == 1

    def test_shed_clears_when_burn_subsides(self):
        with telemetry.session() as session:
            from repro.telemetry.slo import SERVING_SLOS

            service = _service(slos=SERVING_SLOS)
            for _ in range(30):
                session.metrics.observe("serving.request.seconds", 10.0)
            assert service.refresh_shed()
        # Telemetry session closed: no burn data, shedding disengages.
        assert not service.refresh_shed()
        assert service.estimate("points", PREDICATES).tier == "hybrid"

    def test_shedding_never_drops_the_last_tier(self):
        with telemetry.session() as session:
            from repro.telemetry.slo import SERVING_SLOS

            config = ServiceConfig(families=("uniform",), sample_size=500)
            service = EstimationService(
                config, seed=11, slos=SERVING_SLOS, sleep=lambda _s: None
            )
            service.register(_make_table(), seed=7)
            for _ in range(30):
                session.metrics.observe("serving.request.seconds", 10.0)
            service.refresh_shed()
            result = service.estimate("points", PREDICATES)
            assert result.tier == "uniform"
            assert not result.degraded


class TestServiceOverload:
    def test_queue_full_rejects_with_retry_after(self):
        import time as _time

        config = ServiceConfig(sample_size=500, max_inflight=1, max_queue=0)
        service = _service(config)
        release = threading.Event()
        started = threading.Event()

        # Occupy the only slot with a request stalled inside a tier.
        faults = service._faults

        def occupy():
            started.set()
            with service._admission._cond:
                pass
            service._admission.acquire(_time.monotonic(), 5.0)
            release.wait(5.0)
            service._admission.release(0.01)

        thread = threading.Thread(target=occupy)
        thread.start()
        started.wait(5.0)
        deadline = 200
        while deadline and service._admission._inflight == 0:
            deadline -= 1
            _time.sleep(0.005)
        del faults
        with pytest.raises(Overloaded) as excinfo:
            service.estimate("points", PREDICATES)
        assert excinfo.value.retry_after_s > 0
        release.set()
        thread.join(timeout=5.0)

    def test_rejection_counted(self):
        import time as _time

        config = ServiceConfig(sample_size=500, max_inflight=1, max_queue=0)
        with telemetry.session() as session:
            service = _service(config)
            service._admission.acquire(_time.monotonic(), 5.0)
            with pytest.raises(Overloaded):
                service.estimate("points", PREDICATES)
            service._admission.release(0.01)
            assert session.metrics.counter("serving.rejected") == 1


class TestPackageSurface:
    def test_public_names(self):
        for name in (
            "EstimationService",
            "ServiceConfig",
            "EstimateResult",
            "DEFAULT_FAMILIES",
            "CircuitBreaker",
            "FaultInjector",
            "FaultRule",
            "RetryPolicy",
            "SnapshotStore",
        ):
            assert hasattr(serving, name), name
            assert name in serving.__all__
