"""Tests for the simulated TIGER/Line generators (repro.data.spatial)."""

import numpy as np
import pytest

from repro.data import spatial
from repro.data.domain import IntegerDomain


@pytest.fixture()
def rng():
    return np.random.default_rng(11)


class TestComponents:
    def test_uniform_block_stays_in_range(self, rng):
        block = spatial.UniformBlock(0.2, 0.4, 1.0)
        domain = IntegerDomain(12)
        values = block.draw(5_000, domain, rng)
        assert values.min() >= 0.2 * domain.width
        assert values.max() <= 0.4 * domain.width

    def test_gauss_cluster_truncated_to_domain(self, rng):
        cluster = spatial.GaussCluster(0.01, 0.2, 1.0)
        domain = IntegerDomain(10)
        values = cluster.draw(5_000, domain, rng)
        assert values.min() >= domain.low
        assert values.max() <= domain.high

    def test_grid_spikes_land_on_lines(self, rng):
        spikes = spatial.GridSpikes(0.1, 0.9, 11, 1.0)
        domain = IntegerDomain(16)
        values = spikes.draw(2_000, domain, rng)
        assert np.unique(values).size <= 11

    def test_narrow_band_width(self, rng):
        band = spatial.NarrowBand(0.5, 0.02, 1.0)
        domain = IntegerDomain(16)
        values = band.draw(5_000, domain, rng)
        assert values.max() - values.min() <= 0.021 * domain.width


class TestRenderMixture:
    def test_weights_must_sum_to_one(self, rng):
        bad = (spatial.UniformBlock(0.0, 1.0, 0.5),)
        with pytest.raises(ValueError):
            spatial.render_mixture(bad, 10, 100, rng)

    def test_rejects_empty_mixture(self, rng):
        with pytest.raises(ValueError):
            spatial.render_mixture((), 10, 100, rng)

    def test_rejects_negative_weight(self, rng):
        bad = (
            spatial.UniformBlock(0.0, 1.0, 1.5),
            spatial.UniformBlock(0.0, 1.0, -0.5),
        )
        with pytest.raises(ValueError):
            spatial.render_mixture(bad, 10, 100, rng)

    def test_output_snapped_to_grid(self, rng):
        mixture = (spatial.UniformBlock(0.0, 1.0, 1.0),)
        values = spatial.render_mixture(mixture, 10, 1_000, rng)
        np.testing.assert_array_equal(values, np.rint(values))
        assert values.min() >= 0 and values.max() <= 1023


class TestPaperFiles:
    @pytest.mark.parametrize("dimension", [1, 2])
    def test_arapahoe_shapes(self, dimension, rng):
        values = spatial.arapahoe(dimension, 18, 10_000, rng)
        assert values.shape == (10_000,)
        domain = IntegerDomain(18)
        assert values.min() >= domain.low and values.max() <= domain.high

    def test_arapahoe_rejects_bad_dimension(self, rng):
        with pytest.raises(ValueError):
            spatial.arapahoe(3, 18, 100, rng)

    @pytest.mark.parametrize("dimension", [1, 2])
    def test_railroads_shapes(self, dimension, rng):
        values = spatial.railroads_rivers(dimension, 12, 10_000, rng)
        assert values.shape == (10_000,)

    def test_railroads_rejects_bad_dimension(self, rng):
        with pytest.raises(ValueError):
            spatial.railroads_rivers(0, 12, 100, rng)

    def test_arapahoe_has_heavy_duplicates(self, rng):
        """Street-grid spikes must produce repeated coordinates even on
        a large domain — the TIGER signature the paper relies on."""
        values = spatial.arapahoe(1, 21, 50_000, rng)
        _, counts = np.unique(values, return_counts=True)
        assert counts.max() > 100

    def test_railroads_density_is_non_smooth(self, rng):
        """Narrow corridors concentrate mass: a few percent of the
        domain must hold a large share of the records."""
        values = spatial.railroads_rivers(1, 22, 50_000, rng)
        domain = IntegerDomain(22)
        counts, _ = np.histogram(values, bins=100, range=(domain.low, domain.high))
        top5 = np.sort(counts)[-5:].sum()
        assert top5 > 0.25 * 50_000
