"""Tests for the bias-variance decomposition (repro.evaluation.decomposition)."""

import numpy as np
import pytest

from repro.core.base import InvalidQueryError
from repro.core.kernel import KernelSelectivityEstimator
from repro.data.domain import Interval
from repro.evaluation import NormalTruth, decompose, tradeoff_curve

DOMAIN = Interval(0.0, 10.0)
TRUTH = NormalTruth(DOMAIN, mean=5.0, sigma=1.5)


def build_kernel(sample: np.ndarray, h: float) -> KernelSelectivityEstimator:
    return KernelSelectivityEstimator(sample, h)


class TestDecompose:
    def test_mise_is_sum_of_parts(self):
        result = decompose(
            lambda s: build_kernel(s, 0.5), TRUTH, 400, replications=10, grid_points=256
        )
        assert result.mise == pytest.approx(
            result.integrated_variance + result.integrated_squared_bias
        )
        assert result.integrated_variance > 0
        assert result.integrated_squared_bias >= 0

    def test_variance_shrinks_with_n(self):
        small = decompose(
            lambda s: build_kernel(s, 0.5), TRUTH, 200, replications=12, grid_points=256
        )
        large = decompose(
            lambda s: build_kernel(s, 0.5), TRUTH, 3_200, replications=12, grid_points=256
        )
        assert large.integrated_variance < small.integrated_variance

    def test_bias_insensitive_to_n(self):
        """AMISE: the bias term depends on h, not on n."""
        small = decompose(
            lambda s: build_kernel(s, 1.2), TRUTH, 400, replications=25, grid_points=256
        )
        large = decompose(
            lambda s: build_kernel(s, 1.2), TRUTH, 3_200, replications=25, grid_points=256
        )
        assert large.integrated_squared_bias == pytest.approx(
            small.integrated_squared_bias, rel=0.4
        )

    def test_needs_replications(self):
        with pytest.raises(InvalidQueryError):
            decompose(lambda s: build_kernel(s, 0.5), TRUTH, 100, replications=1)


class TestTradeoff:
    def test_complementary_impact_of_h(self):
        """Paper §4.2: small h -> low bias / high variance; large h ->
        high bias / low variance."""
        curve = tradeoff_curve(
            build_kernel,
            TRUTH,
            smoothing_values=[0.1, 0.5, 2.5],
            sample_size=600,
            replications=15,
            grid_points=256,
        )
        (h0, d0), (_, d1), (h2, d2) = curve
        assert h0 < h2
        # Variance falls with h...
        assert d0.integrated_variance > d1.integrated_variance > d2.integrated_variance
        # ...while squared bias rises.
        assert d0.integrated_squared_bias < d2.integrated_squared_bias

    def test_amise_predicts_the_variance_term(self):
        """AIVar = R(K) / (n h) — eq. 9(b), checked empirically."""
        n, h = 800, 0.6
        result = decompose(
            lambda s: build_kernel(s, h), TRUTH, n, replications=40, grid_points=256
        )
        predicted = 0.6 / (n * h)  # R(K) = 3/5 for Epanechnikov
        assert result.integrated_variance == pytest.approx(predicted, rel=0.25)

    def test_amise_predicts_the_bias_term(self):
        """AIBias^2 = h^4 k2^2 R(f'') / 4 — eq. 9(a), checked empirically."""
        from repro.bandwidth.amise import normal_roughness

        n, h = 3_000, 1.0
        result = decompose(
            lambda s: build_kernel(s, h), TRUTH, n, replications=30, grid_points=512
        )
        predicted = 0.25 * h**4 * (1 / 5) ** 2 * normal_roughness(2, 1.5)
        assert result.integrated_squared_bias == pytest.approx(predicted, rel=0.35)