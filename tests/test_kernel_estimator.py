"""Tests for the kernel selectivity estimator (repro.core.kernel.estimator)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import InvalidSampleError
from repro.core.kernel import KERNELS, KernelSelectivityEstimator
from repro.data.domain import Interval


@pytest.fixture()
def sample():
    return np.random.default_rng(0).uniform(0.0, 10.0, 400)


class TestConstruction:
    def test_rejects_nonpositive_bandwidth(self, sample):
        with pytest.raises(InvalidSampleError):
            KernelSelectivityEstimator(sample, 0.0)
        with pytest.raises(InvalidSampleError):
            KernelSelectivityEstimator(sample, -1.0)

    def test_rejects_nan_bandwidth(self, sample):
        with pytest.raises(InvalidSampleError):
            KernelSelectivityEstimator(sample, np.nan)

    def test_properties(self, sample):
        est = KernelSelectivityEstimator(sample, 0.5)
        assert est.sample_size == 400
        assert est.bandwidth == 0.5
        assert est.kernel.name == "epanechnikov"


class TestAlgorithmOne:
    """The windowed fast path must agree with the Theta(n) scan."""

    @pytest.mark.parametrize("kernel", sorted(KERNELS))
    def test_fast_path_matches_scan(self, sample, kernel):
        est = KernelSelectivityEstimator(sample, 0.7, kernel)
        rng = np.random.default_rng(1)
        for _ in range(30):
            a = rng.uniform(-2, 11)
            b = a + rng.uniform(0, 6)
            assert est.selectivity(a, b) == pytest.approx(
                est.selectivity_scan(a, b), abs=1e-12
            )

    def test_overlapping_endpoint_zones(self, sample):
        """Queries narrower than 2h exercise the no-shortcut branch."""
        est = KernelSelectivityEstimator(sample, 2.0)
        for a, b in [(3.0, 3.5), (5.0, 5.0), (0.0, 3.9)]:
            assert est.selectivity(a, b) == pytest.approx(
                est.selectivity_scan(a, b), abs=1e-12
            )

    def test_query_wider_than_reach(self, sample):
        est = KernelSelectivityEstimator(sample, 0.1)
        assert est.selectivity(-1.0, 11.0) == pytest.approx(1.0)

    def test_far_away_query_zero(self, sample):
        est = KernelSelectivityEstimator(sample, 0.5)
        assert est.selectivity(100.0, 200.0) == 0.0

    def test_vectorized_matches_scalar(self, sample):
        est = KernelSelectivityEstimator(sample, 0.8)
        rng = np.random.default_rng(2)
        a = rng.uniform(0, 8, 25)
        b = a + rng.uniform(0, 2, 25)
        batch = est.selectivities(a, b)
        singles = [est.selectivity(x, y) for x, y in zip(a, b)]
        np.testing.assert_allclose(batch, singles)

    @given(st.floats(0.05, 5.0), st.floats(-1, 10), st.floats(0, 5))
    @settings(max_examples=50, deadline=None)
    def test_fast_path_property(self, h, a, width):
        sample = np.linspace(0.0, 10.0, 37)
        est = KernelSelectivityEstimator(sample, h)
        assert est.selectivity(a, a + width) == pytest.approx(
            est.selectivity_scan(a, a + width), abs=1e-12
        )


class TestDensity:
    def test_density_integrates_to_selectivity(self, sample):
        est = KernelSelectivityEstimator(sample, 0.6)
        grid = np.linspace(2.0, 5.0, 3001)
        numeric = np.trapezoid(est.density(grid), grid)
        assert numeric == pytest.approx(est.selectivity(2.0, 5.0), abs=1e-4)

    def test_density_nonnegative(self, sample):
        est = KernelSelectivityEstimator(sample, 0.6)
        grid = np.linspace(-2, 12, 200)
        assert (est.density(grid) >= 0).all()

    def test_single_sample_bump(self):
        est = KernelSelectivityEstimator(np.array([5.0]), 1.0)
        assert est.density(np.array([5.0]))[0] == pytest.approx(0.75)
        assert est.density(np.array([6.5]))[0] == 0.0


class TestBoundaryBias:
    def test_mass_leaks_at_domain_edge(self):
        """Without treatment, a query at the edge loses ~half the mass
        of edge-adjacent samples — the paper's Fig. 3 effect."""
        rng = np.random.default_rng(5)
        domain = Interval(0.0, 10.0)
        sample = rng.uniform(0, 10, 2_000)
        est = KernelSelectivityEstimator(sample, 1.0, domain=domain)
        edge = est.selectivity(0.0, 1.0)
        center = est.selectivity(4.5, 5.5)
        assert edge < 0.8 * center

    def test_whole_line_mass_is_one(self):
        sample = np.random.default_rng(6).uniform(0, 10, 300)
        est = KernelSelectivityEstimator(sample, 1.0)
        assert est.selectivity(-10.0, 20.0) == pytest.approx(1.0)
