"""Tests for sample-size planning (repro.bandwidth.sample_size)."""

import numpy as np
import pytest

from repro.bandwidth.amise import normal_roughness
from repro.bandwidth.sample_size import (
    histogram_optimal_amise,
    histogram_sample_size,
    kernel_optimal_amise,
    kernel_sample_size,
    sampling_sample_size,
)
from repro.core.base import InvalidSampleError


class TestOptimalAmise:
    def test_power_laws_exact(self):
        """The inverted laws rest on AMISE* being an exact power of n."""
        r1 = normal_roughness(1)
        r2 = normal_roughness(2)
        for n in (500, 2_000, 8_000):
            hist_ratio = histogram_optimal_amise(n, r1) / histogram_optimal_amise(4 * n, r1)
            kern_ratio = kernel_optimal_amise(n, r2) / kernel_optimal_amise(4 * n, r2)
            assert hist_ratio == pytest.approx(4 ** (2 / 3), rel=1e-9)
            assert kern_ratio == pytest.approx(4 ** (4 / 5), rel=1e-9)


class TestInversion:
    def test_histogram_roundtrip(self):
        r1 = normal_roughness(1)
        target = histogram_optimal_amise(3_000, r1)
        n = histogram_sample_size(target, r1)
        assert n == pytest.approx(3_000, abs=2)

    def test_kernel_roundtrip(self):
        r2 = normal_roughness(2)
        target = kernel_optimal_amise(3_000, r2)
        n = kernel_sample_size(target, r2)
        assert n == pytest.approx(3_000, abs=2)

    def test_kernel_needs_fewer_samples_for_same_target(self):
        """The convergence-rate advantage in planning terms: for the
        same AMISE target the kernel needs a smaller sample."""
        r1 = normal_roughness(1)
        r2 = normal_roughness(2)
        target = histogram_optimal_amise(5_000, r1)
        assert kernel_sample_size(target, r2) < histogram_sample_size(target, r1)

    def test_tighter_target_more_samples(self):
        r2 = normal_roughness(2)
        assert kernel_sample_size(1e-4, r2) > kernel_sample_size(1e-3, r2)

    def test_rejects_bad_target(self):
        with pytest.raises(InvalidSampleError):
            kernel_sample_size(0.0, 1.0)


class TestSamplingSampleSize:
    def test_binomial_bound(self):
        # sigma = 0.5, target se = 0.01 -> n = 0.25 / 1e-4 = 2,500.
        assert sampling_sample_size(0.5, 0.01) == 2_500

    def test_degenerate_selectivity(self):
        assert sampling_sample_size(0.0, 0.01) == 1
        assert sampling_sample_size(1.0, 0.01) == 1

    def test_rejects_bad_inputs(self):
        with pytest.raises(InvalidSampleError):
            sampling_sample_size(1.5, 0.01)
        with pytest.raises(InvalidSampleError):
            sampling_sample_size(0.5, 0.0)

    def test_empirically_calibrated(self):
        """The planned n really achieves the target standard error."""
        rng = np.random.default_rng(0)
        sigma_true = 0.2
        target = 0.02
        n = sampling_sample_size(sigma_true, target)
        estimates = [
            np.mean(rng.uniform(0, 1, n) < sigma_true) for _ in range(400)
        ]
        observed_se = float(np.std(estimates))
        assert observed_se == pytest.approx(target, rel=0.2)
