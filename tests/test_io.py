"""Tests for dataset import/export (repro.data.io)."""

import numpy as np
import pytest

from repro.core.base import InvalidSampleError
from repro.data import io, registry
from repro.data.domain import IntegerDomain, Interval
from repro.data.relation import Relation
from repro.workload.queries import generate_query_file


@pytest.fixture()
def relation():
    rng = np.random.default_rng(0)
    domain = IntegerDomain(12)
    return Relation(domain.snap(rng.uniform(0, 4095, 5_000)), domain, name="io-test")


class TestRelationRoundtrip:
    def test_values_preserved(self, relation, tmp_path):
        path = io.save_relation(relation, tmp_path / "rel.npz")
        loaded = io.load_relation(path)
        np.testing.assert_array_equal(loaded.values, relation.values)
        assert loaded.name == "io-test"

    def test_integer_domain_preserved(self, relation, tmp_path):
        path = io.save_relation(relation, tmp_path / "rel.npz")
        loaded = io.load_relation(path)
        assert isinstance(loaded.domain, IntegerDomain)
        assert loaded.domain.p == 12

    def test_real_domain_preserved(self, tmp_path):
        domain = Interval(-3.5, 9.25)
        relation = Relation(np.array([0.0, 1.0, 2.0]), domain)
        loaded = io.load_relation(io.save_relation(relation, tmp_path / "r.npz"))
        assert loaded.domain == domain

    def test_suffix_added_when_missing(self, relation, tmp_path):
        path = io.save_relation(relation, tmp_path / "noext")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_wrong_kind_rejected(self, relation, tmp_path):
        queries = generate_query_file(relation, 0.05, n_queries=5, seed=1)
        path = io.save_query_file(queries, tmp_path / "q.npz")
        with pytest.raises(InvalidSampleError):
            io.load_relation(path)


class TestQueryFileRoundtrip:
    def test_roundtrip(self, relation, tmp_path):
        queries = generate_query_file(relation, 0.05, n_queries=20, seed=1)
        path = io.save_query_file(queries, tmp_path / "q.npz")
        loaded = io.load_query_file(path)
        np.testing.assert_array_equal(loaded.a, queries.a)
        np.testing.assert_array_equal(loaded.true_counts, queries.true_counts)
        assert loaded.relation_size == queries.relation_size
        assert loaded.size_fraction == queries.size_fraction

    def test_wrong_kind_rejected(self, relation, tmp_path):
        path = io.save_relation(relation, tmp_path / "rel.npz")
        with pytest.raises(InvalidSampleError):
            io.load_query_file(path)


class TestExportEnvironment:
    def test_exports_requested_files(self, tmp_path):
        written = io.export_test_environment(
            tmp_path, datasets=["n(10)"], query_sizes=(0.01,), n_queries=10
        )
        assert len(written) == 2  # relation + one query file
        relation = io.load_relation(written[0])
        assert relation.size == registry.spec("n(10)").n_records
        queries = io.load_query_file(written[1])
        assert len(queries) == 10
