"""Tests for kernel functions (repro.core.kernel.functions).

Every kernel's closed-form CDF and AMISE constants are checked against
numerical integration, so a typo in any primitive cannot survive.
"""

import numpy as np
import pytest
from scipy import integrate

from repro.core.kernel.functions import KERNELS, get_kernel

ALL_KERNELS = sorted(KERNELS)


@pytest.mark.parametrize("name", ALL_KERNELS)
class TestKernelProperties:
    def test_integrates_to_one(self, name):
        kernel = KERNELS[name]
        lo = -min(kernel.support, 12.0)
        value, _ = integrate.quad(lambda t: float(kernel.pdf(t)), lo, -lo, limit=200)
        assert value == pytest.approx(1.0, abs=1e-8)

    def test_symmetric(self, name):
        kernel = KERNELS[name]
        t = np.linspace(0.01, min(kernel.support, 5.0), 50)
        np.testing.assert_allclose(kernel.pdf(t), kernel.pdf(-t))

    def test_nonnegative(self, name):
        kernel = KERNELS[name]
        t = np.linspace(-2 * min(kernel.support, 5.0), 2 * min(kernel.support, 5.0), 201)
        assert (kernel.pdf(t) >= 0).all()

    def test_cdf_matches_numeric_integral(self, name):
        kernel = KERNELS[name]
        lo = -min(kernel.support, 12.0)
        for t in (-0.9, -0.3, 0.0, 0.4, 0.99):
            numeric, _ = integrate.quad(
                lambda u: float(kernel.pdf(u)), lo, t, limit=200
            )
            assert float(kernel.cdf(t)) == pytest.approx(numeric, abs=1e-8)

    def test_cdf_limits(self, name):
        kernel = KERNELS[name]
        assert float(kernel.cdf(-50.0)) == pytest.approx(0.0, abs=1e-12)
        assert float(kernel.cdf(50.0)) == pytest.approx(1.0, abs=1e-12)

    def test_cdf_monotone(self, name):
        kernel = KERNELS[name]
        t = np.linspace(-1.5, 1.5, 301)
        assert (np.diff(kernel.cdf(t)) >= -1e-15).all()

    def test_second_moment_constant(self, name):
        kernel = KERNELS[name]
        lo = -min(kernel.support, 12.0)
        value, _ = integrate.quad(
            lambda t: t * t * float(kernel.pdf(t)), lo, -lo, limit=200
        )
        assert value == pytest.approx(kernel.k2, rel=1e-6)

    def test_roughness_constant(self, name):
        kernel = KERNELS[name]
        lo = -min(kernel.support, 12.0)
        value, _ = integrate.quad(
            lambda t: float(kernel.pdf(t)) ** 2, lo, -lo, limit=200
        )
        assert value == pytest.approx(kernel.roughness, rel=1e-6)

    def test_first_moment_vanishes(self, name):
        kernel = KERNELS[name]
        lo = -min(kernel.support, 12.0)
        value, _ = integrate.quad(
            lambda t: t * float(kernel.pdf(t)), lo, -lo, limit=200
        )
        assert value == pytest.approx(0.0, abs=1e-9)

    def test_mass_between(self, name):
        kernel = KERNELS[name]
        assert float(kernel.mass_between(-0.5, 0.5)) == pytest.approx(
            float(kernel.cdf(0.5) - kernel.cdf(-0.5))
        )


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_kernel("epanechnikov").name == "epanechnikov"

    def test_lookup_case_insensitive(self):
        assert get_kernel("  Gaussian ").name == "gaussian"

    def test_passthrough(self):
        kernel = KERNELS["biweight"]
        assert get_kernel(kernel) is kernel

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_kernel("parabolic")

    def test_paper_epanechnikov_constants(self):
        """The constants the paper's formulas rely on: k2 = 1/5 and
        the primitive F_K(t) = (3t - t^3)/4 + 1/2."""
        kernel = get_kernel("epanechnikov")
        assert kernel.k2 == pytest.approx(0.2)
        assert float(kernel.cdf(0.5)) == pytest.approx(0.5 + (1.5 - 0.125) / 4)
