"""Tests for wavelet histograms (repro.core.histogram.wavelet)."""

import numpy as np
import pytest

from repro.core.base import InvalidSampleError
from repro.core.histogram import WaveletHistogram
from repro.core.histogram.wavelet import haar_inverse, haar_transform
from repro.data.domain import Interval


class TestHaarTransform:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        vector = rng.uniform(0, 1, 64)
        np.testing.assert_allclose(haar_inverse(haar_transform(vector)), vector)

    def test_constant_vector_single_coefficient(self):
        coeffs = haar_transform(np.full(16, 3.5))
        assert coeffs[0] == pytest.approx(3.5)
        np.testing.assert_allclose(coeffs[1:], 0.0, atol=1e-12)

    def test_average_is_first_coefficient(self):
        vector = np.arange(8, dtype=float)
        assert haar_transform(vector)[0] == pytest.approx(vector.mean())

    def test_rejects_non_power_of_two(self):
        with pytest.raises(InvalidSampleError):
            haar_transform(np.zeros(6))
        with pytest.raises(InvalidSampleError):
            haar_inverse(np.zeros(6))

    def test_step_vector_is_sparse(self):
        """A step function needs very few Haar coefficients."""
        vector = np.concatenate([np.zeros(8), np.ones(8)])
        coeffs = haar_transform(vector)
        assert np.count_nonzero(np.abs(coeffs) > 1e-12) <= 2


class TestWaveletHistogram:
    @pytest.fixture()
    def domain(self):
        return Interval(0.0, 100.0)

    @pytest.fixture()
    def sample(self):
        return np.random.default_rng(1).normal(50, 12, 1_000).clip(0, 100)

    def test_full_budget_is_exact_on_grid(self, sample, domain):
        """With every coefficient kept, the estimator reproduces the
        empirical CDF at grid boundaries."""
        hist = WaveletHistogram(sample, domain, coefficients=1_024, grid=1_024)
        edge = 50.0 + (100.0 / 1_024) * 0  # a grid-aligned point
        empirical = np.mean(sample <= edge)
        assert hist.selectivity(0.0, edge) == pytest.approx(empirical, abs=1e-9)

    def test_mass_conserved(self, sample, domain):
        hist = WaveletHistogram(sample, domain, coefficients=16)
        assert hist.selectivity(0.0, 100.0) == pytest.approx(1.0, abs=1e-9)

    def test_monotone_cdf(self, sample, domain):
        hist = WaveletHistogram(sample, domain, coefficients=8)
        grid = np.linspace(0, 100, 333)
        sel = hist.selectivities(np.zeros_like(grid), grid)
        assert (np.diff(sel) >= -1e-12).all()

    def test_more_coefficients_more_accuracy(self, sample, domain):
        """The coefficient budget is the wavelet histogram's smoothing
        parameter: more budget, lower error."""
        from repro.evaluation.truth import NormalTruth

        truth = NormalTruth(domain, mean=50.0, sigma=12.0)
        queries = [(30.0, 40.0), (45.0, 55.0), (60.0, 80.0), (10.0, 20.0)]

        def error(budget: int) -> float:
            hist = WaveletHistogram(sample, domain, coefficients=budget)
            return sum(
                abs(hist.selectivity(a, b) - truth.selectivity(a, b))
                for a, b in queries
            )

        assert error(64) < error(2)

    def test_density_nonnegative(self, sample, domain):
        hist = WaveletHistogram(sample, domain, coefficients=16)
        grid = np.linspace(-10, 110, 500)
        assert (hist.density(grid) >= 0).all()

    def test_rejects_bad_budget(self, sample, domain):
        with pytest.raises(InvalidSampleError):
            WaveletHistogram(sample, domain, coefficients=0)

    def test_rejects_bad_grid(self, sample, domain):
        with pytest.raises(InvalidSampleError):
            WaveletHistogram(sample, domain, grid=1000)

    def test_budget_property_capped_at_grid(self, sample, domain):
        hist = WaveletHistogram(sample, domain, coefficients=10_000, grid=64)
        assert hist.coefficient_budget == 64
