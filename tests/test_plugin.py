"""Tests for the direct plug-in rule (repro.bandwidth.plugin)."""

import numpy as np
import pytest

from repro.bandwidth.normal_scale import histogram_bin_width, kernel_bandwidth
from repro.bandwidth.plugin import plugin_bandwidth, plugin_bin_count, plugin_bin_width
from repro.core.base import InvalidSampleError
from repro.data.domain import Interval


@pytest.fixture()
def normal_sample():
    return np.random.default_rng(0).normal(0.0, 1.0, 2_000)


@pytest.fixture()
def spiky_sample():
    """Multi-modal data where the normal scale rule oversmooths."""
    rng = np.random.default_rng(1)
    return np.concatenate(
        [
            rng.normal(1.0, 0.05, 700),
            rng.normal(3.0, 0.05, 700),
            rng.normal(8.0, 0.05, 600),
        ]
    )


class TestPluginBandwidth:
    def test_close_to_ns_on_normal_data(self, normal_sample):
        """On Normal data the plug-in should roughly confirm the NS
        bandwidth (the NS assumption is then correct)."""
        ns = kernel_bandwidth(normal_sample)
        dpi = plugin_bandwidth(normal_sample, steps=2)
        assert 0.5 * ns < dpi < 1.6 * ns

    def test_shrinks_on_structured_data(self, spiky_sample):
        """Sharp structure inflates R(f''): the plug-in must pick a far
        smaller bandwidth than the normal scale rule — exactly the
        paper's Fig. 11 real-data effect."""
        ns = kernel_bandwidth(spiky_sample)
        dpi = plugin_bandwidth(spiky_sample, steps=2)
        assert dpi < 0.4 * ns

    def test_iteration_moves_away_from_ns(self, spiky_sample):
        one = plugin_bandwidth(spiky_sample, steps=1)
        two = plugin_bandwidth(spiky_sample, steps=2)
        ns = kernel_bandwidth(spiky_sample)
        assert abs(two - ns) >= abs(one - ns) * 0.5  # keeps or increases distance
        assert two < ns

    def test_requires_positive_steps(self, normal_sample):
        with pytest.raises(InvalidSampleError):
            plugin_bandwidth(normal_sample, steps=0)

    def test_deterministic(self, normal_sample):
        assert plugin_bandwidth(normal_sample) == plugin_bandwidth(normal_sample)

    def test_respects_domain_grid(self, spiky_sample):
        domain = Interval(0.0, 10.0)
        h = plugin_bandwidth(spiky_sample, domain=domain)
        assert h > 0


class TestPluginBinWidth:
    def test_positive_on_normal_data(self, normal_sample):
        assert plugin_bin_width(normal_sample) > 0

    def test_shrinks_on_structured_data(self, spiky_sample):
        ns = histogram_bin_width(spiky_sample)
        dpi = plugin_bin_width(spiky_sample, steps=2)
        assert dpi < ns

    def test_bin_count_consistent(self, spiky_sample):
        domain = Interval(0.0, 10.0)
        width = plugin_bin_width(spiky_sample, steps=2, domain=domain)
        count = plugin_bin_count(spiky_sample, domain, steps=2)
        assert count == int(np.ceil(domain.width / width))

    def test_requires_positive_steps(self, normal_sample):
        with pytest.raises(InvalidSampleError):
            plugin_bin_width(normal_sample, steps=0)
