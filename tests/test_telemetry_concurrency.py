# repro: allow-file[telemetry-naming] — synthetic stress-test metric names exercise the registry itself
"""Concurrency stress tests for the shared metrics registry.

The parallel harness (`run_cells`) feeds one `MetricsRegistry` from a
thread pool; these tests assert the registry stays *exact* under that
load — counter totals, observation counts, and merged sketches — so a
traced parallel run reports the same numbers as a serial one.
"""

import threading

import numpy as np

from repro import telemetry
from repro.experiments.harness import run_cells
from repro.telemetry import MetricsRegistry
from repro.telemetry.metrics import RAW_SAMPLE_CAP


class TestRunCellsSharedRegistry:
    def test_counters_and_observations_are_exact(self):
        cells = list(range(16))
        incs_per_cell = 200

        def evaluate(cell):
            metrics = telemetry.get_telemetry().metrics
            for i in range(incs_per_cell):
                metrics.inc("stress.ops")
                metrics.observe("stress.latency", 0.001 * (cell + 1) + 1e-6 * i)
            return cell

        with telemetry.session() as t:
            results = run_cells(cells, evaluate, max_workers=8)

        assert results == cells
        assert t.metrics.counter("stress.ops") == 16 * incs_per_cell
        assert t.metrics.counter("harness.cell") == 16
        summary = t.metrics.summary("stress.latency")
        assert summary.count == 16 * incs_per_cell
        assert summary.min > 0.0

    def test_sketch_spill_under_parallel_load_keeps_exact_count(self):
        # Force every series past the raw-sample cap so percentiles come
        # from the sketch, then check nothing was lost on the way there.
        cells = list(range(8))
        per_cell = RAW_SAMPLE_CAP // 2  # 8 * cap/2 = 4x the cap in total

        def evaluate(cell):
            metrics = telemetry.get_telemetry().metrics
            values = np.linspace(1.0, 2.0, per_cell)
            metrics.observe_many("stress.spill", values)
            return cell

        with telemetry.session() as t:
            run_cells(cells, evaluate, max_workers=8)

        summary = t.metrics.summary("stress.spill")
        assert summary.count == 8 * per_cell
        assert summary.exact is False  # spilled into the sketch
        assert len(t.metrics.values("stress.spill")) == 0
        assert 1.0 <= summary.p50 <= 2.0
        assert abs(summary.p50 - 1.5) / 1.5 <= 0.02


class TestDirectThreadHammer:
    def test_many_threads_one_registry(self):
        registry = MetricsRegistry()
        n_threads, per_thread = 8, 5_000
        barrier = threading.Barrier(n_threads)

        def hammer(seed):
            barrier.wait()
            rng = np.random.default_rng(seed)
            values = rng.uniform(0.5, 1.5, per_thread)
            for value in values[:100]:
                registry.observe("hammer.v", value)
            registry.observe_many("hammer.v", values[100:])
            registry.inc("hammer.n", per_thread)
            registry.set_gauge("hammer.g", float(seed))

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert registry.counter("hammer.n") == n_threads * per_thread
        summary = registry.summary("hammer.v")
        assert summary.count == n_threads * per_thread
        # Gauge holds the last write of *some* thread.
        assert registry.gauge("hammer.g") in set(float(i) for i in range(n_threads))

    def test_per_worker_registries_merge_exactly(self):
        rng = np.random.default_rng(9)
        values = rng.lognormal(0.0, 1.0, 40_000)
        shards = np.array_split(values, 4)

        whole = MetricsRegistry()
        whole.observe_many("merge.v", values)
        whole.inc("merge.n", values.size)

        combined = MetricsRegistry()
        for i, shard in enumerate(shards):
            worker = MetricsRegistry()
            worker.observe_many("merge.v", shard)
            worker.inc("merge.n", shard.size)
            worker.set_gauge("merge.last", float(i))
            combined.merge(worker)

        assert combined.counter("merge.n") == whole.counter("merge.n")
        merged, direct = combined.summary("merge.v"), whole.summary("merge.v")
        assert merged.count == direct.count
        assert merged.min == direct.min
        assert merged.max == direct.max
        assert abs(merged.total - direct.total) <= 1e-6 * abs(direct.total)
        # Same sketch resolution on both paths: percentiles agree closely.
        for attr in ("p50", "p90", "p99"):
            a, b = getattr(merged, attr), getattr(direct, attr)
            assert abs(a - b) / b <= 0.03, attr
        assert combined.gauge("merge.last") == 3.0

    def test_concurrent_snapshot_while_writing_is_consistent(self):
        registry = MetricsRegistry()
        stop = threading.Event()

        def write():
            while not stop.is_set():
                registry.inc("snap.a")
                registry.inc("snap.b")

        writer = threading.Thread(target=write)
        writer.start()
        try:
            for _ in range(200):
                snapshot = registry.snapshot()
                counters = snapshot["counters"]
                # Atomic snapshot: both counters bumped in lockstep never
                # drift apart by more than the one in-flight pair.
                if "snap.a" in counters and "snap.b" in counters:
                    assert abs(counters["snap.a"] - counters["snap.b"]) <= 1
        finally:
            stop.set()
            writer.join()
