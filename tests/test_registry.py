"""Tests for the dataset registry (repro.data.registry)."""

import numpy as np
import pytest

from repro.data import registry


class TestSpecLookup:
    def test_all_paper_names_present(self):
        names = registry.dataset_names()
        for expected in (
            "u(15)", "u(20)", "n(10)", "n(15)", "n(20)", "e(15)", "e(20)",
            "arap1", "arap2", "rr1(12)", "rr1(22)", "rr2(12)", "rr2(22)", "iw",
        ):
            assert expected in names

    def test_ci_is_an_alias_for_iw(self):
        assert registry.spec("ci").name == "iw"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            registry.spec("n(99)")

    def test_malformed_name_raises(self):
        with pytest.raises(KeyError):
            registry.spec("DROP TABLE")

    def test_spec_fields_match_table2(self):
        spec = registry.spec("arap1")
        assert spec.p == 21
        assert spec.n_records == 52_120
        spec = registry.spec("iw")
        assert spec.p == 21
        assert spec.n_records == 199_523
        spec = registry.spec("rr1(12)")
        assert spec.n_records == 257_942


class TestLoad:
    @pytest.mark.parametrize("name", ["u(15)", "n(10)", "e(15)", "rr1(12)"])
    def test_load_matches_spec(self, name):
        relation = registry.load(name)
        spec = registry.spec(name)
        assert relation.size == spec.n_records
        assert relation.domain.high == 2**spec.p - 1
        assert relation.name == spec.name

    def test_load_is_cached(self):
        assert registry.load("u(15)") is registry.load("u(15)")

    def test_different_seeds_differ(self):
        a = registry.load("u(15)", seed=0)
        b = registry.load("u(15)", seed=1)
        assert not (a.values == b.values).all()

    def test_alias_load(self):
        assert registry.load("ci") is registry.load("iw")


class TestDeterminism:
    """Same seed ⇒ identical relation bytes, across fresh cache states."""

    def test_reload_after_cache_clear_is_byte_identical(self):
        first = registry.load("n(15)", seed=3).values.tobytes()
        registry._load_cached.cache_clear()
        second = registry.load("n(15)", seed=3).values.tobytes()
        assert first == second

    def test_every_dataset_reproduces(self):
        before = {
            name: registry.load(name, seed=0).values.tobytes()
            for name in registry.dataset_names()
        }
        registry._load_cached.cache_clear()
        for name, payload in before.items():
            assert registry.load(name, seed=0).values.tobytes() == payload

    def test_seed_streams_are_independent(self):
        # Two (seed, offset) pairs that collide under arithmetic mixing
        # (seed * K + offset) must still yield distinct streams.
        a = np.random.default_rng(registry.derive_seed_sequence(0, 1_000_003))
        b = np.random.default_rng(registry.derive_seed_sequence(1, 0))
        assert not np.allclose(a.random(64), b.random(64))

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            registry.derive_seed_sequence(-1, 0)


class TestTable2:
    def test_rows_cover_all_datasets(self):
        rows = registry.table2()
        assert len(rows) == len(registry.dataset_names())

    def test_measured_counts_match_declared(self):
        for row in registry.table2():
            assert row["measured #records"] == row["#records"]

    def test_small_domains_have_more_duplicates(self):
        """The paper's §5.2.1 premise: small domains mean duplicates."""
        rows = {row["data file"]: row for row in registry.table2()}
        density_small = rows["n(10)"]["#distinct"] / 2**10
        assert rows["n(10)"]["#distinct"] < rows["n(15)"]["#distinct"]
        assert rows["n(15)"]["#distinct"] < rows["n(20)"]["#distinct"]
        assert density_small > 0.5  # nearly every small-domain value occurs
