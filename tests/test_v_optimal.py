"""Tests for V-optimal histograms (repro.core.histogram.v_optimal)."""

import numpy as np
import pytest

from repro.core.base import InvalidSampleError
from repro.core.histogram import EquiWidthHistogram, VOptimalHistogram
from repro.core.histogram.v_optimal import _sse_prefixes, _segment_sse, optimal_partition
from repro.data.domain import Interval


class TestPartitionDP:
    def test_trivial_single_bucket(self):
        assert optimal_partition(np.array([1.0, 2.0, 3.0]), 1) == []

    def test_as_many_buckets_as_cells(self):
        assert optimal_partition(np.array([1.0, 2.0, 3.0]), 3) == [1, 2]

    def test_obvious_two_level_split(self):
        # Flat-low then flat-high: the single cut belongs at the step.
        freq = np.array([1.0, 1.0, 1.0, 9.0, 9.0, 9.0])
        assert optimal_partition(freq, 2) == [3]

    def test_three_levels(self):
        freq = np.array([0.0, 0.0, 5.0, 5.0, 20.0, 20.0])
        assert optimal_partition(freq, 3) == [2, 4]

    def test_zero_sse_when_buckets_fit_structure(self):
        freq = np.array([2.0, 2.0, 7.0, 7.0])
        cuts = optimal_partition(freq, 2)
        p1, p2 = _sse_prefixes(freq)
        total = _segment_sse(p1, p2, 0, cuts[0]) + _segment_sse(p1, p2, cuts[0], 4)
        assert total == pytest.approx(0.0)

    def test_matches_bruteforce_on_random_inputs(self):
        rng = np.random.default_rng(0)
        from itertools import combinations

        for _ in range(10):
            freq = rng.integers(0, 20, size=9).astype(float)
            k = int(rng.integers(2, 5))
            p1, p2 = _sse_prefixes(freq)

            def cost(cuts):
                edges = [0, *cuts, freq.size]
                return sum(
                    _segment_sse(p1, p2, i, j) for i, j in zip(edges, edges[1:])
                )

            best = min(
                (cost(list(c)) for c in combinations(range(1, freq.size), k - 1)),
            )
            dp_cuts = optimal_partition(freq, k)
            assert cost(dp_cuts) == pytest.approx(best, abs=1e-9)

    def test_rejects_zero_buckets(self):
        with pytest.raises(InvalidSampleError):
            optimal_partition(np.array([1.0]), 0)


class TestVOptimalHistogram:
    @pytest.fixture()
    def domain(self):
        return Interval(0.0, 100.0)

    def test_mass_conserved(self, domain):
        rng = np.random.default_rng(1)
        sample = rng.uniform(0, 100, 800)
        hist = VOptimalHistogram(sample, domain, 12)
        assert hist.selectivity(0.0, 100.0) == pytest.approx(1.0)

    def test_boundaries_isolate_clusters(self, domain):
        """Two clusters far apart: 2 buckets must split between them,
        giving near-exact cluster masses (unlike equi-width)."""
        rng = np.random.default_rng(2)
        sample = np.concatenate([rng.uniform(0, 10, 300), rng.uniform(90, 100, 700)])
        hist = VOptimalHistogram(sample, domain, 3)
        assert hist.selectivity(0.0, 15.0) == pytest.approx(0.3, abs=0.02)
        assert hist.selectivity(85.0, 100.0) == pytest.approx(0.7, abs=0.02)

    def test_beats_equi_width_on_step_density(self, domain):
        rng = np.random.default_rng(3)
        sample = np.concatenate(
            [rng.uniform(0, 30, 1_500), rng.uniform(30, 100, 150)]
        )
        vopt = VOptimalHistogram(sample, domain, 4)
        ewh = EquiWidthHistogram(sample, domain, 4)
        # Selectivity of a range hugging the step.
        true = 1_500 / 1_650
        assert abs(vopt.selectivity(0, 30) - true) < abs(ewh.selectivity(0, 30) - true)

    def test_requires_enough_base_cells(self, domain):
        with pytest.raises(InvalidSampleError):
            VOptimalHistogram(np.array([1.0, 2.0]), domain, bins=10, base_cells=5)

    def test_rejects_zero_bins(self, domain):
        with pytest.raises(InvalidSampleError):
            VOptimalHistogram(np.array([1.0]), domain, 0)

    def test_bin_count_respected(self, domain):
        rng = np.random.default_rng(4)
        sample = rng.uniform(0, 100, 500)
        hist = VOptimalHistogram(sample, domain, 7)
        assert hist.bin_count == 7
