"""Tests for the hybrid estimator (repro.core.hybrid)."""

import numpy as np
import pytest

from repro.core.base import InvalidSampleError
from repro.core.hybrid import HybridEstimator
from repro.core.kernel import make_kernel_estimator
from repro.data.domain import Interval
from repro.workload.metrics import mean_relative_error
from repro.workload.queries import QueryFile


@pytest.fixture()
def domain():
    return Interval(0.0, 10.0)


@pytest.fixture()
def step_sample():
    """Sharp density step at 5 — the hybrid's home turf."""
    rng = np.random.default_rng(11)
    return np.concatenate([rng.uniform(0, 5, 2_700), rng.uniform(5, 10, 300)])


class TestConstruction:
    def test_partition_covers_domain(self, step_sample, domain):
        est = HybridEstimator(step_sample, domain)
        bins = est.bins
        assert bins[0].low == domain.low
        assert bins[-1].high == domain.high
        for left, right in zip(bins, bins[1:]):
            assert left.high == right.low

    def test_weights_sum_to_one(self, step_sample, domain):
        est = HybridEstimator(step_sample, domain)
        assert est.bin_weights.sum() == pytest.approx(1.0)

    def test_detects_the_step(self, step_sample, domain):
        est = HybridEstimator(step_sample, domain)
        assert np.min(np.abs(est.change_points - 5.0)) < 0.7

    def test_min_bin_fraction_merging(self, step_sample, domain):
        est = HybridEstimator(step_sample, domain, min_bin_fraction=0.2)
        counts = est.bin_weights * est.sample_size
        assert (counts >= 0.2 * est.sample_size - 1e-9).all() or len(est.bins) == 1

    def test_rejects_bad_fraction(self, step_sample, domain):
        with pytest.raises(InvalidSampleError):
            HybridEstimator(step_sample, domain, min_bin_fraction=1.5)

    def test_no_changepoints_single_bin(self, domain):
        rng = np.random.default_rng(0)
        sample = rng.uniform(0, 10, 1_000)
        est = HybridEstimator(
            sample,
            domain,
            changepoint_kwargs={"relative_threshold": 1.1},  # nothing qualifies
        )
        assert len(est.bins) == 1


class TestBinningRule:
    """One binning rule everywhere: merge counts, per-bin samples and
    the flat layout must agree on edge-coincident samples (they used
    to disagree — np.histogram closes interior right edges, the
    per-bin masks were half-open — double-counting/dropping samples
    exactly on a change point)."""

    def test_edge_coincident_samples_counted_once(self, domain):
        rng = np.random.default_rng(4)
        sample = np.concatenate(
            [
                rng.uniform(0, 5, 600),
                rng.uniform(5, 10, 600),
                np.full(300, 5.0),  # a heavy atom exactly on the step
            ]
        )
        est = HybridEstimator(sample, domain)
        # Every sample lands in exactly one bin: weights sum to one
        # and per-bin counts add up to the sample size.
        counts = est.bin_weights * est.sample_size
        assert counts.sum() == pytest.approx(est.sample_size)
        assert est.selectivity(domain.low, domain.high) == pytest.approx(1.0, abs=1e-9)

    def test_domain_max_sample_kept(self, domain):
        rng = np.random.default_rng(5)
        sample = np.concatenate(
            [rng.uniform(0, 5, 1_500), rng.uniform(5, 10, 1_500), [10.0] * 8]
        )
        est = HybridEstimator(sample, domain)
        assert (est.bin_weights * est.sample_size).sum() == pytest.approx(
            est.sample_size
        )

    def test_tiny_post_merge_bin_falls_back_to_uniform(self, domain):
        """min_bin_fraction can still leave a bin whose samples are all
        duplicates; the bandwidth rule then degenerates and the bin
        must fall back to the uniform estimator, not divide by zero."""
        sample = np.concatenate(
            [
                np.full(1_500, 2.0),  # zero-scale bin: bandwidth 0/NaN
                np.random.default_rng(6).uniform(5.0, 10.0, 1_500),
            ]
        )
        est = HybridEstimator(sample, domain)
        out = est.selectivities(np.array([0.0, 1.9, 4.9]), np.array([10.0, 2.1, 10.0]))
        assert np.all(np.isfinite(out))
        assert out[0] == pytest.approx(1.0, abs=1e-9)

    def test_nan_bandwidth_rule_guarded(self, domain):
        rng = np.random.default_rng(7)
        sample = rng.uniform(0, 10, 2_000)
        est = HybridEstimator(
            sample, domain, bandwidth_rule=lambda values: float("nan")
        )
        out = est.selectivities(np.array([0.0, 2.5]), np.array([10.0, 7.5]))
        assert np.all(np.isfinite(out))
        assert out[0] == pytest.approx(1.0, abs=1e-9)
        assert out[1] == pytest.approx(0.5, abs=0.05)

    def test_zero_bandwidth_rule_guarded(self, domain):
        rng = np.random.default_rng(8)
        sample = rng.uniform(0, 10, 2_000)
        est = HybridEstimator(sample, domain, bandwidth_rule=lambda values: 0.0)
        out = est.selectivities(np.array([0.0]), np.array([10.0]))
        assert np.isfinite(out[0]) and out[0] == pytest.approx(1.0, abs=1e-9)


class TestSelectivity:
    def test_mass_conserved(self, step_sample, domain):
        est = HybridEstimator(step_sample, domain)
        assert est.selectivity(domain.low, domain.high) == pytest.approx(1.0, abs=0.02)

    def test_clipped_to_unit_range(self, step_sample, domain):
        est = HybridEstimator(step_sample, domain)
        assert 0.0 <= est.selectivity(-100.0, 100.0) <= 1.0

    def test_vectorized_matches_scalar(self, step_sample, domain):
        est = HybridEstimator(step_sample, domain)
        rng = np.random.default_rng(3)
        a = rng.uniform(0, 8, 20)
        b = a + rng.uniform(0, 2, 20)
        batch = est.selectivities(a, b)
        singles = [est.selectivity(x, y) for x, y in zip(a, b)]
        np.testing.assert_allclose(batch, singles)

    def test_step_query_accuracy(self, step_sample, domain):
        """Queries straddling the step: the hybrid must see ~90/10."""
        est = HybridEstimator(step_sample, domain)
        assert est.selectivity(0.0, 5.0) == pytest.approx(0.9, abs=0.03)
        assert est.selectivity(5.0, 10.0) == pytest.approx(0.1, abs=0.03)

    def test_beats_plain_kernel_on_step_density(self, domain):
        """The paper's claim: on change-point-heavy data the hybrid is
        more accurate than a single kernel estimator."""
        rng = np.random.default_rng(21)
        data = np.concatenate([rng.uniform(0, 5, 90_000), rng.uniform(5, 10, 10_000)])
        sample = rng.choice(data, 2_000, replace=False)

        # Queries straddling the change point, where smoothing hurts.
        centers = rng.uniform(4.4, 5.6, 200)
        a, b = centers - 0.25, centers + 0.25
        values = np.sort(data)
        counts = np.searchsorted(values, b, "right") - np.searchsorted(values, a, "left")
        queries = QueryFile(a, b, counts, data.size)

        hybrid = HybridEstimator(sample, domain)
        from repro.bandwidth.normal_scale import kernel_bandwidth

        plain = make_kernel_estimator(
            sample, kernel_bandwidth(sample), domain, boundary="kernel"
        )
        assert mean_relative_error(hybrid, queries) < mean_relative_error(plain, queries)


class TestDensity:
    def test_density_integrates_to_one(self, step_sample, domain):
        est = HybridEstimator(step_sample, domain)
        grid = np.linspace(domain.low, domain.high, 4001)
        mass = np.trapezoid(est.density(grid), grid)
        assert mass == pytest.approx(1.0, abs=0.03)

    def test_density_reflects_step(self, step_sample, domain):
        est = HybridEstimator(step_sample, domain)
        left = est.density(np.array([2.5]))[0]
        right = est.density(np.array([7.5]))[0]
        assert left > 5 * right
