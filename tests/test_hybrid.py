"""Tests for the hybrid estimator (repro.core.hybrid)."""

import numpy as np
import pytest

from repro.core.base import InvalidSampleError
from repro.core.hybrid import HybridEstimator
from repro.core.kernel import make_kernel_estimator
from repro.data.domain import Interval
from repro.workload.metrics import mean_relative_error
from repro.workload.queries import QueryFile


@pytest.fixture()
def domain():
    return Interval(0.0, 10.0)


@pytest.fixture()
def step_sample():
    """Sharp density step at 5 — the hybrid's home turf."""
    rng = np.random.default_rng(11)
    return np.concatenate([rng.uniform(0, 5, 2_700), rng.uniform(5, 10, 300)])


class TestConstruction:
    def test_partition_covers_domain(self, step_sample, domain):
        est = HybridEstimator(step_sample, domain)
        bins = est.bins
        assert bins[0].low == domain.low
        assert bins[-1].high == domain.high
        for left, right in zip(bins, bins[1:]):
            assert left.high == right.low

    def test_weights_sum_to_one(self, step_sample, domain):
        est = HybridEstimator(step_sample, domain)
        assert est.bin_weights.sum() == pytest.approx(1.0)

    def test_detects_the_step(self, step_sample, domain):
        est = HybridEstimator(step_sample, domain)
        assert np.min(np.abs(est.change_points - 5.0)) < 0.7

    def test_min_bin_fraction_merging(self, step_sample, domain):
        est = HybridEstimator(step_sample, domain, min_bin_fraction=0.2)
        counts = est.bin_weights * est.sample_size
        assert (counts >= 0.2 * est.sample_size - 1e-9).all() or len(est.bins) == 1

    def test_rejects_bad_fraction(self, step_sample, domain):
        with pytest.raises(InvalidSampleError):
            HybridEstimator(step_sample, domain, min_bin_fraction=1.5)

    def test_no_changepoints_single_bin(self, domain):
        rng = np.random.default_rng(0)
        sample = rng.uniform(0, 10, 1_000)
        est = HybridEstimator(
            sample,
            domain,
            changepoint_kwargs={"relative_threshold": 1.1},  # nothing qualifies
        )
        assert len(est.bins) == 1


class TestSelectivity:
    def test_mass_conserved(self, step_sample, domain):
        est = HybridEstimator(step_sample, domain)
        assert est.selectivity(domain.low, domain.high) == pytest.approx(1.0, abs=0.02)

    def test_clipped_to_unit_range(self, step_sample, domain):
        est = HybridEstimator(step_sample, domain)
        assert 0.0 <= est.selectivity(-100.0, 100.0) <= 1.0

    def test_vectorized_matches_scalar(self, step_sample, domain):
        est = HybridEstimator(step_sample, domain)
        rng = np.random.default_rng(3)
        a = rng.uniform(0, 8, 20)
        b = a + rng.uniform(0, 2, 20)
        batch = est.selectivities(a, b)
        singles = [est.selectivity(x, y) for x, y in zip(a, b)]
        np.testing.assert_allclose(batch, singles)

    def test_step_query_accuracy(self, step_sample, domain):
        """Queries straddling the step: the hybrid must see ~90/10."""
        est = HybridEstimator(step_sample, domain)
        assert est.selectivity(0.0, 5.0) == pytest.approx(0.9, abs=0.03)
        assert est.selectivity(5.0, 10.0) == pytest.approx(0.1, abs=0.03)

    def test_beats_plain_kernel_on_step_density(self, domain):
        """The paper's claim: on change-point-heavy data the hybrid is
        more accurate than a single kernel estimator."""
        rng = np.random.default_rng(21)
        data = np.concatenate([rng.uniform(0, 5, 90_000), rng.uniform(5, 10, 10_000)])
        sample = rng.choice(data, 2_000, replace=False)

        # Queries straddling the change point, where smoothing hurts.
        centers = rng.uniform(4.4, 5.6, 200)
        a, b = centers - 0.25, centers + 0.25
        values = np.sort(data)
        counts = np.searchsorted(values, b, "right") - np.searchsorted(values, a, "left")
        queries = QueryFile(a, b, counts, data.size)

        hybrid = HybridEstimator(sample, domain)
        from repro.bandwidth.normal_scale import kernel_bandwidth

        plain = make_kernel_estimator(
            sample, kernel_bandwidth(sample), domain, boundary="kernel"
        )
        assert mean_relative_error(hybrid, queries) < mean_relative_error(plain, queries)


class TestDensity:
    def test_density_integrates_to_one(self, step_sample, domain):
        est = HybridEstimator(step_sample, domain)
        grid = np.linspace(domain.low, domain.high, 4001)
        mass = np.trapezoid(est.density(grid), grid)
        assert mass == pytest.approx(1.0, abs=0.03)

    def test_density_reflects_step(self, step_sample, domain):
        est = HybridEstimator(step_sample, domain)
        left = est.density(np.array([2.5]))[0]
        right = est.density(np.array([7.5]))[0]
        assert left > 5 * right
