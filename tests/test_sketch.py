"""Tests for the bounded-memory quantile sketch (repro.telemetry.sketch)."""

import math
import threading

import numpy as np
import pytest

from repro.telemetry.sketch import DEFAULT_MAX_BINS, QuantileSketch


class TestAccuracy:
    def test_percentiles_within_one_percent_on_1e6_observations(self):
        rng = np.random.default_rng(7)
        values = rng.lognormal(mean=0.0, sigma=2.0, size=1_000_000)
        sketch = QuantileSketch(relative_accuracy=0.01)
        sketch.extend(values)
        for p in (50.0, 90.0, 99.0, 99.9):
            estimate = sketch.percentile(p)
            true = float(np.percentile(values, p))
            assert abs(estimate - true) / true <= 0.011, f"p{p}"

    def test_exact_scalars(self):
        values = [3.0, 1.0, 4.0, 1.5, 9.0]
        sketch = QuantileSketch()
        sketch.extend(values)
        assert sketch.count == 5
        assert sketch.total == pytest.approx(sum(values))
        assert sketch.min == 1.0
        assert sketch.max == 9.0
        assert sketch.quantile(0.0) == 1.0
        assert sketch.quantile(1.0) == 9.0

    def test_negative_and_zero_values(self):
        sketch = QuantileSketch()
        sketch.extend([-5.0, -1.0, 0.0, 0.0, 1.0, 5.0])
        assert sketch.min == -5.0
        assert sketch.max == 5.0
        assert sketch.quantile(0.5) == pytest.approx(0.0, abs=1e-9)
        low = sketch.quantile(0.1)
        assert low < 0

    def test_empty_sketch_is_nan(self):
        assert math.isnan(QuantileSketch().quantile(0.5))

    def test_invalid_quantile_raises(self):
        with pytest.raises(ValueError):
            QuantileSketch().quantile(1.5)

    def test_invalid_accuracy_raises(self):
        with pytest.raises(ValueError):
            QuantileSketch(relative_accuracy=0.0)
        with pytest.raises(ValueError):
            QuantileSketch(relative_accuracy=1.0)


class TestMemory:
    def test_bin_count_is_bounded_by_dynamic_range_not_observations(self):
        rng = np.random.default_rng(1)
        sketch = QuantileSketch()
        sketch.extend(rng.uniform(1.0, 1e6, 1_000_000))
        # gamma ≈ 1.0202 → ceil(log(1e6)/log(gamma)) ≈ 690 possible bins
        # for this range, no matter how many observations stream through.
        assert sketch.n_bins <= 800
        assert sketch.n_bins <= DEFAULT_MAX_BINS

    def test_repeated_values_add_no_bins(self):
        values = np.random.default_rng(4).uniform(1.0, 1e3, 1_000)
        sketch = QuantileSketch()
        sketch.extend(values)
        bins = sketch.n_bins
        for _ in range(5):
            sketch.extend(values)
        assert sketch.n_bins == bins
        assert sketch.count == 6_000

    def test_max_bins_collapse_keeps_budget_and_upper_tail(self):
        sketch = QuantileSketch(relative_accuracy=0.01, max_bins=16)
        values = np.logspace(-6, 6, 500)
        sketch.extend(values)
        assert sketch.n_bins <= 16
        # Collapse folds the *low* tail; the top quantiles stay accurate.
        true_p99 = float(np.percentile(values, 99))
        assert abs(sketch.percentile(99) - true_p99) / true_p99 <= 0.02


class TestMerge:
    def test_merge_matches_single_sketch_exactly(self):
        rng = np.random.default_rng(2)
        values = rng.lognormal(0.0, 1.0, 10_000)
        whole = QuantileSketch()
        whole.extend(values)
        left, right = QuantileSketch(), QuantileSketch()
        left.extend(values[:4_000])
        right.extend(values[4_000:])
        left.merge(right)
        assert left.count == whole.count
        assert left.total == pytest.approx(whole.total)
        for q in (0.1, 0.5, 0.9, 0.99):
            assert left.quantile(q) == whole.quantile(q)

    def test_merge_leaves_other_unchanged(self):
        a, b = QuantileSketch(), QuantileSketch()
        a.extend([1.0, 2.0])
        b.extend([3.0])
        a.merge(b)
        assert b.count == 1
        assert a.count == 3

    def test_merge_self_is_noop(self):
        sketch = QuantileSketch()
        sketch.extend([1.0, 2.0])
        sketch.merge(sketch)
        assert sketch.count == 2

    def test_merge_mismatched_accuracy_raises(self):
        with pytest.raises(ValueError):
            QuantileSketch(0.01).merge(QuantileSketch(0.05))

    def test_copy_is_independent(self):
        sketch = QuantileSketch()
        sketch.extend([1.0, 2.0])
        clone = sketch.copy()
        sketch.add(3.0)
        assert clone.count == 2
        assert sketch.count == 3


class TestThreadSafety:
    def test_concurrent_adds_count_exactly(self):
        sketch = QuantileSketch()
        per_thread = 10_000

        def feed(seed):
            rng = np.random.default_rng(seed)
            sketch.extend(rng.uniform(0.1, 10.0, per_thread))

        threads = [threading.Thread(target=feed, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sketch.count == 4 * per_thread
