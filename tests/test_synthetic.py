"""Tests for the synthetic data generators (repro.data.synthetic)."""

import numpy as np
import pytest

from repro.data import synthetic
from repro.data.domain import IntegerDomain


@pytest.fixture()
def rng():
    return np.random.default_rng(7)


class TestUniform:
    def test_record_count_and_bounds(self, rng):
        values = synthetic.uniform(12, 5_000, rng)
        domain = IntegerDomain(12)
        assert values.shape == (5_000,)
        assert values.min() >= domain.low
        assert values.max() <= domain.high

    def test_values_are_integers(self, rng):
        values = synthetic.uniform(12, 1_000, rng)
        np.testing.assert_array_equal(values, np.rint(values))

    def test_roughly_flat(self, rng):
        values = synthetic.uniform(10, 50_000, rng)
        counts, _ = np.histogram(values, bins=8, range=(0, 1023))
        # Each octile should hold ~1/8 of the mass.
        assert counts.min() > 0.8 * 50_000 / 8
        assert counts.max() < 1.2 * 50_000 / 8

    def test_deterministic_under_seed(self):
        a = synthetic.uniform(12, 100, np.random.default_rng(3))
        b = synthetic.uniform(12, 100, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)


class TestNormal:
    def test_centered_on_domain(self, rng):
        values = synthetic.normal(20, 20_000, rng)
        domain = IntegerDomain(20)
        assert abs(values.mean() - domain.center) < 0.01 * domain.width

    def test_all_inside_domain(self, rng):
        values = synthetic.normal(20, 10_000, rng)
        domain = IntegerDomain(20)
        assert values.min() >= domain.low
        assert values.max() <= domain.high

    def test_small_domain_is_truncated_center_slice(self, rng):
        """On p=10 the absolute sigma dwarfs the domain, so the kept
        records are nearly uniform (the paper's Fig. 5 regime)."""
        values = synthetic.normal(10, 30_000, rng)
        counts, _ = np.histogram(values, bins=8, range=(0, 1023))
        assert counts.min() > 0.85 * 30_000 / 8
        assert counts.max() < 1.15 * 30_000 / 8

    def test_large_domain_is_bell_shaped(self, rng):
        values = synthetic.normal(20, 30_000, rng)
        domain = IntegerDomain(20)
        center_mass = np.mean(np.abs(values - domain.center) < domain.width / 8)
        # Within one sigma of the center: ~68% for the full bell.
        assert 0.6 < center_mass < 0.75

    def test_duplicates_on_small_domain(self, rng):
        values = synthetic.normal(10, 100_000, rng)
        assert np.unique(values).size <= 1024

    def test_rejects_bad_sigma(self, rng):
        with pytest.raises(ValueError):
            synthetic.normal(10, 100, rng, sigma_fraction=0.0)


class TestExponential:
    def test_left_skew(self, rng):
        values = synthetic.exponential(20, 20_000, rng)
        domain = IntegerDomain(20)
        # Far more mass in the left half than the right half.
        left = np.mean(values < domain.center)
        assert left > 0.9

    def test_all_inside_domain(self, rng):
        values = synthetic.exponential(15, 10_000, rng)
        domain = IntegerDomain(15)
        assert values.min() >= domain.low
        assert values.max() <= domain.high

    def test_monotone_decreasing_density(self, rng):
        values = synthetic.exponential(20, 50_000, rng)
        counts, _ = np.histogram(values, bins=6, range=(0, 2**20 - 1))
        # Exponential density decays: each bin lighter than the previous.
        assert all(counts[i] >= counts[i + 1] for i in range(5))

    def test_rejects_bad_scale(self, rng):
        with pytest.raises(ValueError):
            synthetic.exponential(10, 100, rng, scale_fraction=-1.0)
