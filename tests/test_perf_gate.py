"""Unit tests for the perf-regression gate (benchmarks/perf_gate.py).

The gate is a standalone script (no package imports, so CI can run it
without PYTHONPATH); it is loaded here by file path.  The behaviors
under test are the two historical bugs: ratio/rate entries being
compared as if they were latencies (a speedup *gain* read as a
regression once they stopped being skipped), and ``rounds: 1``
wall-clock entries gated at the stable-median threshold (pure noise).
"""

import importlib.util
import json
import pathlib

import pytest

_GATE_PATH = pathlib.Path(__file__).parent.parent / "benchmarks" / "perf_gate.py"
_SPEC = importlib.util.spec_from_file_location("perf_gate", _GATE_PATH)
perf_gate = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(perf_gate)


def _export(benchmarks):
    return {"schema": perf_gate.BENCH_SCHEMA, "benchmarks": benchmarks}


def _write(tmp_path, name, benchmarks):
    path = tmp_path / name
    path.write_text(json.dumps(_export(benchmarks)))
    return path


STABLE = perf_gate.MIN_STABLE_ROUNDS


class TestEntryKind:
    def test_explicit_kind_wins(self):
        assert perf_gate.entry_kind("anything", {"kind": "rate"}) == "rate"

    def test_legacy_x_suffix_infers_ratio(self):
        assert perf_gate.entry_kind("perf.speedup_x", {}) == "ratio"

    def test_default_is_timing(self):
        assert perf_gate.entry_kind("perf.build", {}) == "timing"

    def test_unknown_kind_falls_back_to_inference(self):
        assert perf_gate.entry_kind("perf.build", {"kind": "nonsense"}) == "timing"


class TestEntryDirection:
    def test_timing_prefers_lower(self):
        assert perf_gate.entry_direction("perf.build", {"kind": "timing"}) == "lower"

    def test_ratio_prefers_higher(self):
        assert perf_gate.entry_direction("perf.speedup_x", {"kind": "ratio"}) == "higher"

    def test_explicit_better_overrides_kind(self):
        entry = {"kind": "ratio", "better": "lower"}
        assert perf_gate.entry_direction("perf.overhead_x", entry) == "lower"


class TestDirectionAwareCompare:
    def test_timing_growth_regresses(self):
        base = {"perf.a": {"median_s": 0.010, "rounds": STABLE, "kind": "timing"}}
        curr = {"perf.a": {"median_s": 0.020, "rounds": STABLE, "kind": "timing"}}
        assert len(perf_gate.compare(base, curr, (), 1.25)) == 1

    def test_ratio_growth_is_improvement(self):
        """The original bug: a bigger speedup must never fail the gate."""
        base = {
            "perf.speedup_x": {"value": 10.0, "rounds": STABLE, "kind": "ratio"}
        }
        curr = {
            "perf.speedup_x": {"value": 40.0, "rounds": STABLE, "kind": "ratio"}
        }
        assert perf_gate.compare(base, curr, (), 1.25) == []

    def test_ratio_collapse_regresses(self):
        base = {
            "perf.speedup_x": {"value": 40.0, "rounds": STABLE, "kind": "ratio"}
        }
        curr = {
            "perf.speedup_x": {"value": 10.0, "rounds": STABLE, "kind": "ratio"}
        }
        regressions = perf_gate.compare(base, curr, (), 1.25)
        assert [row[0] for row in regressions] == ["perf.speedup_x"]

    def test_rate_collapse_regresses(self):
        base = {"perf.qps_x": {"value": 50_000.0, "rounds": STABLE, "kind": "rate"}}
        curr = {"perf.qps_x": {"value": 20_000.0, "rounds": STABLE, "kind": "rate"}}
        assert len(perf_gate.compare(base, curr, (), 1.25)) == 1

    def test_legacy_ratio_under_mean_s_still_compares(self):
        """Pre-migration baselines stored ratios under mean_s; the new
        export stores them under value.  Both sides must resolve."""
        base = {"perf.speedup_x": {"mean_s": 12.0, "rounds": 1}}
        curr = {
            "perf.speedup_x": {"value": 2.0, "rounds": 1, "kind": "ratio"}
        }
        regressions = perf_gate.compare(base, curr, (), 1.25, noisy_threshold=2.0)
        assert len(regressions) == 1  # 12 -> 2 is a 6x collapse

    def test_better_lower_ratio_growth_regresses(self):
        base = {
            "perf.overhead_x": {
                "value": 1.0, "rounds": STABLE, "kind": "ratio", "better": "lower",
            }
        }
        curr = {
            "perf.overhead_x": {
                "value": 1.6, "rounds": STABLE, "kind": "ratio", "better": "lower",
            }
        }
        assert len(perf_gate.compare(base, curr, (), 1.25)) == 1


class TestNoisyRounds:
    def test_single_round_gets_wide_threshold(self):
        base = {"perf.a": {"mean_s": 0.010, "rounds": 1}}
        curr = {"perf.a": {"mean_s": 0.016, "rounds": 1}}  # 1.6x: noise
        assert perf_gate.compare(base, curr, (), 1.25, noisy_threshold=2.0) == []

    def test_single_round_still_fails_past_wide_threshold(self):
        base = {"perf.a": {"mean_s": 0.010, "rounds": 1}}
        curr = {"perf.a": {"mean_s": 0.025, "rounds": 1}}
        assert len(perf_gate.compare(base, curr, (), 1.25, noisy_threshold=2.0)) == 1

    def test_either_side_low_rounds_is_noisy(self):
        base = {"perf.a": {"median_s": 0.010, "rounds": 100}}
        curr = {"perf.a": {"mean_s": 0.016, "rounds": 1}}
        assert perf_gate.compare(base, curr, (), 1.25, noisy_threshold=2.0) == []

    def test_stable_rounds_use_tight_threshold(self):
        base = {"perf.a": {"median_s": 0.010, "rounds": STABLE}}
        curr = {"perf.a": {"median_s": 0.016, "rounds": STABLE}}
        assert len(perf_gate.compare(base, curr, (), 1.25, noisy_threshold=2.0)) == 1


class TestMainExitCodes:
    def test_green_run(self, tmp_path, capsys):
        base = _write(
            tmp_path, "base.json",
            {"perf.a": {"median_s": 0.01, "rounds": STABLE, "kind": "timing"}},
        )
        curr = _write(
            tmp_path, "curr.json",
            {"perf.a": {"median_s": 0.009, "rounds": STABLE, "kind": "timing"}},
        )
        assert perf_gate.main([str(base), str(curr)]) == 0

    def test_regression_fails(self, tmp_path):
        base = _write(
            tmp_path, "base.json",
            {"perf.a": {"median_s": 0.01, "rounds": STABLE, "kind": "timing"}},
        )
        curr = _write(
            tmp_path, "curr.json",
            {"perf.a": {"median_s": 0.10, "rounds": STABLE, "kind": "timing"}},
        )
        assert perf_gate.main([str(base), str(curr)]) == 1

    def test_baseline_update_reports_only(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PERF_BASELINE_UPDATE", "1")
        base = _write(
            tmp_path, "base.json",
            {"perf.a": {"median_s": 0.01, "rounds": STABLE, "kind": "timing"}},
        )
        curr = _write(
            tmp_path, "curr.json",
            {"perf.a": {"median_s": 0.10, "rounds": STABLE, "kind": "timing"}},
        )
        assert perf_gate.main([str(base), str(curr)]) == 0

    def test_overhead_pair_gates_flat_vs_legacy(self, tmp_path):
        benchmarks = {
            "perf_query_batch.hybrid_legacy": {
                "median_s": 0.003, "rounds": 100, "kind": "timing",
            },
            "perf_query_batch.hybrid_flat": {
                "median_s": 0.004, "rounds": 100, "kind": "timing",
            },
        }
        base = _write(tmp_path, "base.json", benchmarks)
        curr = _write(tmp_path, "curr.json", benchmarks)
        # flat slower than legacy: the 1.0 cap must fail the build.
        status = perf_gate.main(
            [
                str(base), str(curr),
                "--overhead",
                "perf_query_batch.hybrid_legacy:perf_query_batch.hybrid_flat",
                "--max-overhead", "1.0",
            ]
        )
        assert status == 1
