"""Cross-estimator property-based tests (hypothesis).

Invariants every selectivity estimator in the library must satisfy,
checked over randomized samples and queries:

* estimates live in ``[0, 1]``;
* monotonicity: enlarging the range never lowers the estimate;
* additivity: adjacent ranges sum to their union (up to clipping);
* determinism: rebuilding from the same sample gives identical output.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import estimators
from repro.core.base import InvalidQueryError
from repro.core.histogram.bins import PiecewiseConstantDensity
from repro.core.kernel import KernelSelectivityEstimator, make_kernel_estimator
from repro.core.kernel.functions import KERNELS
from repro.data.domain import Interval

DOMAIN = Interval(0.0, 100.0)


def _build(kind: str, sample: np.ndarray):
    if kind == "sampling":
        return estimators.sampling(sample, DOMAIN)
    if kind == "uniform":
        return estimators.uniform(DOMAIN)
    if kind == "equi_width":
        return estimators.equi_width(sample, DOMAIN, bins=7)
    if kind == "equi_depth":
        return estimators.equi_depth(sample, DOMAIN, bins=5)
    if kind == "max_diff":
        return estimators.max_diff(sample, DOMAIN, bins=5)
    if kind == "ash":
        return estimators.ash(sample, DOMAIN, bins=6, shifts=3)
    if kind == "kernel-none":
        return estimators.kernel(sample, None, bandwidth=4.0)
    if kind == "kernel-reflection":
        return estimators.kernel(sample, DOMAIN, bandwidth=4.0, boundary="reflection")
    if kind == "kernel-boundary":
        return estimators.kernel(sample, DOMAIN, bandwidth=4.0, boundary="kernel")
    if kind == "hybrid":
        return estimators.hybrid(sample, DOMAIN, max_changepoints=3)
    if kind == "v_optimal":
        return estimators.v_optimal(sample, DOMAIN, bins=5)
    if kind == "wavelet":
        return estimators.wavelet(sample, DOMAIN, coefficients=16)
    if kind == "end_biased":
        return estimators.end_biased(sample, DOMAIN, top=4)
    if kind == "feedback":
        from repro.feedback import AdaptiveHistogram

        est = AdaptiveHistogram(DOMAIN, bins=8)
        # Feed a couple of synthetic observations so the estimator is
        # non-trivial; determinism must still hold.
        est.observe(0.0, 50.0, float(np.mean(sample <= 50.0)))
        est.observe(25.0, 75.0, float(np.mean((sample >= 25.0) & (sample <= 75.0))))
        return est
    raise AssertionError(kind)


ALL_KINDS = (
    "sampling",
    "uniform",
    "equi_width",
    "equi_depth",
    "max_diff",
    "ash",
    "kernel-none",
    "kernel-reflection",
    "kernel-boundary",
    "hybrid",
    "v_optimal",
    "wavelet",
    "end_biased",
    "feedback",
)

samples = st.lists(
    st.floats(0.0, 100.0, allow_nan=False), min_size=16, max_size=80
).map(lambda xs: np.asarray(xs))

points = st.floats(-10.0, 110.0, allow_nan=False)

#: Estimators built on boundary kernels have *signed* densities
#: (paper §3.2.1): extending a query across a negative-density sliver
#: can lower the estimate slightly, so exact monotonicity cannot hold
#: for them.  The slack bounds how negative those slivers may get.
SIGNED_DENSITY_SLACK = {"kernel-boundary": 0.02, "hybrid": 0.02}


def _slack(kind: str) -> float:
    return SIGNED_DENSITY_SLACK.get(kind, 1e-9)


@pytest.mark.parametrize("kind", ALL_KINDS)
class TestEstimatorInvariants:
    @given(sample=samples, x=points, width=st.floats(0.0, 120.0))
    @settings(max_examples=25, deadline=None)
    def test_in_unit_range(self, kind, sample, x, width):
        est = _build(kind, sample)
        value = est.selectivity(x, x + width)
        assert 0.0 <= value <= 1.0

    @given(sample=samples, x=points, w1=st.floats(0, 40), w2=st.floats(0, 40))
    @settings(max_examples=25, deadline=None)
    def test_monotone_in_range(self, kind, sample, x, w1, w2):
        est = _build(kind, sample)
        small, big = sorted([w1, w2])
        assert est.selectivity(x, x + small) <= est.selectivity(x, x + big) + _slack(kind)

    @given(sample=samples, x=st.floats(0, 60), w1=st.floats(0.5, 20), w2=st.floats(0.5, 20))
    @settings(max_examples=25, deadline=None)
    def test_additive_over_adjacent_ranges(self, kind, sample, x, w1, w2):
        est = _build(kind, sample)
        left = est.selectivity(x, x + w1)
        right = est.selectivity(x + w1, x + w1 + w2)
        union = est.selectivity(x, x + w1 + w2)
        # Sub-additivity holds even when a point mass on the shared
        # endpoint is counted in both halves (that only inflates the
        # sum); monotonicity bounds the union from below (up to the
        # signed-density slack for boundary-kernel estimators).
        assert union <= left + right + _slack(kind)
        assert union >= max(left, right) - _slack(kind)

    @given(sample=samples)
    @settings(max_examples=10, deadline=None)
    def test_deterministic_rebuild(self, kind, sample):
        a = _build(kind, sample)
        b = _build(kind, sample)
        queries = [(0.0, 10.0), (25.0, 30.0), (0.0, 100.0), (99.0, 100.0)]
        for qa, qb in queries:
            assert a.selectivity(qa, qb) == b.selectivity(qa, qb)

    @given(sample=samples)
    @settings(max_examples=10, deadline=None)
    def test_batch_matches_scalar(self, kind, sample):
        est = _build(kind, sample)
        a = np.array([0.0, 10.0, 50.0, 90.0])
        b = np.array([5.0, 30.0, 51.0, 100.0])
        batch = est.selectivities(a, b)
        singles = [est.selectivity(x, y) for x, y in zip(a, b)]
        np.testing.assert_allclose(batch, singles, atol=1e-12)


class TestDensityEstimatorInvariants:
    # The hybrid is excluded from the non-negativity check: its per-bin
    # boundary kernels are consistent-but-signed (paper §3.2.1).
    NONNEGATIVE_KINDS = ("equi_width", "equi_depth", "ash", "kernel-none")
    # Point-mass estimators (equi-depth on duplicate-heavy samples) are
    # excluded from the grid integral: a Dirac mass has no density.
    SMOOTH_KINDS = ("equi_width", "ash", "kernel-none", "hybrid")

    @pytest.mark.parametrize("kind", NONNEGATIVE_KINDS)
    @given(sample=samples)
    @settings(max_examples=10, deadline=None)
    def test_density_nonnegative(self, kind, sample):
        est = _build(kind, sample)
        grid = np.linspace(-5.0, 105.0, 111)
        assert (est.density(grid) >= -1e-12).all()

    @staticmethod
    def _integration_grid(sample: np.ndarray) -> np.ndarray:
        """Coarse global grid plus geometric refinement at the spikes.

        Near-duplicate samples drive the bandwidth rule toward zero, so
        kernel densities can carry legitimate spikes far narrower than
        any fixed uniform grid step; a plain ``linspace`` trapezoid
        then overestimates the mass by several percent (observed 1.057
        on a 16-point sample with 15 duplicates).  Refining
        geometrically around every sample value and both domain edges
        resolves spikes of any bandwidth down to ~1e-12.
        """
        coarse = np.linspace(-20.0, 120.0, 8_001)
        offsets = np.geomspace(1e-12, 4.0, 480)
        offsets = np.concatenate((-offsets[::-1], [0.0], offsets))
        centers = np.unique(np.concatenate((sample, [0.0, 100.0])))
        local = (centers[:, None] + offsets[None, :]).ravel()
        grid = np.unique(np.concatenate((coarse, local)))
        return grid[(grid >= -20.0) & (grid <= 120.0)]

    @pytest.mark.parametrize("kind", SMOOTH_KINDS)
    @given(sample=samples)
    @settings(max_examples=8, deadline=None)
    def test_density_integrates_to_at_most_one(self, kind, sample):
        est = _build(kind, sample)
        grid = self._integration_grid(sample)
        mass = np.trapezoid(est.density(grid), grid)
        # Hybrid bins renormalize their boundary-kernel mass to exactly
        # 1, so the only legitimate excess left is the discretization
        # error of the grid integral.
        assert mass <= 1.01

    @given(sample=samples)
    @settings(max_examples=10, deadline=None)
    def test_hybrid_negative_dips_are_small(self, sample):
        """Boundary kernels may dip negative, but never by more than a
        fraction of the estimator's peak density."""
        est = _build("hybrid", sample)
        grid = np.linspace(0.0, 100.0, 501)
        density = est.density(grid)
        if density.max() > 0:
            assert density.min() >= -0.6 * density.max()


#: Edge-straddling query batches: endpoints deliberately range beyond
#: the domain on both sides, and zero-width queries are allowed.
query_batches = st.lists(
    st.tuples(
        st.floats(-20.0, 120.0, allow_nan=False),
        st.floats(0.0, 60.0, allow_nan=False),
    ),
    min_size=1,
    max_size=40,
).map(
    lambda qs: (
        np.array([a for a, _ in qs]),
        np.array([a + w for a, w in qs]),
    )
)


class TestBatchScanEquivalence:
    """The vectorized batch path must agree with the reference paths.

    ``selectivity_scan`` is the literal ``Theta(n)`` Algorithm 1 loop;
    the windowed/segmented fast path must reproduce it to within
    accumulated rounding for every kernel, including batches whose
    queries straddle the sample range (empty windows on one side).
    """

    @pytest.mark.parametrize("kernel", sorted(KERNELS))
    @given(sample=samples, batch=query_batches)
    @settings(max_examples=15, deadline=None)
    def test_kernel_batch_matches_scan(self, kernel, sample, batch):
        est = KernelSelectivityEstimator(sample, 4.0, kernel=kernel)
        a, b = batch
        scan = np.array([est.selectivity_scan(x, y) for x, y in zip(a, b)])
        np.testing.assert_allclose(est.selectivities(a, b), scan, atol=1e-12)

    @given(sample=samples, batch=query_batches)
    @settings(max_examples=15, deadline=None)
    def test_reflection_batch_matches_scan(self, sample, batch):
        # The reflection estimator clips queries to the domain; on the
        # clipped queries its batch path must equal the scan over the
        # augmented (mirrored) sample.
        est = make_kernel_estimator(sample, 4.0, DOMAIN, boundary="reflection")
        a, b = batch
        scan = np.array(
            [
                est.selectivity_scan(
                    float(np.clip(x, DOMAIN.low, DOMAIN.high)),
                    float(np.clip(y, DOMAIN.low, DOMAIN.high)),
                )
                for x, y in zip(a, b)
            ]
        )
        np.testing.assert_allclose(est.selectivities(a, b), scan, atol=1e-12)

    @pytest.mark.parametrize("boundary", ("none", "reflection", "kernel"))
    @given(sample=samples, batch=query_batches)
    @settings(max_examples=15, deadline=None)
    def test_batch_matches_singleton_windows(self, boundary, sample, batch):
        # One flattened multi-query evaluation vs. many single-query
        # evaluations: exercises the window segmentation (empty windows,
        # prefix offsets) against the trivially-correct singleton layout.
        est = make_kernel_estimator(sample, 4.0, DOMAIN, boundary=boundary)
        a, b = batch
        singles = np.concatenate(
            [est.selectivities(a[i : i + 1], b[i : i + 1]) for i in range(a.size)]
        )
        np.testing.assert_allclose(est.selectivities(a, b), singles, atol=1e-12)


@st.composite
def degenerate_histograms(draw):
    """A PiecewiseConstantDensity with at least one zero-width bin."""
    edges = draw(
        st.lists(
            st.floats(0.0, 100.0, allow_nan=False), min_size=3, max_size=10
        )
    )
    # Duplicate one edge so a zero-width (point-mass) bin always exists.
    edges = sorted(edges + [edges[draw(st.integers(0, len(edges) - 1))]])
    counts = draw(
        st.lists(
            st.integers(0, 50),
            min_size=len(edges) - 1,
            max_size=len(edges) - 1,
        )
    )
    sample_size = max(1, sum(counts)) + draw(st.integers(0, 10))
    return (
        np.asarray(edges),
        np.asarray(counts, dtype=np.float64),
        sample_size,
    )


class TestZeroWidthBins:
    @given(hist=degenerate_histograms(), batch=query_batches)
    @settings(max_examples=25, deadline=None)
    def test_batch_well_formed_and_covering_query_is_total_mass(self, hist, batch):
        edges, counts, n = hist
        est = PiecewiseConstantDensity(edges, counts, n)
        a, b = batch
        values = est.selectivities(a, b)
        assert values.shape == a.shape
        assert np.all(values >= 0.0) and np.all(values <= 1.0)
        covering = est.selectivity(-1000.0, 1000.0)
        assert covering == pytest.approx(min(1.0, est.total_mass()), abs=1e-12)

    @given(hist=degenerate_histograms())
    @settings(max_examples=25, deadline=None)
    def test_point_query_sees_the_point_mass(self, hist):
        edges, counts, n = hist
        est = PiecewiseConstantDensity(edges, counts, n)
        for position, mass in est.point_masses:
            assert est.selectivity(position, position) >= mass - 1e-12


class TestBatchValidation:
    """Malformed batches fail up front with :class:`InvalidQueryError`.

    The regression this guards: estimators whose batch path re-derived
    per-query structures used to surface inverted ranges as
    ``InvalidSampleError`` (or worse, partial results) midway through
    the batch.
    """

    SAMPLE = np.linspace(0.0, 100.0, 32)

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_inverted_pair_raises_invalid_query(self, kind):
        est = _build(kind, self.SAMPLE)
        a = np.array([0.0, 30.0, 10.0])
        b = np.array([5.0, 20.0, 60.0])  # index 1 inverted
        with pytest.raises(InvalidQueryError, match="batch index 1"):
            est.selectivities(a, b)

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_non_finite_endpoint_raises_invalid_query(self, kind):
        est = _build(kind, self.SAMPLE)
        a = np.array([0.0, np.nan])
        b = np.array([5.0, 20.0])
        with pytest.raises(InvalidQueryError, match="finite"):
            est.selectivities(a, b)

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_shape_mismatch_raises_invalid_query(self, kind):
        est = _build(kind, self.SAMPLE)
        with pytest.raises(InvalidQueryError, match="shape"):
            est.selectivities(np.array([0.0, 1.0]), np.array([5.0]))
