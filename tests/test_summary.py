"""Property tests for the mergeable column summaries (repro.core.summary).

The incremental-ANALYZE substrate rests on one algebraic claim: for a
fixed seed, ``merge(update(A), update(B))`` is *byte-identical* to
``update(A + B)`` in any split or merge order — retention is a global
bottom-k-by-hash condition, not an arrival-order artifact.  These
tests pin that claim exactly (``tobytes()`` equality, not allclose),
plus the graceful-degradation contract for deletions beyond reservoir
capacity and the bit-identity of the raw-array adapter.
"""

import numpy as np
import pytest

from repro import estimators, telemetry
from repro.core.base import InvalidSampleError
from repro.core.summary import (
    DEFAULT_GRID_BINS,
    EXPANSION_FACTOR,
    ColumnSummary,
    FrozenSummary,
    value_priorities,
)
from repro.data.domain import Interval

DOMAIN = Interval(0.0, 100.0)


def _values(seed, n, *, lo=0.0, hi=100.0):
    rng = np.random.default_rng(seed)
    return rng.uniform(lo, hi, n)


def _frozen_bytes(frozen):
    """The exactly-mergeable parts of freeze(), as one comparable tuple.

    The reservoir sample, the integer grid sketch and the counts are
    byte-identical across split/merge orders.  The float moment
    accumulators are *sums*, so they commute only up to float addition
    order — they get a separate ulp-tolerance check (the documented
    tolerance for reservoir-backed kernel inputs).
    """
    return (
        frozen.sample.tobytes(),
        frozen.grid_counts.tobytes(),
        frozen.row_count,
        frozen.unaccounted_deletes,
    )


def _assert_equivalent(actual, expected):
    assert _frozen_bytes(actual) == _frozen_bytes(expected)
    assert actual.total == pytest.approx(expected.total, rel=1e-12)
    assert actual.total_sq == pytest.approx(expected.total_sq, rel=1e-12)


class TestPriorities:
    def test_deterministic_and_distinct(self):
        values = np.unique(_values(1, 500))
        first = value_priorities(values, 42)
        second = value_priorities(values, 42)
        assert np.array_equal(first, second)
        # The mix is bijective: distinct values, distinct priorities.
        assert np.unique(first).size == values.size

    def test_seed_changes_the_ranking(self):
        values = np.unique(_values(2, 500))
        assert not np.array_equal(
            value_priorities(values, 0), value_priorities(values, 1)
        )

    def test_negative_zero_canonicalized(self):
        both = np.array([-0.0, 0.0])
        prios = value_priorities(both, 7)
        assert prios[0] == prios[1]


class TestMergeAlgebra:
    @pytest.mark.parametrize("seed", [0, 1, 17])
    @pytest.mark.parametrize("split", [1, 100, 2_500, 4_999])
    def test_merge_equals_one_shot_byte_identical(self, seed, split):
        data = _values(seed + 10, 5_000)
        one_shot = ColumnSummary(DOMAIN, seed=seed, capacity=256).update(data)
        left = ColumnSummary(DOMAIN, seed=seed, capacity=256).update(data[:split])
        right = ColumnSummary(DOMAIN, seed=seed, capacity=256).update(data[split:])
        ab = left.merge(right)
        ba = right.merge(left)
        expected = one_shot.freeze()
        _assert_equivalent(ab.freeze(), expected)
        _assert_equivalent(ba.freeze(), expected)

    def test_three_way_merge_any_association(self):
        data = _values(3, 6_000)
        chunks = np.array_split(data, 3)
        parts = [
            ColumnSummary(DOMAIN, seed=5, capacity=128).update(chunk)
            for chunk in chunks
        ]
        one_shot = ColumnSummary(DOMAIN, seed=5, capacity=128).update(data)
        left_first = parts[0].merge(parts[1]).merge(parts[2])
        right_first = parts[0].merge(parts[1].merge(parts[2]))
        reversed_order = parts[2].merge(parts[0]).merge(parts[1])
        expected = one_shot.freeze()
        _assert_equivalent(left_first.freeze(), expected)
        _assert_equivalent(right_first.freeze(), expected)
        _assert_equivalent(reversed_order.freeze(), expected)

    def test_sequential_updates_equal_one_shot(self):
        data = _values(4, 5_200)
        chunked = ColumnSummary(DOMAIN, seed=9, capacity=200)
        for chunk in np.array_split(data, 13):
            chunked.update(chunk)
        one_shot = ColumnSummary(DOMAIN, seed=9, capacity=200).update(data)
        _assert_equivalent(chunked.freeze(), one_shot.freeze())

    def test_merge_is_pure(self):
        left = ColumnSummary(DOMAIN, seed=1, capacity=64).update(_values(5, 300))
        right = ColumnSummary(DOMAIN, seed=1, capacity=64).update(_values(6, 300))
        before = (_frozen_bytes(left.freeze()), _frozen_bytes(right.freeze()))
        left.merge(right)
        assert (_frozen_bytes(left.freeze()), _frozen_bytes(right.freeze())) == before

    def test_incompatible_summaries_refuse_to_merge(self):
        base = ColumnSummary(DOMAIN, seed=1, capacity=64).update(_values(7, 50))
        for other in (
            ColumnSummary(DOMAIN, seed=2, capacity=64),
            ColumnSummary(DOMAIN, seed=1, capacity=65),
            ColumnSummary(DOMAIN, seed=1, capacity=64, grid_bins=32),
            ColumnSummary(Interval(0.0, 50.0), seed=1, capacity=64),
        ):
            other.update(_values(8, 50, hi=50.0))
            assert not base.compatible_with(other)
            with pytest.raises(InvalidSampleError):
                base.merge(other)

    def test_merge_version_is_monotone(self):
        left = ColumnSummary(DOMAIN, seed=3, capacity=64).update(_values(9, 100))
        right = ColumnSummary(DOMAIN, seed=3, capacity=64).update(_values(10, 100))
        merged = left.merge(right)
        assert merged.version > max(left.version, right.version)


class TestDeletions:
    def test_tracked_deletes_are_exact(self):
        data = _values(20, 800)
        summary = ColumnSummary(DOMAIN, seed=0, capacity=1_000).update(data)
        summary.delete(data[:300])
        frozen = summary.freeze()
        assert frozen.unaccounted_deletes == 0
        assert frozen.row_count == 500
        assert np.array_equal(frozen.sample, np.sort(data[300:]))

    def test_evicted_deletes_degrade_gracefully(self):
        data = _values(21, 6_000)
        summary = ColumnSummary(DOMAIN, seed=0, capacity=64).update(data)
        summary.delete(data[:5_000])
        assert summary.row_count == 1_000
        assert summary.unaccounted_deletes > 0
        frozen = summary.freeze()  # still freezable: sketch + moments survive
        assert frozen.row_count == 1_000
        assert frozen.unaccounted_deletes == summary.unaccounted_deletes

    def test_delete_of_never_inserted_value_counts_unaccounted(self):
        summary = ColumnSummary(DOMAIN, seed=0, capacity=16).update(
            np.array([1.0, 2.0, 3.0])
        )
        summary.delete(np.array([50.0]))
        assert summary.unaccounted_deletes == 1

    def test_moments_track_deletes(self):
        data = _values(22, 400)
        summary = ColumnSummary(DOMAIN, seed=0, capacity=500).update(data)
        summary.delete(data[:100])
        frozen = summary.freeze()
        remaining = data[100:]
        assert frozen.mean == pytest.approx(remaining.mean())
        assert frozen.variance == pytest.approx(remaining.var(), rel=1e-9)


class TestFreeze:
    def test_from_sample_adapter_is_bit_identical(self):
        data = _values(30, 1_234)
        frozen = FrozenSummary.from_sample(data, DOMAIN, seed=3)
        assert frozen.sample.tobytes() == np.sort(data).tobytes()
        assert frozen.row_count == data.size
        assert not frozen.sample.flags.writeable

    def test_expansion_cap_on_duplicate_heavy_data(self):
        rng = np.random.default_rng(31)
        # 50 distinct values, 100k rows: naive expansion would be O(n).
        data = rng.choice(np.linspace(1.0, 99.0, 50), size=100_000)
        summary = ColumnSummary(DOMAIN, seed=0, capacity=64).update(data)
        frozen = summary.freeze()
        assert frozen.row_count == 100_000
        assert frozen.sample.size <= summary.capacity * (EXPANSION_FACTOR + 1)

    def test_empty_summary_refuses_to_freeze(self):
        with pytest.raises(InvalidSampleError):
            ColumnSummary(DOMAIN, seed=0).freeze()

    def test_grid_cdf_is_a_cdf(self):
        frozen = FrozenSummary.from_sample(_values(32, 2_000), DOMAIN)
        cdf = frozen.grid_cdf
        assert cdf.size == DEFAULT_GRID_BINS + 1
        assert cdf[0] == 0.0 and cdf[-1] == pytest.approx(1.0)
        assert np.all(np.diff(cdf) >= 0)

    def test_fingerprint_tracks_content(self):
        summary = ColumnSummary(DOMAIN, seed=0, capacity=128).update(_values(33, 500))
        first = summary.freeze().fingerprint
        summary.update(np.array([42.0]))
        assert summary.freeze().fingerprint != first

    def test_copy_is_independent(self):
        summary = ColumnSummary(DOMAIN, seed=0, capacity=128).update(_values(34, 500))
        clone = summary.copy()
        clone.update(_values(35, 500))
        assert summary.row_count == 500
        assert clone.row_count == 1_000
        assert summary.compatible_with(clone)


class TestEstimatorsFromSummary:
    """Full-capacity summaries rebuild every family bit-identically."""

    @pytest.mark.parametrize(
        "family", ["kernel", "hybrid", "equi-depth", "equi-width", "ash", "sampling"]
    )
    def test_family_matches_raw_array_path(self, family):
        data = _values(40, 1_500)
        frozen = FrozenSummary.from_sample(data, DOMAIN)
        factory = getattr(estimators, family.replace("-", "_"))
        via_summary = estimators.from_summary(family, frozen)
        via_raw = factory(data, DOMAIN)
        a = np.linspace(5.0, 80.0, 40)
        b = a + 12.5
        assert np.array_equal(
            via_summary.selectivities(a, b), via_raw.selectivities(a, b)
        )

    def test_uniform_needs_only_the_domain(self):
        frozen = FrozenSummary.from_sample(_values(41, 100), DOMAIN)
        est = estimators.from_summary("uniform", frozen)
        assert est.selectivity(0.0, 50.0) == pytest.approx(0.5)

    def test_raw_sample_without_domain_is_rejected(self):
        with pytest.raises(InvalidSampleError):
            estimators.hybrid(_values(42, 100))


class TestSummaryTelemetry:
    def test_lifecycle_counters_are_emitted(self):
        data = _values(50, 1_000)
        with telemetry.session() as session:
            left = ColumnSummary(DOMAIN, seed=0, capacity=64).update(data[:500])
            right = ColumnSummary(DOMAIN, seed=0, capacity=64).update(data[500:])
            merged = left.merge(right)
            merged.delete(data[:10])
            merged.freeze()
            assert session.metrics.counter("summary.update") == 1_000
            assert session.metrics.counter("summary.merge") == 1
            assert session.metrics.counter("summary.delete") == 10
            assert session.metrics.counter("summary.freeze") == 1
