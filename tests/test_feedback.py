"""Tests for query-feedback adaptation (repro.feedback)."""

import numpy as np
import pytest

from repro.core.base import InvalidQueryError, InvalidSampleError
from repro.data.domain import Interval
from repro.feedback import AdaptiveHistogram

DOMAIN = Interval(0.0, 100.0)


@pytest.fixture()
def skewed_relation():
    """80% of the mass in [0, 20], the rest spread over [20, 100]."""
    rng = np.random.default_rng(0)
    values = np.concatenate(
        [rng.uniform(0, 20, 40_000), rng.uniform(20, 100, 10_000)]
    )
    from repro.data.relation import Relation

    return Relation(values, DOMAIN)


class TestConstruction:
    def test_starts_uniform(self):
        est = AdaptiveHistogram(DOMAIN, bins=10)
        assert est.selectivity(0.0, 50.0) == pytest.approx(0.5)

    def test_prior_must_be_distribution(self):
        with pytest.raises(InvalidSampleError):
            AdaptiveHistogram(DOMAIN, bins=4, prior=np.array([0.5, 0.5, 0.5, 0.5]))

    def test_prior_shape_checked(self):
        with pytest.raises(InvalidSampleError):
            AdaptiveHistogram(DOMAIN, bins=4, prior=np.array([1.0]))

    def test_bad_learning_rate(self):
        with pytest.raises(InvalidSampleError):
            AdaptiveHistogram(DOMAIN, learning_rate=0.0)

    def test_bad_bins(self):
        with pytest.raises(InvalidSampleError):
            AdaptiveHistogram(DOMAIN, bins=0)


class TestObserve:
    def test_single_update_moves_towards_truth(self):
        est = AdaptiveHistogram(DOMAIN, bins=10, learning_rate=1.0)
        before = est.selectivity(0.0, 20.0)
        est.observe(0.0, 20.0, 0.8)
        after = est.selectivity(0.0, 20.0)
        assert before == pytest.approx(0.2)
        assert after == pytest.approx(0.8, abs=0.05)

    def test_mass_stays_normalized(self):
        est = AdaptiveHistogram(DOMAIN, bins=16)
        rng = np.random.default_rng(1)
        for _ in range(50):
            a = rng.uniform(0, 90)
            b = a + rng.uniform(1, 10)
            est.observe(a, b, rng.uniform(0, 1))
            assert est.bin_masses.sum() == pytest.approx(1.0)
            assert (est.bin_masses >= 0).all()

    def test_observe_returns_pre_update_error(self):
        est = AdaptiveHistogram(DOMAIN, bins=10)
        error = est.observe(0.0, 50.0, 0.9)
        assert error == pytest.approx(0.4)

    def test_rejects_bad_truth(self):
        est = AdaptiveHistogram(DOMAIN)
        with pytest.raises(InvalidQueryError):
            est.observe(0.0, 10.0, 1.5)

    def test_update_counter(self):
        est = AdaptiveHistogram(DOMAIN)
        est.observe(0.0, 10.0, 0.1)
        est.observe(10.0, 20.0, 0.1)
        assert est.sample_size == 2


class TestLearning:
    def test_workload_feedback_beats_uniform_start(self, skewed_relation):
        """After consuming an executed workload the adaptive estimator
        must clearly outperform its uniform starting point on fresh
        queries — the Chen & Roussopoulos effect."""
        from repro.workload import generate_query_file, mean_relative_error

        train = generate_query_file(skewed_relation, 0.05, n_queries=300, seed=2)
        test = generate_query_file(skewed_relation, 0.05, n_queries=200, seed=3)

        est = AdaptiveHistogram(DOMAIN, bins=32, learning_rate=0.4)
        baseline = mean_relative_error(est, test)
        est.observe_workload(
            train.a, train.b, train.true_counts / train.relation_size
        )
        trained = mean_relative_error(est, test)
        assert trained < 0.5 * baseline

    def test_converges_to_distribution(self, skewed_relation):
        """Repeated feedback drives the frequency model towards the
        true left-heavy distribution."""
        est = AdaptiveHistogram(DOMAIN, bins=10, learning_rate=0.5)
        rng = np.random.default_rng(4)
        for _ in range(400):
            a = rng.uniform(0, 90)
            b = a + rng.uniform(2, 10)
            est.observe(a, b, skewed_relation.selectivity(a, b))
        left = est.selectivity(0.0, 20.0)
        assert left == pytest.approx(0.8, abs=0.1)

    def test_vectorized_selectivities(self):
        est = AdaptiveHistogram(DOMAIN, bins=8)
        out = est.selectivities(np.array([0.0, 25.0]), np.array([50.0, 75.0]))
        np.testing.assert_allclose(out, [0.5, 0.5])
