"""Tests for the estimator interfaces (repro.core.base)."""

import numpy as np
import pytest

from repro.core.base import (
    InvalidQueryError,
    InvalidSampleError,
    SelectivityEstimator,
    validate_query,
    validate_sample,
)
from repro.data.domain import Interval


class TestValidateSample:
    def test_passes_clean_sample(self):
        out = validate_sample([1.0, 2.0, 3.0])
        assert out.dtype == np.float64
        assert out.flags.c_contiguous

    def test_rejects_empty(self):
        with pytest.raises(InvalidSampleError):
            validate_sample([])

    def test_rejects_2d(self):
        with pytest.raises(InvalidSampleError):
            validate_sample(np.zeros((3, 3)))

    def test_rejects_nan_and_inf(self):
        with pytest.raises(InvalidSampleError):
            validate_sample([1.0, np.nan])
        with pytest.raises(InvalidSampleError):
            validate_sample([1.0, np.inf])

    def test_domain_bounds_enforced(self):
        with pytest.raises(InvalidSampleError):
            validate_sample([0.5, 1.5], Interval(0.0, 1.0))

    def test_domain_bounds_inclusive(self):
        out = validate_sample([0.0, 1.0], Interval(0.0, 1.0))
        assert out.size == 2


class TestValidateSampleErrorPaths:
    """Exhaustive error-path coverage of validate_sample."""

    def test_rejects_scalar_input(self):
        with pytest.raises(InvalidSampleError):
            validate_sample(np.float64(1.0))

    def test_rejects_inf_only(self):
        with pytest.raises(InvalidSampleError, match="NaN or infinite"):
            validate_sample([np.inf, 1.0])

    def test_rejects_negative_inf(self):
        with pytest.raises(InvalidSampleError, match="NaN or infinite"):
            validate_sample([-np.inf])

    def test_rejects_below_domain(self):
        with pytest.raises(InvalidSampleError, match="outside the domain"):
            validate_sample([-0.5, 0.5], Interval(0.0, 1.0))

    def test_rejects_above_domain(self):
        with pytest.raises(InvalidSampleError, match="outside the domain"):
            validate_sample([0.5, 1.5], Interval(0.0, 1.0))

    def test_error_message_reports_observed_range(self):
        with pytest.raises(InvalidSampleError, match=r"\[-2.0, 3.0\]"):
            validate_sample([-2.0, 3.0], Interval(0.0, 1.0))

    def test_errors_inherit_estimator_error(self):
        from repro.core.base import EstimatorError

        assert issubclass(InvalidSampleError, EstimatorError)
        assert issubclass(InvalidQueryError, EstimatorError)


class TestValidateQuery:
    def test_valid_range(self):
        assert validate_query(1, 2.5) == (1.0, 2.5)

    def test_point_query_ok(self):
        assert validate_query(3.0, 3.0) == (3.0, 3.0)

    def test_rejects_inverted(self):
        with pytest.raises(InvalidQueryError):
            validate_query(2.0, 1.0)

    def test_rejects_barely_inverted(self):
        with pytest.raises(InvalidQueryError, match="empty"):
            validate_query(1.0 + 1e-9, 1.0)

    def test_rejects_nan(self):
        with pytest.raises(InvalidQueryError):
            validate_query(np.nan, 1.0)

    def test_rejects_nan_upper_endpoint(self):
        with pytest.raises(InvalidQueryError, match="finite"):
            validate_query(1.0, np.nan)

    def test_rejects_both_endpoints_nan(self):
        with pytest.raises(InvalidQueryError, match="finite"):
            validate_query(np.nan, np.nan)

    def test_rejects_infinite_endpoints(self):
        with pytest.raises(InvalidQueryError, match="finite"):
            validate_query(-np.inf, 1.0)
        with pytest.raises(InvalidQueryError, match="finite"):
            validate_query(0.0, np.inf)

    def test_returns_plain_floats(self):
        a, b = validate_query(np.float32(1.0), np.int64(2))
        assert type(a) is float and type(b) is float


class _Half(SelectivityEstimator):
    """Always returns 0.5; exercises the ABC default methods."""

    @property
    def sample_size(self) -> int:
        return 7

    def selectivity(self, a: float, b: float) -> float:
        a, b = validate_query(a, b)
        return 0.5


class TestDefaultMethods:
    def test_selectivities_loops_over_scalar_impl(self):
        est = _Half()
        out = est.selectivities(np.zeros(4), np.ones(4))
        np.testing.assert_allclose(out, 0.5)

    def test_selectivities_shape_mismatch(self):
        with pytest.raises(InvalidQueryError):
            _Half().selectivities(np.zeros(2), np.ones(3))

    def test_estimate_result_size(self):
        assert _Half().estimate_result_size(0.0, 1.0, 2_000) == 1_000.0

    def test_estimate_result_size_rejects_negative_relation(self):
        with pytest.raises(InvalidQueryError):
            _Half().estimate_result_size(0.0, 1.0, -5)
