"""Tests for the command-line entry point (repro.__main__)."""

import json

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_single_experiment_renders_table(self, capsys):
        assert main(["fig04"]) == 0
        out = capsys.readouterr().out
        assert "fig-4" in out
        assert "equi-width MRE" in out

    def test_csv_output(self, capsys):
        assert main(["fig04", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("bins,")
        assert "%" not in out.splitlines()[1]

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_trace_writes_manifest_and_prints_spans(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MANIFEST_DIR", str(tmp_path))
        assert main(["fig04", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "telemetry spans" in out
        assert "harness.experiment" in out
        manifests = list(tmp_path.glob("fig04-*.json"))
        assert len(manifests) == 1

    def test_stats_aggregates_manifests(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MANIFEST_DIR", str(tmp_path))
        assert main(["fig04", "--trace"]) == 0
        capsys.readouterr()
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "fig04" in out and "builds" in out

    def test_stats_with_no_manifests(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MANIFEST_DIR", str(tmp_path))
        assert main(["stats"]) == 0
        assert "no run manifests" in capsys.readouterr().out

    def test_stats_json_format(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MANIFEST_DIR", str(tmp_path))
        assert main(["fig04", "--trace"]) == 0
        capsys.readouterr()
        assert main(["stats", "--format", "json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert isinstance(rows, list) and rows
        assert rows[0]["experiment"] == "fig04"
        assert "p90 q-error" in rows[0]
        # The evaluation path records quality, so the column is populated.
        assert rows[0]["p90 q-error"] != "-"

    def test_stats_prom_format_parses(self, capsys, tmp_path, monkeypatch):
        from repro.telemetry import parse_exposition

        monkeypatch.setenv("REPRO_MANIFEST_DIR", str(tmp_path))
        assert main(["fig04", "--trace"]) == 0
        capsys.readouterr()
        assert main(["stats", "--format", "prom"]) == 0
        samples = parse_exposition(capsys.readouterr().out)
        assert any(name.endswith("_total") for name in samples)
        counter = samples["repro_estimator_build_total"]
        assert counter[0].labels == {"experiment": "fig04"}
        assert counter[0].value >= 1.0

    def test_trace_writes_prom_exposition_next_to_manifest(self, tmp_path, monkeypatch, capsys):
        from repro.telemetry import parse_exposition

        monkeypatch.setenv("REPRO_MANIFEST_DIR", str(tmp_path))
        assert main(["fig04", "--trace"]) == 0
        capsys.readouterr()
        [prom] = list(tmp_path.glob("fig04-*.prom"))
        samples = parse_exposition(prom.read_text())
        assert samples  # non-empty, well-formed exposition on disk

    def test_corrupt_manifest_warns_but_does_not_fail(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MANIFEST_DIR", str(tmp_path))
        assert main(["fig04", "--trace"]) == 0
        capsys.readouterr()
        bad = tmp_path / "fig04-corrupt.json"
        bad.write_text("{not json")
        assert main(["stats"]) == 0
        captured = capsys.readouterr()
        assert "fig04" in captured.out
        assert "warning: skipping manifest" in captured.err
        assert "fig04-corrupt.json" in captured.err
        assert "invalid JSON" in captured.err

    def test_slo_passes_against_committed_bench(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MANIFEST_DIR", str(tmp_path))
        assert main(["slo"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "batch" in out

    def test_slo_missing_bench_skips_with_warning(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MANIFEST_DIR", str(tmp_path))
        assert main(["slo", "--bench", str(tmp_path / "absent.json")]) == 0
        captured = capsys.readouterr()
        assert "skipping bench SLOs" in captured.err

    def test_every_registered_experiment_is_runnable(self):
        """Registry sanity: each entry has a run(config) callable."""
        for module in EXPERIMENTS.values():
            assert callable(module.run)
