"""Tests for the command-line entry point (repro.__main__)."""

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_single_experiment_renders_table(self, capsys):
        assert main(["fig04"]) == 0
        out = capsys.readouterr().out
        assert "fig-4" in out
        assert "equi-width MRE" in out

    def test_csv_output(self, capsys):
        assert main(["fig04", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("bins,")
        assert "%" not in out.splitlines()[1]

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_trace_writes_manifest_and_prints_spans(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MANIFEST_DIR", str(tmp_path))
        assert main(["fig04", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "telemetry spans" in out
        assert "harness.experiment" in out
        manifests = list(tmp_path.glob("fig04-*.json"))
        assert len(manifests) == 1

    def test_stats_aggregates_manifests(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MANIFEST_DIR", str(tmp_path))
        assert main(["fig04", "--trace"]) == 0
        capsys.readouterr()
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "fig04" in out and "builds" in out

    def test_stats_with_no_manifests(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MANIFEST_DIR", str(tmp_path))
        assert main(["stats"]) == 0
        assert "no run manifests" in capsys.readouterr().out

    def test_every_registered_experiment_is_runnable(self):
        """Registry sanity: each entry has a run(config) callable."""
        for module in EXPERIMENTS.values():
            assert callable(module.run)
