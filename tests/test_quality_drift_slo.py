"""Tests for quality tracking, drift monitors, SLOs and exporters."""

import json
import math
import pathlib

import numpy as np
import pytest

from repro import telemetry
from repro.data.domain import Interval
from repro.telemetry import (
    DriftMonitor,
    JsonlEventLog,
    MetricsRegistry,
    QualityTracker,
    ReservoirSample,
    SLOSpec,
    StalenessMonitor,
    evaluate_bench,
    evaluate_registry,
    evaluate_snapshot,
    iter_events,
    ks_distance,
    parse_exposition,
    prometheus_exposition,
    qerror,
    qerrors,
    record_quality,
    render_report,
)
from repro.telemetry.slo import DEFAULT_SLOS, load_bench

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


class TestQError:
    def test_symmetric_ratio(self):
        assert qerror(0.2, 0.1) == pytest.approx(2.0)
        assert qerror(0.1, 0.2) == pytest.approx(2.0)
        assert qerror(0.3, 0.3) == pytest.approx(1.0)

    def test_zero_truth_stays_finite(self):
        value = qerror(0.5, 0.0)
        assert math.isfinite(value)
        assert value == pytest.approx(0.5 / 1e-6)

    def test_vectorized_matches_scalar(self):
        est = np.array([0.1, 0.5, 0.0])
        true = np.array([0.2, 0.5, 0.25])
        batch = qerrors(est, true)
        scalar = [qerror(e, t) for e, t in zip(est, true)]
        assert batch == pytest.approx(scalar)


class TestQualityTracker:
    def test_record_emits_series_and_counter(self):
        with telemetry.session() as t:
            record = record_quality(0.2, 0.1, key="points")
        assert record.qerror == pytest.approx(2.0)
        assert record.abs_error == pytest.approx(0.1)
        assert t.metrics.counter("quality.observations") == 1
        assert t.metrics.summary("quality.qerror").count == 1
        assert t.metrics.summary("quality.qerror.points").count == 1
        assert t.metrics.summary("quality.abs_error.points").count == 1

    def test_record_batch_uses_one_series_write(self):
        est = np.array([0.1, 0.2, 0.4])
        true = np.array([0.2, 0.2, 0.1])
        with telemetry.session() as t:
            q = telemetry.record_quality_batch(est, true, key="Kernel")
        assert q == pytest.approx([2.0, 1.0, 4.0])
        assert t.metrics.counter("quality.observations") == 3
        assert t.metrics.summary("quality.qerror.Kernel").count == 3

    def test_record_batch_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            telemetry.record_quality_batch(np.zeros(3), np.zeros(4))

    def test_disabled_telemetry_returns_record_without_metrics(self):
        assert telemetry.get_telemetry().enabled is False
        record = record_quality(0.5, 0.25)
        assert record.qerror == pytest.approx(2.0)
        assert telemetry.get_telemetry().metrics.snapshot()["counters"] == {}

    def test_event_log_receives_quality_events(self, tmp_path):
        log = JsonlEventLog(tmp_path / "events.jsonl")
        tracker = QualityTracker(event_log=log)
        tracker.record(0.2, 0.1, key="t")
        log.close()
        events = list(iter_events(tmp_path / "events.jsonl"))
        assert len(events) == 1
        assert events[0]["kind"] == "quality"
        assert events[0]["qerror"] == pytest.approx(2.0)


class TestReservoirAndKS:
    def test_reservoir_bounds_memory(self):
        reservoir = ReservoirSample(capacity=32, seed=0)
        reservoir.extend(np.arange(10_000, dtype=float))
        assert reservoir.values().size == 32
        assert reservoir.seen == 10_000

    def test_reservoir_is_deterministic(self):
        a, b = ReservoirSample(16, seed=5), ReservoirSample(16, seed=5)
        values = np.random.default_rng(0).normal(size=500)
        a.extend(values)
        b.extend(values)
        assert a.values() == pytest.approx(b.values())

    def test_ks_identical_samples_is_zero(self):
        values = np.random.default_rng(1).normal(size=200)
        assert ks_distance(values, values) == 0.0

    def test_ks_disjoint_samples_is_one(self):
        assert ks_distance(np.zeros(10), np.ones(10) * 5) == 1.0

    def test_ks_empty_raises(self):
        with pytest.raises(ValueError):
            ks_distance(np.array([]), np.ones(3))


class TestDriftMonitor:
    def test_detects_distribution_shift(self):
        rng = np.random.default_rng(3)
        monitor = DriftMonitor(capacity=256, min_recent=32)
        baseline = rng.normal(0.0, 1.0, 1_000)
        monitor.set_baseline("t", "x", baseline)

        monitor.ingest("t", "x", rng.normal(0.0, 1.0, 500))
        same = monitor.reading("t", "x")
        assert same is not None and same.ks < 0.15

        shifted = DriftMonitor(capacity=256, min_recent=32)
        shifted.set_baseline("t", "x", baseline)
        shifted.ingest("t", "x", rng.normal(3.0, 1.0, 500))
        moved = shifted.reading("t", "x")
        assert moved is not None and moved.ks > 0.8

    def test_no_reading_before_baseline_or_min_recent(self):
        monitor = DriftMonitor(min_recent=16)
        assert monitor.ingest("t", "x", np.ones(100)) is None  # no baseline
        monitor.set_baseline("t", "x", np.zeros(50))
        monitor.ingest("t", "x", np.ones(4))
        assert monitor.reading("t", "x") is None  # underfed

    def test_gauge_emitted_when_traced(self):
        rng = np.random.default_rng(4)
        monitor = DriftMonitor(min_recent=16)
        monitor.set_baseline("t", "x", rng.normal(size=200))
        with telemetry.session() as t:
            monitor.ingest("t", "x", rng.normal(size=64))
        assert t.metrics.counter("drift.values") == 64
        assert math.isfinite(t.metrics.gauge("drift.ks.t.x"))


class TestStalenessMonitor:
    def test_age_and_version_lag(self):
        monitor = StalenessMonitor()
        monitor.on_analyze("t", version=3, timestamp=100.0)
        staleness = monitor.observe("t", current_version=7, now=160.0)
        assert staleness is not None
        assert staleness.age_seconds == pytest.approx(60.0)
        assert staleness.version_lag == 4

    def test_unknown_table_is_none(self):
        assert StalenessMonitor().observe("ghost", 1) is None

    def test_forget_drops_stamps(self):
        monitor = StalenessMonitor()
        monitor.on_analyze("t", 1, timestamp=0.0)
        monitor.forget("t")
        assert monitor.observe("t", 2) is None

    def test_gauges_emitted_when_traced(self):
        monitor = StalenessMonitor()
        monitor.on_analyze("t", 1, timestamp=0.0)
        with telemetry.session() as t:
            monitor.observe("t", 3, now=10.0)
        assert t.metrics.gauge("drift.staleness.age.t") == pytest.approx(10.0)
        assert t.metrics.gauge("drift.staleness.lag.t") == pytest.approx(2.0)


class TestCatalogAndPlannerWiring:
    @pytest.fixture()
    def setup(self):
        from repro.db import Catalog, Planner, RangePredicate, Table

        rng = np.random.default_rng(0)
        domain = Interval(0.0, 1_000.0)
        table = Table("points", {"x": (rng.uniform(0, 1_000, 2_000), domain)})
        catalog = Catalog(sample_size=400)
        # Generator seed bypasses the process-global statistics cache, so
        # every fresh per-test catalog draws a sample and seeds baselines.
        catalog.analyze(table, seed=np.random.default_rng(1))
        return catalog, Planner(catalog), table, RangePredicate

    def test_analyze_stamps_staleness_and_baseline(self, setup):
        catalog, _, table, _ = setup
        staleness = catalog.staleness_of("points")
        assert staleness is not None
        assert staleness.version_lag == 0
        assert catalog.drift.has_baseline("points", "x")

    def test_observe_values_produces_drift_reading(self, setup):
        catalog, _, table, _ = setup
        shifted = np.random.default_rng(2).uniform(900, 1_000, 200)
        reading = catalog.observe_values("points", "x", shifted)
        assert reading is not None
        assert reading.ks > 0.5

    def test_invalidate_forgets_staleness(self, setup):
        catalog, _, _, _ = setup
        catalog.invalidate("points")
        assert catalog.staleness_of("points") is None

    def test_observe_actual_records_quality_by_table(self, setup):
        _, planner, table, RangePredicate = setup
        predicates = [RangePredicate("x", 100.0, 200.0)]
        with telemetry.session() as t:
            record = planner.observe_actual(table, predicates, actual_rows=180.0)
        assert record.truth == pytest.approx(0.09)
        assert record.qerror >= 1.0
        assert t.metrics.summary("quality.qerror.points").count == 1

    def test_observe_actual_negative_rows_raises(self, setup):
        from repro.core.base import InvalidQueryError

        _, planner, table, RangePredicate = setup
        with pytest.raises(InvalidQueryError):
            planner.observe_actual(table, [RangePredicate("x", 0.0, 1.0)], -5.0)

    def test_plan_emits_staleness_gauges(self, setup):
        _, planner, table, RangePredicate = setup
        with telemetry.session() as t:
            planner.plan(table, [RangePredicate("x", 0.0, 500.0)])
        assert math.isfinite(t.metrics.gauge("drift.staleness.lag.points"))


class TestFeedbackWiring:
    def test_adaptive_histogram_records_quality_and_shift(self):
        from repro.feedback import AdaptiveHistogram

        model = AdaptiveHistogram(Interval(0.0, 1.0), bins=16)
        assert model.distribution_shift == 0.0
        with telemetry.session() as t:
            model.observe(0.0, 0.25, true_selectivity=0.8)
        assert model.distribution_shift > 0.0
        assert t.metrics.summary("quality.qerror.AdaptiveHistogram").count == 1
        gauge = t.metrics.gauge("drift.feedback.shift.AdaptiveHistogram")
        assert gauge == pytest.approx(model.distribution_shift)

    def test_feedback_kernel_records_quality_and_shift(self):
        from repro.feedback import FeedbackKernelEstimator

        sample = np.random.default_rng(0).uniform(0.0, 1.0, 300)
        model = FeedbackKernelEstimator(sample, bandwidth=0.05, domain=Interval(0.0, 1.0))
        assert model.distribution_shift == pytest.approx(0.0)
        with telemetry.session() as t:
            model.observe(0.0, 0.25, true_selectivity=0.9)
        assert model.distribution_shift > 0.0
        assert t.metrics.summary("quality.qerror.FeedbackKernelEstimator").count == 1
        gauge = t.metrics.gauge("drift.feedback.shift.FeedbackKernelEstimator")
        assert gauge == pytest.approx(model.distribution_shift)

    def test_evaluation_path_records_quality(self):
        from repro import estimators
        from repro.data.relation import Relation
        from repro.workload.metrics import mean_relative_error
        from repro.workload.queries import generate_query_file

        values = np.random.default_rng(0).uniform(0.0, 100.0, 3_000)
        relation = Relation(values, Interval(0.0, 100.0), name="r")
        queries = generate_query_file(relation, 0.05, n_queries=40, seed=1)
        estimator = estimators.equi_width(values[:500], relation.domain)
        with telemetry.session() as t:
            mean_relative_error(estimator, queries)
        summary = t.metrics.summary("quality.qerror.EquiWidthHistogram")
        assert summary.count == 40
        assert t.metrics.counter("quality.observations") == 40


class TestSLO:
    def _snapshot(self):
        registry = MetricsRegistry()
        for value in np.linspace(0.001, 0.010, 100):
            registry.observe("quality.qerror", 1.0 + value)
        registry.inc("cache.hit.context", 70)
        registry.inc("cache.miss.context", 30)
        return registry

    def test_quantile_spec_passes_and_burns(self):
        spec = SLOSpec(
            name="q", kind="quantile", metric="quality.qerror",
            objective="p90", threshold=2.0,
        )
        [result] = evaluate_registry([spec], self._snapshot())
        assert result.passed is True
        assert 0.0 < result.burn < 1.0

    def test_quantile_spec_fails_when_over_budget(self):
        spec = SLOSpec(
            name="q", kind="quantile", metric="quality.qerror",
            objective="p90", threshold=1.001,
        )
        [result] = evaluate_registry([spec], self._snapshot())
        assert result.passed is False
        assert result.burn > 1.0

    def test_hit_rate_floor(self):
        spec = SLOSpec(
            name="hr", kind="hit_rate", metric="context", objective="ratio",
            threshold=0.6, direction="ge",
        )
        [result] = evaluate_registry([spec], self._snapshot())
        assert result.passed is True
        assert result.observed == pytest.approx(0.7)

    def test_min_count_skips_underfed_spec(self):
        spec = SLOSpec(
            name="q", kind="quantile", metric="quality.qerror",
            objective="p90", threshold=2.0, min_count=1_000,
        )
        [result] = evaluate_registry([spec], self._snapshot())
        assert result.passed is None
        assert result.status == "skipped"

    def test_missing_series_skips(self):
        spec = SLOSpec(
            name="q", kind="quantile", metric="nothing.here",
            objective="p99", threshold=1.0,
        )
        [result] = evaluate_snapshot([spec], {"counters": {}, "values": {}})
        assert result.status == "skipped"

    def test_record_writes_burn_gauge_and_violations(self):
        registry = self._snapshot()
        specs = [
            SLOSpec(name="ok", kind="quantile", metric="quality.qerror",
                    objective="p90", threshold=2.0),
            SLOSpec(name="bad", kind="quantile", metric="quality.qerror",
                    objective="p90", threshold=1.001),
        ]
        evaluate_registry(specs, registry, record=True)
        assert math.isfinite(registry.gauge("slo.burn.ok"))
        assert registry.gauge("slo.burn.bad") > 1.0
        assert registry.counter("slo.violations") == 1

    def test_bench_slos_evaluate_against_committed_perf_file(self):
        bench = load_bench(REPO_ROOT / "BENCH_perf.json")
        results = evaluate_bench(DEFAULT_SLOS, bench)
        evaluated = [result for result in results if result.passed is not None]
        assert evaluated, "no bench SLO evaluated against BENCH_perf.json"
        assert all(result.passed for result in evaluated), render_report(results)

    def test_invalid_specs_raise(self):
        with pytest.raises(ValueError):
            SLOSpec(name="x", kind="nope", metric="m", objective="p50", threshold=1.0)
        with pytest.raises(ValueError):
            SLOSpec(name="x", kind="quantile", metric="m", objective="p12", threshold=1.0)
        with pytest.raises(ValueError):
            SLOSpec(name="x", kind="quantile", metric="m", objective="p50", threshold=-1.0)

    def test_render_report_mentions_every_spec(self):
        registry = self._snapshot()
        specs = [
            SLOSpec(name="alpha", kind="quantile", metric="quality.qerror",
                    objective="p90", threshold=2.0),
            SLOSpec(name="beta", kind="quantile", metric="missing",
                    objective="p90", threshold=2.0),
        ]
        report = render_report(evaluate_registry(specs, registry))
        assert "alpha" in report and "beta" in report
        assert "PASS" in report and "SKIPPED" in report


class TestExposition:
    def _registry(self):
        registry = MetricsRegistry()
        registry.inc("planner.plan", 5)
        registry.set_gauge("drift.ks.points.x", 0.25)
        for value in (0.001, 0.002, 0.003, 0.004):
            registry.observe("span.planner.plan", value)
        return registry

    def test_round_trips_through_parser(self):
        snapshot = self._registry().snapshot()
        text = prometheus_exposition(snapshot, labels={"experiment": "fig04"})
        samples = parse_exposition(text)
        counter = samples["repro_planner_plan_total"]
        assert counter[0].value == 5.0
        assert counter[0].labels == {"experiment": "fig04"}
        gauge = samples["repro_drift_ks_points_x"]
        assert gauge[0].value == pytest.approx(0.25)
        summary = {s.labels["quantile"]: s.value for s in samples["repro_span_planner_plan"]}
        assert set(summary) == {"0.5", "0.9", "0.99"}
        assert samples["repro_span_planner_plan_count"][0].value == 4.0
        assert samples["repro_span_planner_plan_sum"][0].value == pytest.approx(0.010)
        assert text.rstrip().endswith("# EOF")

    def test_label_values_are_escaped(self):
        text = prometheus_exposition(
            {"counters": {"c": 1.0}, "gauges": {}, "values": {}},
            labels={"note": 'quo"te\\slash'},
        )
        samples = parse_exposition(text)
        assert samples["repro_c_total"][0].labels["note"] == 'quo"te\\slash'

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_exposition("this is { not an exposition")

    def test_nan_gauge_renders_and_parses(self):
        text = prometheus_exposition(
            {"counters": {}, "gauges": {"g": float("nan")}, "values": {}}
        )
        [sample] = parse_exposition(text)["repro_g"]
        assert math.isnan(sample.value)


class TestJsonlEventLog:
    def test_emit_and_iterate(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with JsonlEventLog(path) as log:
            log.emit("slo", name="a", passed=True)
            log.emit("drift", table="t", ks=0.5)
        events = list(iter_events(path))
        assert [event["kind"] for event in events] == ["slo", "drift"]
        assert all("ts" in event for event in events)

    def test_iter_skips_torn_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"kind": "ok", "ts": 1}\n{"kind": "torn...\n')
        events = list(iter_events(path))
        assert len(events) == 1

    def test_iter_missing_file_yields_nothing(self, tmp_path):
        assert list(iter_events(tmp_path / "absent.jsonl")) == []

    def test_default_event_log_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_EVENT_LOG", raising=False)
        assert telemetry.default_event_log() is None
        monkeypatch.setenv("REPRO_EVENT_LOG", str(tmp_path / "ev.jsonl"))
        log = telemetry.default_event_log()
        assert log is not None and log.path == tmp_path / "ev.jsonl"
