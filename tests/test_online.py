"""Tests for online aggregation (repro.online)."""

import numpy as np
import pytest

from repro.core.base import InvalidQueryError
from repro.data.domain import Interval
from repro.data.relation import Relation
from repro.online import OnlineAggregator, OnlineKernelSelectivity


@pytest.fixture()
def relation():
    rng = np.random.default_rng(0)
    domain = Interval(0.0, 100.0)
    values = np.clip(rng.normal(40.0, 15.0, 50_000), 0, 100)
    return Relation(values, domain)


class TestOnlineAggregator:
    def test_requires_advance_before_estimate(self, relation):
        agg = OnlineAggregator(relation, seed=1)
        with pytest.raises(InvalidQueryError):
            agg.estimate(0.0, 50.0)

    def test_estimate_converges_to_truth(self, relation):
        agg = OnlineAggregator(relation, seed=1)
        true = relation.selectivity(30.0, 50.0)
        agg.advance(500)
        early = agg.estimate(30.0, 50.0)
        agg.advance(relation.size)  # finish the scan
        final = agg.estimate(30.0, 50.0)
        assert abs(final.estimate - true) <= abs(early.estimate - true) + 1e-12
        assert final.estimate == pytest.approx(true, abs=1e-12)

    def test_interval_shrinks(self, relation):
        agg = OnlineAggregator(relation, seed=2)
        agg.advance(500)
        early = agg.estimate(30.0, 50.0).half_width
        agg.advance(20_000)
        later = agg.estimate(30.0, 50.0).half_width
        assert later < early

    def test_interval_zero_when_exhausted(self, relation):
        agg = OnlineAggregator(relation, seed=3)
        agg.advance(relation.size)
        assert agg.exhausted
        assert agg.estimate(0.0, 100.0).half_width == pytest.approx(0.0)

    def test_interval_covers_truth_usually(self, relation):
        """95% CIs should cover the truth in most replications."""
        true = relation.selectivity(30.0, 50.0)
        covered = 0
        for seed in range(20):
            agg = OnlineAggregator(relation, seed=seed)
            agg.advance(2_000)
            lo, hi = agg.estimate(30.0, 50.0).interval
            covered += lo <= true <= hi
        assert covered >= 16

    def test_run_until_reaches_target(self, relation):
        agg = OnlineAggregator(relation, seed=4)
        result = agg.run_until(30.0, 50.0, target_half_width=0.01, batch=500)
        assert result.half_width <= 0.01

    def test_run_until_rejects_bad_target(self, relation):
        agg = OnlineAggregator(relation, seed=4)
        with pytest.raises(InvalidQueryError):
            agg.run_until(0.0, 1.0, target_half_width=0.0)

    def test_rejects_bad_confidence(self, relation):
        with pytest.raises(InvalidQueryError):
            OnlineAggregator(relation, confidence=0.3)

    def test_fraction_scanned(self, relation):
        agg = OnlineAggregator(relation, seed=5)
        agg.advance(5_000)
        assert agg.estimate(0.0, 100.0).fraction_scanned == pytest.approx(0.1)


class TestOnlineKernelSelectivity:
    def test_requires_advance(self, relation):
        online = OnlineKernelSelectivity(relation, seed=1)
        with pytest.raises(InvalidQueryError):
            online.selectivity(0.0, 50.0)

    def test_bandwidth_shrinks_with_stream(self, relation):
        online = OnlineKernelSelectivity(relation, seed=1, batch=500)
        online.advance(1)
        early = online.bandwidth
        online.advance(30)
        later = online.bandwidth
        assert later < early

    def test_kernel_beats_sampling_mid_stream(self, relation):
        """The paper's §6 proposal: at the same scan position the
        kernel answer is closer to the truth than the raw fraction."""
        kernel_err = []
        sampling_err = []
        queries = [(20.0, 25.0), (35.0, 40.0), (50.0, 55.0), (60.0, 65.0)]
        for seed in range(8):
            online = OnlineKernelSelectivity(relation, seed=seed, batch=500)
            online.advance(2)  # 1,000 records seen
            agg = OnlineAggregator(relation, seed=seed)
            agg.advance(1_000)
            for a, b in queries:
                true = relation.selectivity(a, b)
                kernel_err.append(abs(online.selectivity(a, b) - true))
                sampling_err.append(abs(agg.estimate(a, b).estimate - true))
        assert np.mean(kernel_err) < np.mean(sampling_err)

    def test_estimate_carries_sampling_interval(self, relation):
        online = OnlineKernelSelectivity(relation, seed=2, batch=1_000)
        online.advance(1)
        result = online.estimate(30.0, 50.0)
        assert result.records_seen == 1_000
        assert result.half_width > 0
