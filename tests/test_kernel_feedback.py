"""Tests for feedback-weighted kernels (repro.feedback.kernel_feedback)."""

import numpy as np
import pytest

from repro.bandwidth.normal_scale import kernel_bandwidth
from repro.core.base import InvalidQueryError, InvalidSampleError
from repro.core.kernel import make_kernel_estimator
from repro.data.domain import Interval
from repro.data.relation import Relation
from repro.feedback import FeedbackKernelEstimator

DOMAIN = Interval(0.0, 100.0)


@pytest.fixture()
def biased_setup():
    """A relation whose sample under-represents a hot region.

    The relation is 60/40 between [0,50] and [50,100], but the sample
    is drawn 50/50 — the static kernel inherits the bias, feedback
    must repair it.
    """
    rng = np.random.default_rng(0)
    data = np.concatenate(
        [rng.uniform(0, 50, 60_000), rng.uniform(50, 100, 40_000)]
    )
    relation = Relation(data, DOMAIN)
    sample = np.concatenate(
        [rng.uniform(0, 50, 500), rng.uniform(50, 100, 500)]
    )
    return relation, sample


class TestConstruction:
    def test_rejects_bad_rate(self, biased_setup):
        _, sample = biased_setup
        with pytest.raises(InvalidSampleError):
            FeedbackKernelEstimator(sample, 5.0, DOMAIN, learning_rate=2.0)

    def test_rejects_bad_bandwidth(self, biased_setup):
        _, sample = biased_setup
        with pytest.raises(InvalidSampleError):
            FeedbackKernelEstimator(sample, -1.0, DOMAIN)

    def test_weights_start_uniform(self, biased_setup):
        _, sample = biased_setup
        est = FeedbackKernelEstimator(sample, 5.0, DOMAIN)
        np.testing.assert_allclose(est.weights, 1.0 / sample.size)

    def test_matches_reflection_kernel_before_feedback(self, biased_setup):
        _, sample = biased_setup
        h = 5.0
        est = FeedbackKernelEstimator(sample, h, DOMAIN)
        reference = make_kernel_estimator(sample, h, DOMAIN, boundary="reflection")
        for a, b in [(0.0, 25.0), (40.0, 60.0), (90.0, 100.0)]:
            assert est.selectivity(a, b) == pytest.approx(
                reference.selectivity(a, b), abs=1e-12
            )


class TestObserve:
    def test_moves_towards_truth(self, biased_setup):
        _, sample = biased_setup
        est = FeedbackKernelEstimator(sample, 5.0, DOMAIN, learning_rate=1.0)
        before = est.selectivity(0.0, 50.0)
        for _ in range(10):
            est.observe(0.0, 50.0, 0.6)
        after = est.selectivity(0.0, 50.0)
        assert abs(after - 0.6) < abs(before - 0.6)

    def test_weights_stay_normalized(self, biased_setup):
        _, sample = biased_setup
        est = FeedbackKernelEstimator(sample, 5.0, DOMAIN)
        rng = np.random.default_rng(1)
        for _ in range(40):
            a = rng.uniform(0, 90)
            est.observe(a, a + rng.uniform(1, 10), rng.uniform(0, 0.5))
            assert est.weights.sum() == pytest.approx(1.0)
            assert (est.weights >= 0).all()

    def test_returns_pre_update_error(self, biased_setup):
        _, sample = biased_setup
        est = FeedbackKernelEstimator(sample, 5.0, DOMAIN)
        before = est.selectivity(0.0, 50.0)
        error = est.observe(0.0, 50.0, 0.8)
        assert error == pytest.approx(0.8 - before)

    def test_rejects_bad_truth(self, biased_setup):
        _, sample = biased_setup
        est = FeedbackKernelEstimator(sample, 5.0, DOMAIN)
        with pytest.raises(InvalidQueryError):
            est.observe(0.0, 10.0, -0.1)

    def test_update_counter(self, biased_setup):
        _, sample = biased_setup
        est = FeedbackKernelEstimator(sample, 5.0, DOMAIN)
        est.observe(0.0, 10.0, 0.1)
        assert est.updates == 1


class TestLearning:
    def test_repairs_a_biased_sample(self, biased_setup):
        """The §6 claim in miniature: feedback corrects what the sample
        got wrong, on queries the training never saw verbatim."""
        from repro.workload import generate_query_file, mean_relative_error

        relation, sample = biased_setup
        h = kernel_bandwidth(sample)
        est = FeedbackKernelEstimator(sample, h, DOMAIN, learning_rate=0.5)
        static = make_kernel_estimator(sample, h, DOMAIN, boundary="reflection")

        train = generate_query_file(relation, 0.05, n_queries=300, seed=3)
        test = generate_query_file(relation, 0.05, n_queries=200, seed=4)

        est.observe_workload(
            train.a, train.b, train.true_counts / train.relation_size
        )
        assert mean_relative_error(est, test) < mean_relative_error(static, test)

    def test_density_remains_smooth_and_normalized(self, biased_setup):
        relation, sample = biased_setup
        est = FeedbackKernelEstimator(sample, 5.0, DOMAIN, learning_rate=0.5)
        rng = np.random.default_rng(5)
        for _ in range(100):
            a = rng.uniform(0, 90)
            b = a + rng.uniform(2, 10)
            est.observe(a, b, relation.selectivity(a, b))
        grid = np.linspace(0, 100, 2001)
        density = est.density(grid)
        assert (density >= 0).all()
        assert np.trapezoid(density, grid) == pytest.approx(1.0, abs=0.02)
