"""Tests for the project static-analysis pass (repro.analysis).

Each rule gets at least one fixture that must trigger it and one that
must stay clean; pragma handling and the CLI are exercised end to end;
and a meta-test asserts that the repository's own sources are clean,
so a regression in either the code or the analyzer shows up here.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    ALL_RULES,
    Finding,
    analyze_paths,
    analyze_source,
    mypy_available,
    run_typing_gate,
    select_rules,
)

REPO = Path(__file__).resolve().parent.parent

#: Minimal hierarchy stub shared by contract-rule fixtures.  The index
#: resolves bases by name, so this is all the context the rules need.
ESTIMATOR_CONTEXT = """
class SelectivityEstimator:
    pass
"""


def rule_names(findings):
    return sorted({f.rule for f in findings})


class TestSeededRng:
    def test_unseeded_default_rng_flagged(self):
        findings = analyze_source(
            "import numpy as np\nrng = np.random.default_rng()\n",
            rules=["seeded-rng"],
        )
        assert rule_names(findings) == ["seeded-rng"]

    def test_none_seed_flagged(self):
        findings = analyze_source(
            "import numpy as np\nrng = np.random.default_rng(None)\n",
            rules=["seeded-rng"],
        )
        assert rule_names(findings) == ["seeded-rng"]

    def test_legacy_global_state_flagged(self):
        findings = analyze_source(
            "import numpy as np\nx = np.random.rand(10)\n",
            rules=["seeded-rng"],
        )
        assert rule_names(findings) == ["seeded-rng"]

    def test_legacy_flagged_under_import_renames(self):
        findings = analyze_source(
            "from numpy import random as npr\nx = npr.normal(size=3)\n",
            rules=["seeded-rng"],
        )
        assert rule_names(findings) == ["seeded-rng"]

    def test_seeded_and_seedsequence_clean(self):
        findings = analyze_source(
            "import numpy as np\n"
            "a = np.random.default_rng(0)\n"
            "b = np.random.default_rng(seed=7)\n"
            "c = np.random.default_rng(np.random.SeedSequence(3))\n",
            rules=["seeded-rng"],
        )
        assert findings == []


class TestEstimatorConformance:
    def test_unvalidated_selectivity_flagged(self):
        source = """
class Careless(SelectivityEstimator):
    def __init__(self, sample):
        self._sample = sample

    def selectivity(self, a, b):
        return 0.5
"""
        findings = analyze_source(
            source, rules=["estimator-conformance"], context=[ESTIMATOR_CONTEXT]
        )
        assert "estimator-conformance" in rule_names(findings)

    def test_scalar_loop_in_selectivities_flagged(self):
        source = """
class Looper(SelectivityEstimator):
    def __init__(self, sample):
        self._sample = validate_sample(sample)

    def selectivity(self, a, b):
        a, b = validate_query(a, b)
        return 0.5

    def selectivities(self, a, b):
        a, b = validate_query_batch(a, b)
        return [self.selectivity(x, y) for x, y in zip(a, b)]
"""
        findings = analyze_source(
            source, rules=["estimator-conformance"], context=[ESTIMATOR_CONTEXT]
        )
        assert "estimator-conformance" in rule_names(findings)

    def test_conforming_estimator_clean(self):
        source = """
class Vectorized(SelectivityEstimator):
    def __init__(self, sample):
        self._sample = validate_sample(sample)

    def selectivity(self, a, b):
        a, b = validate_query(a, b)
        return 0.5

    def selectivities(self, a, b):
        a, b = validate_query_batch(a, b)
        return np.full(a.shape, 0.5)
"""
        findings = analyze_source(
            source, rules=["estimator-conformance"], context=[ESTIMATOR_CONTEXT]
        )
        assert findings == []

    def test_unrelated_class_ignored(self):
        source = """
class NotAnEstimator:
    def selectivity(self, a, b):
        return 0.5
"""
        findings = analyze_source(
            source, rules=["estimator-conformance"], context=[ESTIMATOR_CONTEXT]
        )
        assert findings == []


class TestFrozenAfterBuild:
    def test_write_outside_init_and_build_flagged(self):
        source = """
class Mutating(SelectivityEstimator):
    def __init__(self, sample):
        self._n = 0

    def selectivity(self, a, b):
        self._n += 1
        return 0.5
"""
        findings = analyze_source(
            source, rules=["frozen-after-build"], context=[ESTIMATOR_CONTEXT]
        )
        assert "frozen-after-build" in rule_names(findings)

    def test_writes_in_init_and_build_clean(self):
        source = """
class Frozen(SelectivityEstimator):
    def __init__(self, sample):
        self._sample = sample

    def build(self):
        self._edges = [0.0, 1.0]

    def _build_counts(self):
        self._counts = [1, 2]
"""
        findings = analyze_source(
            source, rules=["frozen-after-build"], context=[ESTIMATOR_CONTEXT]
        )
        assert findings == []


class TestSummaryMutability:
    def test_partial_lifecycle_flagged(self):
        source = """
class PartialSummary:
    def update(self, batch):
        self.count += len(batch)

    def merge(self, other):
        return self
"""
        findings = analyze_source(source, rules=["summary-mutability"])
        assert rule_names(findings) == ["summary-mutability"]
        assert "delete" in findings[0].message and "freeze" in findings[0].message

    def test_full_lifecycle_clean(self):
        source = """
class GoodSummary:
    def update(self, batch):
        self.count += len(batch)

    def delete(self, batch):
        self.count -= len(batch)

    def merge(self, other):
        return self

    def freeze(self):
        return self.count
"""
        assert analyze_source(source, rules=["summary-mutability"]) == []

    def test_frozen_summary_must_be_frozen_dataclass(self):
        source = """
import dataclasses

class FrozenBadSummary:
    pass

@dataclasses.dataclass(frozen=True)
class FrozenGoodSummary:
    count: int
"""
        findings = analyze_source(source, rules=["summary-mutability"])
        assert [f.message.split(" ")[0] for f in findings] == ["FrozenBadSummary"]

    def test_frozen_summary_mutation_flagged(self):
        source = """
import dataclasses

@dataclasses.dataclass(frozen=True)
class FrozenLeakySummary:
    count: int

    def bump(self):
        self.count = self.count + 1
"""
        findings = analyze_source(source, rules=["summary-mutability"])
        assert rule_names(findings) == ["summary-mutability"]
        assert "bump" in findings[0].message

    def test_estimator_with_mutators_flagged(self):
        source = """
class Streaming(SelectivityEstimator):
    def update(self, batch):
        return batch
"""
        findings = analyze_source(
            source, rules=["summary-mutability"], context=[ESTIMATOR_CONTEXT]
        )
        assert rule_names(findings) == ["summary-mutability"]
        assert "frozen-after-build" in findings[0].message

    def test_plain_frozen_result_dataclasses_clean(self):
        # Frozen result records named *Summary (telemetry's ValueSummary,
        # workload's ErrorSummary) carry no mutators and must not match.
        source = """
import dataclasses

@dataclasses.dataclass(frozen=True)
class ValueSummary:
    count: int
    mean: float
"""
        assert analyze_source(source, rules=["summary-mutability"]) == []


class TestTelemetryNaming:
    def test_unregistered_span_flagged(self):
        findings = analyze_source(
            'with telemetry.span("estimator.bild"):\n    pass\n',
            rules=["telemetry-naming"],
        )
        assert rule_names(findings) == ["telemetry-naming"]

    def test_unregistered_metric_flagged(self):
        findings = analyze_source(
            'session.metrics.inc("harness.cel")\n',
            rules=["telemetry-naming"],
        )
        assert rule_names(findings) == ["telemetry-naming"]

    def test_fstring_head_checked_against_prefixes(self):
        bad = analyze_source(
            'session.metrics.observe(f"harness.cel.seconds.{tag}", dt)\n',
            rules=["telemetry-naming"],
        )
        good = analyze_source(
            'session.metrics.observe(f"harness.cell.seconds.{tag}", dt)\n',
            rules=["telemetry-naming"],
        )
        assert rule_names(bad) == ["telemetry-naming"]
        assert good == []

    def test_registered_names_clean(self):
        findings = analyze_source(
            'with telemetry.span("estimator.build"):\n'
            '    session.metrics.inc("harness.cell")\n',
            rules=["telemetry-naming"],
        )
        assert findings == []


class TestNumericSafety:
    def test_float_equality_flagged(self):
        findings = analyze_source(
            "ok = x == 0.1\n",
            rules=["numeric-safety"],
        )
        assert rule_names(findings) == ["numeric-safety"]

    def test_dyadic_literal_exempt(self):
        findings = analyze_source(
            "ok = x == 0.5\nalso = y != 2.25\n",
            rules=["numeric-safety"],
        )
        assert findings == []

    def test_bare_except_flagged(self):
        findings = analyze_source(
            "try:\n    pass\nexcept:\n    pass\n",
            rules=["numeric-safety"],
        )
        assert rule_names(findings) == ["numeric-safety"]

    def test_errstate_ignore_requires_comment(self):
        bad = analyze_source(
            "with np.errstate(divide=\"ignore\"):\n    pass\n",
            rules=["numeric-safety"],
        )
        good = analyze_source(
            "# zero-truth queries divide to inf here by design\n"
            "with np.errstate(divide=\"ignore\"):\n    pass\n",
            rules=["numeric-safety"],
        )
        assert rule_names(bad) == ["numeric-safety"]
        assert good == []


class TestThreadSafety:
    def test_bare_module_cache_flagged(self):
        findings = analyze_source(
            "_CACHE = {}\n",
            rules=["thread-safety"],
        )
        assert rule_names(findings) == ["thread-safety"]

    def test_lock_guarded_module_cache_clean(self):
        findings = analyze_source(
            "import threading\n_LOCK = threading.Lock()\n_CACHE = {}\n",
            rules=["thread-safety"],
        )
        assert findings == []

    def test_populated_lookup_table_clean(self):
        findings = analyze_source(
            "_TABLE = {'a': 1, 'b': 2}\n",
            rules=["thread-safety"],
        )
        assert findings == []


class TestServingErrors:
    SERVING_PATH = "src/repro/serving/service.py"

    def test_swallowing_handler_flagged(self):
        findings = analyze_source(
            "try:\n    x = 1\nexcept Exception:\n    pass\n",
            path=self.SERVING_PATH,
            rules=["serving-errors"],
        )
        assert rule_names(findings) == ["serving-errors"]
        assert findings[0].line == 3  # anchored at the except handler

    def test_reraise_clean(self):
        findings = analyze_source(
            "try:\n    x = 1\nexcept ValueError:\n    raise\n",
            path=self.SERVING_PATH,
            rules=["serving-errors"],
        )
        assert findings == []

    def test_wrapping_raise_clean(self):
        findings = analyze_source(
            "try:\n    x = 1\n"
            "except ValueError as exc:\n"
            "    raise RuntimeError('wrapped') from exc\n",
            path=self.SERVING_PATH,
            rules=["serving-errors"],
        )
        assert findings == []

    def test_conditional_raise_counts(self):
        findings = analyze_source(
            "try:\n    x = 1\n"
            "except ValueError as exc:\n"
            "    if x:\n"
            "        raise\n"
            "    y = 2\n",
            path=self.SERVING_PATH,
            rules=["serving-errors"],
        )
        assert findings == []

    def test_raise_in_nested_def_does_not_count(self):
        findings = analyze_source(
            "try:\n    x = 1\n"
            "except ValueError:\n"
            "    def later():\n"
            "        raise RuntimeError('not in the handler')\n",
            path=self.SERVING_PATH,
            rules=["serving-errors"],
        )
        assert rule_names(findings) == ["serving-errors"]

    def test_pragma_with_reason_suppresses(self):
        findings = analyze_source(
            "try:\n    x = 1\n"
            "except Exception:  "
            "# repro: allow[serving-errors] — degrades to the next tier\n"
            "    x = 2\n",
            path=self.SERVING_PATH,
            rules=["serving-errors"],
        )
        assert findings == []

    def test_outside_serving_package_ignored(self):
        findings = analyze_source(
            "try:\n    x = 1\nexcept Exception:\n    pass\n",
            path="src/repro/db/catalog.py",
            rules=["serving-errors"],
        )
        assert findings == []


class TestPragmas:
    def test_line_pragma_suppresses(self):
        findings = analyze_source(
            "import numpy as np\n"
            "rng = np.random.default_rng()  "
            "# repro: allow[seeded-rng] — fixture exercises the unseeded path\n",
            rules=["seeded-rng"],
        )
        assert findings == []

    def test_standalone_pragma_targets_next_line(self):
        findings = analyze_source(
            "import numpy as np\n"
            "# repro: allow[seeded-rng] — fixture exercises the unseeded path\n"
            "rng = np.random.default_rng()\n",
            rules=["seeded-rng"],
        )
        assert findings == []

    def test_pragma_without_reason_is_reported(self):
        findings = analyze_source(
            "import numpy as np\n"
            "rng = np.random.default_rng()  # repro: allow[seeded-rng]\n",
            rules=["seeded-rng"],
        )
        assert "pragma" in rule_names(findings)

    def test_pragma_with_unknown_rule_is_reported(self):
        findings = analyze_source(
            "x = 1  # repro: allow[no-such-rule] — because\n",
        )
        assert rule_names(findings) == ["pragma"]

    def test_file_pragma_suppresses_whole_file(self):
        findings = analyze_source(
            "# repro: allow-file[seeded-rng] — synthetic rng fixtures\n"
            "import numpy as np\n"
            "a = np.random.default_rng()\n"
            "b = np.random.rand(3)\n",
            rules=["seeded-rng"],
        )
        assert findings == []

    def test_pragma_does_not_suppress_other_rules(self):
        findings = analyze_source(
            "import numpy as np\n"
            "# repro: allow[thread-safety] — wrong rule on purpose\n"
            "rng = np.random.default_rng()\n",
            rules=["seeded-rng", "thread-safety"],
        )
        assert rule_names(findings) == ["seeded-rng"]


class TestEngine:
    def test_syntax_error_becomes_parse_error_finding(self):
        findings = analyze_source("def broken(:\n")
        assert rule_names(findings) == ["parse-error"]

    def test_unknown_rule_selection_raises(self):
        with pytest.raises(KeyError, match="no-such-rule"):
            select_rules(["no-such-rule"])

    def test_findings_are_ordered_and_renderable(self):
        findings = analyze_source(
            "import numpy as np\n_C = {}\nx = np.random.rand(2)\n",
            rules=["seeded-rng", "thread-safety"],
        )
        assert findings == sorted(findings)
        for f in findings:
            assert isinstance(f, Finding)
            rendered = f.render()
            assert f.rule in rendered and ":" in rendered


class TestRepositoryIsClean:
    """The repo's own sources must pass their own analyzer."""

    def test_src_clean(self):
        assert analyze_paths([REPO / "src"]) == []

    def test_tests_and_benchmarks_clean(self):
        assert analyze_paths([REPO / "tests", REPO / "benchmarks"]) == []

    def test_every_rule_has_name_and_description(self):
        for rule in ALL_RULES:
            assert rule.name and rule.description


class TestCli:
    def _run(self, *argv, cwd=None):
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *argv],
            capture_output=True,
            text=True,
            cwd=cwd or REPO,
        )

    def test_violation_fails_and_names_the_rule(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nx = np.random.rand(3)\n")
        result = self._run(str(bad))
        assert result.returncode == 1
        assert "seeded-rng" in result.stdout

    def test_warn_only_exits_zero(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nx = np.random.rand(3)\n")
        result = self._run("--warn-only", str(bad))
        assert result.returncode == 0
        assert "seeded-rng" in result.stdout

    def test_json_output_parses(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("_CACHE = {}\n")
        result = self._run("--format", "json", str(bad))
        payload = json.loads(result.stdout)
        assert payload and payload[0]["rule"] == "thread-safety"

    def test_clean_file_exits_zero(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text("import numpy as np\nrng = np.random.default_rng(0)\n")
        result = self._run(str(good))
        assert result.returncode == 0

    def test_unknown_rule_exits_two(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        result = self._run("--select", "no-such-rule", str(good))
        assert result.returncode == 2

    def test_list_rules(self):
        result = self._run("--list-rules")
        assert result.returncode == 0
        for rule in ALL_RULES:
            assert rule.name in result.stdout


class TestTypingGate:
    def test_gate_reports_consistent_status(self):
        result = run_typing_gate()
        if mypy_available():
            assert result.status in {"passed", "failed"}
        else:
            assert result.status == "skipped"
            assert result.ok
