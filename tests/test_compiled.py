"""The opt-in compiled window-sum layer and its fallback contract.

numba is deliberately absent from the baked image, so most of these
tests exercise the *gating*: mode parsing, the hard failure when
``REPRO_ACCEL=numba`` has nothing to import, and the ``None`` returns
that keep callers on the vectorized NumPy path.  The bit-for-bit
equivalence class runs only where numba is installed (an optional CI
leg) and asserts the jitted loops round identically to the pure-Python
sources they were compiled from.
"""

import numpy as np
import pytest

from repro.core.kernel import compiled
from repro.core.kernel.compiled import (
    ACCEL_ENV,
    HAVE_NUMBA,
    _epan_cdf_sums_py,
    _gauss_deriv_sums_py,
    accel_mode,
    accelerated,
    epan_cdf_window_sums,
    gaussian_derivative_window_sums,
)


def _windows(seed=0, n=256, m=32, h=0.4):
    rng = np.random.default_rng(seed)
    sample = np.sort(rng.uniform(0.0, 4.0, n))
    x = rng.uniform(0.0, 4.0, m)
    lo = np.searchsorted(sample, x - h, side="left")
    hi = np.searchsorted(sample, x + h, side="right")
    return x, sample, 1.0 / h, lo, hi


class TestModeGating:
    def test_default_mode_is_auto(self, monkeypatch):
        monkeypatch.delenv(ACCEL_ENV, raising=False)
        assert accel_mode() == "auto"

    @pytest.mark.parametrize("raw", ["auto", "NUMBA", " none ", "None"])
    def test_modes_normalized(self, monkeypatch, raw):
        monkeypatch.setenv(ACCEL_ENV, raw)
        assert accel_mode() == raw.strip().lower()

    def test_invalid_mode_rejected(self, monkeypatch):
        monkeypatch.setenv(ACCEL_ENV, "cython")
        with pytest.raises(ValueError, match="REPRO_ACCEL"):
            accel_mode()

    def test_none_disables(self, monkeypatch):
        monkeypatch.setenv(ACCEL_ENV, "none")
        assert accelerated() is False

    def test_auto_follows_availability(self, monkeypatch):
        monkeypatch.setenv(ACCEL_ENV, "auto")
        assert accelerated() is HAVE_NUMBA

    @pytest.mark.skipif(HAVE_NUMBA, reason="needs numba to be absent")
    def test_numba_mode_fails_loudly_without_numba(self, monkeypatch):
        monkeypatch.setenv(ACCEL_ENV, "numba")
        with pytest.raises(RuntimeError, match="not importable"):
            accelerated()

    def test_inactive_layer_returns_none(self, monkeypatch):
        monkeypatch.setenv(ACCEL_ENV, "none")
        x, sample, inv_h, lo, hi = _windows()
        assert epan_cdf_window_sums(x, sample, inv_h, lo, hi) is None
        assert gaussian_derivative_window_sums(x, sample, inv_h, 2, lo, hi) is None


class TestPythonSources:
    """The loops numba compiles must agree with the vectorized kernels
    they shadow — asserted on the pure-Python sources so the contract
    holds even where numba is absent."""

    def test_epan_cdf_matches_kernel_function(self):
        from repro.core.kernel.functions import get_kernel

        x, sample, inv_h, lo, hi = _windows(seed=1)
        out = np.empty(x.shape)
        _epan_cdf_sums_py(x, sample, inv_h, lo, hi, out)
        cdf = get_kernel("epanechnikov").cdf
        expected = np.array(
            [
                float(np.sum(cdf((xx - sample[l:h]) * inv_h)))
                for xx, l, h in zip(x, lo, hi)
            ]
        )
        np.testing.assert_allclose(out, expected, atol=1e-15)

    @pytest.mark.parametrize("order", [0, 1, 2, 3, 4])
    def test_gauss_derivatives_match_density_terms(self, order):
        from repro.core.kernel.density import _DERIVATIVES

        x, sample, inv_g, lo, hi = _windows(seed=2, h=1.0)
        out = np.empty(x.shape)
        _gauss_deriv_sums_py(x, sample, inv_g, order, lo, hi, out)
        term = _DERIVATIVES[order]
        expected = np.array(
            [
                float(np.sum(term((xx - sample[l:h]) * inv_g)))
                for xx, l, h in zip(x, lo, hi)
            ]
        )
        # np.sum accumulates pairwise, the loop sequentially: same
        # terms, slightly different rounding of the sum.
        np.testing.assert_allclose(out, expected, rtol=1e-12, atol=1e-12)


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
class TestBitForBit:
    """Jitted output must equal the NumPy fallback path exactly."""

    def test_epan_cdf_bit_for_bit(self, monkeypatch):
        monkeypatch.setenv(ACCEL_ENV, "numba")
        x, sample, inv_h, lo, hi = _windows(seed=3)
        jitted = epan_cdf_window_sums(x, sample, inv_h, lo, hi)
        reference = np.empty(x.shape)
        _epan_cdf_sums_py(x, sample, inv_h, lo, hi, reference)
        np.testing.assert_array_equal(jitted, reference)

    @pytest.mark.parametrize("order", [0, 1, 2, 3, 4])
    def test_gauss_derivatives_bit_for_bit(self, monkeypatch, order):
        monkeypatch.setenv(ACCEL_ENV, "numba")
        x, sample, inv_g, lo, hi = _windows(seed=4, h=1.0)
        jitted = gaussian_derivative_window_sums(x, sample, inv_g, order, lo, hi)
        reference = np.empty(x.shape)
        _gauss_deriv_sums_py(x, sample, inv_g, order, lo, hi, reference)
        np.testing.assert_array_equal(jitted, reference)

    def test_estimator_results_identical_across_modes(self, monkeypatch):
        from repro.core.kernel import KernelSelectivityEstimator

        rng = np.random.default_rng(5)
        sample = rng.uniform(0.0, 1.0, 2_000)
        a = rng.uniform(-0.1, 1.0, 200)
        b = a + rng.uniform(0.0, 0.2, 200)
        monkeypatch.setenv(ACCEL_ENV, "none")
        est = KernelSelectivityEstimator(
            sample, 0.01, kernel="epanechnikov", use_moments=False
        )
        plain = est.selectivities(a, b)
        monkeypatch.setenv(ACCEL_ENV, "numba")
        jitted = est.selectivities(a, b)
        np.testing.assert_array_equal(plain, jitted)
