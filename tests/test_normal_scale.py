"""Tests for normal scale rules (repro.bandwidth.normal_scale)."""

import numpy as np
import pytest

from repro.bandwidth.normal_scale import (
    EPANECHNIKOV_CONSTANT,
    EQUI_WIDTH_CONSTANT,
    histogram_bin_count,
    histogram_bin_width,
    kernel_bandwidth,
)
from repro.bandwidth.scale import robust_scale
from repro.core.base import InvalidSampleError
from repro.data.domain import Interval


@pytest.fixture()
def normal_sample():
    return np.random.default_rng(0).normal(0.0, 1.0, 2_000)


class TestPaperConstants:
    def test_equi_width_constant(self):
        """(24 sqrt(pi))^(1/3) from paper eq. 8."""
        assert EQUI_WIDTH_CONSTANT == pytest.approx((24 * np.sqrt(np.pi)) ** (1 / 3))

    def test_epanechnikov_constant_is_2_345(self):
        """The paper's 2.345 = (40 sqrt(pi))^(1/5)."""
        assert EPANECHNIKOV_CONSTANT == pytest.approx(2.345, abs=0.001)


class TestBinWidth:
    def test_matches_closed_form(self, normal_sample):
        s = robust_scale(normal_sample)
        n = normal_sample.size
        expected = EQUI_WIDTH_CONSTANT * s * n ** (-1 / 3)
        assert histogram_bin_width(normal_sample) == pytest.approx(expected)

    def test_shrinks_with_n(self):
        rng = np.random.default_rng(1)
        small = histogram_bin_width(rng.normal(0, 1, 200))
        large = histogram_bin_width(rng.normal(0, 1, 20_000))
        assert large < small

    def test_scales_with_spread(self):
        rng = np.random.default_rng(2)
        narrow = histogram_bin_width(rng.normal(0, 1, 2_000))
        wide = histogram_bin_width(rng.normal(0, 10, 2_000))
        assert wide == pytest.approx(10 * narrow, rel=0.1)


class TestBinCount:
    def test_count_times_width_covers_domain(self, normal_sample):
        domain = Interval(-5.0, 5.0)
        clipped = np.clip(normal_sample, -5, 5)
        bins = histogram_bin_count(clipped, domain)
        width = histogram_bin_width(clipped)
        assert bins >= domain.width / width - 1
        assert bins <= domain.width / width + 1

    def test_at_least_one_bin(self):
        sample = np.random.default_rng(3).normal(0, 100, 100)
        assert histogram_bin_count(sample, Interval(-0.1, 0.1)) == 1


class TestKernelBandwidth:
    def test_matches_closed_form(self, normal_sample):
        s = robust_scale(normal_sample)
        n = normal_sample.size
        expected = EPANECHNIKOV_CONSTANT * s * n ** (-1 / 5)
        assert kernel_bandwidth(normal_sample) == pytest.approx(expected)

    def test_gaussian_bandwidth_smaller(self, normal_sample):
        """Canonical kernels: the Gaussian needs a smaller h for the
        same smoothing."""
        assert kernel_bandwidth(normal_sample, "gaussian") < kernel_bandwidth(
            normal_sample, "epanechnikov"
        )

    def test_needs_two_samples(self):
        with pytest.raises(InvalidSampleError):
            kernel_bandwidth(np.array([1.0]))

    def test_near_amise_optimal_on_normal_data(self, normal_sample):
        """On genuinely Normal data the NS bandwidth should sit near
        the true AMISE optimum."""
        from repro.bandwidth.amise import normal_roughness, optimal_bandwidth

        truth = optimal_bandwidth(normal_sample.size, normal_roughness(2, 1.0))
        assert kernel_bandwidth(normal_sample) == pytest.approx(truth, rel=0.1)
