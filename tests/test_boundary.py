"""Tests for boundary treatments (repro.core.kernel.boundary)."""

import numpy as np
import pytest

from repro.core.base import InvalidSampleError
from repro.core.kernel.boundary import (
    BoundaryKernelEstimator,
    ReflectionKernelEstimator,
    boundary_kernel_pdf,
    make_kernel_estimator,
)
from repro.core.kernel.estimator import KernelSelectivityEstimator
from repro.data.domain import Interval


@pytest.fixture()
def domain():
    return Interval(0.0, 10.0)


@pytest.fixture()
def sample():
    return np.random.default_rng(4).uniform(0.0, 10.0, 1_000)


class TestReflection:
    def test_density_integrates_to_one_over_domain(self, sample, domain):
        est = ReflectionKernelEstimator(sample, 1.0, domain)
        assert est.selectivity(domain.low, domain.high) == pytest.approx(1.0, abs=1e-9)

    def test_normalization_uses_original_n(self, sample, domain):
        est = ReflectionKernelEstimator(sample, 1.0, domain)
        assert est.sample_size == sample.size

    def test_reduces_boundary_error(self, sample, domain):
        plain = KernelSelectivityEstimator(sample, 1.0, domain=domain)
        reflected = ReflectionKernelEstimator(sample, 1.0, domain)
        true = 0.1  # uniform data
        assert abs(reflected.selectivity(0.0, 1.0) - true) < abs(
            plain.selectivity(0.0, 1.0) - true
        )

    def test_interior_unchanged(self, sample, domain):
        plain = KernelSelectivityEstimator(sample, 1.0, domain=domain)
        reflected = ReflectionKernelEstimator(sample, 1.0, domain)
        assert reflected.selectivity(4.0, 6.0) == pytest.approx(
            plain.selectivity(4.0, 6.0), abs=1e-12
        )

    def test_queries_clipped_to_domain(self, sample, domain):
        est = ReflectionKernelEstimator(sample, 1.0, domain)
        assert est.selectivity(-100.0, 100.0) == pytest.approx(1.0, abs=1e-9)

    def test_density_zero_outside_domain(self, sample, domain):
        est = ReflectionKernelEstimator(sample, 1.0, domain)
        assert est.density(np.array([-0.5, 10.5])).tolist() == [0.0, 0.0]


class TestBoundaryKernelPdf:
    def test_reduces_to_epanechnikov_at_q_one(self):
        t = np.linspace(-1, 1, 21)
        np.testing.assert_allclose(
            boundary_kernel_pdf(t, 1.0), 0.75 * (1 - t * t), atol=1e-12
        )

    def test_zero_outside_support(self):
        assert boundary_kernel_pdf(0.8, 0.5) == 0.0  # t > q
        assert boundary_kernel_pdf(-1.2, 0.5) == 0.0  # t < -1

    def test_integrates_to_one_for_each_q(self):
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            t = np.linspace(-1.0, q, 20_001)
            mass = np.trapezoid(boundary_kernel_pdf(t, q), t)
            assert mass == pytest.approx(1.0, abs=1e-6)

    def test_can_be_negative(self):
        """Boundary kernels dip negative near t = -1 — the price of
        consistency (paper §3.2.1)."""
        assert boundary_kernel_pdf(-0.99, 0.0) < 0.0


class TestBoundaryKernelEstimator:
    def test_requires_epanechnikov(self, sample, domain):
        with pytest.raises(InvalidSampleError):
            BoundaryKernelEstimator(sample, 1.0, domain, kernel="gaussian")

    def test_rejects_oversized_bandwidth(self, sample, domain):
        with pytest.raises(InvalidSampleError):
            BoundaryKernelEstimator(sample, 5.1, domain)

    def test_selectivity_matches_density_integral(self, sample, domain):
        """Closed-form primitives vs. numerical integration across all
        three regions (left boundary, interior, right boundary).  The
        API clips to [0, 1], so the comparison clips the integral too —
        boundary-kernel densities integrate to slightly over one (the
        consistency-vs-density trade-off of paper §3.2.1)."""
        est = BoundaryKernelEstimator(sample, 1.3, domain)
        for a, b in [(0.0, 0.9), (0.5, 2.1), (4.0, 6.0), (8.2, 10.0), (0.0, 10.0)]:
            grid = np.linspace(a, b, 8001)
            numeric = np.clip(np.trapezoid(est.density(grid), grid), 0.0, 1.0)
            assert est.selectivity(a, b) == pytest.approx(numeric, abs=5e-5)

    def test_interior_matches_plain_kernel(self, sample, domain):
        plain = KernelSelectivityEstimator(sample, 1.0, domain=domain)
        treated = BoundaryKernelEstimator(sample, 1.0, domain)
        assert treated.selectivity(2.0, 8.0) == pytest.approx(
            plain.selectivity(2.0, 8.0), abs=1e-12
        )

    def test_reduces_boundary_error(self, sample, domain):
        plain = KernelSelectivityEstimator(sample, 1.0, domain=domain)
        treated = BoundaryKernelEstimator(sample, 1.0, domain)
        true = 0.1
        assert abs(treated.selectivity(0.0, 1.0) - true) < abs(
            plain.selectivity(0.0, 1.0) - true
        )

    def test_consistent_at_boundary(self, domain):
        """With plenty of data the boundary estimate converges to the
        truth — the property reflection lacks."""
        rng = np.random.default_rng(9)
        sample = rng.uniform(0, 10, 20_000)
        est = BoundaryKernelEstimator(sample, 0.5, domain)
        assert est.selectivity(0.0, 0.5) == pytest.approx(0.05, abs=0.01)

    def test_total_mass_close_to_one(self, sample, domain):
        est = BoundaryKernelEstimator(sample, 1.0, domain)
        assert est.selectivity(0.0, 10.0) == pytest.approx(1.0, abs=0.05)


class TestFactory:
    def test_none_returns_plain(self, sample, domain):
        est = make_kernel_estimator(sample, 1.0, domain, boundary="none")
        assert type(est) is KernelSelectivityEstimator

    def test_reflection(self, sample, domain):
        est = make_kernel_estimator(sample, 1.0, domain, boundary="reflection")
        assert isinstance(est, ReflectionKernelEstimator)

    def test_kernel(self, sample, domain):
        est = make_kernel_estimator(sample, 1.0, domain, boundary="kernel")
        assert isinstance(est, BoundaryKernelEstimator)

    def test_unknown_treatment(self, sample, domain):
        with pytest.raises(ValueError):
            make_kernel_estimator(sample, 1.0, domain, boundary="magic")

    def test_treatment_requires_domain(self, sample):
        with pytest.raises(InvalidSampleError):
            make_kernel_estimator(sample, 1.0, None, boundary="reflection")
