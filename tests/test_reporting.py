"""Tests for experiment reporting (repro.experiments.reporting)."""

import pytest

from repro.experiments.reporting import FigureResult, make_result


@pytest.fixture()
def result():
    return make_result(
        "fig-0",
        "A test figure",
        [
            {"dataset": "a", "MRE": 0.123},
            {"dataset": "b", "MRE": 0.045},
        ],
        notes="hello",
    )


class TestFigureResult:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            make_result("fig-0", "empty", [])

    def test_rejects_inconsistent_columns(self):
        with pytest.raises(ValueError):
            make_result("fig-0", "bad", [{"a": 1}, {"b": 2}])

    def test_columns(self, result):
        assert result.columns == ["dataset", "MRE"]

    def test_column_access(self, result):
        assert result.column("dataset") == ["a", "b"]

    def test_unknown_column_raises(self, result):
        with pytest.raises(KeyError):
            result.column("nope")

    def test_render_contains_all_cells(self, result):
        text = result.render()
        assert "fig-0" in text
        assert "12.30%" in text  # float rendered as percent
        assert "4.50%" in text
        assert "note: hello" in text

    def test_render_aligns_header(self, result):
        lines = result.render().splitlines()
        header, rule = lines[1], lines[2]
        assert len(rule) == len(header)

    def test_large_floats_not_percent(self):
        res = make_result("fig-0", "t", [{"x": 123.456}])
        assert "123.5" in res.render()

    def test_csv_roundtrip(self, result):
        csv = result.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "dataset,MRE"
        assert lines[1] == "a,0.123"
