"""Tests for the uniform estimator and the average shifted histogram."""

import numpy as np
import pytest

from repro.core.base import InvalidSampleError
from repro.core.histogram import AverageShiftedHistogram, EquiWidthHistogram, UniformEstimator
from repro.data.domain import Interval


class TestUniformEstimator:
    def test_covered_fraction(self):
        est = UniformEstimator(Interval(0.0, 10.0))
        assert est.selectivity(0.0, 5.0) == pytest.approx(0.5)

    def test_clips_to_domain(self):
        est = UniformEstimator(Interval(0.0, 10.0))
        assert est.selectivity(-5.0, 15.0) == pytest.approx(1.0)

    def test_outside_domain_zero(self):
        est = UniformEstimator(Interval(0.0, 10.0))
        assert est.selectivity(11.0, 12.0) == 0.0

    def test_uses_no_sample(self):
        assert UniformEstimator(Interval(0, 1)).sample_size == 0

    def test_exact_on_uniform_data(self):
        rng = np.random.default_rng(0)
        data = rng.uniform(0, 10, 100_000)
        est = UniformEstimator(Interval(0.0, 10.0))
        true = np.mean((data >= 2.0) & (data <= 4.5))
        assert est.selectivity(2.0, 4.5) == pytest.approx(true, abs=0.01)


class TestAverageShiftedHistogram:
    @pytest.fixture()
    def domain(self):
        return Interval(0.0, 10.0)

    @pytest.fixture()
    def sample(self):
        return np.random.default_rng(1).normal(5.0, 1.5, 800).clip(0, 10)

    def test_mass_conserved(self, sample, domain):
        ash = AverageShiftedHistogram(sample, domain, bins=12, shifts=10)
        assert ash.selectivity(domain.low - 1.0, domain.high + 1.0) == pytest.approx(1.0)

    def test_single_shift_equals_equi_width(self, sample, domain):
        ash = AverageShiftedHistogram(sample, domain, bins=9, shifts=1)
        ewh = EquiWidthHistogram(sample, domain, 9)
        for a, b in [(0.0, 3.0), (2.5, 6.0), (7.1, 9.9)]:
            assert ash.selectivity(a, b) == pytest.approx(ewh.selectivity(a, b))

    def test_average_of_components(self, sample, domain):
        """ASH selectivity is exactly the mean of the shifted EWHs."""
        shifts, bins = 4, 8
        ash = AverageShiftedHistogram(sample, domain, bins=bins, shifts=shifts)
        step = ash.bin_width / shifts
        components = [
            EquiWidthHistogram(sample, domain, bins, origin=domain.low - j * step)
            for j in range(shifts)
        ]
        expected = np.mean([c.selectivity(2.0, 4.7) for c in components])
        assert ash.selectivity(2.0, 4.7) == pytest.approx(expected)

    def test_smoother_than_single_histogram(self, sample, domain):
        """The ASH density has smaller jumps than the raw histogram."""
        bins = 10
        ash = AverageShiftedHistogram(sample, domain, bins=bins, shifts=10)
        ewh = EquiWidthHistogram(sample, domain, bins)
        grid = np.linspace(0.01, 9.99, 500)
        ash_jumps = np.abs(np.diff(ash.density(grid))).max()
        ewh_jumps = np.abs(np.diff(ewh.density(grid))).max()
        assert ash_jumps < ewh_jumps

    def test_rejects_zero_shifts(self, sample, domain):
        with pytest.raises(InvalidSampleError):
            AverageShiftedHistogram(sample, domain, bins=5, shifts=0)

    def test_rejects_zero_bins(self, sample, domain):
        with pytest.raises(InvalidSampleError):
            AverageShiftedHistogram(sample, domain, bins=0, shifts=2)

    def test_shift_count_property(self, sample, domain):
        ash = AverageShiftedHistogram(sample, domain, bins=5, shifts=7)
        assert ash.shifts == 7
