"""Tests for robust scale estimation (repro.bandwidth.scale)."""

import numpy as np
import pytest

from repro.bandwidth.scale import (
    GAUSS_TO_EPANECHNIKOV,
    iqr,
    robust_scale,
    to_gaussian_bandwidth,
)
from repro.core.base import InvalidSampleError


class TestIqr:
    def test_uniform_grid(self):
        assert iqr(np.arange(101, dtype=float)) == pytest.approx(50.0)

    def test_normal_sample_near_1348_sigma(self):
        sample = np.random.default_rng(0).normal(0, 1, 50_000)
        assert iqr(sample) == pytest.approx(1.348, abs=0.03)


class TestRobustScale:
    def test_takes_the_minimum(self):
        """Outliers inflate the sd but not the IQR: robust scale must
        follow the IQR."""
        rng = np.random.default_rng(1)
        sample = np.concatenate([rng.normal(0, 1, 1_000), [1e5, -1e5]])
        s = robust_scale(sample)
        assert s < 2.0  # plain sd would be ~3000

    def test_normal_sample_near_sigma(self):
        sample = np.random.default_rng(2).normal(0, 2.5, 20_000)
        assert robust_scale(sample) == pytest.approx(2.5, rel=0.05)

    def test_zero_iqr_falls_back_to_sd(self):
        """More than half the mass on one value zeroes the IQR; the
        standard deviation must take over (duplicate-heavy data)."""
        sample = np.concatenate([np.full(80, 5.0), np.linspace(0, 10, 20)])
        assert robust_scale(sample) > 0

    def test_all_identical_raises(self):
        with pytest.raises(InvalidSampleError):
            robust_scale(np.full(50, 3.0))

    def test_single_value_raises(self):
        with pytest.raises(InvalidSampleError):
            robust_scale(np.array([1.0]))


class TestCanonicalConversion:
    def test_ratio_value(self):
        """delta_gauss / delta_epan = (R_g / k2_g^2 / 15)^(1/5) ~ 0.4517."""
        assert GAUSS_TO_EPANECHNIKOV == pytest.approx(0.4517, abs=0.001)

    def test_conversion(self):
        assert to_gaussian_bandwidth(1.0) == pytest.approx(GAUSS_TO_EPANECHNIKOV)

    def test_rejects_nonpositive(self):
        with pytest.raises(InvalidSampleError):
            to_gaussian_bandwidth(0.0)
