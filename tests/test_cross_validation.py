"""Tests for cross-validation selectors (repro.bandwidth.cross_validation)."""

import numpy as np
import pytest
from scipy import integrate

from repro.bandwidth.cross_validation import (
    _epanechnikov_convolution,
    _gaussian_convolution,
    lscv_bandwidth,
    lscv_score,
    rudemo_bin_count,
    rudemo_score,
)
from repro.bandwidth.normal_scale import histogram_bin_count, kernel_bandwidth
from repro.core.base import InvalidSampleError
from repro.data.domain import Interval


class TestConvolutions:
    def test_epanechnikov_convolution_at_zero_is_roughness(self):
        assert _epanechnikov_convolution(0.0) == pytest.approx(0.6)

    def test_epanechnikov_convolution_integrates_to_one(self):
        value, _ = integrate.quad(lambda t: float(_epanechnikov_convolution(t)), -2, 2)
        assert value == pytest.approx(1.0, abs=1e-9)

    def test_epanechnikov_convolution_matches_numeric(self):
        from repro.core.kernel.functions import EPANECHNIKOV

        for t in (0.3, 0.9, 1.5, 1.9):
            numeric, _ = integrate.quad(
                lambda u: float(EPANECHNIKOV.pdf(u) * EPANECHNIKOV.pdf(t - u)), -1, 1
            )
            assert float(_epanechnikov_convolution(t)) == pytest.approx(numeric, abs=1e-9)

    def test_gaussian_convolution_is_n02(self):
        assert float(_gaussian_convolution(0.0)) == pytest.approx(
            1.0 / np.sqrt(4 * np.pi)
        )


class TestLscv:
    @pytest.fixture()
    def normal_sample(self):
        return np.random.default_rng(0).normal(0.0, 1.0, 800)

    def test_score_penalizes_extreme_bandwidths(self, normal_sample):
        good = lscv_score(normal_sample, 0.4)
        tiny = lscv_score(normal_sample, 0.005)
        huge = lscv_score(normal_sample, 50.0)
        assert good < tiny
        assert good < huge

    def test_selected_bandwidth_near_ns_on_normal_data(self, normal_sample):
        chosen = lscv_bandwidth(normal_sample)
        reference = kernel_bandwidth(normal_sample)
        assert 0.3 * reference < chosen < 2.5 * reference

    def test_adapts_on_structured_data(self):
        """Two sharp clusters: LSCV must, like the plug-in, choose a
        far smaller bandwidth than the normal scale rule."""
        rng = np.random.default_rng(1)
        sample = np.concatenate(
            [rng.normal(0.0, 0.05, 500), rng.normal(5.0, 0.05, 500)]
        )
        assert lscv_bandwidth(sample) < 0.3 * kernel_bandwidth(sample)

    def test_unsupported_kernel(self, normal_sample):
        with pytest.raises(InvalidSampleError):
            lscv_score(normal_sample, 0.4, kernel="biweight")

    def test_rejects_bad_bandwidth(self, normal_sample):
        with pytest.raises(InvalidSampleError):
            lscv_score(normal_sample, 0.0)

    def test_needs_two_samples(self):
        with pytest.raises(InvalidSampleError):
            lscv_score(np.array([1.0]), 0.5)

    def test_gaussian_kernel_supported(self, normal_sample):
        assert np.isfinite(lscv_score(normal_sample, 0.3, kernel="gaussian"))


class TestRudemo:
    DOMAIN = Interval(0.0, 10.0)

    @pytest.fixture()
    def sample(self):
        return np.clip(np.random.default_rng(2).normal(5.0, 1.2, 1_000), 0, 10)

    def test_score_penalizes_extremes(self, sample):
        good = rudemo_score(sample, 16, self.DOMAIN)
        assert good < rudemo_score(sample, 1, self.DOMAIN)
        assert good < rudemo_score(sample, 900, self.DOMAIN)

    def test_selected_count_reasonable(self, sample):
        chosen = rudemo_bin_count(sample, self.DOMAIN)
        reference = histogram_bin_count(sample, self.DOMAIN)
        assert 0.25 * reference < chosen < 6 * reference

    def test_rejects_bad_bins(self, sample):
        with pytest.raises(InvalidSampleError):
            rudemo_score(sample, 0, self.DOMAIN)
