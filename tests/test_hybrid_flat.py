"""The flattened hybrid fast path vs the per-bin reference.

The contract under test: ``HybridEstimator.selectivities`` /
``density`` answered through the contiguous flat layout
(:mod:`repro.core.hybrid_flat`) must match the per-bin estimator loop
(``selectivities_reference`` / ``density_reference``) to 1e-12 —
including the awkward inputs (zero-width queries, queries pinned on
bin edges, single-bin partitions) — while the prefix-moment machinery
it rides on (:mod:`repro.core.kernel.moments`) holds its own numerical
guarantees.
"""

import numpy as np
import pytest

from repro.core.hybrid import HybridEstimator
from repro.core.hybrid_flat import bin_offsets
from repro.core.kernel.moments import (
    MOMENT_MAX_RATIO,
    build_moments,
    compensated_cumsum,
    epan_cdf_sums,
    epan_pdf_sums,
    half_spread,
)
from repro.data.domain import Interval

DOMAIN = Interval(0.0, 1_000_000.0)

ATOL = 1e-12


def _random_sample(seed: int, n: int = 2_000) -> np.ndarray:
    """Multi-modal sample with sharp edges: multi-bin partitions."""
    rng = np.random.default_rng(seed)
    parts = [
        rng.normal(rng.uniform(0.1, 0.4) * DOMAIN.width, 30_000.0, n // 3),
        rng.uniform(0.5 * DOMAIN.width, 0.8 * DOMAIN.width, n // 3),
        rng.normal(0.9 * DOMAIN.width, 15_000.0, n - 2 * (n // 3)),
    ]
    return np.clip(np.concatenate(parts), DOMAIN.low, DOMAIN.high)


def _random_queries(seed: int, n: int = 400) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    a = rng.uniform(DOMAIN.low, DOMAIN.high, n)
    b = np.minimum(a + rng.uniform(0.0, 0.3, n) * DOMAIN.width, DOMAIN.high)
    return a, b


class TestFlatMatchesReference:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_changepoints(self, seed):
        est = HybridEstimator(_random_sample(seed), DOMAIN)
        assert est._flat is not None
        a, b = _random_queries(seed + 100)
        np.testing.assert_allclose(
            est.selectivities(a, b), est.selectivities_reference(a, b), atol=ATOL
        )

    def test_zero_width_queries(self):
        est = HybridEstimator(_random_sample(7), DOMAIN)
        points = np.concatenate(
            [
                np.linspace(DOMAIN.low, DOMAIN.high, 64),
                est.change_points,
                [DOMAIN.low, DOMAIN.high],
            ]
        )
        fast = est.selectivities(points, points)
        ref = est.selectivities_reference(points, points)
        np.testing.assert_allclose(fast, ref, atol=ATOL)
        np.testing.assert_allclose(fast, 0.0, atol=ATOL)

    def test_bin_edge_queries(self):
        est = HybridEstimator(_random_sample(11), DOMAIN)
        edges = np.concatenate([[DOMAIN.low], est.change_points, [DOMAIN.high]])
        # Every pair of edges, both orders of closeness to the edge.
        a = np.repeat(edges, edges.size)
        b = np.tile(edges, edges.size)
        keep = b >= a
        np.testing.assert_allclose(
            est.selectivities(a[keep], b[keep]),
            est.selectivities_reference(a[keep], b[keep]),
            atol=ATOL,
        )

    def test_single_bin(self):
        rng = np.random.default_rng(3)
        smooth = np.clip(
            rng.normal(0.5 * DOMAIN.width, 0.15 * DOMAIN.width, 2_000),
            DOMAIN.low,
            DOMAIN.high,
        )
        est = HybridEstimator(smooth, DOMAIN, max_changepoints=0)
        assert len(est.bins) == 1
        a, b = _random_queries(13)
        np.testing.assert_allclose(
            est.selectivities(a, b), est.selectivities_reference(a, b), atol=ATOL
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_density_matches(self, seed):
        est = HybridEstimator(_random_sample(seed), DOMAIN)
        rng = np.random.default_rng(seed + 50)
        x = np.concatenate(
            [
                rng.uniform(DOMAIN.low, DOMAIN.high, 500),
                est.change_points,  # both adjacent bins contribute
                [DOMAIN.low, DOMAIN.high],
            ]
        )
        fast = est.density(x)
        ref = est.density_reference(x)
        # Densities scale as 1/width (~1e-6 here); compare relative to
        # the peak so the tolerance is meaningful.
        scale = max(float(np.max(np.abs(ref))), 1.0 / DOMAIN.width)
        np.testing.assert_allclose(fast / scale, ref / scale, atol=ATOL)

    def test_non_kernel_boundary_falls_back(self):
        est = HybridEstimator(_random_sample(5), DOMAIN, boundary="reflection")
        assert est._flat is None
        a, b = _random_queries(17)
        np.testing.assert_allclose(
            est.selectivities(a, b), est.selectivities_reference(a, b), atol=0
        )


class TestBinOffsets:
    def test_edge_coincident_samples(self):
        edges = np.array([0.0, 10.0, 20.0])
        values = np.sort(np.array([0.0, 5.0, 10.0, 10.0, 15.0, 20.0]))
        offsets = bin_offsets(values, edges)
        # Interior edge 10.0 belongs to the right bin; domain max stays
        # in the last bin.
        assert offsets.tolist() == [0, 2, 6]

    def test_concatenation_is_global_sort(self):
        rng = np.random.default_rng(0)
        values = np.sort(rng.uniform(0.0, 30.0, 200))
        edges = np.array([0.0, 7.5, 12.0, 30.0])
        offsets = bin_offsets(values, edges)
        parts = [values[offsets[k] : offsets[k + 1]] for k in range(3)]
        np.testing.assert_array_equal(np.concatenate(parts), values)
        for k, part in enumerate(parts):
            assert np.all(part >= edges[k])
            if k < 2:
                assert np.all(part < edges[k + 1])


class TestMoments:
    def test_compensated_cumsum_beats_plain(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(-1.0, 1.0, 100_000)
        exact = np.cumsum(values.astype(np.longdouble))
        compensated = compensated_cumsum(values)
        plain = np.cumsum(values)
        err_comp = np.max(np.abs(compensated - exact))
        err_plain = np.max(np.abs(plain - exact))
        assert err_comp <= err_plain
        assert err_comp < 1e-11

    def test_cdf_sums_match_direct(self):
        rng = np.random.default_rng(1)
        values = np.sort(rng.uniform(-4.0, 4.0, 512))
        h = 1.0 / MOMENT_MAX_RATIO * half_spread(values) * 2.0  # well in range
        moments = build_moments(values)
        x = rng.uniform(-4.0, 4.0, 64)
        lo = np.searchsorted(values, x - h, side="left")
        hi = np.searchsorted(values, x + h, side="right")
        got = epan_cdf_sums(moments, x, 1.0 / h, lo, hi)
        t = (x[:, None] - values[None, :]) / h
        inside = np.abs(t) <= 1.0
        direct = np.where(inside, 0.5 + 0.75 * t - 0.25 * t**3, 0.0)
        # Only windowed samples count: mask to [lo, hi).
        idx = np.arange(values.size)
        windowed = (idx[None, :] >= lo[:, None]) & (idx[None, :] < hi[:, None])
        np.testing.assert_allclose(got, (direct * windowed).sum(axis=1), atol=1e-12)

    def test_pdf_sums_match_direct(self):
        rng = np.random.default_rng(2)
        values = np.sort(rng.uniform(0.0, 10.0, 256))
        h = 3.0
        moments = build_moments(values)
        x = rng.uniform(0.0, 10.0, 32)
        lo = np.searchsorted(values, x - h, side="left")
        hi = np.searchsorted(values, x + h, side="right")
        got = epan_pdf_sums(moments, x, 1.0 / h, lo, hi)
        t = (x[:, None] - values[None, :]) / h
        direct = np.where(np.abs(t) <= 1.0, 0.75 * (1.0 - t**2), 0.0)
        np.testing.assert_allclose(got, direct.sum(axis=1), atol=1e-12)

    def test_segments_do_not_leak(self):
        values = np.sort(np.random.default_rng(3).uniform(0.0, 10.0, 100))
        offsets = np.array([0, 40, 40, 100])  # middle segment empty
        moments = build_moments(values, offsets)
        # Full-window sum over segment 2 only counts its own samples.
        x = np.array([5.0])
        got = epan_cdf_sums(
            moments,
            x,
            1e-12,  # inv_h ~ 0: every CDF term is ~0.5
            np.array([40]),
            np.array([100]),
            segment=np.array([2]),
        )
        np.testing.assert_allclose(got, 0.5 * 60, atol=1e-9)

    def test_empty_sample(self):
        moments = build_moments(np.array([]))
        out = epan_cdf_sums(
            moments, np.array([0.0]), 1.0, np.array([0]), np.array([0])
        )
        np.testing.assert_array_equal(out, [0.0])
