"""Tests for equi-depth histograms (repro.core.histogram.equi_depth)."""

import numpy as np
import pytest

from repro.core.base import InvalidSampleError
from repro.core.histogram import EquiDepthHistogram
from repro.data.domain import Interval


class TestConstruction:
    def test_boundaries_at_quantiles(self):
        sample = np.arange(100, dtype=float)
        hist = EquiDepthHistogram(sample, 4)
        np.testing.assert_allclose(
            hist.boundaries, np.quantile(sample, [0, 0.25, 0.5, 0.75, 1.0])
        )

    def test_equal_mass_per_bin(self):
        rng = np.random.default_rng(1)
        sample = rng.exponential(1.0, 1_000)
        hist = EquiDepthHistogram(sample, 10)
        np.testing.assert_allclose(hist.counts, 100.0)

    def test_rejects_more_bins_than_samples(self):
        with pytest.raises(InvalidSampleError):
            EquiDepthHistogram(np.array([1.0, 2.0]), 5)

    def test_rejects_zero_bins(self):
        with pytest.raises(InvalidSampleError):
            EquiDepthHistogram(np.array([1.0, 2.0]), 0)


class TestSelectivity:
    def test_mass_conserved(self):
        rng = np.random.default_rng(3)
        sample = rng.normal(0, 1, 500)
        hist = EquiDepthHistogram(sample, 20)
        assert hist.selectivity(sample.min(), sample.max()) == pytest.approx(1.0)

    def test_zero_outside_sample_range(self):
        hist = EquiDepthHistogram(np.array([1.0, 2.0, 3.0, 4.0]), 2)
        assert hist.selectivity(10.0, 20.0) == 0.0

    def test_skew_adaptivity(self):
        """Narrow bins where the data is dense: the left half of an
        exponential sample gets far more resolution than the right."""
        rng = np.random.default_rng(5)
        sample = rng.exponential(1.0, 2_000)
        hist = EquiDepthHistogram(sample, 16)
        widths = np.diff(hist.boundaries)
        assert widths[0] < widths[-1] / 5

    def test_duplicates_become_point_masses(self):
        """Heavy duplicates collapse quantiles into point masses rather
        than silently losing mass."""
        sample = np.concatenate([np.full(600, 5.0), np.linspace(0, 10, 400)])
        hist = EquiDepthHistogram(sample, 10, Interval(0, 10))
        point_mass = sum(m for x, m in hist.point_masses if x == 5.0)
        assert point_mass >= 0.4
        assert hist.selectivity(0.0, 10.0) == pytest.approx(1.0)

    def test_point_query_on_duplicated_value(self):
        sample = np.concatenate([np.full(600, 5.0), np.linspace(0, 10, 400)])
        hist = EquiDepthHistogram(sample, 10, Interval(0, 10))
        assert hist.selectivity(5.0, 5.0) >= 0.4
