"""Tests for Gaussian KDE derivatives (repro.core.kernel.density)."""

import numpy as np
import pytest

from repro.core.base import InvalidSampleError
from repro.core.kernel.density import KernelDensity
from repro.data.domain import Interval


@pytest.fixture()
def normal_sample():
    return np.random.default_rng(0).normal(0.0, 1.0, 4_000)


class TestDensity:
    def test_matches_true_normal_density(self, normal_sample):
        kde = KernelDensity(normal_sample, 0.25)
        x = np.array([-1.0, 0.0, 1.0])
        true = np.exp(-0.5 * x * x) / np.sqrt(2 * np.pi)
        np.testing.assert_allclose(kde.density(x), true, atol=0.03)

    def test_integrates_to_one(self, normal_sample):
        kde = KernelDensity(normal_sample, 0.25)
        grid = kde.grid(1024, pad=5.0)
        mass = np.trapezoid(kde.density(grid), grid)
        assert mass == pytest.approx(1.0, abs=1e-3)


class TestDerivatives:
    def test_first_derivative_sign(self, normal_sample):
        kde = KernelDensity(normal_sample, 0.3)
        # Rising left of the mode, falling right of it.
        assert kde.derivative(np.array([-1.0]), 1)[0] > 0
        assert kde.derivative(np.array([1.0]), 1)[0] < 0

    def test_second_derivative_sign(self, normal_sample):
        kde = KernelDensity(normal_sample, 0.3)
        # Concave at the mode, convex in the tails.
        assert kde.derivative(np.array([0.0]), 2)[0] < 0
        assert kde.derivative(np.array([2.5]), 2)[0] > 0

    def test_derivative_matches_finite_difference(self, normal_sample):
        kde = KernelDensity(normal_sample, 0.4)
        x = 0.7
        eps = 1e-5
        numeric = (kde.density(np.array([x + eps]))[0] - kde.density(np.array([x - eps]))[0]) / (
            2 * eps
        )
        analytic = kde.derivative(np.array([x]), 1)[0]
        assert analytic == pytest.approx(numeric, rel=1e-4)

    def test_second_derivative_matches_finite_difference(self, normal_sample):
        kde = KernelDensity(normal_sample, 0.4)
        x, eps = 0.7, 1e-4
        f = lambda v: kde.density(np.array([v]))[0]
        numeric = (f(x + eps) - 2 * f(x) + f(x - eps)) / eps**2
        analytic = kde.derivative(np.array([x]), 2)[0]
        assert analytic == pytest.approx(numeric, rel=1e-3)

    def test_unsupported_order(self, normal_sample):
        with pytest.raises(InvalidSampleError):
            KernelDensity(normal_sample, 0.3).derivative(np.zeros(1), order=5)


class TestRoughness:
    def test_roughness_of_normal_first_derivative(self, normal_sample):
        """R(f') = 1 / (4 sqrt(pi) sigma^3) for the Normal."""
        kde = KernelDensity(normal_sample, 0.20)
        expected = 1.0 / (4.0 * np.sqrt(np.pi))
        assert kde.roughness(1, points=2048) == pytest.approx(expected, rel=0.15)

    def test_roughness_of_normal_second_derivative(self, normal_sample):
        """R(f'') = 3 / (8 sqrt(pi) sigma^5) for the Normal."""
        kde = KernelDensity(normal_sample, 0.25)
        expected = 3.0 / (8.0 * np.sqrt(np.pi))
        assert kde.roughness(2, points=2048) == pytest.approx(expected, rel=0.3)

    def test_grid_respects_domain(self, normal_sample):
        clipped = np.clip(normal_sample, -2.0, 2.0)
        kde = KernelDensity(clipped, 0.3, Interval(-2.0, 2.0))
        grid = kde.grid(128)
        assert grid[0] == -2.0 and grid[-1] == 2.0

    def test_grid_needs_two_points(self, normal_sample):
        with pytest.raises(InvalidSampleError):
            KernelDensity(normal_sample, 0.3).grid(1)
