"""Tests for Gaussian KDE derivatives (repro.core.kernel.density)."""

import numpy as np
import pytest

from repro.core.base import InvalidSampleError
from repro.core.kernel.density import KernelDensity
from repro.data.domain import Interval


@pytest.fixture()
def normal_sample():
    return np.random.default_rng(0).normal(0.0, 1.0, 4_000)


class TestDensity:
    def test_matches_true_normal_density(self, normal_sample):
        kde = KernelDensity(normal_sample, 0.25)
        x = np.array([-1.0, 0.0, 1.0])
        true = np.exp(-0.5 * x * x) / np.sqrt(2 * np.pi)
        np.testing.assert_allclose(kde.density(x), true, atol=0.03)

    def test_integrates_to_one(self, normal_sample):
        kde = KernelDensity(normal_sample, 0.25)
        grid = kde.grid(1024, pad=5.0)
        mass = np.trapezoid(kde.density(grid), grid)
        assert mass == pytest.approx(1.0, abs=1e-3)


class TestDerivatives:
    def test_first_derivative_sign(self, normal_sample):
        kde = KernelDensity(normal_sample, 0.3)
        # Rising left of the mode, falling right of it.
        assert kde.derivative(np.array([-1.0]), 1)[0] > 0
        assert kde.derivative(np.array([1.0]), 1)[0] < 0

    def test_second_derivative_sign(self, normal_sample):
        kde = KernelDensity(normal_sample, 0.3)
        # Concave at the mode, convex in the tails.
        assert kde.derivative(np.array([0.0]), 2)[0] < 0
        assert kde.derivative(np.array([2.5]), 2)[0] > 0

    def test_derivative_matches_finite_difference(self, normal_sample):
        kde = KernelDensity(normal_sample, 0.4)
        x = 0.7
        eps = 1e-5
        numeric = (kde.density(np.array([x + eps]))[0] - kde.density(np.array([x - eps]))[0]) / (
            2 * eps
        )
        analytic = kde.derivative(np.array([x]), 1)[0]
        assert analytic == pytest.approx(numeric, rel=1e-4)

    def test_second_derivative_matches_finite_difference(self, normal_sample):
        kde = KernelDensity(normal_sample, 0.4)
        x, eps = 0.7, 1e-4
        f = lambda v: kde.density(np.array([v]))[0]
        numeric = (f(x + eps) - 2 * f(x) + f(x - eps)) / eps**2
        analytic = kde.derivative(np.array([x]), 2)[0]
        assert analytic == pytest.approx(numeric, rel=1e-3)

    def test_unsupported_order(self, normal_sample):
        with pytest.raises(InvalidSampleError):
            KernelDensity(normal_sample, 0.3).derivative(np.zeros(1), order=5)


class TestRoughness:
    def test_roughness_of_normal_first_derivative(self, normal_sample):
        """R(f') = 1 / (4 sqrt(pi) sigma^3) for the Normal."""
        kde = KernelDensity(normal_sample, 0.20)
        expected = 1.0 / (4.0 * np.sqrt(np.pi))
        assert kde.roughness(1, points=2048) == pytest.approx(expected, rel=0.15)

    def test_roughness_of_normal_second_derivative(self, normal_sample):
        """R(f'') = 3 / (8 sqrt(pi) sigma^5) for the Normal."""
        kde = KernelDensity(normal_sample, 0.25)
        expected = 3.0 / (8.0 * np.sqrt(np.pi))
        assert kde.roughness(2, points=2048) == pytest.approx(expected, rel=0.3)

    def test_grid_respects_domain(self, normal_sample):
        clipped = np.clip(normal_sample, -2.0, 2.0)
        kde = KernelDensity(clipped, 0.3, Interval(-2.0, 2.0))
        grid = kde.grid(128)
        assert grid[0] == -2.0 and grid[-1] == 2.0

    def test_grid_needs_two_points(self, normal_sample):
        with pytest.raises(InvalidSampleError):
            KernelDensity(normal_sample, 0.3).grid(1)


class TestBinnedEvaluation:
    """The linear-binned convolution path: accuracy on uniform grids,
    strict fallback to the exact windowed path everywhere else."""

    def test_binned_matches_windowed_on_uniform_grid(self, normal_sample):
        kde = KernelDensity(normal_sample, 0.3)
        grid = np.linspace(-3.0, 3.0, 512)
        for order in (0, 1, 2):
            exact = kde.derivative(grid, order)
            binned = kde.derivative(grid, order, binned=True)
            scale = np.max(np.abs(exact))
            np.testing.assert_allclose(binned / scale, exact / scale, atol=2e-3)

    def test_multi_order_stack_shares_one_pass(self, normal_sample):
        kde = KernelDensity(normal_sample, 0.3)
        grid = np.linspace(-3.0, 3.0, 256)
        stack = kde.derivatives(grid, (0, 1, 2), binned=True)
        assert sorted(stack) == [0, 1, 2]
        for order, row in stack.items():
            assert row.shape == grid.shape
            np.testing.assert_array_equal(row, kde.derivative(grid, order, binned=True))

    def test_non_uniform_grid_falls_back_to_exact(self, normal_sample):
        kde = KernelDensity(normal_sample, 0.3)
        grid = np.sort(np.random.default_rng(1).uniform(-3.0, 3.0, 200))
        np.testing.assert_array_equal(
            kde.derivative(grid, 0, binned=True), kde.derivative(grid, 0)
        )

    def test_too_coarse_ratio_falls_back_to_exact(self, normal_sample):
        from repro.core.kernel.density import BINNED_MIN_RATIO

        kde = KernelDensity(normal_sample, 0.05)
        # step/g far above 1/BINNED_MIN_RATIO: binning would be lossy.
        grid = np.linspace(-3.0, 3.0, 32)
        step = grid[1] - grid[0]
        assert 0.05 < BINNED_MIN_RATIO * step
        np.testing.assert_array_equal(
            kde.derivative(grid, 0, binned=True), kde.derivative(grid, 0)
        )

    def test_descending_grid_falls_back_to_exact(self, normal_sample):
        kde = KernelDensity(normal_sample, 0.3)
        grid = np.linspace(3.0, -3.0, 128)
        np.testing.assert_array_equal(
            kde.derivative(grid, 0, binned=True), kde.derivative(grid, 0)
        )

    def test_roughness_binned_default_close_to_exact(self, normal_sample):
        kde = KernelDensity(normal_sample, 0.3)
        binned = kde.roughness(2)  # binned is the default now
        exact = kde.roughness(2, binned=False)
        assert binned == pytest.approx(exact, rel=1e-2)
