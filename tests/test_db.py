"""Tests for the optimizer substrate (repro.db)."""

import numpy as np
import pytest

from repro.core.base import InvalidQueryError, InvalidSampleError
from repro.data.domain import Interval
from repro.db import Catalog, Plan, Planner, RangePredicate, Table

DOMAIN = Interval(0.0, 1_000.0)


@pytest.fixture(scope="module")
def table():
    rng = np.random.default_rng(0)
    n = 50_000
    x = np.clip(rng.normal(400.0, 120.0, n), 0, 1_000)
    # y correlated with x (same cluster structure).
    y = np.clip(x + rng.normal(0.0, 40.0, n), 0, 1_000)
    z = rng.uniform(0, 1_000, n)
    return Table("points", {"x": (x, DOMAIN), "y": (y, DOMAIN), "z": (z, DOMAIN)})


@pytest.fixture(scope="module")
def catalog(table):
    cat = Catalog(family="kernel", sample_size=2_000)
    cat.analyze(table, joint=[("x", "y")], seed=7)
    return cat


class TestTable:
    def test_row_count_and_columns(self, table):
        assert table.row_count == 50_000
        assert table.column_names == ["x", "y", "z"]

    def test_rejects_ragged_columns(self):
        with pytest.raises(InvalidSampleError):
            Table(
                "bad",
                {"a": (np.zeros(3), DOMAIN), "b": (np.zeros(4), DOMAIN)},
            )

    def test_rejects_empty(self):
        with pytest.raises(InvalidSampleError):
            Table("bad", {})

    def test_rejects_out_of_domain(self):
        with pytest.raises(InvalidSampleError):
            Table("bad", {"a": (np.array([2_000.0]), DOMAIN)})

    def test_count_conjunction_matches_bruteforce(self, table):
        predicates = {"x": (300.0, 500.0), "z": (0.0, 250.0)}
        x, z = table.column("x"), table.column("z")
        expected = int(
            np.sum((x >= 300) & (x <= 500) & (z >= 0) & (z <= 250))
        )
        assert table.count(predicates) == expected

    def test_count_empty_predicates_is_all_rows(self, table):
        assert table.count({}) == table.row_count

    def test_count_unknown_column(self, table):
        with pytest.raises(InvalidQueryError):
            table.count({"nope": (0.0, 1.0)})

    def test_sample_rows_aligned(self, table):
        rows = table.sample_rows(100, seed=1)
        assert set(rows) == {"x", "y", "z"}
        # Row alignment: every sampled (x, y) pair exists in the table.
        lookup: dict[float, set[float]] = {}
        for xv, yv in zip(table.column("x"), table.column("y")):
            lookup.setdefault(float(xv), set()).add(float(yv))
        for xv, yv in zip(rows["x"], rows["y"]):
            assert float(yv) in lookup[float(xv)]


class TestCatalog:
    def test_requires_analyze(self, table):
        catalog = Catalog()
        with pytest.raises(InvalidQueryError):
            catalog.column_statistic(table.name, "x")

    def test_unknown_family(self):
        with pytest.raises(InvalidQueryError):
            Catalog(family="magic")

    def test_column_statistic_accuracy(self, table, catalog):
        statistic = catalog.column_statistic("points", "x")
        true = table.count({"x": (300.0, 500.0)}) / table.row_count
        assert statistic.selectivity(300.0, 500.0) == pytest.approx(true, abs=0.05)

    def test_joint_statistic_present(self, catalog):
        assert catalog.joint_statistic("points", "x", "y") is not None
        assert catalog.joint_orientation("points", "y", "x") == ("x", "y")
        assert catalog.joint_orientation("points", "x", "z") is None

    @pytest.mark.parametrize(
        "family", ["uniform", "sampling", "equi-width", "equi-depth", "v-optimal", "wavelet", "hybrid"]
    )
    def test_all_families_buildable(self, table, family):
        catalog = Catalog(family=family, sample_size=500)
        catalog.analyze(table, seed=2)
        statistic = catalog.column_statistic("points", "z")
        assert 0.0 <= statistic.selectivity(0.0, 500.0) <= 1.0


class TestPlanner:
    def test_single_predicate_cardinality(self, table, catalog):
        planner = Planner(catalog)
        predicates = [RangePredicate("x", 300.0, 500.0)]
        estimated = planner.cardinality(table, predicates)
        true = table.count({"x": (300.0, 500.0)})
        assert estimated == pytest.approx(true, rel=0.15)

    def test_joint_beats_independence_on_correlated_columns(self, table):
        """The planner with joint stats must estimate the correlated
        conjunction much better than with independence only."""
        with_joint = Catalog(family="kernel", sample_size=2_000)
        with_joint.analyze(table, joint=[("x", "y")], seed=7)
        without = Catalog(family="kernel", sample_size=2_000)
        without.analyze(table, seed=7)

        predicates = [
            RangePredicate("x", 350.0, 450.0),
            RangePredicate("y", 350.0, 450.0),
        ]
        true = table.count({"x": (350.0, 450.0), "y": (350.0, 450.0)})
        joint_est = Planner(with_joint).cardinality(table, predicates)
        indep_est = Planner(without).cardinality(table, predicates)
        assert abs(joint_est - true) < abs(indep_est - true)

    def test_joint_orientation_is_axis_correct(self, table, catalog):
        """Asymmetric ranges through the joint statistic: predicate
        order must not change the estimate, and the x-range must bind
        the x-axis (a swapped orientation would flip the answer)."""
        planner = Planner(catalog)
        x_range = RangePredicate("x", 100.0, 200.0)  # sparse for x
        y_range = RangePredicate("y", 350.0, 450.0)  # dense for y
        forward = planner.selectivity(table, [x_range, y_range])
        reversed_order = planner.selectivity(table, [y_range, x_range])
        assert forward == pytest.approx(reversed_order)
        # Compare against the catalog's joint statistic queried with
        # the axes explicitly in storage order.
        joint = catalog.joint_statistic("points", "x", "y")
        direct = joint.selectivity(100.0, 200.0, 350.0, 450.0)
        assert forward == pytest.approx(direct)
        # Sanity: swapping the ranges across axes gives a different
        # answer on this asymmetric query.
        swapped = joint.selectivity(350.0, 450.0, 100.0, 200.0)
        assert abs(direct - swapped) > 1e-4

    def test_same_column_conjuncts_intersect(self, table, catalog):
        planner = Planner(catalog)
        narrow = planner.selectivity(
            table,
            [RangePredicate("x", 300.0, 600.0), RangePredicate("x", 400.0, 900.0)],
        )
        direct = planner.selectivity(table, [RangePredicate("x", 400.0, 600.0)])
        assert narrow == pytest.approx(direct)

    def test_contradictory_conjuncts_zero(self, table, catalog):
        planner = Planner(catalog)
        assert (
            planner.selectivity(
                table,
                [RangePredicate("x", 0.0, 100.0), RangePredicate("x", 200.0, 300.0)],
            )
            == 0.0
        )

    def test_plan_selects_cheaper_path(self, table, catalog):
        planner = Planner(catalog)
        selective = planner.plan(table, [RangePredicate("x", 400.0, 402.0)])
        broad = planner.plan(table, [RangePredicate("x", 0.0, 1_000.0)])
        assert selective.access_path == "index scan"
        assert broad.access_path == "seq scan"

    def test_plan_is_explainable(self, table, catalog):
        plan = Planner(catalog).plan(table, [RangePredicate("x", 400.0, 402.0)])
        assert isinstance(plan, Plan)
        text = plan.explain()
        assert "points" in text and "rows~" in text

    def test_explain_omits_rejected_without_alternatives(self):
        plan = Plan("t", "seq scan", 10.0, 10.0, alternatives=())
        text = plan.explain()
        assert "rejected" not in text
        assert text.endswith(")")

    def test_explain_analyze_shows_provenance_and_timings(self, table, catalog):
        plan = Planner(catalog).plan(table, [RangePredicate("z", 0.0, 250.0)])
        analyzed = plan.explain(analyze=True)
        assert "estimates:" in analyzed
        assert "column(z)" in analyzed
        assert "timings:" in analyzed and "estimate=" in analyzed

    def test_joint_provenance_named(self, table, catalog):
        plan = Planner(catalog).plan(
            table, [RangePredicate("x", 300.0, 500.0), RangePredicate("y", 300.0, 500.0)]
        )
        assert any("joint(x,y)" in entry for entry in plan.provenance)

    def test_empty_predicates_full_selectivity(self, table, catalog):
        assert Planner(catalog).selectivity(table, []) == 1.0

    def test_bad_cost_constants(self, catalog):
        with pytest.raises(InvalidQueryError):
            Planner(catalog, cost_seq_tuple=0.0)
