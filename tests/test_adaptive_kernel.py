"""Tests for adaptive-bandwidth kernels (repro.core.kernel.adaptive)."""

import numpy as np
import pytest

from repro.bandwidth.normal_scale import kernel_bandwidth
from repro.core.base import InvalidSampleError
from repro.core.kernel import AdaptiveKernelEstimator, make_kernel_estimator
from repro.data.domain import Interval


@pytest.fixture()
def skewed_sample():
    """Exponential-ish: dense near zero, long sparse tail."""
    rng = np.random.default_rng(0)
    return np.clip(rng.exponential(1.0, 1_500), 0.0, 10.0)


class TestConstruction:
    def test_rejects_bad_alpha(self, skewed_sample):
        with pytest.raises(InvalidSampleError):
            AdaptiveKernelEstimator(skewed_sample, 0.5, alpha=0.0)

    def test_rejects_bad_bandwidth(self, skewed_sample):
        with pytest.raises(InvalidSampleError):
            AdaptiveKernelEstimator(skewed_sample, -1.0)

    def test_bandwidths_vary_with_density(self, skewed_sample):
        est = AdaptiveKernelEstimator(skewed_sample, 0.5)
        order = np.argsort(est._points)
        bandwidths = est.bandwidths
        # Narrow kernels in the dense head, wide kernels in the tail.
        head = bandwidths[est._points < 0.5].mean()
        tail = bandwidths[est._points > 4.0].mean()
        assert head < tail
        del order

    def test_alpha_zero_limit_is_fixed_bandwidth(self, skewed_sample):
        """alpha -> 0 recovers the fixed-h estimator (up to pilot noise)."""
        est = AdaptiveKernelEstimator(skewed_sample, 0.5, alpha=1e-9)
        np.testing.assert_allclose(est.bandwidths, 0.5, rtol=1e-6)


class TestSelectivity:
    def test_total_mass_one_unbounded(self, skewed_sample):
        est = AdaptiveKernelEstimator(skewed_sample, 0.5)
        assert est.selectivity(-100.0, 200.0) == pytest.approx(1.0)

    def test_total_mass_one_with_domain(self, skewed_sample):
        domain = Interval(0.0, 10.0)
        est = AdaptiveKernelEstimator(skewed_sample, 0.5, domain=domain)
        assert est.selectivity(0.0, 10.0) == pytest.approx(1.0, abs=1e-9)

    def test_density_integrates_to_selectivity(self, skewed_sample):
        est = AdaptiveKernelEstimator(skewed_sample, 0.5)
        grid = np.linspace(0.5, 3.0, 4001)
        numeric = np.trapezoid(est.density(grid), grid)
        assert numeric == pytest.approx(est.selectivity(0.5, 3.0), abs=1e-4)

    def test_vectorized_matches_scalar(self, skewed_sample):
        est = AdaptiveKernelEstimator(skewed_sample, 0.5)
        a = np.array([0.0, 1.0, 2.5])
        b = np.array([0.5, 2.0, 6.0])
        batch = est.selectivities(a, b)
        singles = [est.selectivity(x, y) for x, y in zip(a, b)]
        np.testing.assert_allclose(batch, singles)

    def test_monotone(self, skewed_sample):
        est = AdaptiveKernelEstimator(skewed_sample, 0.5)
        assert est.selectivity(0.0, 1.0) <= est.selectivity(0.0, 2.0)


class TestAccuracy:
    def test_beats_fixed_bandwidth_in_sparse_tail(self):
        """The adaptive estimator's raison d'être: with a bandwidth
        sized for the dense head, the fixed-h estimator is far too
        spiky in the tail; Abramson widening fixes the tail without
        ruining the head."""
        rng = np.random.default_rng(7)
        data = np.clip(rng.exponential(1.0, 200_000), 0.0, 20.0)
        sample = rng.choice(data, 2_000, replace=False)
        domain = Interval(0.0, 20.0)

        h = kernel_bandwidth(sample) / 3.0  # head-sized bandwidth
        fixed = make_kernel_estimator(sample, h, domain, boundary="reflection")
        adaptive = AdaptiveKernelEstimator(sample, h, domain=domain)

        # Tail queries where data is sparse.
        tail_queries = [(5.0, 5.5), (6.0, 6.5), (7.0, 7.5), (8.0, 8.5)]
        values = np.sort(data)

        def mre(estimator):
            errors = []
            for a, b in tail_queries:
                true = (
                    np.searchsorted(values, b, "right")
                    - np.searchsorted(values, a, "left")
                ) / data.size
                if true > 0:
                    errors.append(abs(estimator.selectivity(a, b) - true) / true)
            return np.mean(errors)

        assert mre(adaptive) < mre(fixed)
