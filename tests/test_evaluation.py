"""Tests for the theory-verification tooling (repro.evaluation)."""

import numpy as np
import pytest

from repro.core.base import InvalidQueryError
from repro.data.domain import Interval
from repro.evaluation import (
    ExponentialTruth,
    NormalTruth,
    UniformTruth,
    estimate_mise,
    fit_rate,
    integrated_squared_error,
    mise_over_sample_sizes,
)

DOMAIN = Interval(0.0, 10.0)


class TestTruths:
    @pytest.mark.parametrize(
        "truth",
        [
            NormalTruth(DOMAIN, mean=5.0, sigma=1.5),
            ExponentialTruth(DOMAIN, scale=2.0),
            UniformTruth(DOMAIN),
        ],
        ids=["normal", "exponential", "uniform"],
    )
    def test_pdf_integrates_to_one(self, truth):
        grid = np.linspace(DOMAIN.low, DOMAIN.high, 20_001)
        assert np.trapezoid(truth.pdf(grid), grid) == pytest.approx(1.0, abs=1e-6)

    @pytest.mark.parametrize(
        "truth",
        [NormalTruth(DOMAIN, mean=5.0, sigma=1.5), ExponentialTruth(DOMAIN, scale=2.0)],
        ids=["normal", "exponential"],
    )
    def test_cdf_limits(self, truth):
        assert truth.cdf(DOMAIN.low) == pytest.approx(0.0)
        assert truth.cdf(DOMAIN.high) == pytest.approx(1.0)

    def test_pdf_zero_outside_domain(self):
        truth = NormalTruth(DOMAIN, mean=5.0, sigma=1.5)
        assert truth.pdf(np.array([-1.0, 11.0])).tolist() == [0.0, 0.0]

    def test_selectivity_consistent_with_cdf(self):
        truth = ExponentialTruth(DOMAIN, scale=2.0)
        assert truth.selectivity(1.0, 3.0) == pytest.approx(
            float(truth.cdf(3.0) - truth.cdf(1.0))
        )

    def test_selectivity_rejects_inverted(self):
        with pytest.raises(InvalidQueryError):
            UniformTruth(DOMAIN).selectivity(5.0, 1.0)

    def test_samples_follow_distribution(self):
        truth = NormalTruth(DOMAIN, mean=5.0, sigma=1.5)
        rng = np.random.default_rng(0)
        sample = truth.sample(50_000, rng)
        assert sample.min() >= DOMAIN.low and sample.max() <= DOMAIN.high
        assert np.mean(sample <= 5.0) == pytest.approx(truth.cdf(5.0), abs=0.01)

    def test_default_scales_anchor_to_reference_domain(self):
        """Defaults must reproduce the library's data-file models."""
        from repro.data.domain import IntegerDomain

        truth = NormalTruth(IntegerDomain(20))
        assert truth.cdf(truth.domain.center) == pytest.approx(0.5, abs=1e-6)


class TestIse:
    def test_zero_for_perfect_estimator(self):
        truth = UniformTruth(DOMAIN)

        class Perfect:
            def density(self, x):
                return truth.pdf(x)

        assert integrated_squared_error(Perfect(), truth) == pytest.approx(0.0)

    def test_positive_for_wrong_estimator(self):
        truth = UniformTruth(DOMAIN)

        class Wrong:
            def density(self, x):
                return np.zeros_like(np.asarray(x))

        assert integrated_squared_error(Wrong(), truth) == pytest.approx(0.1, abs=1e-6)

    def test_grid_validation(self):
        with pytest.raises(InvalidQueryError):
            integrated_squared_error(None, UniformTruth(DOMAIN), grid_points=2)


class TestRates:
    def test_fit_rate_recovers_slope(self):
        points = [(100, 1.0), (1_000, 0.1), (10_000, 0.01)]
        assert fit_rate(points) == pytest.approx(-1.0)

    def test_fit_rate_needs_points(self):
        with pytest.raises(InvalidQueryError):
            fit_rate([(100, 1.0)])

    def test_kernel_mise_rate_near_minus_4_5(self):
        """Paper §4.2: the kernel estimator at the (true) optimal
        bandwidth converges at n^(-4/5)."""
        from repro.bandwidth.amise import normal_roughness, optimal_bandwidth
        from repro.core.kernel import KernelSelectivityEstimator

        truth = NormalTruth(DOMAIN, mean=5.0, sigma=1.5)

        def build(sample):
            h = optimal_bandwidth(sample.size, normal_roughness(2, 1.5))
            return KernelSelectivityEstimator(sample, h)

        points = mise_over_sample_sizes(
            build, truth, [200, 800, 3_200, 12_800], replications=8, grid_points=512
        )
        rate = fit_rate(points)
        assert -1.0 < rate < -0.55

    def test_histogram_mise_rate_near_minus_2_3(self):
        """Paper §4.1: the equi-width histogram at the optimal bin
        width converges at n^(-2/3)."""
        from repro.bandwidth.amise import normal_roughness, optimal_bin_width
        from repro.core.histogram import EquiWidthHistogram

        truth = NormalTruth(DOMAIN, mean=5.0, sigma=1.5)

        def build(sample):
            width = optimal_bin_width(sample.size, normal_roughness(1, 1.5))
            bins = max(1, int(round(DOMAIN.width / width)))
            return EquiWidthHistogram(sample, DOMAIN, bins)

        points = mise_over_sample_sizes(
            build, truth, [200, 800, 3_200, 12_800], replications=8, grid_points=512
        )
        rate = fit_rate(points)
        assert -0.85 < rate < -0.45

    def test_kernel_converges_faster_than_histogram(self):
        """The headline of §4: kernel MISE falls faster."""
        from repro.bandwidth.amise import (
            normal_roughness,
            optimal_bandwidth,
            optimal_bin_width,
        )
        from repro.core.histogram import EquiWidthHistogram
        from repro.core.kernel import KernelSelectivityEstimator

        truth = NormalTruth(DOMAIN, mean=5.0, sigma=1.5)
        n = 5_000

        def kernel_build(sample):
            return KernelSelectivityEstimator(
                sample, optimal_bandwidth(sample.size, normal_roughness(2, 1.5))
            )

        def hist_build(sample):
            width = optimal_bin_width(sample.size, normal_roughness(1, 1.5))
            return EquiWidthHistogram(
                sample, DOMAIN, max(1, int(round(DOMAIN.width / width)))
            )

        kernel_mise = estimate_mise(kernel_build, truth, n, replications=8, grid_points=512)
        hist_mise = estimate_mise(hist_build, truth, n, replications=8, grid_points=512)
        assert kernel_mise < hist_mise
