"""Pickle round-trips for every estimator family.

A database system builds statistics once at ANALYZE time and caches
them in the catalog; that requires every estimator to serialize and
answer identically after deserialization.
"""

import pickle

import numpy as np
import pytest

from repro import estimators
from repro.data.domain import IntegerDomain, Interval
from repro.data.relation import Relation
from repro.feedback import AdaptiveHistogram

DOMAIN = Interval(0.0, 100.0)


@pytest.fixture(scope="module")
def sample():
    return np.random.default_rng(3).uniform(0.0, 100.0, 400)


BUILDERS = {
    "sampling": lambda s: estimators.sampling(s, DOMAIN),
    "uniform": lambda s: estimators.uniform(DOMAIN),
    "equi_width": lambda s: estimators.equi_width(s, DOMAIN, bins=9),
    "equi_depth": lambda s: estimators.equi_depth(s, DOMAIN, bins=7),
    "max_diff": lambda s: estimators.max_diff(s, DOMAIN, bins=7),
    "ash": lambda s: estimators.ash(s, DOMAIN, bins=8, shifts=4),
    "v_optimal": lambda s: estimators.v_optimal(s, DOMAIN, bins=6),
    "wavelet": lambda s: estimators.wavelet(s, DOMAIN, coefficients=16),
    "end_biased": lambda s: estimators.end_biased(s, DOMAIN, top=4),
    "kernel_none": lambda s: estimators.kernel(s, None, bandwidth=5.0),
    "kernel_reflection": lambda s: estimators.kernel(
        s, DOMAIN, bandwidth=5.0, boundary="reflection"
    ),
    "kernel_boundary": lambda s: estimators.kernel(
        s, DOMAIN, bandwidth=5.0, boundary="kernel"
    ),
    "hybrid": lambda s: estimators.hybrid(s, DOMAIN, max_changepoints=3),
}

QUERIES = [(0.0, 10.0), (25.5, 33.25), (0.0, 100.0), (95.0, 100.0), (50.0, 50.0)]


@pytest.mark.parametrize("kind", sorted(BUILDERS))
def test_estimator_pickle_roundtrip(kind, sample):
    original = BUILDERS[kind](sample)
    restored = pickle.loads(pickle.dumps(original))
    for a, b in QUERIES:
        assert restored.selectivity(a, b) == original.selectivity(a, b), (a, b)


def test_adaptive_histogram_roundtrip():
    est = AdaptiveHistogram(DOMAIN, bins=16)
    est.observe(0.0, 50.0, 0.8)
    restored = pickle.loads(pickle.dumps(est))
    np.testing.assert_array_equal(restored.bin_masses, est.bin_masses)
    # The restored estimator keeps learning.
    restored.observe(50.0, 100.0, 0.1)
    assert restored.sample_size == est.sample_size + 1


def test_relation_roundtrip():
    domain = IntegerDomain(8)
    relation = Relation(np.array([1.0, 5.0, 9.0]), domain, name="pickled")
    restored = pickle.loads(pickle.dumps(relation))
    assert restored.count(0.0, 6.0) == 2
    assert restored.name == "pickled"
    assert isinstance(restored.domain, IntegerDomain)
    assert restored.domain.p == 8


def test_integer_domain_roundtrip():
    domain = IntegerDomain(12)
    restored = pickle.loads(pickle.dumps(domain))
    assert restored.p == 12
    assert restored.high == domain.high
