"""Tests for workload oracles (repro.bandwidth.oracle)."""

import numpy as np
import pytest

from repro.bandwidth.oracle import (
    SweepResult,
    default_bandwidth_grid,
    default_bin_grid,
    oracle_bandwidth,
    oracle_bin_count,
    sweep,
)
from repro.core.base import InvalidQueryError
from repro.core.histogram import EquiWidthHistogram
from repro.core.kernel import KernelSelectivityEstimator
from repro.data.domain import Interval
from repro.data.relation import Relation
from repro.workload.queries import generate_query_file


@pytest.fixture()
def setup():
    rng = np.random.default_rng(5)
    domain = Interval(0.0, 10.0)
    data = np.clip(rng.normal(5.0, 1.5, 50_000), 0, 10)
    relation = Relation(data, domain)
    sample = relation.sample(1_000, seed=2)
    queries = generate_query_file(relation, 0.02, n_queries=120, seed=3)
    return domain, sample, queries


class TestSweep:
    def test_returns_minimum(self, setup):
        domain, sample, queries = setup
        result = oracle_bin_count(
            lambda k: EquiWidthHistogram(sample, domain, k), queries, [2, 8, 32, 128, 512]
        )
        assert isinstance(result, SweepResult)
        assert result.best_error == min(result.errors)
        assert result.best in result.candidates

    def test_oracle_beats_extremes(self, setup):
        domain, sample, queries = setup
        from repro.workload.metrics import mean_relative_error

        result = oracle_bin_count(
            lambda k: EquiWidthHistogram(sample, domain, k), queries
        )
        worst = mean_relative_error(EquiWidthHistogram(sample, domain, 1), queries)
        assert result.best_error <= worst

    def test_failing_candidates_skipped(self, setup):
        domain, sample, queries = setup

        def factory(h: float):
            if h < 1.0:
                raise ValueError("too small")
            return KernelSelectivityEstimator(sample, h)

        result = sweep(factory, [0.1, 0.5, 1.5, 2.0], queries)
        assert set(result.candidates) == {1.5, 2.0}

    def test_all_failing_raises(self, setup):
        _, __, queries = setup

        def factory(h: float):
            raise ValueError("nope")

        with pytest.raises(InvalidQueryError):
            sweep(factory, [1.0, 2.0], queries)

    def test_as_rows(self, setup):
        domain, sample, queries = setup
        result = oracle_bin_count(
            lambda k: EquiWidthHistogram(sample, domain, k), queries, [4, 16]
        )
        rows = result.as_rows()
        assert len(rows) == 2
        assert rows[0][0] == 4.0


class TestBandwidthOracle:
    def test_refinement_does_not_regress(self, setup):
        domain, sample, queries = setup

        def factory(h: float):
            return KernelSelectivityEstimator(sample, h, domain=domain)

        coarse = sweep(factory, default_bandwidth_grid(0.5, span=10, points=8), queries)
        refined = oracle_bandwidth(
            factory, queries, default_bandwidth_grid(0.5, span=10, points=8), refine=2
        )
        assert refined.best_error <= coarse.best_error


class TestGrids:
    def test_bin_grid_bounds(self):
        grid = default_bin_grid(500, points=12)
        assert grid[0] == 1 and grid[-1] == 500
        assert (np.diff(grid) > 0).all()

    def test_bin_grid_rejects_bad_max(self):
        with pytest.raises(InvalidQueryError):
            default_bin_grid(0)

    def test_bandwidth_grid_bounds(self):
        grid = default_bandwidth_grid(1.0, span=10.0, points=5)
        assert grid[0] == pytest.approx(0.1)
        assert grid[-1] == pytest.approx(10.0)

    def test_bandwidth_grid_rejects_bad_inputs(self):
        with pytest.raises(InvalidQueryError):
            default_bandwidth_grid(-1.0)
        with pytest.raises(InvalidQueryError):
            default_bandwidth_grid(1.0, span=0.5)
