"""End-to-end integration tests: the paper's qualitative claims.

These tie the whole pipeline together — data files, sampling, query
files, estimators, selection rules, metrics — and assert the claims
the reproduction stands on.  They use the FAST experiment protocol
(150 queries) so the whole module stays under a minute.
"""

import numpy as np
import pytest

from repro import estimators
from repro.bandwidth.normal_scale import kernel_bandwidth
from repro.core.kernel import make_kernel_estimator
from repro.experiments.harness import FAST, load_context
from repro.workload.metrics import mean_relative_error, summarize_errors
from repro.workload.queries import position_sweep


@pytest.fixture(scope="module")
def n20():
    return load_context("n(20)", FAST)


@pytest.fixture(scope="module")
def u20():
    return load_context("u(20)", FAST)


@pytest.fixture(scope="module")
def arap1():
    return load_context("arap1", FAST)


class TestOrderingClaims:
    def test_kernel_beats_histogram_beats_sampling_on_normal(self, n20):
        """Paper Fig. 6 / §5.2.2: kernel < equi-width < sampling."""
        sample, domain, queries = n20.sample, n20.relation.domain, n20.queries
        kernel = mean_relative_error(estimators.kernel(sample, domain), queries)
        ewh = mean_relative_error(estimators.equi_width(sample, domain), queries)
        sampling = mean_relative_error(estimators.sampling(sample), queries)
        assert kernel < ewh < sampling

    def test_uniform_estimator_collapses_on_skewed_data(self):
        """Paper Fig. 8: the uniform assumption is catastrophically bad
        on the census file."""
        context = load_context("iw", FAST)
        uniform = mean_relative_error(
            estimators.uniform(context.relation.domain), context.queries
        )
        ewh = mean_relative_error(
            estimators.equi_width(context.sample, context.relation.domain),
            context.queries,
        )
        assert uniform > 3 * ewh

    def test_uniform_estimator_fine_on_uniform_data(self, u20):
        """...but on uniform data it is essentially free and accurate."""
        uniform = mean_relative_error(
            estimators.uniform(u20.relation.domain), u20.queries
        )
        assert uniform < 0.10

    def test_hybrid_beats_kernel_on_changepoint_data(self, arap1):
        """Paper Fig. 12: on TIGER-like data the hybrid wins."""
        from repro.experiments.fig12 import HYBRID_KWARGS

        sample, domain, queries = arap1.sample, arap1.relation.domain, arap1.queries
        hybrid = mean_relative_error(
            estimators.hybrid(sample, domain, **HYBRID_KWARGS), queries
        )
        kernel = mean_relative_error(
            estimators.kernel(sample, domain, bandwidth="plug-in"), queries
        )
        assert hybrid < kernel

    def test_kernel_beats_hybrid_on_smooth_data(self, n20):
        """...and on smooth synthetic data the plain kernel wins."""
        from repro.experiments.fig12 import HYBRID_KWARGS

        sample, domain, queries = n20.sample, n20.relation.domain, n20.queries
        hybrid = mean_relative_error(
            estimators.hybrid(sample, domain, **HYBRID_KWARGS), queries
        )
        kernel = mean_relative_error(
            estimators.kernel(sample, domain, bandwidth="plug-in"), queries
        )
        assert kernel < hybrid


class TestBoundaryClaims:
    def test_boundary_treatment_halves_edge_error(self, u20):
        """Paper Figs. 3/10: both treatments collapse the edge spike."""
        sample, relation = u20.sample, u20.relation
        h = kernel_bandwidth(sample)
        sweep = position_sweep(relation, 0.01, n_positions=60)
        edge_queries = slice(0, 5)

        def edge_error(boundary: str) -> float:
            est = make_kernel_estimator(sample, h, relation.domain, boundary=boundary)
            from repro.workload.metrics import relative_errors

            rel = relative_errors(est, sweep)[edge_queries]
            return float(np.nanmean(rel))

        untreated = edge_error("none")
        assert edge_error("reflection") < 0.5 * untreated
        assert edge_error("kernel") < 0.5 * untreated


class TestSelectionRuleClaims:
    def test_ns_good_on_synthetic_bad_on_real(self, n20, arap1):
        """Paper Fig. 11: the NS bandwidth is near-optimal on Normal
        data but oversmooths badly on TIGER-like data, where the
        plug-in rule recovers most of the loss."""

        def errors(context):
            sample, domain, queries = (
                context.sample,
                context.relation.domain,
                context.queries,
            )
            ns = mean_relative_error(
                estimators.kernel(sample, domain, bandwidth="normal-scale"), queries
            )
            dpi = mean_relative_error(
                estimators.kernel(sample, domain, bandwidth="plug-in"), queries
            )
            return ns, dpi

        ns_synth, dpi_synth = errors(n20)
        ns_real, dpi_real = errors(arap1)
        assert abs(ns_synth - dpi_synth) < 0.05  # both fine on Normal
        assert dpi_real < 0.75 * ns_real  # DPI clearly better on real data


class TestEndToEndWorkflow:
    def test_quickstart_flow(self, n20):
        """The README quickstart path, asserted end to end."""
        relation = n20.relation
        sample = n20.sample
        est = estimators.kernel(sample, relation.domain)
        width = 0.01 * relation.domain.width
        center = relation.domain.center
        a, b = center - width / 2, center + width / 2
        estimate = est.estimate_result_size(a, b, relation.size)
        true = relation.count(a, b)
        assert abs(estimate - true) < 0.25 * true

    def test_summary_over_query_file(self, n20):
        est = estimators.equi_width(n20.sample, n20.relation.domain)
        summary = summarize_errors(est, n20.queries)
        assert 0.0 < summary.mre < 0.5
        assert summary.n_queries == len(n20.queries)
