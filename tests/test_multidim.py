"""Tests for the 2-D extension (repro.multidim)."""

import numpy as np
import pytest

from repro.core.base import InvalidQueryError, InvalidSampleError
from repro.data.domain import Interval
from repro.multidim import (
    EquiWidthHistogram2D,
    KernelEstimator2D,
    Relation2D,
    generate_query_file_2d,
    mean_relative_error_2d,
    normal_scale_bandwidths_2d,
    plugin_bandwidths_2d,
)
from repro.multidim.relation2d import synthetic_spatial_2d

DOMAIN = Interval(0.0, 100.0)


@pytest.fixture()
def gaussian_cloud():
    rng = np.random.default_rng(0)
    points = rng.normal(50.0, 10.0, size=(20_000, 2)).clip(0, 100)
    return Relation2D(points, DOMAIN, DOMAIN, name="gauss2d")


class TestRelation2D:
    def test_rejects_bad_shape(self):
        with pytest.raises(InvalidSampleError):
            Relation2D(np.zeros((5, 3)), DOMAIN, DOMAIN)

    def test_rejects_empty(self):
        with pytest.raises(InvalidSampleError):
            Relation2D(np.zeros((0, 2)), DOMAIN, DOMAIN)

    def test_rejects_out_of_domain(self):
        points = np.array([[50.0, 150.0]])
        with pytest.raises(InvalidSampleError):
            Relation2D(points, DOMAIN, DOMAIN)

    def test_count_matches_bruteforce(self, gaussian_cloud):
        points = gaussian_cloud.points
        rng = np.random.default_rng(1)
        for _ in range(20):
            ax, ay = rng.uniform(0, 80, 2)
            bx, by = ax + rng.uniform(0, 20), ay + rng.uniform(0, 20)
            expected = int(
                np.sum(
                    (points[:, 0] >= ax)
                    & (points[:, 0] <= bx)
                    & (points[:, 1] >= ay)
                    & (points[:, 1] <= by)
                )
            )
            assert gaussian_cloud.count(ax, bx, ay, by) == expected

    def test_sample_shape(self, gaussian_cloud):
        sample = gaussian_cloud.sample(100, seed=2)
        assert sample.shape == (100, 2)

    def test_sample_without_replacement_limit(self, gaussian_cloud):
        with pytest.raises(InvalidQueryError):
            gaussian_cloud.sample(gaussian_cloud.size + 1)

    def test_synthetic_spatial_generator(self):
        relation = synthetic_spatial_2d(5_000, seed=1)
        assert relation.size == 5_000
        assert relation.domain_x.width == relation.domain_y.width


class TestBandwidths2D:
    def test_positive_and_axiswise(self):
        rng = np.random.default_rng(3)
        sample = np.column_stack(
            [rng.normal(0, 1, 1_000), rng.normal(0, 10, 1_000)]
        )
        hx, hy = normal_scale_bandwidths_2d(sample)
        assert hy == pytest.approx(10 * hx, rel=0.15)

    def test_rejects_1d(self):
        with pytest.raises(InvalidSampleError):
            normal_scale_bandwidths_2d(np.zeros(10))

    def test_plugin_close_to_ns_on_gaussian(self, gaussian_cloud):
        sample = gaussian_cloud.sample(1_500, seed=20)
        ns = normal_scale_bandwidths_2d(sample)
        pi = plugin_bandwidths_2d(sample)
        for a, b in zip(ns, pi):
            assert 0.4 * a < b < 1.8 * a

    def test_plugin_shrinks_on_structured_data(self):
        """Clustered data must drive the plug-in far below NS — the
        2-D version of the paper's Fig. 11 effect."""
        from repro.multidim.relation2d import synthetic_spatial_2d

        relation = synthetic_spatial_2d(50_000, seed=2)
        sample = relation.sample(1_500, seed=3)
        ns = normal_scale_bandwidths_2d(sample)
        pi = plugin_bandwidths_2d(sample)
        assert pi[0] < 0.5 * ns[0]
        assert pi[1] < 0.5 * ns[1]

    def test_plugin_rejects_1d(self):
        with pytest.raises(InvalidSampleError):
            plugin_bandwidths_2d(np.zeros(10))


class TestKernel2D:
    def test_total_mass_one(self, gaussian_cloud):
        sample = gaussian_cloud.sample(1_500, seed=4)
        est = KernelEstimator2D(sample, domain_x=DOMAIN, domain_y=DOMAIN)
        assert est.selectivity(0, 100, 0, 100) == pytest.approx(1.0, abs=0.02)

    def test_factorizes_on_rectangles(self):
        """For a single sample point the rectangle mass is the product
        of the 1-D masses."""
        sample = np.array([[50.0, 50.0], [50.0, 50.0]])
        est = KernelEstimator2D(sample, bandwidths=(10.0, 20.0))
        from repro.core.kernel.functions import EPANECHNIKOV

        mx = float(EPANECHNIKOV.mass_between((45 - 50) / 10, (60 - 50) / 10))
        my = float(EPANECHNIKOV.mass_between((40 - 50) / 20, (55 - 50) / 20))
        assert est.selectivity(45, 60, 40, 55) == pytest.approx(mx * my)

    def test_accuracy_on_gaussian_cloud(self, gaussian_cloud):
        sample = gaussian_cloud.sample(2_000, seed=5)
        est = KernelEstimator2D(sample, domain_x=DOMAIN, domain_y=DOMAIN)
        queries = generate_query_file_2d(gaussian_cloud, 0.01, n_queries=100, seed=6)
        assert mean_relative_error_2d(est, queries) < 0.25

    def test_beats_sampling_fraction(self, gaussian_cloud):
        """The 2-D kernel beats the raw sample fraction, as in 1-D."""
        sample = gaussian_cloud.sample(2_000, seed=7)
        est = KernelEstimator2D(sample, domain_x=DOMAIN, domain_y=DOMAIN)
        queries = generate_query_file_2d(gaussian_cloud, 0.01, n_queries=120, seed=8)

        class SampleFraction:
            def selectivity(self, ax, bx, ay, by):
                inside = (
                    (sample[:, 0] >= ax)
                    & (sample[:, 0] <= bx)
                    & (sample[:, 1] >= ay)
                    & (sample[:, 1] <= by)
                )
                return inside.mean()

        kernel_mre = mean_relative_error_2d(est, queries)
        sampling_mre = mean_relative_error_2d(SampleFraction(), queries)
        assert kernel_mre < sampling_mre

    def test_rejects_bad_bandwidths(self, gaussian_cloud):
        sample = gaussian_cloud.sample(100, seed=9)
        with pytest.raises(InvalidSampleError):
            KernelEstimator2D(sample, bandwidths=(0.0, 1.0))

    def test_density_positive_at_mode(self, gaussian_cloud):
        sample = gaussian_cloud.sample(1_000, seed=10)
        est = KernelEstimator2D(sample, domain_x=DOMAIN, domain_y=DOMAIN)
        center = est.density(np.array([50.0]), np.array([50.0]))[0]
        corner = est.density(np.array([99.0]), np.array([99.0]))[0]
        assert center > corner


class TestHistogram2D:
    def test_mass_conserved(self, gaussian_cloud):
        sample = gaussian_cloud.sample(1_000, seed=11)
        hist = EquiWidthHistogram2D(sample, DOMAIN, DOMAIN, 8, 8)
        assert hist.selectivity(0, 100, 0, 100) == pytest.approx(1.0)

    def test_quarter_of_uniform(self):
        rng = np.random.default_rng(12)
        sample = rng.uniform(0, 100, size=(5_000, 2))
        hist = EquiWidthHistogram2D(sample, DOMAIN, DOMAIN, 10, 10)
        assert hist.selectivity(0, 50, 0, 50) == pytest.approx(0.25, abs=0.03)

    def test_rejects_bad_bins(self):
        with pytest.raises(InvalidSampleError):
            EquiWidthHistogram2D(np.zeros((5, 2)), DOMAIN, DOMAIN, 0, 4)

    def test_kernel_competitive_with_tuned_histogram(self, gaussian_cloud):
        """With only 2,000 points in two dimensions the kernel ties a
        *well-tuned* grid — and beats clearly mistuned ones, which is
        what the smoothing-parameter story predicts."""
        sample = gaussian_cloud.sample(2_000, seed=13)
        queries = generate_query_file_2d(gaussian_cloud, 0.01, n_queries=120, seed=14)
        kernel = mean_relative_error_2d(
            KernelEstimator2D(sample, domain_x=DOMAIN, domain_y=DOMAIN), queries
        )
        tuned = mean_relative_error_2d(
            EquiWidthHistogram2D(sample, DOMAIN, DOMAIN, 16, 16), queries
        )
        coarse = mean_relative_error_2d(
            EquiWidthHistogram2D(sample, DOMAIN, DOMAIN, 3, 3), queries
        )
        fine = mean_relative_error_2d(
            EquiWidthHistogram2D(sample, DOMAIN, DOMAIN, 64, 64), queries
        )
        assert kernel < 1.25 * tuned
        assert kernel < coarse
        assert kernel < fine


class TestWorkload2D:
    def test_query_area(self, gaussian_cloud):
        queries = generate_query_file_2d(gaussian_cloud, 0.04, n_queries=50, seed=15)
        area = (queries.bx - queries.ax) * (queries.by - queries.ay)
        expected = 0.04 * DOMAIN.width * DOMAIN.width
        np.testing.assert_allclose(area, expected, rtol=1e-9)

    def test_rejects_bad_fraction(self, gaussian_cloud):
        with pytest.raises(InvalidQueryError):
            generate_query_file_2d(gaussian_cloud, 2.0)

    def test_true_counts_attached(self, gaussian_cloud):
        queries = generate_query_file_2d(gaussian_cloud, 0.01, n_queries=20, seed=16)
        for i in range(len(queries)):
            assert queries.true_counts[i] == gaussian_cloud.count(
                queries.ax[i], queries.bx[i], queries.ay[i], queries.by[i]
            )
