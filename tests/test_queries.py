"""Tests for query files (repro.workload.queries)."""

import numpy as np
import pytest

from repro.core.base import InvalidQueryError
from repro.data.domain import IntegerDomain, Interval
from repro.data.relation import Relation
from repro.workload.queries import (
    QueryFile,
    RangeQuery,
    generate_query_file,
    position_sweep,
)


@pytest.fixture()
def relation():
    rng = np.random.default_rng(3)
    domain = IntegerDomain(12)
    values = domain.snap(rng.uniform(domain.low, domain.high, 20_000))
    return Relation(values, domain, name="uniform-test")


class TestRangeQuery:
    def test_width_and_center(self):
        query = RangeQuery(2.0, 6.0)
        assert query.width == 4.0
        assert query.center == 4.0

    def test_rejects_inverted(self):
        with pytest.raises(InvalidQueryError):
            RangeQuery(5.0, 1.0)

    def test_point_query_allowed(self):
        assert RangeQuery(3.0, 3.0).width == 0.0


class TestQueryFile:
    def test_requires_parallel_arrays(self):
        with pytest.raises(InvalidQueryError):
            QueryFile(np.array([0.0]), np.array([1.0, 2.0]), np.array([1]), 10)

    def test_requires_nonempty(self):
        with pytest.raises(InvalidQueryError):
            QueryFile(np.array([]), np.array([]), np.array([]), 10)

    def test_rejects_inverted_ranges(self):
        with pytest.raises(InvalidQueryError):
            QueryFile(np.array([2.0]), np.array([1.0]), np.array([0]), 10)

    def test_arrays_readonly(self):
        qf = QueryFile(np.array([0.0]), np.array([1.0]), np.array([5]), 10)
        with pytest.raises(ValueError):
            qf.a[0] = 9.0

    def test_iteration_yields_queries(self):
        qf = QueryFile(np.array([0.0, 1.0]), np.array([1.0, 2.0]), np.array([1, 2]), 10)
        queries = list(qf)
        assert queries[0] == RangeQuery(0.0, 1.0)
        assert len(qf) == 2


class TestGenerateQueryFile:
    def test_fixed_size(self, relation):
        qf = generate_query_file(relation, 0.05, n_queries=50, seed=1)
        widths = qf.b - qf.a
        assert np.allclose(widths, widths[0])
        assert widths[0] == pytest.approx(0.05 * relation.domain.width, rel=0.01)

    def test_inside_domain(self, relation):
        qf = generate_query_file(relation, 0.10, n_queries=100, seed=1)
        assert qf.a.min() >= relation.domain.low
        assert qf.b.max() <= relation.domain.high

    def test_true_counts_exact(self, relation):
        qf = generate_query_file(relation, 0.02, n_queries=30, seed=2)
        for i in range(len(qf)):
            assert qf.true_counts[i] == relation.count(qf.a[i], qf.b[i])

    def test_grid_alignment_on_integer_domain(self, relation):
        qf = generate_query_file(relation, 0.01, n_queries=40, seed=3)
        # Endpoints on half-integers: whole grid cells are covered.
        frac_a = np.mod(qf.a, 1.0)
        assert np.allclose(frac_a, 0.5)

    def test_alignment_can_be_disabled(self, relation):
        qf = generate_query_file(relation, 0.01, n_queries=40, seed=3, align_to_grid=False)
        frac_a = np.mod(qf.a, 1.0)
        assert not np.allclose(frac_a, 0.5)

    def test_no_alignment_on_real_domain(self):
        rng = np.random.default_rng(0)
        domain = Interval(0.0, 1.0)
        relation = Relation(rng.uniform(0, 1, 5_000), domain)
        qf = generate_query_file(relation, 0.01, n_queries=20, seed=1)
        assert not np.allclose(np.mod(qf.a, 1.0), 0.5)

    def test_positions_follow_data(self):
        """Queries must concentrate where the records are."""
        rng = np.random.default_rng(1)
        domain = IntegerDomain(12)
        left_heavy = domain.snap(rng.uniform(0, domain.width / 4, 20_000))
        relation = Relation(left_heavy, domain)
        qf = generate_query_file(relation, 0.01, n_queries=100, seed=4)
        centers = 0.5 * (qf.a + qf.b)
        assert np.mean(centers < domain.width / 4) > 0.9

    def test_rejects_bad_fraction(self, relation):
        with pytest.raises(InvalidQueryError):
            generate_query_file(relation, 1.5)

    def test_rejects_bad_count(self, relation):
        with pytest.raises(InvalidQueryError):
            generate_query_file(relation, 0.01, n_queries=0)

    def test_deterministic_under_seed(self, relation):
        qf1 = generate_query_file(relation, 0.01, n_queries=20, seed=7)
        qf2 = generate_query_file(relation, 0.01, n_queries=20, seed=7)
        np.testing.assert_array_equal(qf1.a, qf2.a)


class TestGridAlignmentEdgeCases:
    def test_even_width_near_domain_top_stays_inside(self):
        """Even cell counts put b at x.5 + width; the topmost centers
        would push b half a cell past the domain — the shift clamp
        must bring the query back inside."""
        rng = np.random.default_rng(0)
        domain = IntegerDomain(12)
        # All records at the very top of the domain.
        values = np.full(5_000, domain.high - 50.0)
        relation = Relation(domain.snap(values), domain)
        # 2% of 4095 rounds to 82 cells (even).
        qf = generate_query_file(relation, 0.02, n_queries=30, seed=1)
        assert qf.b.max() <= domain.high
        assert qf.a.min() >= domain.low
        widths = qf.b - qf.a
        assert np.allclose(widths, round(0.02 * domain.width))

    def test_single_cell_queries(self):
        """Tiny fractions round up to one whole cell, never zero."""
        rng = np.random.default_rng(1)
        domain = IntegerDomain(6)  # 64 values; 1% of 63 < 1 cell
        relation = Relation(
            domain.snap(rng.uniform(domain.low, domain.high, 2_000)), domain
        )
        qf = generate_query_file(relation, 0.01, n_queries=20, seed=2)
        np.testing.assert_allclose(qf.b - qf.a, 1.0)

    def test_true_counts_are_whole_cell_counts(self):
        """An aligned query covering w cells counts exactly the records
        on those w grid values."""
        rng = np.random.default_rng(3)
        domain = IntegerDomain(8)
        relation = Relation(
            domain.snap(rng.uniform(domain.low, domain.high, 10_000)), domain
        )
        qf = generate_query_file(relation, 0.05, n_queries=25, seed=4)
        for i in range(len(qf)):
            covered = np.arange(np.ceil(qf.a[i]), np.floor(qf.b[i]) + 1)
            expected = sum(relation.count(v, v) for v in covered)
            assert qf.true_counts[i] == expected


class TestPositionSweep:
    def test_covers_domain(self, relation):
        qf = position_sweep(relation, 0.01, n_positions=50)
        assert qf.a[0] == pytest.approx(relation.domain.low)
        assert qf.b[-1] == pytest.approx(relation.domain.high)

    def test_centers_evenly_spaced(self, relation):
        qf = position_sweep(relation, 0.01, n_positions=10)
        centers = 0.5 * (qf.a + qf.b)
        steps = np.diff(centers)
        assert np.allclose(steps, steps[0])

    def test_rejects_too_few_positions(self, relation):
        with pytest.raises(InvalidQueryError):
            position_sweep(relation, 0.01, n_positions=1)
