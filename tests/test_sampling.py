"""Tests for pure sampling (repro.core.sampling)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import InvalidSampleError
from repro.core.sampling import SamplingEstimator
from repro.data.domain import Interval


class TestSelectivity:
    def test_exact_fraction(self):
        est = SamplingEstimator(np.array([1.0, 2.0, 3.0, 4.0]))
        assert est.selectivity(2.0, 3.0) == pytest.approx(0.5)

    def test_closed_range_includes_endpoints(self):
        est = SamplingEstimator(np.array([1.0, 2.0, 3.0]))
        assert est.selectivity(1.0, 1.0) == pytest.approx(1 / 3)

    def test_empty_range_zero(self):
        est = SamplingEstimator(np.array([1.0, 2.0]))
        assert est.selectivity(5.0, 6.0) == 0.0

    def test_whole_range_one(self):
        est = SamplingEstimator(np.array([1.0, 2.0]))
        assert est.selectivity(0.0, 10.0) == 1.0

    def test_vectorized_matches_scalar(self):
        rng = np.random.default_rng(0)
        sample = rng.uniform(0, 1, 200)
        est = SamplingEstimator(sample)
        a = rng.uniform(0, 0.5, 20)
        b = a + 0.3
        batch = est.selectivities(a, b)
        singles = [est.selectivity(x, y) for x, y in zip(a, b)]
        np.testing.assert_allclose(batch, singles)

    def test_domain_validation(self):
        with pytest.raises(InvalidSampleError):
            SamplingEstimator(np.array([2.0]), Interval(0.0, 1.0))

    def test_sample_size(self):
        assert SamplingEstimator(np.arange(1, 8, dtype=float)).sample_size == 7

    @given(
        st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=60),
        st.floats(0, 100),
        st.floats(0, 100),
    )
    @settings(max_examples=60)
    def test_matches_bruteforce(self, values, x, y):
        a, b = min(x, y), max(x, y)
        arr = np.array(values)
        est = SamplingEstimator(arr)
        expected = np.mean((arr >= a) & (arr <= b))
        assert est.selectivity(a, b) == pytest.approx(expected)


class TestStandardError:
    def test_rate_is_inverse_sqrt_n(self):
        small = SamplingEstimator(np.arange(100, dtype=float))
        large = SamplingEstimator(np.arange(10_000, dtype=float))
        ratio = small.standard_error(0.5) / large.standard_error(0.5)
        assert ratio == pytest.approx(10.0)

    def test_zero_at_degenerate_selectivity(self):
        est = SamplingEstimator(np.arange(10, dtype=float))
        assert est.standard_error(0.0) == 0.0
        assert est.standard_error(1.0) == 0.0

    def test_rejects_out_of_range(self):
        est = SamplingEstimator(np.arange(10, dtype=float))
        with pytest.raises(ValueError):
            est.standard_error(1.5)
