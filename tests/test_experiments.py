"""Tests for the experiment harness and figure modules.

Figures run under a tiny configuration here — enough to check shapes,
row structures and the headline qualitative claims, not the full
paper protocol (the benchmarks do that).
"""

import numpy as np
import pytest

from repro.experiments import harness
from repro.experiments.harness import ExperimentConfig, load_context

TINY = ExperimentConfig(n_queries=60, datasets=("u(20)", "n(20)"))


class TestHarness:
    def test_context_shapes(self):
        context = load_context("n(20)", TINY)
        assert context.sample.shape == (TINY.sample_size,)
        assert len(context.queries) == TINY.n_queries
        assert context.relation.name == "n(20)"

    def test_context_cached(self):
        a = load_context("n(20)", TINY)
        b = load_context("n(20)", TINY)
        assert a is b

    def test_seeds_stable_across_calls(self):
        config = ExperimentConfig()
        assert config.sample_seed("x") == config.sample_seed("x")
        assert config.sample_seed("x") != config.sample_seed("y")
        assert config.query_seed("x", 0.01) != config.query_seed("x", 0.02)

    def test_query_size_override(self):
        small = load_context("n(20)", TINY, query_size=0.05)
        assert np.isclose(small.queries.size_fraction, 0.05)


class TestTable2:
    def test_matches_registry(self):
        from repro.experiments import table2

        result = table2.run(TINY)
        assert result.figure_id == "table-2"
        names = result.column("data file")
        assert "n(20)" in names and "iw" in names


class TestFig03:
    def test_boundary_spike_shape(self):
        from repro.experiments import fig03

        result = fig03.run(TINY, positions=40)
        errors = np.array(result.column("signed error [records]"), dtype=float)
        # Large negative error at the edges, small in the middle.
        edge = abs(errors[0])
        center = abs(errors[len(errors) // 2])
        assert errors[0] < 0
        assert edge > 5 * max(center, 20.0)


class TestFig04:
    def test_u_shape(self):
        from repro.experiments import fig04

        result = fig04.run(TINY, bin_grid=np.array([2, 30, 1500]))
        errors = np.array(result.column("equi-width MRE"), dtype=float)
        # Middle bin count beats both extremes.
        assert errors[1] < errors[0]
        assert errors[1] < errors[2]

    def test_optimum_beats_sampling(self):
        from repro.experiments import fig04

        result = fig04.run(TINY, bin_grid=np.array([30]))
        assert result.rows[0]["equi-width MRE"] < result.rows[0]["sampling MRE"]


class TestFig05:
    def test_small_domain_easier(self):
        from repro.experiments import fig05

        # Include very small bin counts: the near-uniform truncated
        # slice on n(10) excels exactly there, while the full bell on
        # n(20) needs far more bins and still ends up worse.
        result = fig05.run(TINY, bin_grid=np.array([2, 5, 20, 45]))
        best_small = min(float(r["n(10) MRE"]) for r in result.rows)
        best_large = min(float(r["n(20) MRE"]) for r in result.rows)
        assert best_small < best_large


class TestFig06:
    def test_consistency(self):
        from repro.experiments import fig06

        result = fig06.run(TINY, sample_sizes=(200, 5_000))
        first, last = result.rows[0], result.rows[-1]
        for column in ("sampling MRE", "equi-width MRE", "kernel MRE"):
            assert last[column] < first[column]

    def test_kernel_beats_sampling(self):
        from repro.experiments import fig06

        result = fig06.run(TINY, sample_sizes=(2_000,))
        row = result.rows[0]
        assert row["kernel MRE"] < row["sampling MRE"]


class TestFig07:
    def test_larger_queries_easier(self):
        from repro.experiments import fig07

        result = fig07.run(TINY, query_sizes=(0.01, 0.10))
        for row in result.rows:
            assert row["10% MRE"] < row["1% MRE"]


class TestFig10:
    def test_treatments_beat_untreated_at_edge(self):
        from repro.experiments import fig10

        result = fig10.run(TINY, positions=40)
        first = result.rows[0]
        assert first["reflection rel. error"] < first["none rel. error"]
        assert first["kernel rel. error"] < first["none rel. error"]


class TestFig12:
    def test_rows_have_all_methods(self):
        from repro.experiments import fig12

        result = fig12.run(ExperimentConfig(n_queries=60, datasets=("n(20)",)))
        row = result.rows[0]
        for method in ("EWH MRE", "Kernel MRE", "Hybrid MRE", "ASH MRE"):
            assert 0.0 <= float(row[method]) < 1.0


class TestOracleFigures:
    """Structural checks of the oracle-based figures on one dataset;
    the benchmarks assert the full qualitative shapes."""

    SINGLE = ExperimentConfig(n_queries=60, datasets=("n(20)",))

    def test_fig08_columns(self):
        from repro.experiments import fig08

        result = fig08.run(self.SINGLE)
        row = result.rows[0]
        for column in (
            "EWH MRE",
            "EDH MRE",
            "MDH MRE",
            "sampling MRE",
            "uniform MRE",
            "EWH bins",
        ):
            assert column in row
        assert row["EWH bins"] >= 1

    def test_fig09_oracle_never_loses(self):
        from repro.experiments import fig09

        result = fig09.run(self.SINGLE)
        row = result.rows[0]
        assert row["h-opt MRE"] <= row["h-NS MRE"] + 1e-9

    def test_fig11_oracle_never_loses(self):
        from repro.experiments import fig11

        result = fig11.run(self.SINGLE)
        row = result.rows[0]
        assert row["h-opt MRE"] <= min(row["h-NS MRE"], row["h-DPI2 MRE"]) + 1e-9
        assert row["h-opt"] > 0

    def test_extended_columns(self):
        from repro.experiments import extended

        result = extended.run(self.SINGLE)
        row = result.rows[0]
        for column in (
            "EWH MRE",
            "V-opt MRE",
            "Wavelet MRE",
            "End-biased MRE",
            "Kernel MRE",
            "Hybrid MRE",
        ):
            assert 0.0 <= float(row[column]) < 5.0


class TestBarDatasets:
    def test_paper_list_subset_of_registry(self):
        from repro.data import registry

        for name in harness.PAPER_BAR_DATASETS:
            assert registry.spec(name) is not None


class TestRunCells:
    def test_results_in_input_order(self):
        cells = list(range(20))
        results = harness.run_cells(cells, lambda c: c * c, max_workers=4)
        assert results == [c * c for c in cells]

    def test_parallel_matches_serial(self):
        cells = [("a", i) for i in range(8)]
        evaluate = lambda cell: hash(cell) % 1_000
        serial = harness.run_cells(cells, evaluate, max_workers=1)
        parallel = harness.run_cells(cells, evaluate, max_workers=4)
        assert serial == parallel

    def test_single_cell_runs_serially(self):
        assert harness.run_cells(["only"], lambda c: c.upper(), max_workers=8) == ["ONLY"]

    def test_telemetry_spans_and_timings(self):
        from repro import telemetry

        with telemetry.session() as session:
            harness.run_cells(
                ["x", "y"], lambda c: c, max_workers=2, label=lambda c: f"cell:{c}"
            )
            assert session.metrics.counter("harness.cell") == 2
            assert len(session.spans_by_name("harness.cell")) == 2
            for tag in ("cell:x", "cell:y"):
                summary = session.metrics.summary(f"harness.cell.seconds.{tag}")
                assert summary.count == 1 and summary.total >= 0.0

    def test_worker_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_HARNESS_WORKERS", "1")
        assert harness.default_worker_count(32) == 1
        monkeypatch.setenv("REPRO_HARNESS_WORKERS", "not-a-number")
        assert 1 <= harness.default_worker_count(32) <= 8

    def test_worker_count_bounded_by_cells(self, monkeypatch):
        monkeypatch.delenv("REPRO_HARNESS_WORKERS", raising=False)
        assert harness.default_worker_count(1) == 1
        assert harness.default_worker_count(0) == 1
        assert harness.default_worker_count(100) <= 8

    def test_exception_propagates(self):
        def boom(cell):
            if cell == 1:
                raise RuntimeError(f"cell {cell} failed")
            return cell

        with pytest.raises(RuntimeError, match="cell 1 failed"):
            harness.run_cells([0, 1, 2], boom, max_workers=2)

    def test_exception_wrapped_with_cell_identity(self):
        cause = ValueError("bad bandwidth")

        def boom(cell):
            if cell == ("iw", "kernel"):
                raise cause
            return cell

        cells = [("u(20)", "kernel"), ("iw", "kernel")]
        with pytest.raises(harness.CellError) as excinfo:
            harness.run_cells(cells, boom, max_workers=1, label=lambda c: f"{c[0]}/{c[1]}")
        error = excinfo.value
        assert error.cell == "iw/kernel"
        assert error.cause is cause
        assert error.__cause__ is cause
        assert "ValueError" in str(error) and "bad bandwidth" in str(error)

    def test_keep_going_returns_errors_in_place(self):
        def boom(cell):
            if cell % 2:
                raise RuntimeError(f"cell {cell} failed")
            return cell * 10

        results = harness.run_cells(
            list(range(5)), boom, max_workers=2, keep_going=True
        )
        assert [results[i] for i in (0, 2, 4)] == [0, 20, 40]
        for i in (1, 3):
            assert isinstance(results[i], harness.CellError)
            assert results[i].cell == str(i)

    def test_cell_errors_counted(self):
        from repro import telemetry

        def boom(cell):
            raise RuntimeError("nope")

        with telemetry.session() as session:
            results = harness.run_cells([0, 1], boom, max_workers=1, keep_going=True)
            assert all(isinstance(r, harness.CellError) for r in results)
            assert session.metrics.counter("harness.cell.error") == 2
