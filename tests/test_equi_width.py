"""Tests for equi-width histograms (repro.core.histogram.equi_width)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import InvalidSampleError
from repro.core.histogram import EquiWidthHistogram
from repro.data.domain import Interval


@pytest.fixture()
def domain():
    return Interval(0.0, 10.0)


class TestConstruction:
    def test_bin_width(self, domain):
        hist = EquiWidthHistogram(np.array([1.0, 2.0]), domain, 5)
        assert hist.bin_width == pytest.approx(2.0)
        assert hist.bin_count == 5

    def test_rejects_zero_bins(self, domain):
        with pytest.raises(InvalidSampleError):
            EquiWidthHistogram(np.array([1.0]), domain, 0)

    def test_rejects_out_of_domain_sample(self, domain):
        with pytest.raises(InvalidSampleError):
            EquiWidthHistogram(np.array([11.0]), domain, 4)

    def test_rejects_origin_above_domain_start(self, domain):
        with pytest.raises(InvalidSampleError):
            EquiWidthHistogram(np.array([1.0]), domain, 4, origin=0.5)

    def test_bins_tile_domain(self, domain):
        hist = EquiWidthHistogram(np.array([5.0]), domain, 4)
        assert hist.boundaries[0] == domain.low
        assert hist.boundaries[-1] >= domain.high


class TestSelectivity:
    def test_uniform_in_bin_assumption(self, domain):
        # All 10 samples in [0, 2): first of five bins.
        sample = np.linspace(0.0, 1.9, 10)
        hist = EquiWidthHistogram(sample, domain, 5)
        assert hist.selectivity(0.0, 1.0) == pytest.approx(0.5)

    def test_mass_conserved(self, domain):
        rng = np.random.default_rng(2)
        sample = rng.uniform(0, 10, 500)
        hist = EquiWidthHistogram(sample, domain, 17)
        assert hist.selectivity(domain.low, domain.high) == pytest.approx(1.0)

    def test_shifted_origin_conserves_mass(self, domain):
        rng = np.random.default_rng(2)
        sample = rng.uniform(0, 10, 500)
        hist = EquiWidthHistogram(sample, domain, 10, origin=-0.37)
        assert hist.origin == pytest.approx(-0.37)
        assert hist.selectivity(domain.low - 1.0, domain.high + 1.0) == pytest.approx(1.0)

    def test_matches_paper_formula(self, domain):
        """(1/(nh)) * sum n_i * psi_i(a, b) — paper eq. 4 simplified."""
        rng = np.random.default_rng(4)
        sample = rng.uniform(0, 10, 200)
        bins = 8
        hist = EquiWidthHistogram(sample, domain, bins)
        h = domain.width / bins
        edges = np.linspace(0, 10, bins + 1)
        counts, _ = np.histogram(sample, bins=edges)
        a, b = 1.3, 6.7
        psi = np.clip(np.minimum(b, edges[1:]) - np.maximum(a, edges[:-1]), 0, None)
        expected = float((counts * psi).sum() / (sample.size * h))
        assert hist.selectivity(a, b) == pytest.approx(expected)

    @given(st.integers(1, 64))
    @settings(max_examples=30)
    def test_any_bin_count_conserves_mass(self, bins):
        domain = Interval(0.0, 10.0)
        sample = np.linspace(0.0, 10.0, 57)
        hist = EquiWidthHistogram(sample, domain, bins)
        assert hist.selectivity(0.0, 10.0) == pytest.approx(1.0)


class TestConsistencyBehaviour:
    def test_more_samples_better_estimate(self):
        """Statistical sanity: the equi-width error shrinks with n."""
        rng = np.random.default_rng(9)
        domain = Interval(0.0, 1.0)
        data = rng.beta(2.0, 5.0, 200_000)
        true = np.mean((data >= 0.2) & (data <= 0.3))

        def error(n: int) -> float:
            sample = rng.choice(data, size=n, replace=False)
            bins = max(2, int(round(n ** (1 / 3))))
            hist = EquiWidthHistogram(sample, domain, bins)
            return abs(hist.selectivity(0.2, 0.3) - true)

        small = np.mean([error(100) for _ in range(10)])
        large = np.mean([error(10_000) for _ in range(10)])
        assert large < small
