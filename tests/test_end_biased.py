"""Tests for end-biased histograms (repro.core.histogram.end_biased)."""

import numpy as np
import pytest

from repro.core.base import InvalidSampleError
from repro.core.histogram import EndBiasedHistogram, EquiWidthHistogram
from repro.data.domain import Interval

DOMAIN = Interval(0.0, 100.0)


@pytest.fixture()
def spiky_sample():
    """Three heavy values plus a uniform background."""
    rng = np.random.default_rng(0)
    return np.concatenate(
        [
            np.full(300, 10.0),
            np.full(200, 40.0),
            np.full(100, 75.0),
            rng.uniform(0, 100, 400),
        ]
    )


class TestEndBiased:
    def test_top_values_stored(self, spiky_sample):
        hist = EndBiasedHistogram(spiky_sample, DOMAIN, top=3)
        assert set(hist.stored_values) == {10.0, 40.0, 75.0}

    def test_point_query_on_heavy_value_exact(self, spiky_sample):
        hist = EndBiasedHistogram(spiky_sample, DOMAIN, top=3)
        assert hist.selectivity(10.0, 10.0) == pytest.approx(0.3, abs=1e-12)

    def test_mass_conserved(self, spiky_sample):
        hist = EndBiasedHistogram(spiky_sample, DOMAIN, top=3)
        assert hist.selectivity(0.0, 100.0) == pytest.approx(1.0)

    def test_remainder_uniform(self, spiky_sample):
        hist = EndBiasedHistogram(spiky_sample, DOMAIN, top=3)
        # [50, 60] holds no stored value: 10% of the 0.4 background.
        assert hist.selectivity(50.0, 60.0) == pytest.approx(0.04, abs=0.001)

    def test_singletons_not_stored(self):
        sample = np.arange(100, dtype=float)  # all values unique
        hist = EndBiasedHistogram(sample, DOMAIN, top=5)
        assert hist.stored_values.size == 0
        assert hist.selectivity(0.0, 50.0) == pytest.approx(0.5)

    def test_beats_equi_width_on_spiky_point_queries(self, spiky_sample):
        """The design goal: exact answers on the heavy values where a
        width-based histogram smears them."""
        eb = EndBiasedHistogram(spiky_sample, DOMAIN, top=3)
        ewh = EquiWidthHistogram(spiky_sample, DOMAIN, 20)
        true = 0.3
        assert abs(eb.selectivity(9.9, 10.1) - true) < abs(
            ewh.selectivity(9.9, 10.1) - true
        )

    def test_rejects_bad_top(self, spiky_sample):
        with pytest.raises(InvalidSampleError):
            EndBiasedHistogram(spiky_sample, DOMAIN, top=0)

    def test_density_is_background_only(self, spiky_sample):
        hist = EndBiasedHistogram(spiky_sample, DOMAIN, top=3)
        inside = hist.density(np.array([50.0]))[0]
        outside = hist.density(np.array([150.0]))[0]
        assert inside == pytest.approx(0.4 / 100.0, abs=1e-3)
        assert outside == 0.0
