"""Tests for the database-layer caches (repro.db.cache and its users).

Covers the :class:`~repro.db.cache.LRUCache` building block, the
shared ANALYZE statistics cache with its fingerprint/explicit
invalidation, and the planner's estimate LRU — including the
``cache.hit`` / ``cache.miss`` telemetry the caches surface.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.data.domain import Interval
from repro.db import Catalog, Planner, RangePredicate, Table
from repro.db.cache import MISS, LRUCache
from repro.db.catalog import _STATISTICS_CACHE

DOMAIN = Interval(0.0, 1_000.0)


def _make_table(name="points", shift=0.0, n=5_000, seed=0):
    rng = np.random.default_rng(seed)
    x = np.clip(rng.normal(400.0 + shift, 120.0, n), 0, 1_000)
    z = rng.uniform(0, 1_000, n)
    return Table(name, {"x": (x, DOMAIN), "z": (z, DOMAIN)})


@pytest.fixture(autouse=True)
def _clean_statistics_cache():
    _STATISTICS_CACHE.clear()
    yield
    _STATISTICS_CACHE.clear()


class TestLRUCache:
    def test_miss_then_hit(self):
        cache = LRUCache(capacity=4, name="t")
        assert cache.get("a") is MISS
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_cached_none_is_not_a_miss(self):
        cache = LRUCache(capacity=4, name="t")
        cache.put("a", None)
        assert cache.get("a") is None

    def test_evicts_least_recently_used(self):
        cache = LRUCache(capacity=2, name="t")
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a": "b" is now the oldest
        cache.put("c", 3)
        assert cache.get("b") is MISS
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_get_or_build_builds_once(self):
        cache = LRUCache(capacity=4, name="t")
        calls = []
        build = lambda: calls.append(1) or "value"
        assert cache.get_or_build("k", build) == "value"
        assert cache.get_or_build("k", build) == "value"
        assert len(calls) == 1

    def test_raising_builder_caches_nothing_and_allows_retry(self):
        # Regression: a builder that raises must not leave a partial
        # entry, a held lock, or a stale single-flight marker behind —
        # the very next get_or_build on the same key must run its
        # builder and succeed.
        cache = LRUCache(capacity=4, name="t")

        def boom():
            raise RuntimeError("builder failed")

        with pytest.raises(RuntimeError, match="builder failed"):
            cache.get_or_build("k", boom)
        assert len(cache) == 0
        assert cache.get("k") is MISS
        assert cache._building == {}
        # The lock is free and the key is rebuildable.
        assert cache.get_or_build("k", lambda: "recovered") == "recovered"
        assert cache.get("k") == "recovered"

    def test_get_or_build_is_single_flight_across_threads(self):
        import threading

        cache = LRUCache(capacity=4, name="t")
        release = threading.Event()
        calls = []
        lock = threading.Lock()

        def slow_build():
            with lock:
                calls.append(1)
            release.wait(timeout=5.0)
            return "built"

        results = [None] * 4

        def worker(i):
            results[i] = cache.get_or_build("k", slow_build)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        # Let the winner enter the builder, then let every waiter pile
        # up behind the single-flight event before releasing.
        deadline = 50
        while not calls and deadline:
            deadline -= 1
            release.wait(0.01)
        release.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert results == ["built"] * 4
        assert len(calls) == 1
        assert cache._building == {}

    def test_evict_by_predicate(self):
        cache = LRUCache(capacity=8, name="t")
        for key in (("a", 1), ("a", 2), ("b", 1)):
            cache.put(key, key)
        assert cache.evict(lambda key: key[0] == "a") == 2
        assert len(cache) == 1 and cache.get(("b", 1)) == ("b", 1)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=0, name="t")

    def test_telemetry_counters(self):
        with telemetry.session() as session:
            cache = LRUCache(capacity=4, name="unit")
            cache.get("a")
            cache.put("a", 1)
            cache.get("a")
            assert session.metrics.counter("cache.miss") == 1
            assert session.metrics.counter("cache.hit") == 1
            assert session.metrics.counter("cache.miss.unit") == 1
            assert session.metrics.counter("cache.hit.unit") == 1


class TestStatisticsCache:
    def test_second_analyze_reuses_statistics(self):
        table = _make_table()
        catalog = Catalog(family="equi-width", sample_size=500)
        catalog.analyze(table, seed=7)
        first = catalog.column_statistic("points", "x")
        rebuilt = Catalog(family="equi-width", sample_size=500)
        rebuilt.analyze(table, seed=7)
        assert rebuilt.column_statistic("points", "x") is first

    def test_unseeded_analyze_raises(self):
        from repro.core.base import MissingSeedError

        table = _make_table()
        catalog = Catalog(family="equi-width", sample_size=500)
        with pytest.raises(MissingSeedError):
            catalog.analyze(table, seed=None)

    def test_generator_seed_bypasses_the_cache(self):
        table = _make_table()
        catalog = Catalog(family="equi-width", sample_size=500)
        catalog.analyze(table, seed=np.random.default_rng(7))
        assert len(_STATISTICS_CACHE) == 0

    def test_changed_data_misses_naturally(self):
        catalog = Catalog(family="equi-width", sample_size=500)
        table = _make_table()
        catalog.analyze(table, seed=7)
        first = catalog.column_statistic("points", "x")
        # Same name, same parameters, different data: the fingerprint
        # in the cache key must force a rebuild.
        catalog.analyze(_make_table(shift=200.0, seed=1), seed=7)
        assert catalog.column_statistic("points", "x") is not first

    def test_invalidate_forces_rebuild(self):
        table = _make_table()
        catalog = Catalog(family="equi-width", sample_size=500)
        catalog.analyze(table, seed=7)
        first = catalog.column_statistic("points", "x")
        catalog.invalidate("points")
        assert not catalog.has_statistics("points")
        catalog.analyze(table, seed=7)
        assert catalog.column_statistic("points", "x") is not first

    def test_version_bumps_on_analyze_and_invalidate(self):
        table = _make_table()
        catalog = Catalog(family="equi-width", sample_size=500)
        v0 = catalog.version
        catalog.analyze(table, seed=7)
        v1 = catalog.version
        catalog.invalidate("points")
        assert v0 < v1 < catalog.version

    def test_hits_surface_in_telemetry(self):
        table = _make_table()
        catalog = Catalog(family="equi-width", sample_size=500)
        catalog.analyze(table, seed=7)
        with telemetry.session() as session:
            catalog.analyze(table, seed=7)
            assert session.metrics.counter("cache.hit.statistics") == len(
                table.column_names
            )
            assert session.metrics.counter("cache.miss.statistics") == 0


class TestPlannerEstimateCache:
    def _planner(self):
        table = _make_table()
        catalog = Catalog(family="equi-width", sample_size=500)
        catalog.analyze(table, seed=7)
        return table, catalog, Planner(catalog)

    def test_repeated_plan_hits_the_estimate_cache(self):
        table, _, planner = self._planner()
        predicates = [RangePredicate("x", 300.0, 500.0)]
        first = planner.plan(table, predicates)
        with telemetry.session() as session:
            second = planner.plan(table, predicates)
            assert session.metrics.counter("cache.hit.planner") >= 1
        assert second.estimated_rows == first.estimated_rows

    def test_reanalyze_ages_out_cached_estimates(self):
        table, catalog, planner = self._planner()
        predicates = [RangePredicate("x", 300.0, 500.0)]
        planner.plan(table, predicates)
        catalog.analyze(table, seed=8)  # new statistics version
        with telemetry.session() as session:
            planner.plan(table, predicates)
            assert session.metrics.counter("cache.hit.planner") == 0
            assert session.metrics.counter("cache.miss.planner") >= 1
