"""Tests for the relation abstraction (repro.data.relation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import InvalidQueryError, InvalidSampleError
from repro.data.domain import Interval
from repro.data.relation import Relation


@pytest.fixture()
def relation():
    values = np.array([1.0, 3.0, 3.0, 5.0, 8.0, 9.0])
    return Relation(values, Interval(0.0, 10.0), name="tiny")


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(InvalidSampleError):
            Relation(np.array([]), Interval(0, 1))

    def test_rejects_2d(self):
        with pytest.raises(InvalidSampleError):
            Relation(np.zeros((2, 2)), Interval(0, 1))

    def test_rejects_nan(self):
        with pytest.raises(InvalidSampleError):
            Relation(np.array([0.5, np.nan]), Interval(0, 1))

    def test_rejects_out_of_domain(self):
        with pytest.raises(InvalidSampleError):
            Relation(np.array([0.5, 2.0]), Interval(0, 1))

    def test_values_are_sorted_and_readonly(self, relation):
        assert list(relation.values) == sorted(relation.values)
        with pytest.raises(ValueError):
            relation.values[0] = 99.0


class TestCounting:
    def test_count_closed_range(self, relation):
        assert relation.count(3.0, 8.0) == 4  # 3, 3, 5, 8

    def test_count_point_query(self, relation):
        assert relation.count(3.0, 3.0) == 2

    def test_count_empty_range_value(self, relation):
        assert relation.count(6.0, 7.0) == 0

    def test_count_whole_domain(self, relation):
        assert relation.count(0.0, 10.0) == relation.size

    def test_count_rejects_inverted_range(self, relation):
        with pytest.raises(InvalidQueryError):
            relation.count(5.0, 1.0)

    def test_selectivity(self, relation):
        assert relation.selectivity(3.0, 8.0) == pytest.approx(4 / 6)

    @given(st.floats(0, 10), st.floats(0, 10))
    @settings(max_examples=50)
    def test_count_matches_bruteforce(self, x, y):
        values = np.array([1.0, 3.0, 3.0, 5.0, 8.0, 9.0])
        relation = Relation(values, Interval(0.0, 10.0))
        a, b = min(x, y), max(x, y)
        expected = int(np.sum((values >= a) & (values <= b)))
        assert relation.count(a, b) == expected


class TestSampling:
    def test_sample_size_and_membership(self, relation):
        sample = relation.sample(4, seed=1)
        assert sample.shape == (4,)
        assert all(v in relation.values for v in sample)

    def test_sample_without_replacement_is_exhaustive(self, relation):
        sample = relation.sample(relation.size, seed=1)
        assert sorted(sample) == list(relation.values)

    def test_sample_rejects_oversize(self, relation):
        with pytest.raises(InvalidQueryError):
            relation.sample(relation.size + 1)

    def test_sample_rejects_nonpositive(self, relation):
        with pytest.raises(InvalidQueryError):
            relation.sample(0)

    def test_sample_deterministic_under_seed(self, relation):
        a = relation.sample(3, seed=42)
        b = relation.sample(3, seed=42)
        np.testing.assert_array_equal(a, b)

    def test_sample_accepts_generator(self, relation):
        sample = relation.sample(2, seed=np.random.default_rng(0))
        assert sample.shape == (2,)

    def test_sample_requires_explicit_seed(self, relation):
        from repro.core.base import MissingSeedError

        with pytest.raises(MissingSeedError, match="reproducible"):
            relation.sample(2)

    def test_resolve_rng_passes_generator_through(self):
        from repro.data.relation import resolve_rng

        rng = np.random.default_rng(7)
        assert resolve_rng(rng) is rng
        a = resolve_rng(7).random(8)
        b = resolve_rng(7).random(8)
        np.testing.assert_array_equal(a, b)


class TestStatistics:
    def test_distinct_count(self, relation):
        assert relation.distinct_count() == 5

    def test_quantile(self, relation):
        assert relation.quantile(0.0) == 1.0
        assert relation.quantile(1.0) == 9.0
