"""Tests for attribute domains (repro.data.domain)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.domain import IntegerDomain, Interval


class TestInterval:
    def test_width_and_center(self):
        interval = Interval(2.0, 10.0)
        assert interval.width == 8.0
        assert interval.center == 6.0

    def test_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            Interval(1.0, 1.0)

    def test_rejects_inverted_interval(self):
        with pytest.raises(ValueError):
            Interval(5.0, 1.0)

    def test_rejects_non_finite_bounds(self):
        with pytest.raises(ValueError):
            Interval(0.0, np.inf)
        with pytest.raises(ValueError):
            Interval(np.nan, 1.0)

    def test_contains_scalar_and_array(self):
        interval = Interval(0.0, 1.0)
        assert interval.contains(0.0)
        assert interval.contains(1.0)
        assert not interval.contains(-0.1)
        result = interval.contains(np.array([-1.0, 0.5, 2.0]))
        assert list(result) == [False, True, False]

    def test_clip(self):
        interval = Interval(0.0, 1.0)
        assert interval.clip(-5.0) == 0.0
        assert interval.clip(0.5) == 0.5
        assert interval.clip(5.0) == 1.0

    def test_clip_array(self):
        interval = Interval(0.0, 1.0)
        np.testing.assert_allclose(
            interval.clip(np.array([-1.0, 0.3, 9.0])), [0.0, 0.3, 1.0]
        )

    def test_intersect_overlapping(self):
        left = Interval(0.0, 5.0)
        right = Interval(3.0, 9.0)
        assert left.intersect(right) == Interval(3.0, 5.0)

    def test_intersect_disjoint_returns_none(self):
        assert Interval(0.0, 1.0).intersect(Interval(2.0, 3.0)) is None

    def test_intersect_touching_returns_none(self):
        assert Interval(0.0, 1.0).intersect(Interval(1.0, 2.0)) is None

    def test_fraction_full_cover(self):
        assert Interval(0.0, 4.0).fraction(-1.0, 10.0) == 1.0

    def test_fraction_partial(self):
        assert Interval(0.0, 4.0).fraction(1.0, 3.0) == pytest.approx(0.5)

    def test_fraction_disjoint(self):
        assert Interval(0.0, 4.0).fraction(5.0, 6.0) == 0.0

    def test_subdivide(self):
        pieces = Interval(0.0, 10.0).subdivide(np.array([3.0, 7.0]))
        assert pieces == [Interval(0, 3), Interval(3, 7), Interval(7, 10)]

    def test_subdivide_ignores_exterior_points(self):
        pieces = Interval(0.0, 10.0).subdivide(np.array([-1.0, 5.0, 11.0, 0.0, 10.0]))
        assert pieces == [Interval(0, 5), Interval(5, 10)]

    def test_subdivide_collapses_duplicates(self):
        pieces = Interval(0.0, 10.0).subdivide(np.array([5.0, 5.0]))
        assert len(pieces) == 2

    @given(st.floats(-1e6, 1e6), st.floats(1e-3, 1e6))
    def test_fraction_always_in_unit_range(self, low, width):
        interval = Interval(low, low + width)
        assert 0.0 <= interval.fraction(low - 1.0, low + 0.5 * width) <= 1.0


class TestIntegerDomain:
    def test_bounds(self):
        domain = IntegerDomain(10)
        assert domain.low == 0.0
        assert domain.high == 1023.0
        assert domain.cardinality == 1024
        assert domain.p == 10

    def test_rejects_bad_exponent(self):
        with pytest.raises(ValueError):
            IntegerDomain(0)
        with pytest.raises(TypeError):
            IntegerDomain(2.5)

    def test_snap_rounds_and_clips(self):
        domain = IntegerDomain(4)  # [0, 15]
        np.testing.assert_allclose(
            domain.snap(np.array([-3.0, 2.4, 2.6, 99.0])), [0.0, 2.0, 3.0, 15.0]
        )

    def test_is_an_interval(self):
        domain = IntegerDomain(8)
        assert domain.fraction(0.0, domain.high) == 1.0

    @given(st.integers(1, 30))
    def test_width_matches_cardinality(self, p):
        domain = IntegerDomain(p)
        assert domain.width == domain.cardinality - 1
