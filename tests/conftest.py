"""Shared fixtures for the test suite.

Heavy artefacts (paper data files, query files) are session-scoped;
everything else builds tiny deterministic inputs per test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.domain import IntegerDomain, Interval
from repro.data.relation import Relation


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture()
def unit_interval() -> Interval:
    return Interval(0.0, 1.0)


@pytest.fixture()
def small_domain() -> IntegerDomain:
    """A 1,024-value integer domain."""
    return IntegerDomain(10)


@pytest.fixture()
def uniform_sample(rng: np.random.Generator) -> np.ndarray:
    """500 uniform values on [0, 1]."""
    return rng.uniform(0.0, 1.0, size=500)


@pytest.fixture()
def normal_sample(rng: np.random.Generator) -> np.ndarray:
    """1,000 standard normal values (unbounded domain)."""
    return rng.normal(0.0, 1.0, size=1_000)


@pytest.fixture()
def small_relation(rng: np.random.Generator, small_domain: IntegerDomain) -> Relation:
    """10,000 integer records, roughly normal around the domain center."""
    values = small_domain.snap(rng.normal(small_domain.center, small_domain.width / 6, 10_000))
    return Relation(values, small_domain, name="test-normal")


@pytest.fixture(scope="session")
def n20_context():
    """The paper's n(20) file with a 2,000-record sample and 1% queries."""
    from repro.experiments.harness import FAST, load_context

    return load_context("n(20)", FAST)
