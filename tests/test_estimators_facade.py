"""Tests for the public factory module (repro.estimators)."""

import numpy as np
import pytest

from repro import estimators
from repro.core.base import InvalidSampleError
from repro.core.histogram import (
    AverageShiftedHistogram,
    EquiDepthHistogram,
    EquiWidthHistogram,
    MaxDiffHistogram,
    UniformEstimator,
)
from repro.core.hybrid import HybridEstimator
from repro.core.kernel import BoundaryKernelEstimator, KernelSelectivityEstimator
from repro.core.sampling import SamplingEstimator
from repro.data.domain import Interval


@pytest.fixture()
def domain():
    return Interval(0.0, 100.0)


@pytest.fixture()
def sample():
    return np.random.default_rng(0).uniform(0.0, 100.0, 600)


class TestFactories:
    def test_sampling(self, sample):
        assert isinstance(estimators.sampling(sample), SamplingEstimator)

    def test_uniform(self, domain):
        assert isinstance(estimators.uniform(domain), UniformEstimator)

    def test_equi_width_default_rule(self, sample, domain):
        hist = estimators.equi_width(sample, domain)
        assert isinstance(hist, EquiWidthHistogram)
        assert hist.bin_count >= 1

    def test_equi_width_explicit_bins(self, sample, domain):
        assert estimators.equi_width(sample, domain, bins=7).bin_count == 7

    def test_equi_depth(self, sample, domain):
        assert isinstance(estimators.equi_depth(sample, domain, bins=5), EquiDepthHistogram)

    def test_max_diff(self, sample, domain):
        assert isinstance(estimators.max_diff(sample, domain, bins=5), MaxDiffHistogram)

    def test_ash(self, sample, domain):
        ash = estimators.ash(sample, domain, bins=6, shifts=4)
        assert isinstance(ash, AverageShiftedHistogram)
        assert ash.shifts == 4

    def test_kernel_default_boundary_with_domain(self, sample, domain):
        assert isinstance(estimators.kernel(sample, domain), BoundaryKernelEstimator)

    def test_kernel_without_domain_untreated(self, sample):
        est = estimators.kernel(sample)
        assert type(est) is KernelSelectivityEstimator

    def test_kernel_explicit_bandwidth(self, sample, domain):
        est = estimators.kernel(sample, domain, bandwidth=2.5)
        assert est.bandwidth == 2.5

    def test_kernel_plugin_rule(self, sample, domain):
        est = estimators.kernel(sample, domain, bandwidth="plug-in")
        assert est.bandwidth > 0

    def test_kernel_clamps_bandwidth_for_boundary(self, sample, domain):
        est = estimators.kernel(sample, domain, bandwidth=500.0)
        assert est.bandwidth <= 0.5 * domain.width

    def test_hybrid(self, sample, domain):
        assert isinstance(estimators.hybrid(sample, domain), HybridEstimator)

    def test_v_optimal(self, sample, domain):
        from repro.core.histogram import VOptimalHistogram

        assert isinstance(estimators.v_optimal(sample, domain, bins=6), VOptimalHistogram)

    def test_wavelet(self, sample, domain):
        from repro.core.histogram import WaveletHistogram

        est = estimators.wavelet(sample, domain, coefficients=8)
        assert isinstance(est, WaveletHistogram)
        assert est.coefficient_budget == 8

    def test_end_biased(self, sample, domain):
        from repro.core.histogram import EndBiasedHistogram

        assert isinstance(estimators.end_biased(sample, domain), EndBiasedHistogram)

    def test_unknown_rule_raises(self, sample, domain):
        with pytest.raises(InvalidSampleError):
            estimators.equi_width(sample, domain, bins="magic")
        with pytest.raises(InvalidSampleError):
            estimators.kernel(sample, domain, bandwidth="magic")

    def test_bad_bin_count_raises(self, sample, domain):
        with pytest.raises(InvalidSampleError):
            estimators.equi_width(sample, domain, bins=0)

    def test_paper_lineup_complete(self):
        assert set(estimators.PAPER_LINEUP) == {"EWH", "Kernel", "Hybrid", "ASH"}


class TestFactoriesProduceReasonableEstimates:
    """Every factory default must give a sane estimate out of the box."""

    def test_all_factories_near_truth_on_uniform(self, sample, domain):
        built = [
            estimators.sampling(sample),
            estimators.uniform(domain),
            estimators.equi_width(sample, domain),
            estimators.equi_depth(sample, domain),
            estimators.max_diff(sample, domain),
            estimators.ash(sample, domain),
            estimators.kernel(sample, domain),
            estimators.hybrid(sample, domain),
            estimators.v_optimal(sample, domain),
            estimators.wavelet(sample, domain),
            estimators.end_biased(sample, domain),
        ]
        for est in built:
            value = est.selectivity(20.0, 40.0)
            assert value == pytest.approx(0.2, abs=0.08), type(est).__name__
