"""Tests for the public factory module (repro.estimators)."""

import numpy as np
import pytest

from repro import estimators
from repro.core.base import InvalidSampleError
from repro.core.histogram import (
    AverageShiftedHistogram,
    EquiDepthHistogram,
    EquiWidthHistogram,
    MaxDiffHistogram,
    UniformEstimator,
)
from repro.core.hybrid import HybridEstimator
from repro.core.kernel import BoundaryKernelEstimator, KernelSelectivityEstimator
from repro.core.sampling import SamplingEstimator
from repro.data.domain import Interval


@pytest.fixture()
def domain():
    return Interval(0.0, 100.0)


@pytest.fixture()
def sample():
    return np.random.default_rng(0).uniform(0.0, 100.0, 600)


class TestFactories:
    def test_sampling(self, sample):
        assert isinstance(estimators.sampling(sample), SamplingEstimator)

    def test_uniform(self, domain):
        assert isinstance(estimators.uniform(domain), UniformEstimator)

    def test_equi_width_default_rule(self, sample, domain):
        hist = estimators.equi_width(sample, domain)
        assert isinstance(hist, EquiWidthHistogram)
        assert hist.bin_count >= 1

    def test_equi_width_explicit_bins(self, sample, domain):
        assert estimators.equi_width(sample, domain, bins=7).bin_count == 7

    def test_equi_depth(self, sample, domain):
        assert isinstance(estimators.equi_depth(sample, domain, bins=5), EquiDepthHistogram)

    def test_max_diff(self, sample, domain):
        assert isinstance(estimators.max_diff(sample, domain, bins=5), MaxDiffHistogram)

    def test_ash(self, sample, domain):
        ash = estimators.ash(sample, domain, bins=6, shifts=4)
        assert isinstance(ash, AverageShiftedHistogram)
        assert ash.shifts == 4

    def test_kernel_default_boundary_with_domain(self, sample, domain):
        assert isinstance(estimators.kernel(sample, domain), BoundaryKernelEstimator)

    def test_kernel_without_domain_untreated(self, sample):
        est = estimators.kernel(sample)
        assert type(est) is KernelSelectivityEstimator

    def test_kernel_explicit_bandwidth(self, sample, domain):
        est = estimators.kernel(sample, domain, bandwidth=2.5)
        assert est.bandwidth == 2.5

    def test_kernel_plugin_rule(self, sample, domain):
        est = estimators.kernel(sample, domain, bandwidth="plug-in")
        assert est.bandwidth > 0

    def test_kernel_clamps_bandwidth_for_boundary(self, sample, domain):
        est = estimators.kernel(sample, domain, bandwidth=500.0)
        assert est.bandwidth <= 0.5 * domain.width

    def test_hybrid(self, sample, domain):
        assert isinstance(estimators.hybrid(sample, domain), HybridEstimator)

    def test_v_optimal(self, sample, domain):
        from repro.core.histogram import VOptimalHistogram

        assert isinstance(estimators.v_optimal(sample, domain, bins=6), VOptimalHistogram)

    def test_wavelet(self, sample, domain):
        from repro.core.histogram import WaveletHistogram

        est = estimators.wavelet(sample, domain, coefficients=8)
        assert isinstance(est, WaveletHistogram)
        assert est.coefficient_budget == 8

    def test_end_biased(self, sample, domain):
        from repro.core.histogram import EndBiasedHistogram

        assert isinstance(estimators.end_biased(sample, domain), EndBiasedHistogram)

    def test_unknown_rule_raises(self, sample, domain):
        with pytest.raises(InvalidSampleError):
            estimators.equi_width(sample, domain, bins="magic")
        with pytest.raises(InvalidSampleError):
            estimators.kernel(sample, domain, bandwidth="magic")

    def test_bad_bin_count_raises(self, sample, domain):
        with pytest.raises(InvalidSampleError):
            estimators.equi_width(sample, domain, bins=0)

    def test_paper_lineup_complete(self):
        assert set(estimators.PAPER_LINEUP) == {"EWH", "Kernel", "Hybrid", "ASH"}


class TestFactoriesProduceReasonableEstimates:
    """Every factory default must give a sane estimate out of the box."""

    def test_all_factories_near_truth_on_uniform(self, sample, domain):
        built = [
            estimators.sampling(sample),
            estimators.uniform(domain),
            estimators.equi_width(sample, domain),
            estimators.equi_depth(sample, domain),
            estimators.max_diff(sample, domain),
            estimators.ash(sample, domain),
            estimators.kernel(sample, domain),
            estimators.hybrid(sample, domain),
            estimators.v_optimal(sample, domain),
            estimators.wavelet(sample, domain),
            estimators.end_biased(sample, domain),
        ]
        for est in built:
            value = est.selectivity(20.0, 40.0)
            assert value == pytest.approx(0.2, abs=0.08), type(est).__name__


#: One builder per facade family, small parameters so the whole
#: malformed-batch matrix below stays fast.
_BATCH_FAMILIES = {
    "sampling": lambda sample, domain: estimators.sampling(sample, domain),
    "uniform": lambda sample, domain: estimators.uniform(domain),
    "equi-width": lambda sample, domain: estimators.equi_width(sample, domain, bins=8),
    "equi-depth": lambda sample, domain: estimators.equi_depth(sample, domain, bins=8),
    "max-diff": lambda sample, domain: estimators.max_diff(sample, domain, bins=8),
    "ash": lambda sample, domain: estimators.ash(sample, domain, bins=8, shifts=4),
    "kernel": lambda sample, domain: estimators.kernel(sample, domain),
    "hybrid": lambda sample, domain: estimators.hybrid(sample, domain),
    "v-optimal": lambda sample, domain: estimators.v_optimal(sample, domain, bins=8),
    "wavelet": lambda sample, domain: estimators.wavelet(sample, domain, coefficients=8),
    "end-biased": lambda sample, domain: estimators.end_biased(sample, domain, top=8),
}

#: Malformed endpoint batches every estimator must reject up front.
_BAD_BATCHES = {
    "nan-low": (np.array([10.0, np.nan]), np.array([20.0, 30.0])),
    "inf-high": (np.array([10.0, 20.0]), np.array([np.inf, 30.0])),
    "reversed": (np.array([10.0, 50.0]), np.array([20.0, 40.0])),
    "shape-mismatch": (np.array([10.0, 20.0]), np.array([30.0])),
}


class TestBatchValidationAcrossFacade:
    """`selectivities` rejects malformed batches identically everywhere.

    The serving tier (docs/SERVING.md) relies on this: an
    InvalidQueryError is a *caller* error, re-raised without charging
    circuit breakers, so every estimator family must classify the same
    malformed input the same way — before any evaluation work.
    """

    @pytest.fixture(scope="class")
    def built(self):
        domain = Interval(0.0, 100.0)
        sample = np.random.default_rng(0).uniform(0.0, 100.0, 600)
        return {
            name: make(sample, domain) for name, make in _BATCH_FAMILIES.items()
        }

    @pytest.mark.parametrize("case", sorted(_BAD_BATCHES))
    @pytest.mark.parametrize("family", sorted(_BATCH_FAMILIES))
    def test_selectivities_rejects_malformed_batch(self, built, family, case):
        from repro.core.base import InvalidQueryError

        a, b = _BAD_BATCHES[case]
        with pytest.raises(InvalidQueryError):
            built[family].selectivities(a, b)

    @pytest.mark.parametrize("family", sorted(_BATCH_FAMILIES))
    def test_selectivities_accepts_well_formed_batch(self, built, family):
        a = np.array([10.0, 30.0, 0.0])
        b = np.array([20.0, 60.0, 100.0])
        values = built[family].selectivities(a, b)
        assert values.shape == a.shape
        assert np.all(np.isfinite(values))
        assert np.all((values >= 0.0) & (values <= 1.0))
