"""Tests for AMISE formulas (repro.bandwidth.amise)."""

import numpy as np
import pytest
from scipy import integrate, stats

from repro.bandwidth.amise import (
    amise_histogram,
    amise_kernel,
    exponential_roughness,
    normal_roughness,
    optimal_bandwidth,
    optimal_bin_width,
)
from repro.core.base import InvalidSampleError


class TestRoughnessFunctionals:
    @pytest.mark.parametrize("order", [0, 1, 2])
    @pytest.mark.parametrize("sigma", [0.5, 1.0, 3.0])
    @pytest.mark.filterwarnings("ignore::scipy.integrate.IntegrationWarning")
    def test_normal_roughness_numeric(self, order, sigma):
        pdf = lambda x: stats.norm.pdf(x, scale=sigma)
        eps = 1e-5

        def derivative(x):
            if order == 0:
                return pdf(x)
            if order == 1:
                return (pdf(x + eps) - pdf(x - eps)) / (2 * eps)
            return (pdf(x + eps) - 2 * pdf(x) + pdf(x - eps)) / eps**2

        numeric, _ = integrate.quad(
            lambda x: derivative(x) ** 2, -10 * sigma, 10 * sigma, limit=400
        )
        assert normal_roughness(order, sigma) == pytest.approx(numeric, rel=1e-3)

    @pytest.mark.parametrize("order", [0, 1, 2])
    def test_exponential_roughness_numeric(self, order):
        rate = 1.7
        numeric, _ = integrate.quad(
            lambda x: (rate ** (order + 1) * np.exp(-rate * x)) ** 2, 0, 60, limit=400
        )
        assert exponential_roughness(order, rate) == pytest.approx(numeric, rel=1e-6)

    def test_unsupported_order_raises(self):
        with pytest.raises(InvalidSampleError):
            normal_roughness(3)
        with pytest.raises(InvalidSampleError):
            exponential_roughness(-1)


class TestOptimizers:
    def test_optimal_bin_width_minimizes_amise(self):
        n, roughness = 2_000, 0.35
        best = optimal_bin_width(n, roughness)
        base = amise_histogram(best, n, roughness)
        for factor in (0.5, 0.8, 1.25, 2.0):
            assert amise_histogram(best * factor, n, roughness) > base

    def test_optimal_bandwidth_minimizes_amise(self):
        n, roughness = 2_000, 0.2
        best = optimal_bandwidth(n, roughness)
        base = amise_kernel(best, n, roughness)
        for factor in (0.5, 0.8, 1.25, 2.0):
            assert amise_kernel(best * factor, n, roughness) > base

    def test_paper_convergence_rates(self):
        """AMISE at the optimum scales as n^(-2/3) (histogram) and
        n^(-4/5) (kernel) — the rates quoted in paper §§4.1-4.2."""
        roughness = 1.0
        for formula, opt, rate in [
            (amise_histogram, optimal_bin_width, -2 / 3),
            (amise_kernel, optimal_bandwidth, -4 / 5),
        ]:
            a = formula(opt(1_000, roughness), 1_000, roughness)
            b = formula(opt(100_000, roughness), 100_000, roughness)
            observed = np.log(b / a) / np.log(100.0)
            assert observed == pytest.approx(rate, abs=0.01)

    def test_kernel_beats_histogram_asymptotically(self):
        """For the same underlying density the kernel optimum has lower
        AMISE at large n."""
        n = 100_000
        r1 = normal_roughness(1)
        r2 = normal_roughness(2)
        hist = amise_histogram(optimal_bin_width(n, r1), n, r1)
        kern = amise_kernel(optimal_bandwidth(n, r2), n, r2)
        assert kern < hist

    def test_rejects_nonpositive_inputs(self):
        with pytest.raises(InvalidSampleError):
            optimal_bin_width(0, 1.0)
        with pytest.raises(InvalidSampleError):
            optimal_bandwidth(100, -1.0)
        with pytest.raises(InvalidSampleError):
            amise_histogram(0.0, 100, 1.0)
