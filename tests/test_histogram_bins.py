"""Tests for the shared histogram machinery (repro.core.histogram.bins)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import InvalidSampleError
from repro.core.histogram.bins import PiecewiseConstantDensity, bin_samples
from repro.data.domain import Interval


class TestConstruction:
    def test_rejects_mismatched_arrays(self):
        with pytest.raises(InvalidSampleError):
            PiecewiseConstantDensity(np.array([0.0, 1.0]), np.array([1.0, 2.0]), 3)

    def test_rejects_decreasing_edges(self):
        with pytest.raises(InvalidSampleError):
            PiecewiseConstantDensity(np.array([0.0, 2.0, 1.0]), np.array([1.0, 1.0]), 2)

    def test_rejects_negative_counts(self):
        with pytest.raises(InvalidSampleError):
            PiecewiseConstantDensity(np.array([0.0, 1.0]), np.array([-1.0]), 1)

    def test_rejects_counts_exceeding_sample(self):
        with pytest.raises(InvalidSampleError):
            PiecewiseConstantDensity(np.array([0.0, 1.0]), np.array([5.0]), 3)

    def test_zero_bins_rejected(self):
        with pytest.raises(InvalidSampleError):
            PiecewiseConstantDensity(np.array([0.0]), np.array([]), 1)


class TestSelectivity:
    @pytest.fixture()
    def hist(self):
        # Two bins on [0, 10]: 30 samples in [0, 5], 70 in [5, 10].
        return PiecewiseConstantDensity(
            np.array([0.0, 5.0, 10.0]), np.array([30.0, 70.0]), 100, Interval(0, 10)
        )

    def test_full_range(self, hist):
        assert hist.selectivity(0.0, 10.0) == pytest.approx(1.0)

    def test_single_bin(self, hist):
        assert hist.selectivity(0.0, 5.0) == pytest.approx(0.3)

    def test_partial_bin_uniform_assumption(self, hist):
        assert hist.selectivity(0.0, 2.5) == pytest.approx(0.15)

    def test_straddling_bins(self, hist):
        assert hist.selectivity(2.5, 7.5) == pytest.approx(0.15 + 0.35)

    def test_outside_domain_zero(self, hist):
        assert hist.selectivity(20.0, 30.0) == 0.0

    def test_vectorized_matches_scalar(self, hist):
        a = np.linspace(0, 8, 17)
        b = a + 1.5
        batch = hist.selectivities(a, b)
        singles = [hist.selectivity(x, y) for x, y in zip(a, b)]
        np.testing.assert_allclose(batch, singles)

    def test_density_values(self, hist):
        np.testing.assert_allclose(hist.density(np.array([2.0, 7.0])), [0.06, 0.14])

    def test_density_outside_zero(self, hist):
        assert hist.density(np.array([-1.0]))[0] == 0.0

    def test_total_mass(self, hist):
        assert hist.total_mass() == pytest.approx(1.0)

    def test_partial_mass_when_samples_outside(self):
        hist = PiecewiseConstantDensity(np.array([0.0, 1.0]), np.array([40.0]), 100)
        assert hist.total_mass() == pytest.approx(0.4)


class TestPointMasses:
    def test_degenerate_bin_becomes_point_mass(self):
        hist = PiecewiseConstantDensity(
            np.array([0.0, 2.0, 2.0, 4.0]), np.array([10.0, 30.0, 60.0]), 100
        )
        assert hist.point_masses == [(2.0, 0.3)]
        assert hist.bin_count == 2

    def test_point_mass_counts_when_inside_range(self):
        hist = PiecewiseConstantDensity(
            np.array([0.0, 2.0, 2.0, 4.0]), np.array([10.0, 30.0, 60.0]), 100
        )
        assert hist.selectivity(1.9, 2.1) == pytest.approx(
            0.1 * (0.1 / 2.0) + 0.3 + 0.6 * (0.1 / 2.0)
        )

    def test_point_mass_at_endpoint_included(self):
        hist = PiecewiseConstantDensity(
            np.array([0.0, 2.0, 2.0, 4.0]), np.array([0.0, 50.0, 50.0]), 100
        )
        assert hist.selectivity(2.0, 2.0) == pytest.approx(0.5)

    def test_all_mass_in_point(self):
        hist = PiecewiseConstantDensity(np.array([3.0, 3.0, 4.0]), np.array([100.0, 0.0]), 100)
        assert hist.selectivity(0.0, 10.0) == pytest.approx(1.0)
        assert hist.selectivity(3.5, 10.0) == 0.0


class TestBinSamples:
    def test_counts(self):
        counts = bin_samples(np.array([0.5, 1.5, 1.6, 2.5]), np.array([0.0, 1.0, 2.0, 3.0]))
        np.testing.assert_allclose(counts, [1, 2, 1])

    def test_rightmost_edge_closed(self):
        counts = bin_samples(np.array([3.0]), np.array([0.0, 1.5, 3.0]))
        np.testing.assert_allclose(counts, [0, 1])

    @given(st.lists(st.floats(0, 1), min_size=1, max_size=100))
    @settings(max_examples=40)
    def test_conserves_in_range_samples(self, values):
        sample = np.array(values)
        edges = np.linspace(0.0, 1.0, 7)
        assert bin_samples(sample, edges).sum() == sample.size
