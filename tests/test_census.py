"""Tests for the simulated census instance-weight file (repro.data.census)."""

import numpy as np
import pytest

from repro.data import census
from repro.data.domain import IntegerDomain


@pytest.fixture()
def values():
    return census.instance_weight(21, 50_000, np.random.default_rng(5))


class TestInstanceWeight:
    def test_shape_and_bounds(self, values):
        domain = IntegerDomain(21)
        assert values.shape == (50_000,)
        assert values.min() >= domain.low
        assert values.max() <= domain.high

    def test_contains_heavy_spikes(self, values):
        """A handful of repeated weights must dominate, as in the real
        census post-stratification output."""
        _, counts = np.unique(values, return_counts=True)
        heaviest = np.sort(counts)[-len(census.SPIKES):].sum()
        assert heaviest > 0.2 * values.size

    def test_mass_concentrated_left(self, values):
        """Mass concentration far from uniform — this is what breaks
        the uniform estimator in the paper's Fig. 8."""
        domain = IntegerDomain(21)
        left_quarter = np.mean(values < domain.low + 0.25 * domain.width)
        assert left_quarter > 0.85

    def test_bulk_is_continuousish(self, values):
        """Besides the spikes there must be a broad continuous bulk."""
        assert np.unique(values).size > 5_000

    def test_deterministic(self):
        a = census.instance_weight(21, 1_000, np.random.default_rng(9))
        b = census.instance_weight(21, 1_000, np.random.default_rng(9))
        np.testing.assert_array_equal(a, b)
