"""Chaos suite: the serving tier under an adversarial fault schedule.

Each scenario drives :class:`~repro.serving.EstimationService` through
a deterministic, seed-derived mix of injected failures — tier errors,
latency spikes, cache poisoning, clock skew — and asserts the three
contract properties the tier exists for:

* **Degraded but valid**: every answer that comes back is a finite,
  in-range estimate with its degradation trail recorded; every error
  is a typed :class:`~repro.serving.errors.ServingError`.
* **Deterministic**: the same seed and schedule produce the same tier
  choices, retry counts, fallback trails and breaker transitions.
* **Deadline-honest**: a request never overshoots its deadline by more
  than a scheduling epsilon — it fails fast instead of answering late.

The fault schedule derives from ``REPRO_CHAOS_SEED`` (default 0); CI
runs the suite across a small seed matrix.
"""

import os
import time

import numpy as np
import pytest

from repro.core.base import InvalidQueryError
from repro.data.domain import Interval
from repro.db import RangePredicate, Table
from repro.serving import (
    BreakerConfig,
    EstimationService,
    FaultInjector,
    FaultRule,
    RetryPolicy,
    ServiceConfig,
)
from repro.serving.errors import ServingError

#: Seed of the fault schedule; CI sweeps a matrix of values.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

#: Allowed deadline overshoot: generous against CI scheduling noise,
#: far below the injected 5 s stalls it must cut short.
DEADLINE_EPSILON_S = 0.25

DOMAIN = Interval(0.0, 1_000.0)
ROWS = 4_000


def _make_table(seed=0):
    rng = np.random.default_rng(seed)
    x = np.clip(rng.normal(400.0, 120.0, ROWS), 0, 1_000)
    z = rng.uniform(0, 1_000, ROWS)
    return Table("points", {"x": (x, DOMAIN), "z": (z, DOMAIN)})


def _chaos_schedule(seed):
    """A seed-derived but fully deterministic fault schedule.

    The seed only shifts *when* each fault fires (phase/period), never
    whether the run is reproducible: the schedule is counter-based, so
    two services with the same seed see identical fault sequences.
    """
    rng = np.random.default_rng(seed)
    phase = int(rng.integers(0, 3))
    period = int(rng.integers(2, 5))
    return [
        # A burst of consecutive hybrid failures: long enough to defeat
        # the 2-attempt retry and trip the breaker at any phase.
        FaultRule(
            site="tier.hybrid.estimate",
            kind="error",
            after=phase,
            every=1,
            times=6,
            message="chaos: hybrid down",
        ),
        FaultRule(
            site="tier.equi-depth.estimate",
            kind="error",
            after=phase + 8,
            every=period,
            times=3,
            message="chaos: histogram down",
        ),
        FaultRule(site="serving.cache.store", kind="poison", after=1, every=7),
        FaultRule(site="tier.hybrid.estimate", kind="skew", skew_s=0.0005, every=9),
    ]


def _chaos_service(seed, *, schedule=None, sleep=None):
    faults = FaultInjector(
        _chaos_schedule(seed) if schedule is None else schedule,
        sleep=sleep if sleep is not None else (lambda _s: None),
    )
    service = EstimationService(
        ServiceConfig(
            sample_size=500,
            # The cooldown is effectively infinite so breaker reopening
            # never races the wall clock — recovery timing is covered
            # by the fake-clock unit tests in test_serving.py.
            breaker=BreakerConfig(
                window=6, failure_threshold=0.5, min_samples=3, cooldown_s=1_000.0,
                half_open_probes=1,
            ),
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.001, max_delay_s=0.002),
        ),
        seed=seed,
        faults=faults,
        sleep=lambda _s: None,
    )
    service.register(_make_table(), seed=7)
    return service


def _request_mix(n):
    """A fixed rotation of query shapes (some repeats to hit the cache)."""
    shapes = [
        [RangePredicate("x", 300.0, 500.0)],
        [RangePredicate("x", 100.0, 900.0)],
        [RangePredicate("x", 350.0, 450.0), RangePredicate("z", 0.0, 500.0)],
        [RangePredicate("x", 300.0, 500.0)],  # repeat: exercises the cache
    ]
    return [shapes[i % len(shapes)] for i in range(n)]


def _trace(service, requests):
    """Serve every request, recording a comparable outcome tuple."""
    outcomes = []
    for predicates in requests:
        try:
            result = service.estimate("points", predicates)
        except ServingError as exc:
            outcomes.append(("error", type(exc).__name__))
        else:
            outcomes.append(
                (
                    "ok",
                    result.tier,
                    result.degraded,
                    result.cached,
                    result.attempts,
                    result.fallbacks,
                    round(result.plan.estimated_rows, 6),
                )
            )
    return outcomes


class TestChaosDegradedButValid:
    def test_every_answer_is_finite_in_range_and_annotated(self):
        service = _chaos_service(CHAOS_SEED)
        served = degraded = errors = 0
        for predicates in _request_mix(60):
            try:
                result = service.estimate("points", predicates)
            except ServingError:
                errors += 1
                continue
            served += 1
            rows = result.plan.estimated_rows
            assert np.isfinite(rows) and 0.0 <= rows <= ROWS
            assert np.isfinite(result.plan.estimated_cost)
            assert any("served by" in note for note in result.plan.provenance)
            if result.degraded:
                degraded += 1
                assert result.fallbacks
                assert any("degraded:" in note for note in result.plan.provenance)
            else:
                assert result.fallbacks == () or result.cached
        # The schedule leaves the service usable and visibly degraded.
        assert served > 0
        assert degraded > 0
        assert errors + served == 60

    def test_only_typed_errors_escape(self):
        service = _chaos_service(CHAOS_SEED)
        for predicates in _request_mix(40):
            try:
                service.estimate("points", predicates)
            except ServingError:
                pass  # the typed hierarchy is the contract
            except InvalidQueryError:
                pytest.fail("well-formed request classified as caller error")

    def test_poisoned_entries_never_reach_the_caller(self):
        from repro import telemetry

        schedule = [FaultRule(site="serving.cache.store", kind="poison", every=2)]
        with telemetry.session() as session:
            service = _chaos_service(CHAOS_SEED, schedule=schedule)
            for predicates in _request_mix(24):
                result = service.estimate("points", predicates)
                assert np.isfinite(result.plan.estimated_rows)
            # Poison fired and was caught by validation-on-read: the
            # corrupt entries were evicted and recomputed, not served.
            assert session.metrics.counter("serving.fault.poison") > 0
            assert session.metrics.counter("serving.poisoned") > 0


class TestChaosDeterminism:
    def test_same_seed_same_story(self):
        requests = _request_mix(50)
        first = _trace(_chaos_service(CHAOS_SEED), requests)
        second = _trace(_chaos_service(CHAOS_SEED), requests)
        assert first == second

    def test_breaker_transitions_deterministic(self):
        requests = _request_mix(50)
        runs = []
        for _ in range(2):
            service = _chaos_service(CHAOS_SEED)
            _trace(service, requests)
            board = service._breakers
            runs.append(
                {
                    key: (breaker.state, breaker.times_opened)
                    for key, breaker in board._breakers.items()
                }
            )
        assert runs[0] == runs[1]
        # The hybrid breaker actually cycled under this schedule.
        hybrid = runs[0][("points", "hybrid")]
        assert hybrid[1] >= 1

    def test_seed_changes_the_schedule_not_the_contract(self):
        # A different seed may reorder faults, but the validity
        # properties hold for any seed in the CI matrix.
        other = (CHAOS_SEED + 1) % 3
        service = _chaos_service(other)
        for predicates in _request_mix(30):
            try:
                result = service.estimate("points", predicates)
            except ServingError:
                continue
            assert np.isfinite(result.plan.estimated_rows)
            assert 0.0 <= result.plan.estimated_rows <= ROWS


class TestChaosDeadlines:
    def test_injected_stalls_never_overshoot_the_deadline(self):
        schedule = [
            FaultRule(
                site="tier.hybrid.estimate", kind="latency", latency_s=5.0, every=2
            ),
            FaultRule(
                site="tier.equi-depth.estimate", kind="latency", latency_s=5.0, every=3
            ),
        ]
        faults = FaultInjector(schedule)  # real clock, real sleep
        service = EstimationService(
            ServiceConfig(sample_size=500, retry=RetryPolicy(max_attempts=1)),
            seed=CHAOS_SEED,
            faults=faults,
        )
        service.register(_make_table(), seed=7)
        deadline_s = 0.05
        overshoots = []
        deadline_errors = 0
        for predicates in _request_mix(8):
            begin = time.monotonic()
            try:
                service.estimate("points", predicates, deadline_s=deadline_s)
            except ServingError as exc:
                if type(exc).__name__ == "DeadlineExceeded":
                    deadline_errors += 1
            overshoots.append(time.monotonic() - begin - deadline_s)
        # Injected 5 s stalls hit every other request, yet no call ran
        # longer than deadline + epsilon.
        assert deadline_errors > 0
        assert max(overshoots) <= DEADLINE_EPSILON_S

    def test_clock_skew_does_not_break_serving(self):
        schedule = [
            FaultRule(site="tier.hybrid.estimate", kind="skew", skew_s=0.2, every=4),
        ]
        service = _chaos_service(CHAOS_SEED, schedule=schedule)
        served = 0
        for predicates in _request_mix(20):
            try:
                result = service.estimate("points", predicates, deadline_s=1.0)
            except ServingError:
                continue
            served += 1
            assert np.isfinite(result.plan.estimated_rows)
        assert served > 0


class TestChaosSnapshots:
    def test_refresh_under_fire_leaks_nothing(self):
        service = _chaos_service(CHAOS_SEED)
        for index, predicates in enumerate(_request_mix(24)):
            if index % 8 == 7:
                service.refresh("points")
            try:
                result = service.estimate("points", predicates)
            except ServingError:
                continue
            assert result.snapshot_version == service.snapshot_version
        assert service.snapshot_version == 4  # 1 register + 3 refreshes
        assert service.retired_snapshots() == ()

    def test_build_faults_during_refresh_degrade_not_crash(self):
        schedule = [
            FaultRule(site="tier.hybrid.build", kind="error", after=1),
        ]
        service = _chaos_service(CHAOS_SEED, schedule=schedule)
        assert service.tiers("points") == ("hybrid", "equi-depth", "uniform")
        service.refresh("points")
        assert service.tiers("points") == ("equi-depth", "uniform")
        result = service.estimate("points", [RangePredicate("x", 300.0, 500.0)])
        assert result.tier == "equi-depth"
        assert np.isfinite(result.plan.estimated_rows)


class TestChaosIncrementalRefresh:
    """Faults mid statistics-merge never publish a half-refreshed tier.

    The incremental path (docs/STREAMING.md) forks each tier's catalog,
    replays the table's delta log into the fork, and publishes the tier
    set atomically.  A fault landing between tier merges must leave the
    failed tier on its previous (consistent) statistics while the
    others advance — and the whole run must be seed-reproducible.
    """

    def _refresh_schedule(self, seed):
        rng = np.random.default_rng(seed)
        phase = int(rng.integers(0, 2))
        period = int(rng.integers(2, 4))
        return [
            FaultRule(
                site="tier.hybrid.refresh",
                kind="error",
                after=phase,
                every=period,
                times=4,
                message="chaos: refresh torn mid-merge",
            ),
            FaultRule(
                site="tier.equi-depth.refresh",
                kind="error",
                after=phase + 1,
                every=period + 1,
                times=3,
                message="chaos: refresh torn mid-merge",
            ),
        ]

    def _drive(self, seed):
        table = _make_table()
        faults = FaultInjector(self._refresh_schedule(seed), sleep=lambda _s: None)
        service = EstimationService(
            ServiceConfig(sample_size=500),
            seed=seed,
            faults=faults,
            sleep=lambda _s: None,
        )
        service.register(table, seed=7)
        rng = np.random.default_rng(seed + 100)
        trace = []
        for round_index in range(6):
            batch = np.clip(
                rng.normal(600.0 + 40.0 * round_index, 50.0, 200), 0.0, 1_000.0
            )
            table.append({"x": batch, "z": rng.uniform(0.0, 1_000.0, 200)})
            if round_index % 3 == 2:
                table.delete_where({"x": (0.0, 100.0 + round_index)})
            version, modes = service.refresh_incremental("points")
            result = service.estimate(
                "points", [RangePredicate("x", 400.0, 800.0)]
            )
            assert np.isfinite(result.plan.estimated_rows)
            assert 0.0 <= result.plan.estimated_rows <= table.row_count
            trace.append(
                (
                    version,
                    tuple(sorted(modes.items())),
                    result.tier,
                    round(result.plan.estimated_rows, 6),
                )
            )
        return trace

    def test_faults_mid_merge_leave_serving_consistent(self):
        trace = self._drive(CHAOS_SEED)
        failed = [
            mode
            for _, modes, _, _ in trace
            for _, mode in modes
            if mode.startswith("failed")
        ]
        succeeded = [
            mode
            for _, modes, _, _ in trace
            for _, mode in modes
            if mode in ("incremental", "full")
        ]
        # The schedule actually tore refreshes, and other tiers kept
        # absorbing deltas in the same rounds.
        assert failed and succeeded
        # Every publish was atomic: versions strictly increase and each
        # round's estimate stayed finite and in range (asserted above).
        versions = [version for version, _, _, _ in trace]
        assert versions == sorted(versions)
        assert len(set(versions)) == len(versions)

    def test_mid_merge_chaos_is_deterministic(self):
        assert self._drive(CHAOS_SEED) == self._drive(CHAOS_SEED)
