"""Tests for max-diff histograms (repro.core.histogram.max_diff)."""

import numpy as np
import pytest

from repro.core.base import InvalidSampleError
from repro.core.histogram import MaxDiffHistogram
from repro.data.domain import Interval


class TestBoundaryPlacement:
    def test_boundary_in_largest_gap(self):
        # Largest gap is between 3 and 9.
        sample = np.array([1.0, 2.0, 3.0, 9.0, 10.0])
        hist = MaxDiffHistogram(sample, 2)
        assert hist.bin_count == 2
        cut = hist.boundaries[1]
        assert 3.0 < cut < 9.0

    def test_k_minus_one_boundaries(self):
        sample = np.array([0.0, 1.0, 5.0, 6.0, 20.0, 21.0])
        hist = MaxDiffHistogram(sample, 3)
        # Cuts in the two largest gaps: (6, 20) and (1, 5).
        interior = hist.boundaries[1:-1]
        assert len(interior) == 2
        assert any(6 < c < 20 for c in interior)
        assert any(1 < c < 5 for c in interior)

    def test_outer_bounds_are_sample_extremes(self):
        sample = np.array([2.0, 4.0, 8.0])
        hist = MaxDiffHistogram(sample, 2)
        assert hist.boundaries[0] == 2.0
        assert hist.boundaries[-1] == 8.0

    def test_degenerates_with_few_distinct_values(self):
        sample = np.array([1.0, 1.0, 2.0, 2.0])
        hist = MaxDiffHistogram(sample, 10)
        # Only one gap exists: at most two bins.
        assert hist.bin_count <= 2

    def test_single_distinct_value_is_point_mass(self):
        hist = MaxDiffHistogram(np.full(50, 7.0), 4)
        assert hist.selectivity(7.0, 7.0) == pytest.approx(1.0)
        assert hist.selectivity(8.0, 9.0) == 0.0

    def test_rejects_zero_bins(self):
        with pytest.raises(InvalidSampleError):
            MaxDiffHistogram(np.array([1.0, 2.0]), 0)


class TestSelectivity:
    def test_mass_conserved(self):
        rng = np.random.default_rng(8)
        sample = rng.normal(0, 1, 400)
        hist = MaxDiffHistogram(sample, 12)
        assert hist.selectivity(sample.min(), sample.max()) == pytest.approx(1.0)

    def test_cluster_separation(self):
        """Two well-separated clusters: the single cut lands mid-gap,
        so each side of the cut carries exactly one cluster's mass."""
        rng = np.random.default_rng(2)
        sample = np.concatenate(
            [rng.uniform(0, 1, 300), rng.uniform(9, 10, 700)]
        )
        hist = MaxDiffHistogram(sample, 2, Interval(0, 10))
        cut = hist.boundaries[1]
        assert hist.selectivity(0.0, cut) == pytest.approx(0.3, abs=0.01)
        assert hist.selectivity(cut, 10.0) == pytest.approx(0.7, abs=0.01)

    def test_deterministic_tie_break(self):
        sample = np.array([0.0, 2.0, 4.0, 6.0])  # all gaps equal
        a = MaxDiffHistogram(sample, 3).boundaries
        b = MaxDiffHistogram(sample, 3).boundaries
        np.testing.assert_allclose(a, b)
