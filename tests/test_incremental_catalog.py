"""The incremental statistics lifecycle, end to end.

Covers the delta-aware layers the streaming refactor threads together
(docs/STREAMING.md): table mutations recording deltas, the catalog's
fresh/incremental/full refresh policy and its staleness budget,
drift-triggered selective maintenance, fork-and-publish isolation for
the serving tier, and the online-learning correction layer that
survives statistics re-freezes.  The headline acceptance check lives
in :class:`TestRefreshAccuracy`: on a drifted workload, incremental
refresh must keep q-error within 1.1x of a full rebuild.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.core.base import InvalidQueryError, InvalidSampleError
from repro.data.domain import Interval
from repro.db import Catalog, Planner, RangePredicate, Table
from repro.db.table import MAX_DELTA_LOG, StaleDeltaLog
from repro.online import OnlineLearningEstimator
from repro.serving import EstimationService, FaultInjector, FaultRule, ServiceConfig

DOMAIN = Interval(0.0, 1_000.0)


def _table(seed=0, rows=6_000, name="metrics", loc=400.0, scale=120.0):
    rng = np.random.default_rng(seed)
    x = np.clip(rng.normal(loc, scale, rows), 0.0, 1_000.0)
    return Table(name, {"x": (x, DOMAIN)})


def _drift_batch(seed=1, rows=2_000, loc=800.0, scale=40.0):
    rng = np.random.default_rng(seed)
    return np.clip(rng.normal(loc, scale, rows), 0.0, 1_000.0)


def _true_selectivity(table, a, b):
    x = table.column("x")
    return float(np.mean((x >= a) & (x <= b)))


def _qerrors(catalog, table, queries, eps=1e-4):
    statistic = catalog.column_statistic(table.name, "x")
    out = []
    for a, b in queries:
        est = max(statistic.selectivity(a, b), eps)
        true = max(_true_selectivity(table, a, b), eps)
        out.append(max(est / true, true / est))
    return np.array(out)


class TestTableMutation:
    def test_append_bumps_version_and_rows(self):
        table = _table()
        assert table.statistics_version == 0
        version = table.append({"x": _drift_batch(rows=500)})
        assert version == 1 == table.statistics_version
        assert table.row_count == 6_500

    def test_append_validates_columns(self):
        table = _table()
        with pytest.raises(InvalidSampleError):
            table.append({"y": np.array([1.0])})
        with pytest.raises(InvalidSampleError):
            table.append({"x": np.array([])})
        with pytest.raises(InvalidSampleError):
            table.append({"x": np.array([5_000.0])})  # out of domain
        assert table.statistics_version == 0  # failed appends change nothing

    def test_delete_where_removes_matches(self):
        table = _table()
        before = table.row_count
        removed = table.delete_where({"x": (0.0, 300.0)})
        assert removed > 0
        assert table.row_count == before - removed
        assert table.statistics_version == 1
        assert _true_selectivity(table, 0.0, 300.0) == 0.0

    def test_unmatched_delete_is_free(self):
        table = _table()
        assert table.delete_where({"x": (999.5, 1_000.0)}) == 0
        assert table.statistics_version == 0

    def test_delete_everything_is_refused(self):
        table = _table()
        with pytest.raises(InvalidQueryError):
            table.delete_where({"x": (0.0, 1_000.0)})

    def test_deltas_since_orders_and_bounds(self):
        table = _table()
        table.append({"x": _drift_batch(rows=10)})
        table.delete_where({"x": (0.0, 100.0)})
        deltas = table.deltas_since(0)
        assert [d.version for d in deltas] == [1, 2]
        assert [d.kind for d in deltas] == ["append", "delete"]
        assert table.deltas_since(2) == []
        with pytest.raises(InvalidQueryError):
            table.deltas_since(3)  # ahead of the table

    def test_compacted_log_raises_stale(self):
        table = _table(rows=500)
        for _ in range(MAX_DELTA_LOG + 5):
            table.append({"x": np.array([500.0])})
        with pytest.raises(StaleDeltaLog):
            table.deltas_since(0)
        # Recent history is still replayable.
        assert len(table.deltas_since(table.statistics_version - 3)) == 3


class TestCatalogRefresh:
    def test_fresh_when_nothing_changed(self):
        table = _table()
        catalog = Catalog(family="equi-depth", sample_size=1_000)
        catalog.analyze(table, seed=3)
        assert catalog.refresh(table) == "fresh"

    def test_incremental_after_small_append(self):
        table = _table()
        catalog = Catalog(family="equi-depth", sample_size=1_000)
        catalog.analyze(table, seed=3)
        table.append({"x": _drift_batch(rows=800)})
        with telemetry.session() as session:
            assert catalog.refresh(table) == "incremental"
            assert session.metrics.counter("catalog.refresh.incremental") == 1
            assert (
                session.metrics.gauge("catalog.statistics_version.metrics") == 1.0
            )
        assert catalog.refresh(table) == "fresh"

    def test_incremental_after_delete(self):
        table = _table()
        catalog = Catalog(family="equi-depth", sample_size=1_000)
        catalog.analyze(table, seed=3)
        table.delete_where({"x": (0.0, 250.0)})
        assert catalog.refresh(table) == "incremental"
        statistic = catalog.column_statistic("metrics", "x")
        assert statistic.selectivity(0.0, 250.0) == pytest.approx(0.0, abs=0.02)

    def test_full_beyond_staleness_budget(self):
        table = _table()
        catalog = Catalog(family="equi-depth", sample_size=1_000, staleness_budget=0.25)
        catalog.analyze(table, seed=3)
        table.append({"x": _drift_batch(rows=3_000)})  # 50% of base > 25% budget
        with telemetry.session() as session:
            assert catalog.refresh(table) == "full"
            assert session.metrics.counter("catalog.refresh.full") == 1

    def test_full_when_joint_statistics_declared(self):
        rng = np.random.default_rng(5)
        x = np.clip(rng.normal(400.0, 120.0, 4_000), 0.0, 1_000.0)
        table = Table("pairs", {"x": (x, DOMAIN), "y": (x + 1.0, Interval(0.0, 1_001.0))})
        catalog = Catalog(family="kernel", sample_size=1_000)
        catalog.analyze(table, joint=[("x", "y")], seed=3)
        table.append({"x": np.array([500.0]), "y": np.array([501.0])})
        assert catalog.refresh(table) == "full"

    def test_full_when_delta_log_compacted(self):
        table = _table(rows=800)
        catalog = Catalog(family="equi-depth", sample_size=400)
        catalog.analyze(table, seed=3)
        for _ in range(MAX_DELTA_LOG + 1):
            table.append({"x": np.array([500.0])})
        assert catalog.refresh(table) == "full"

    def test_changed_rows_accumulate_across_refreshes(self):
        table = _table()
        catalog = Catalog(family="equi-depth", sample_size=1_000, staleness_budget=0.3)
        catalog.analyze(table, seed=3)
        table.append({"x": _drift_batch(rows=1_000)})
        assert catalog.refresh(table) == "incremental"
        table.append({"x": _drift_batch(seed=2, rows=1_000)})
        # 2,000 accumulated changes against a 6,000-row base > 0.3.
        assert catalog.refresh(table) == "full"
        table.append({"x": _drift_batch(seed=3, rows=1_000)})
        # The full rebuild reset the budget against the new base.
        assert catalog.refresh(table) == "incremental"

    def test_invalidate_emits_counters_and_drops_statistics(self):
        table = _table()
        catalog = Catalog(family="equi-depth", sample_size=500)
        catalog.analyze(table, seed=3)
        with telemetry.session() as session:
            catalog.invalidate("metrics")
            assert session.metrics.counter("cache.invalidate") == 1
            assert session.metrics.counter("cache.invalidate.statistics") == 1
        assert not catalog.has_statistics("metrics")
        with pytest.raises(InvalidQueryError):
            catalog.column_statistic("metrics", "x")

    def test_fork_refreshes_in_isolation(self):
        table = _table()
        catalog = Catalog(family="equi-depth", sample_size=1_000)
        catalog.analyze(table, seed=3)
        baseline_version = catalog.version
        fork = catalog.fork()
        table.append({"x": _drift_batch(rows=500)})
        assert fork.refresh(table) == "incremental"
        # The original catalog never saw the refresh...
        assert catalog.version == baseline_version
        # ...and still refreshes independently afterwards.
        assert catalog.refresh(table) == "incremental"


class TestMaintain:
    def test_untouched_tables_stay_fresh(self):
        table = _table()
        catalog = Catalog(family="equi-depth", sample_size=1_000)
        catalog.analyze(table, seed=3)
        assert catalog.maintain([table]) == {"metrics": "fresh"}

    def test_version_lag_triggers_refresh(self):
        table = _table()
        catalog = Catalog(family="equi-depth", sample_size=1_000)
        catalog.analyze(table, seed=3)
        table.append({"x": _drift_batch(rows=400)})
        assert catalog.maintain([table]) == {"metrics": "incremental"}

    def test_drift_triggers_selectively(self):
        stable = _table(seed=10, name="stable")
        drifting = _table(seed=11, name="drifting")
        catalog = Catalog(family="equi-depth", sample_size=1_000)
        catalog.analyze(stable, seed=3)
        catalog.analyze(drifting, seed=3)
        # Feed the monitors: the stable table sees in-distribution
        # values, the drifting one a shifted distribution.
        rng = np.random.default_rng(12)
        catalog.observe_values(
            "stable", "x", np.clip(rng.normal(400.0, 120.0, 512), 0, 1_000)
        )
        catalog.observe_values("drifting", "x", _drift_batch(seed=13, rows=512))
        with telemetry.session() as session:
            modes = catalog.maintain([stable, drifting], ks_threshold=0.15)
            assert modes["stable"] == "fresh"
            assert modes["drifting"] in {"incremental", "full"}
            assert session.metrics.counter("catalog.refresh.drift") == 1


class TestRefreshAccuracy:
    """Acceptance: incremental refresh tracks a full rebuild on drift."""

    @pytest.mark.parametrize("family", ["equi-depth", "kernel", "hybrid"])
    def test_incremental_qerror_within_1_1x_of_full(self, family):
        table = _table(rows=8_000)
        incremental = Catalog(family=family, sample_size=2_000)
        incremental.analyze(table, seed=3)
        # Drifted workload: a second mode appears at the top of the
        # domain, 25% of the original mass — inside the default budget.
        table.append({"x": _drift_batch(rows=2_000)})
        assert incremental.refresh(table) == "incremental"
        full = Catalog(family=family, sample_size=2_000)
        full.analyze(table, seed=3)
        starts = np.linspace(50.0, 850.0, 17)
        queries = [(a, a + 100.0) for a in starts] + [(700.0, 900.0), (0.0, 500.0)]
        inc_q = _qerrors(incremental, table, queries)
        full_q = _qerrors(full, table, queries)
        assert inc_q.mean() <= 1.1 * full_q.mean()


class TestServingLifecycle:
    def _service(self, table, *, faults=None):
        service = EstimationService(
            ServiceConfig(sample_size=1_000),
            seed=5,
            faults=faults,
            sleep=lambda _s: None,
        )
        service.register(table, seed=7)
        return service

    def test_refresh_incremental_publishes_new_snapshot(self):
        table = _table()
        service = self._service(table)
        v0 = service.snapshot_version
        table.append({"x": _drift_batch(rows=800)})
        version, modes = service.refresh_incremental("metrics")
        assert version == v0 + 1
        assert set(modes.values()) == {"incremental"}
        result = service.estimate("metrics", [RangePredicate("x", 700.0, 900.0)])
        true = _true_selectivity(table, 700.0, 900.0) * table.row_count
        assert result.plan.estimated_rows == pytest.approx(true, rel=0.35)

    def test_pinned_readers_keep_the_old_snapshot(self):
        table = _table()
        service = self._service(table)
        with service._store.pin() as snapshot:
            old_tiers = snapshot.payload["metrics"].tiers
            table.append({"x": _drift_batch(rows=400)})
            service.refresh_incremental("metrics")
            # The pinned payload still references the pre-refresh tier
            # objects (forks never mutate shared state).
            assert snapshot.payload["metrics"].tiers is old_tiers

    def test_maintain_skips_fresh_tables_without_publishing(self):
        table = _table()
        service = self._service(table)
        v0 = service.snapshot_version
        report = service.maintain()
        assert report == {"metrics": {f: "fresh" for f in ("hybrid", "equi-depth", "uniform")}}
        assert service.snapshot_version == v0
        table.append({"x": _drift_batch(rows=400)})
        report = service.maintain()
        assert all(mode == "incremental" for mode in report["metrics"].values())
        assert service.snapshot_version == v0 + 1

    def test_faulted_tier_keeps_previous_statistics(self):
        table = _table()
        faults = FaultInjector(
            [FaultRule(site="tier.hybrid.refresh", kind="error", every=1)],
            sleep=lambda _s: None,
        )
        service = self._service(table, faults=faults)
        table.append({"x": _drift_batch(rows=400)})
        version, modes = service.refresh_incremental("metrics")
        assert modes["hybrid"].startswith("failed:")
        assert modes["equi-depth"] == "incremental"
        # The hybrid tier still serves (stale but consistent).
        result = service.estimate("metrics", [RangePredicate("x", 300.0, 500.0)])
        assert result.tier == "hybrid"
        assert np.isfinite(result.plan.estimated_rows)


class TestOnlineLearning:
    def _setup(self, seed=20):
        rng = np.random.default_rng(seed)
        data = np.clip(rng.normal(300.0, 80.0, 6_000), 0.0, 1_000.0)
        table = Table("learn", {"x": (data, DOMAIN)})
        catalog = Catalog(family="equi-width", sample_size=500)
        catalog.analyze(table, seed=3)
        base = catalog.column_statistic("learn", "x")
        return table, catalog, OnlineLearningEstimator(base, DOMAIN, learning_rate=0.4)

    def _feedback_rounds(self, table, learner, seeds):
        rng = np.random.default_rng(seeds)
        errors = []
        for _ in range(200):
            a = float(rng.uniform(0.0, 900.0))
            b = float(min(a + rng.uniform(20.0, 150.0), 1_000.0))
            errors.append(abs(learner.observe(a, b, _true_selectivity(table, a, b))))
        return np.array(errors)

    def test_feedback_shrinks_error(self):
        table, _, learner = self._setup()
        errors = self._feedback_rounds(table, learner, 21)
        assert errors[-50:].mean() < errors[:50].mean()
        assert learner.observations == 200
        assert learner.correction_mass > 0.0

    def test_corrections_survive_rebind(self):
        table, catalog, learner = self._setup()
        self._feedback_rounds(table, learner, 22)
        mass_before = learner.correction_mass
        table.append({"x": _drift_batch(seed=23, rows=500)})
        catalog.refresh(table)
        learner.rebind(catalog.column_statistic("learn", "x"))
        assert learner.rebinds == 1
        assert 0.0 < learner.correction_mass < mass_before
        # Still a valid, clipped probability after the swap.
        sel = learner.selectivities(np.array([100.0, 250.0]), np.array([400.0, 600.0]))
        assert np.all((sel >= 0.0) & (sel <= 1.0))

    def test_rejects_invalid_feedback(self):
        _, _, learner = self._setup()
        with pytest.raises(InvalidQueryError):
            learner.observe(100.0, 200.0, 1.5)
        with pytest.raises(InvalidSampleError):
            OnlineLearningEstimator(learner.base, DOMAIN, bins=1)
        with pytest.raises(InvalidSampleError):
            OnlineLearningEstimator(learner.base, DOMAIN, learning_rate=0.0)

    def test_telemetry_counters(self):
        table, _, learner = self._setup()
        with telemetry.session() as session:
            learner.observe(100.0, 300.0, _true_selectivity(table, 100.0, 300.0))
            learner.rebind(learner.base)
            assert session.metrics.counter("online.feedback") == 1
            assert session.metrics.counter("online.rebind") == 1
            assert session.metrics.gauge("online.learning.correction") >= 0.0
