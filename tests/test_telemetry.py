"""Tests for the telemetry subsystem (repro.telemetry)."""

# repro: allow-file[telemetry-naming] — synthetic span/metric names exercise the tracing machinery itself

import json

import numpy as np
import pytest

from repro import estimators, telemetry
from repro.bandwidth.scale import clamp_bandwidth
from repro.data.domain import Interval
from repro.telemetry import (
    BenchmarkExporter,
    MetricsRegistry,
    Telemetry,
    get_telemetry,
    set_telemetry,
)
from repro.telemetry.manifest import (
    MANIFEST_SCHEMA,
    aggregate_manifests,
    load_manifests,
    to_jsonable,
    write_manifest,
)


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 2)
        registry.inc("b", 0.5)
        assert registry.counter("a") == 3.0
        assert registry.counter("b") == 0.5
        assert registry.counter("missing") == 0.0

    def test_observe_and_summary(self):
        registry = MetricsRegistry()
        for value in [1.0, 2.0, 3.0, 4.0]:
            registry.observe("v", value)
        summary = registry.summary("v")
        assert summary.count == 4
        assert summary.total == 10.0
        assert summary.mean == 2.5
        assert summary.min == 1.0
        assert summary.max == 4.0
        assert summary.p50 == 2.5

    def test_percentiles_interpolate(self):
        registry = MetricsRegistry()
        for value in range(101):  # 0..100
            registry.observe("v", float(value))
        summary = registry.summary("v")
        assert summary.p50 == 50.0
        assert summary.p90 == 90.0
        assert summary.p99 == 99.0

    def test_summary_of_unknown_series_raises(self):
        with pytest.raises(KeyError):
            MetricsRegistry().summary("nothing")

    def test_time_context_manager_records_duration(self):
        registry = MetricsRegistry()
        with registry.time("t"):
            pass
        summary = registry.summary("t")
        assert summary.count == 1
        assert summary.total >= 0.0

    def test_snapshot_and_reset(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.observe("v", 1.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 1.0}
        assert snapshot["values"]["v"]["count"] == 1
        registry.reset()
        assert registry.snapshot() == {"counters": {}, "gauges": {}, "values": {}}

    def test_gauges_set_and_read(self):
        registry = MetricsRegistry()
        assert np.isnan(registry.gauge("g"))
        registry.set_gauge("g", 0.25)
        registry.set_gauge("g", 0.75)  # last write wins
        assert registry.gauge("g") == 0.75
        assert registry.snapshot()["gauges"] == {"g": 0.75}

    def test_observe_many_matches_observe(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        values = np.linspace(0.0, 1.0, 50)
        a.observe_many("v", values)
        for value in values:
            b.observe("v", float(value))
        assert a.summary("v").as_dict() == b.summary("v").as_dict()

    def test_values_empty_after_sketch_spill(self):
        from repro.telemetry.metrics import RAW_SAMPLE_CAP

        registry = MetricsRegistry()
        registry.observe_many("v", np.linspace(1.0, 2.0, RAW_SAMPLE_CAP + 10))
        summary = registry.summary("v")
        assert summary.count == RAW_SAMPLE_CAP + 10
        assert summary.exact is False
        assert registry.values("v") == ()
        # Exact scalars survive the spill; percentiles come from the sketch.
        assert summary.min == 1.0
        assert summary.max == 2.0
        assert abs(summary.p50 - 1.5) / 1.5 <= 0.02

    def test_merge_combines_registries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 2)
        b.inc("c", 3)
        a.observe_many("v", np.array([1.0, 2.0]))
        b.observe_many("v", np.array([3.0, 4.0]))
        b.set_gauge("g", 1.5)
        a.merge(b)
        assert a.counter("c") == 5.0
        assert a.summary("v").count == 4
        assert a.summary("v").total == 10.0
        assert a.gauge("g") == 1.5
        # Source registry is unchanged.
        assert b.counter("c") == 3.0


class TestSpans:
    def test_nesting_builds_a_tree(self):
        t = Telemetry(enabled=True)
        with t.span("outer", tag="x"):
            with t.span("inner"):
                pass
            with t.span("inner"):
                pass
        assert len(t.roots) == 1
        root = t.roots[0]
        assert root.name == "outer"
        assert root.tags == {"tag": "x"}
        assert [child.name for child in root.children] == ["inner", "inner"]
        assert root.duration >= sum(child.duration for child in root.children)

    def test_spans_by_name_and_render(self):
        t = Telemetry(enabled=True)
        with t.span("a"):
            with t.span("b"):
                pass
        assert len(t.spans_by_name("b")) == 1
        rendered = t.render_spans()
        assert "a" in rendered and "b" in rendered and "ms" in rendered

    def test_exception_inside_span_still_closes_it(self):
        t = Telemetry(enabled=True)
        with pytest.raises(RuntimeError):
            with t.span("broken"):
                raise RuntimeError("boom")
        assert t.roots[0].duration is not None

    def test_in_span(self):
        t = Telemetry(enabled=True)
        assert not t.in_span("a")
        with t.span("a"):
            assert t.in_span("a")
        assert not t.in_span("a")

    def test_snapshot_aggregates_by_name(self):
        t = Telemetry(enabled=True)
        for _ in range(3):
            with t.span("s"):
                pass
        by_name = t.snapshot()["spans"]["by_name"]
        assert by_name["s"]["count"] == 3

    def test_to_json_round_trips(self):
        t = Telemetry(enabled=True)
        with t.span("s"):
            t.metrics.inc("c")
        parsed = json.loads(t.to_json())
        assert parsed["metrics"]["counters"] == {"c": 1.0}

    def test_memory_peak_parent_covers_children(self):
        # A child span resetting the tracemalloc watermark must not erase
        # the parent's earlier high-water mark: the big allocation happens
        # in the parent *before* the child opens, so parent >= child and
        # parent >= the allocation size must both hold.
        t = Telemetry(enabled=True, trace_memory=True)
        try:
            with t.span("parent"):
                big = np.ones(2_000_000)  # ~16 MB, tracked by tracemalloc
                del big
                with t.span("child"):
                    small = np.ones(1_000)
                    del small
        finally:
            t.close()
        parent = t.spans_by_name("parent")[0]
        child = t.spans_by_name("child")[0]
        assert parent.memory_peak is not None and child.memory_peak is not None
        assert parent.memory_peak >= child.memory_peak
        assert parent.memory_peak >= 2_000_000 * 8


class TestDisabledMode:
    def test_global_default_is_disabled(self):
        assert get_telemetry().enabled is False

    def test_disabled_span_records_nothing(self):
        t = Telemetry(enabled=False)
        with t.span("s"):
            pass
        assert t.roots == ()
        assert t.snapshot()["spans"]["tree"] == []

    def test_disabled_span_reuses_null_context(self):
        t = Telemetry(enabled=False)
        assert t.span("a") is t.span("b")

    def test_session_swaps_and_restores_global(self):
        before = get_telemetry()
        with telemetry.session() as active:
            assert get_telemetry() is active
            assert active.enabled
        assert get_telemetry() is before

    def test_set_telemetry_returns_previous(self):
        before = get_telemetry()
        replacement = Telemetry(enabled=True)
        assert set_telemetry(replacement) is before
        assert set_telemetry(before) is replacement


class TestEstimatorInstrumentation:
    DOMAIN = Interval(0.0, 100.0)

    @pytest.fixture()
    def sample(self):
        return np.random.default_rng(3).uniform(0.0, 100.0, 400)

    def test_build_and_query_recorded(self, sample):
        with telemetry.session() as t:
            estimator = estimators.equi_width(sample, self.DOMAIN)
            estimator.selectivity(10.0, 20.0)
            estimator.selectivities(np.array([1.0, 2.0]), np.array([3.0, 4.0]))
        counters = t.metrics.snapshot()["counters"]
        assert counters["estimator.build"] == 1
        assert counters["estimator.query"] == 3  # 1 scalar + 2 batched
        builds = t.spans_by_name("estimator.build")
        assert len(builds) == 1
        assert builds[0].tags["class"] == "EquiWidthHistogram"
        assert t.metrics.values("estimator.bins.EquiWidthHistogram")

    def test_nested_estimators_count_once(self, sample):
        with telemetry.session() as t:
            estimators.hybrid(sample, self.DOMAIN)
        # The hybrid builds inner per-bin kernel estimators; only the
        # outermost construction is an estimator.build event.
        assert t.metrics.counter("estimator.build") == 1
        assert len(t.spans_by_name("estimator.build")) == 1

    def test_kernel_records_bandwidth(self, sample):
        with telemetry.session() as t:
            estimator = estimators.kernel(sample, self.DOMAIN)
        values = t.metrics.values(f"estimator.bandwidth.{type(estimator).__name__}")
        assert values and values[0] == pytest.approx(estimator.bandwidth)

    def test_disabled_telemetry_records_nothing(self, sample):
        assert get_telemetry().enabled is False
        estimator = estimators.equi_width(sample, self.DOMAIN)
        estimator.selectivity(10.0, 20.0)
        assert get_telemetry().metrics.snapshot() == {"counters": {}, "gauges": {}, "values": {}}

    def test_clamp_counter(self):
        with telemetry.session() as t:
            assert clamp_bandwidth(1_000.0, 100.0) == pytest.approx(49.9)
            assert clamp_bandwidth(1.0, 100.0) == 1.0
        assert t.metrics.counter("estimator.bandwidth.clamp") == 1


class TestManifests:
    def _run_traced(self, tmp_path):
        from repro.experiments import fig04
        from repro.experiments.harness import ExperimentConfig, run_traced

        config = ExperimentConfig(n_queries=30, sample_size=200)
        return run_traced(
            "fig04",
            lambda cfg: fig04.run(cfg, bin_grid=np.array([4, 16])),
            config,
            manifest_directory=tmp_path,
        )

    def test_run_traced_writes_manifest(self, tmp_path):
        result, path, session = self._run_traced(tmp_path)
        assert path.exists()
        manifest = json.loads(path.read_text())
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["experiment"] == "fig04"
        assert manifest["figure_id"] == result.figure_id
        assert manifest["rows"]
        counters = manifest["telemetry"]["metrics"]["counters"]
        assert counters["estimator.build"] >= 2
        assert counters["harness.experiment"] == 1
        assert any(
            name.startswith("estimator.build.seconds.")
            for name in manifest["telemetry"]["metrics"]["values"]
        )
        # The traced session is detached: the global is back to no-op.
        assert get_telemetry().enabled is False
        assert session.spans_by_name("harness.experiment")

    def test_load_and_aggregate(self, tmp_path):
        self._run_traced(tmp_path)
        self._run_traced(tmp_path)
        manifests = load_manifests(tmp_path)
        assert len(manifests) == 2
        rows = aggregate_manifests(tmp_path)
        assert len(rows) == 1
        assert rows[0]["experiment"] == "fig04"
        assert rows[0]["runs"] == 2
        assert rows[0]["builds"] >= 2

    def test_load_skips_foreign_files(self, tmp_path):
        (tmp_path / "junk.json").write_text("{not json")
        (tmp_path / "other.json").write_text('{"schema": "something-else"}')
        assert load_manifests(tmp_path) == []
        assert aggregate_manifests(tmp_path) == []

    def test_write_manifest_unique_names(self, tmp_path):
        first = write_manifest(
            {"schema": MANIFEST_SCHEMA, "experiment": "x", "created_unix": 1.0},
            tmp_path,
        )
        second = write_manifest(
            {"schema": MANIFEST_SCHEMA, "experiment": "x", "created_unix": 2.0},
            tmp_path,
        )
        assert first != second

    def test_to_jsonable_handles_numpy(self):
        converted = to_jsonable(
            {"a": np.float64(1.5), "b": np.arange(3), "c": (np.int32(2), "s")}
        )
        assert converted == {"a": 1.5, "b": [0, 1, 2], "c": [2, "s"]}
        json.dumps(converted)


class TestBenchmarkExporter:
    class _Stats:
        mean = 0.5
        min = 0.4
        max = 0.6
        stddev = 0.01
        median = 0.5
        rounds = 7

    def test_export_and_merge(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        exporter = BenchmarkExporter()
        exporter.record("group", "one", self._Stats())
        assert exporter.export(path) == path
        other = BenchmarkExporter()
        other.record_seconds("group", "two", 1.25)
        other.export(path)
        data = json.loads(path.read_text())
        assert set(data["benchmarks"]) == {"group.one", "group.two"}
        assert data["benchmarks"]["group.one"]["mean_s"] == 0.5
        assert data["benchmarks"]["group.one"]["rounds"] == 7
        assert data["benchmarks"]["group.two"]["mean_s"] == 1.25

    def test_empty_export_touches_nothing(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        assert BenchmarkExporter().export(path) is None
        assert not path.exists()

    def test_corrupt_existing_file_is_replaced(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        path.write_text("{broken")
        exporter = BenchmarkExporter()
        exporter.record_seconds("g", "n", 2.0)
        exporter.export(path)
        assert json.loads(path.read_text())["benchmarks"]["g.n"]["mean_s"] == 2.0

    def test_entries_are_typed(self):
        exporter = BenchmarkExporter()
        exporter.record("g", "timed", self._Stats())
        exporter.record_seconds("g", "single", 0.25)
        entries = exporter.entries
        for name in ("g.timed", "g.single"):
            assert entries[name]["kind"] == "timing"
            assert entries[name]["unit"] == "seconds"

    def test_record_value_for_ratios_and_rates(self):
        exporter = BenchmarkExporter()
        exporter.record_value("g", "speedup_x", 12.5, kind="ratio", unit="x")
        exporter.record_value(
            "g", "qps_x", 48_000.0, kind="rate", unit="per_second"
        )
        entries = exporter.entries
        assert entries["g.speedup_x"] == {
            "value": 12.5, "rounds": 1, "kind": "ratio", "unit": "x",
        }
        assert entries["g.qps_x"]["kind"] == "rate"
        # Dimensioned entries must NOT masquerade as seconds.
        assert "mean_s" not in entries["g.speedup_x"]

    def test_record_value_direction_override(self):
        exporter = BenchmarkExporter()
        exporter.record_value(
            "g", "overhead_x", 1.04, kind="ratio", unit="x", better="lower"
        )
        assert exporter.entries["g.overhead_x"]["better"] == "lower"

    def test_record_value_rejects_bad_kind_and_direction(self):
        exporter = BenchmarkExporter()
        with pytest.raises(ValueError):
            exporter.record_value("g", "n", 1.0, kind="latency", unit="s")
        with pytest.raises(ValueError):
            exporter.record_value(
                "g", "n", 1.0, kind="ratio", unit="x", better="sideways"
            )

    def test_entry_kind_inference(self):
        from repro.telemetry import entry_direction, entry_kind

        assert entry_kind("perf.speedup_x", {}) == "ratio"
        assert entry_kind("perf.build", {}) == "timing"
        assert entry_kind("perf.build", {"kind": "rate"}) == "rate"
        assert entry_direction("perf.speedup_x", {}) == "higher"
        assert entry_direction("perf.build", {}) == "lower"
        assert entry_direction("x", {"kind": "ratio", "better": "lower"}) == "lower"

    def test_bench_exposition_units(self):
        from repro.telemetry import bench_exposition

        text = bench_exposition(
            {
                "perf_batch.kernel_100": {
                    "median_s": 0.0003, "kind": "timing", "unit": "seconds",
                },
                "perf_batch.speedup_10000_x": {
                    "value": 22.0, "kind": "ratio", "unit": "x",
                },
                "perf_serving.qps_sustained_x": {
                    "value": 48_000.0, "kind": "rate", "unit": "per_second",
                },
                # Legacy mislabeled ratio: renders with the honest unit.
                "perf_telemetry.overhead_x": {"mean_s": 1.06, "rounds": 1},
            }
        )
        assert "repro_bench_perf_batch_kernel_100_seconds 0.0003" in text
        assert "repro_bench_perf_batch_speedup_10000_x_ratio 22.0" in text
        assert "repro_bench_perf_serving_qps_sustained_x_per_second 48000.0" in text
        assert "repro_bench_perf_telemetry_overhead_x_ratio 1.06" in text
        assert "_x_seconds" not in text
        assert text.endswith("# EOF\n")

    def test_bench_exposition_accepts_whole_perf_file(self):
        """The natural `json.load(BENCH_perf.json)` shape must render too."""
        from repro.telemetry import bench_exposition

        wrapped = {
            "schema": "repro.telemetry.bench/v1",
            "updated_unix": 1_700_000_000,
            "benchmarks": {
                "perf_batch.kernel_100": {
                    "median_s": 0.0003, "kind": "timing", "unit": "seconds",
                },
            },
        }
        text = bench_exposition(wrapped)
        assert "repro_bench_perf_batch_kernel_100_seconds 0.0003" in text


class TestPlannerTelemetry:
    @pytest.fixture()
    def planned(self):
        from repro.db import Catalog, Planner, RangePredicate, Table

        domain = Interval(0.0, 1_000.0)
        rng = np.random.default_rng(0)
        table = Table(
            "points",
            {
                "x": (rng.uniform(0, 1_000, 2_000), domain),
                "z": (rng.uniform(0, 1_000, 2_000), domain),
            },
        )
        catalog = Catalog(sample_size=500)
        catalog.analyze(table, seed=1)
        planner = Planner(catalog)
        predicates = [RangePredicate("x", 100.0, 120.0), RangePredicate("z", 0.0, 800.0)]
        return planner, table, predicates

    def test_plan_carries_timings_and_provenance(self, planned):
        planner, table, predicates = planned
        plan = planner.plan(table, predicates)
        stages = dict(plan.timings)
        assert set(stages) == {"estimate", "costing"}
        assert all(seconds >= 0 for seconds in stages.values())
        assert any("column(x)" in entry for entry in plan.provenance)
        assert any("independence" in entry for entry in plan.provenance)

    def test_explain_analyze_renders_details(self, planned):
        planner, table, predicates = planned
        plan = planner.plan(table, predicates)
        plain = plan.explain()
        analyzed = plan.explain(analyze=True)
        assert "estimates:" not in plain
        assert "estimates:" in analyzed and "timings:" in analyzed

    def test_planner_spans_when_traced(self, planned):
        planner, table, predicates = planned
        with telemetry.session() as t:
            planner.plan(table, predicates)
        assert t.metrics.counter("planner.plan") == 1
        assert len(t.spans_by_name("planner.estimate")) == 1


class TestOnlineTelemetry:
    def test_batches_recorded(self):
        from repro.data.relation import Relation

        values = np.random.default_rng(0).uniform(0.0, 100.0, 3_000)
        relation = Relation(values, Interval(0.0, 100.0), name="r")
        from repro.online.aggregator import OnlineAggregator

        with telemetry.session() as t:
            stream = OnlineAggregator(relation, seed=0)
            stream.advance(1_000)
            stream.advance(1_000)
        counters = t.metrics.snapshot()["counters"]
        assert counters["online.batch"] == 2
        assert counters["online.records"] == 2_000
        fractions = t.metrics.values("online.scan.fraction")
        assert fractions == (pytest.approx(1 / 3), pytest.approx(2 / 3))
