"""Tests for error metrics (repro.workload.metrics)."""

import numpy as np
import pytest

from repro.core.base import SelectivityEstimator, validate_query
from repro.workload.metrics import (
    estimated_counts,
    mean_absolute_error,
    mean_relative_error,
    relative_errors,
    signed_errors,
    summarize_errors,
)
from repro.workload.queries import QueryFile


class ConstantEstimator(SelectivityEstimator):
    """Fixed-selectivity stub for metric arithmetic tests."""

    def __init__(self, value: float):
        self._value = value

    @property
    def sample_size(self) -> int:
        return 1

    def selectivity(self, a: float, b: float) -> float:
        a, b = validate_query(a, b)
        return self._value


@pytest.fixture()
def queries():
    # Relation of 1,000 records; true counts 100, 200, 0.
    return QueryFile(
        np.array([0.0, 10.0, 20.0]),
        np.array([5.0, 15.0, 25.0]),
        np.array([100, 200, 0]),
        1_000,
    )


class TestSignedErrors:
    def test_values(self, queries):
        est = ConstantEstimator(0.15)  # 150 records everywhere
        np.testing.assert_allclose(signed_errors(est, queries), [50.0, -50.0, 150.0])

    def test_perfect_estimator_zero_error(self, queries):
        class Perfect(ConstantEstimator):
            def selectivity(self, a, b):
                a, b = validate_query(a, b)
                return {0.0: 0.1, 10.0: 0.2, 20.0: 0.0}[a]

        np.testing.assert_allclose(signed_errors(Perfect(0), queries), [0.0, 0.0, 0.0])


class TestRelativeErrors:
    def test_zero_result_queries_are_nan(self, queries):
        rel = relative_errors(ConstantEstimator(0.15), queries)
        assert np.isnan(rel[2])
        np.testing.assert_allclose(rel[:2], [0.5, 0.25])

    def test_mre_excludes_zero_results(self, queries):
        mre = mean_relative_error(ConstantEstimator(0.15), queries)
        assert mre == pytest.approx((0.5 + 0.25) / 2)

    def test_mre_raises_when_all_queries_empty(self):
        qf = QueryFile(np.array([0.0]), np.array([1.0]), np.array([0]), 100)
        with pytest.raises(ValueError):
            mean_relative_error(ConstantEstimator(0.5), qf)


class TestAbsoluteError:
    def test_mae_in_record_units(self, queries):
        mae = mean_absolute_error(ConstantEstimator(0.15), queries)
        assert mae == pytest.approx((50 + 50 + 150) / 3)


class TestSummary:
    def test_summary_fields(self, queries):
        summary = summarize_errors(ConstantEstimator(0.15), queries)
        assert summary.mre == pytest.approx(0.375)
        assert summary.mae == pytest.approx(250 / 3)
        assert summary.max_relative == pytest.approx(0.5)
        assert summary.n_queries == 3
        assert summary.n_zero_result == 1

    def test_estimated_counts_scale_with_relation_size(self, queries):
        counts = estimated_counts(ConstantEstimator(0.5), queries)
        np.testing.assert_allclose(counts, [500.0, 500.0, 500.0])
