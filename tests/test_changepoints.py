"""Tests for change-point detection (repro.core.changepoints)."""

import numpy as np
import pytest

from repro.core.base import InvalidSampleError
from repro.core.changepoints import detect_change_points, pilot_bandwidth
from repro.data.domain import Interval


@pytest.fixture()
def step_sample():
    """Density with one sharp step at x = 5: dense left, sparse right."""
    rng = np.random.default_rng(7)
    return np.concatenate([rng.uniform(0, 5, 8_000), rng.uniform(5, 10, 800)])


class TestDetection:
    def test_finds_the_step(self, step_sample):
        points = detect_change_points(step_sample, Interval(0, 10), max_points=2)
        assert points.size >= 1
        assert np.min(np.abs(points - 5.0)) < 0.6

    def test_respects_max_points(self, step_sample):
        points = detect_change_points(step_sample, Interval(0, 10), max_points=1)
        assert points.size <= 1

    def test_zero_max_points(self, step_sample):
        points = detect_change_points(step_sample, Interval(0, 10), max_points=0)
        assert points.size == 0

    def test_min_separation_enforced(self, step_sample):
        points = detect_change_points(
            step_sample, Interval(0, 10), max_points=8, min_separation=0.1
        )
        if points.size > 1:
            assert np.diff(points).min() >= 0.1 * 10 - 1e-9
        assert (points >= 1.0 - 1e-9).all() and (points <= 9.0 + 1e-9).all()

    def test_smooth_density_yields_few_points(self):
        """A flat uniform density has no significant curvature in the
        interior — the detector should not splinter it."""
        rng = np.random.default_rng(1)
        sample = rng.uniform(0, 10, 5_000)
        points = detect_change_points(
            sample, Interval(0, 10), max_points=8, relative_threshold=0.3
        )
        assert points.size <= 3

    def test_two_steps_found(self):
        rng = np.random.default_rng(3)
        sample = np.concatenate(
            [
                rng.uniform(0, 3, 6_000),
                rng.uniform(3, 7, 600),
                rng.uniform(7, 10, 6_000),
            ]
        )
        points = detect_change_points(sample, Interval(0, 10), max_points=4)
        assert np.min(np.abs(points - 3.0)) < 0.6
        assert np.min(np.abs(points - 7.0)) < 0.6

    def test_sorted_output(self, step_sample):
        points = detect_change_points(step_sample, Interval(0, 10), max_points=5)
        assert (np.diff(points) > 0).all()

    def test_tiny_sample_returns_empty(self):
        points = detect_change_points(np.array([1.0, 2.0]), Interval(0, 10))
        assert points.size == 0

    def test_rejects_bad_separation(self, step_sample):
        with pytest.raises(InvalidSampleError):
            detect_change_points(step_sample, Interval(0, 10), min_separation=0.7)

    def test_rejects_negative_max_points(self, step_sample):
        with pytest.raises(InvalidSampleError):
            detect_change_points(step_sample, Interval(0, 10), max_points=-1)


class TestPilotBandwidth:
    def test_positive_and_shrinks_with_n(self):
        rng = np.random.default_rng(2)
        small = pilot_bandwidth(rng.normal(0, 1, 100))
        large = pilot_bandwidth(rng.normal(0, 1, 10_000))
        assert small > large > 0
