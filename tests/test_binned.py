"""Tests for linear-binned KDE (repro.core.kernel.binned)."""

import numpy as np
import pytest

from repro.core.base import InvalidSampleError
from repro.core.kernel.binned import BinnedKernelDensity, linear_bin
from repro.core.kernel.density import KernelDensity
from repro.data.domain import Interval


class TestLinearBin:
    def test_weights_sum_to_sample_size(self):
        rng = np.random.default_rng(0)
        sample = rng.uniform(0, 10, 777)
        grid = np.linspace(0, 10, 64)
        assert linear_bin(sample, grid).sum() == pytest.approx(777.0)

    def test_exact_on_grid_point(self):
        grid = np.linspace(0.0, 10.0, 11)
        weights = linear_bin(np.array([3.0]), grid)
        assert weights[3] == pytest.approx(1.0)
        assert weights.sum() == pytest.approx(1.0)

    def test_split_between_neighbours(self):
        grid = np.linspace(0.0, 10.0, 11)
        weights = linear_bin(np.array([3.25]), grid)
        assert weights[3] == pytest.approx(0.75)
        assert weights[4] == pytest.approx(0.25)

    def test_out_of_grid_clamps(self):
        grid = np.linspace(0.0, 10.0, 11)
        weights = linear_bin(np.array([-5.0, 15.0]), grid)
        assert weights[0] == pytest.approx(1.0)
        assert weights[-1] == pytest.approx(1.0)

    def test_preserves_first_moment(self):
        """Linear binning is exact for means (its defining property)."""
        rng = np.random.default_rng(1)
        sample = rng.uniform(0, 10, 500)
        grid = np.linspace(0, 10, 101)
        weights = linear_bin(sample, grid)
        assert (weights @ grid) / weights.sum() == pytest.approx(sample.mean())

    def test_rejects_bad_grid(self):
        with pytest.raises(InvalidSampleError):
            linear_bin(np.array([1.0]), np.array([5.0]))
        with pytest.raises(InvalidSampleError):
            linear_bin(np.array([1.0]), np.array([0.0, 1.0, 5.0]))


class TestBinnedKernelDensity:
    @pytest.fixture()
    def sample(self):
        return np.random.default_rng(2).normal(5.0, 1.0, 3_000).clip(0, 10)

    @pytest.mark.parametrize("order", [0, 1, 2])
    def test_matches_exact_kde(self, sample, order):
        domain = Interval(0.0, 10.0)
        g = 0.3
        exact = KernelDensity(sample, g, domain)
        binned = BinnedKernelDensity(sample, g, domain, grid_points=2_048)
        x = np.linspace(1.0, 9.0, 41)
        np.testing.assert_allclose(
            binned.derivative(x, order),
            exact.derivative(x, order),
            rtol=0.02,
            atol=0.01 * np.abs(exact.derivative(x, order)).max(),
        )

    def test_density_integrates_to_one(self, sample):
        binned = BinnedKernelDensity(sample, 0.3, grid_points=1_024)
        grid = binned.grid
        assert np.trapezoid(binned.density(grid), grid) == pytest.approx(1.0, abs=0.01)

    def test_roughness_matches_exact(self, sample):
        domain = Interval(0.0, 10.0)
        g = 0.3
        exact = KernelDensity(sample, g, domain).roughness(2, points=2_048)
        binned = BinnedKernelDensity(sample, g, domain, grid_points=2_048).roughness(2)
        assert binned == pytest.approx(exact, rel=0.05)

    def test_rejects_tiny_grid(self, sample):
        with pytest.raises(InvalidSampleError):
            BinnedKernelDensity(sample, 0.3, grid_points=4)

    def test_rejects_bad_order(self, sample):
        binned = BinnedKernelDensity(sample, 0.3)
        with pytest.raises(InvalidSampleError):
            binned.derivative(np.zeros(1), order=7)

    def test_much_faster_than_exact_for_large_samples(self):
        """The point of binning: grid evaluation independent of n."""
        import time

        rng = np.random.default_rng(3)
        sample = rng.normal(0, 1, 60_000)
        x = np.linspace(-3, 3, 400)

        t0 = time.perf_counter()
        BinnedKernelDensity(sample, 0.1, grid_points=1_024).derivative(x, 2)
        binned_time = time.perf_counter() - t0

        t0 = time.perf_counter()
        KernelDensity(sample, 0.1).derivative(x, 2)
        exact_time = time.perf_counter() - t0

        assert binned_time < exact_time
