"""Setuptools shim.

All metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works in offline environments without the
``wheel`` package (legacy editable installs need a ``setup.py``).
"""

from setuptools import setup

setup()
