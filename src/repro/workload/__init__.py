"""Query workloads and error metrics (paper §5.1.2).

:mod:`repro.workload.queries` generates the paper's size-separated
query files ``F_D(s)`` — 1,000 range queries of a fixed size whose
positions follow the data distribution — plus the position sweeps used
for the boundary-error figures.  :mod:`repro.workload.metrics`
implements the mean relative error (MRE) and mean absolute error the
paper reports.
"""

from repro.workload.metrics import (
    ErrorSummary,
    mean_absolute_error,
    mean_relative_error,
    relative_errors,
    signed_errors,
    summarize_errors,
)
from repro.workload.queries import QueryFile, RangeQuery, generate_query_file, position_sweep

__all__ = [
    "ErrorSummary",
    "QueryFile",
    "RangeQuery",
    "generate_query_file",
    "mean_absolute_error",
    "mean_relative_error",
    "position_sweep",
    "relative_errors",
    "signed_errors",
    "summarize_errors",
]
