"""Error metrics: the paper's MRE and MAE (§5.1.2).

The headline metric is the **mean relative error**

.. math::

   MRE(D, s) = \\frac{1}{|F_D(s)|} \\sum_{Q(a,b) \\in F_D(s)}
               \\frac{\\big| |Q(a,b)| - \\hat\\sigma(a,b) \\cdot |D| \\big|}{|Q(a,b)|}

i.e. the estimated result size is compared against the exact result
size, normalized by the exact size.  Queries with an empty true result
are excluded from the MRE (the relative error is undefined there); the
paper's query placement makes such queries rare because positions
follow the data distribution.

The **mean absolute error** is reported in units of records and is
defined for every query.  The paper notes both metrics behaved alike.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.base import SelectivityEstimator
from repro.telemetry import get_telemetry
from repro.telemetry.quality import record_quality_batch
from repro.workload.queries import QueryFile


def estimated_counts(estimator: SelectivityEstimator, queries: QueryFile) -> np.ndarray:
    """Estimated result sizes ``sigma_hat(a, b) * N`` for every query."""
    selectivities = estimator.selectivities(queries.a, queries.b)
    return selectivities * queries.relation_size


def signed_errors(estimator: SelectivityEstimator, queries: QueryFile) -> np.ndarray:
    """Per-query signed error ``estimated - true`` in record units.

    This is the quantity plotted in the paper's Fig. 3 (boundary error
    with sign).
    """
    return estimated_counts(estimator, queries) - queries.true_counts


def relative_errors(estimator: SelectivityEstimator, queries: QueryFile) -> np.ndarray:
    """Per-query relative error ``|est - true| / true``.

    Queries with a zero true count yield ``NaN``; aggregate helpers
    drop them.
    """
    true = queries.true_counts.astype(np.float64)
    estimated = estimated_counts(estimator, queries)
    if get_telemetry().enabled:
        # The evaluation harness is the richest source of ground truth:
        # every (estimate, exact count) pair feeds the quality.qerror /
        # quality.abs_error series, keyed by estimator class, as
        # selectivities (the ratio is identical either way).
        record_quality_batch(
            estimated / queries.relation_size,
            true / queries.relation_size,
            key=type(estimator).__name__,
        )
    errors = np.abs(estimated - true)
    # Zero-truth queries divide to inf/NaN here by design: np.where
    # replaces them with NaN and every aggregate helper drops NaNs.
    with np.errstate(divide="ignore", invalid="ignore"):
        rel = np.where(true > 0, errors / true, np.nan)
    return rel


def mean_relative_error(estimator: SelectivityEstimator, queries: QueryFile) -> float:
    """The paper's MRE, excluding zero-result queries."""
    rel = relative_errors(estimator, queries)
    valid = rel[~np.isnan(rel)]
    if valid.size == 0:
        raise ValueError("every query in the file has an empty true result")
    return float(valid.mean())


def mean_absolute_error(estimator: SelectivityEstimator, queries: QueryFile) -> float:
    """Mean absolute error in record units."""
    return float(np.abs(signed_errors(estimator, queries)).mean())


@dataclasses.dataclass(frozen=True)
class ErrorSummary:
    """Aggregate error report for one estimator over one query file."""

    mre: float
    mae: float
    max_relative: float
    n_queries: int
    n_zero_result: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MRE={self.mre:.2%} MAE={self.mae:.1f} records "
            f"max-rel={self.max_relative:.2%} "
            f"({self.n_queries} queries, {self.n_zero_result} empty)"
        )


def summarize_errors(estimator: SelectivityEstimator, queries: QueryFile) -> ErrorSummary:
    """Compute MRE, MAE and extremes in one pass over the query file."""
    rel = relative_errors(estimator, queries)
    zero = int(np.isnan(rel).sum())
    valid = rel[~np.isnan(rel)]
    if valid.size == 0:
        raise ValueError("every query in the file has an empty true result")
    mae = mean_absolute_error(estimator, queries)
    return ErrorSummary(
        mre=float(valid.mean()),
        mae=mae,
        max_relative=float(valid.max()),
        n_queries=len(queries),
        n_zero_result=zero,
    )
