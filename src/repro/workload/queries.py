"""Range queries and the paper's size-separated query files.

A query file ``F_D(s)`` (paper §5.1.2) contains range queries of one
fixed size ``s`` (a fraction of the domain width: the paper uses 1 %,
2 %, 5 % and 10 %).  Query *positions* follow the data distribution —
each query is centered on a randomly drawn record — and positions too
close to the boundary are rejected so every query lies entirely inside
the domain.

:func:`position_sweep` builds the other workload shape the paper uses
(Figs. 3 and 10): fixed-size queries whose centers sweep evenly across
the domain, exposing the kernel boundary problem.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator

import numpy as np

from repro.core.base import InvalidQueryError, validate_query
from repro.data.domain import IntegerDomain, Interval
from repro.data.relation import Relation, resolve_rng

#: The paper's query sizes, as fractions of the domain width.
PAPER_QUERY_SIZES = (0.01, 0.02, 0.05, 0.10)

#: Number of queries per file in the paper.
PAPER_QUERIES_PER_FILE = 1_000


@dataclasses.dataclass(frozen=True)
class RangeQuery:
    """A closed range query ``Q(a, b)`` retrieving ``a <= r.A <= b``."""

    a: float
    b: float

    def __post_init__(self) -> None:
        a, b = validate_query(self.a, self.b)
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "b", b)

    @property
    def width(self) -> float:
        """Query extent ``b - a``."""
        return self.b - self.a

    @property
    def center(self) -> float:
        """Query midpoint."""
        return 0.5 * (self.a + self.b)


class QueryFile:
    """A batch of fixed-size range queries with their true result sizes.

    Instances are immutable.  The true counts are evaluated once
    against the relation the file was generated from, so error metrics
    never have to touch the full relation again.
    """

    def __init__(
        self,
        a: np.ndarray,
        b: np.ndarray,
        true_counts: np.ndarray,
        relation_size: int,
        *,
        size_fraction: float | None = None,
        dataset: str = "",
    ) -> None:
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        true_counts = np.asarray(true_counts, dtype=np.int64)
        if not (a.shape == b.shape == true_counts.shape) or a.ndim != 1:
            raise InvalidQueryError("query file arrays must be parallel 1-D arrays")
        if a.size == 0:
            raise InvalidQueryError("query file must contain at least one query")
        if np.any(a > b):
            raise InvalidQueryError("query file contains an empty range (a > b)")
        if relation_size <= 0:
            raise InvalidQueryError(f"relation size must be positive, got {relation_size}")
        self._a = a
        self._b = b
        self._true_counts = true_counts
        self._relation_size = int(relation_size)
        self._size_fraction = size_fraction
        self._dataset = dataset
        for array in (self._a, self._b, self._true_counts):
            array.flags.writeable = False

    @property
    def a(self) -> np.ndarray:
        """Lower endpoints (read-only)."""
        return self._a

    @property
    def b(self) -> np.ndarray:
        """Upper endpoints (read-only)."""
        return self._b

    @property
    def true_counts(self) -> np.ndarray:
        """Exact result sizes ``|Q(a, b)|`` (read-only)."""
        return self._true_counts

    @property
    def relation_size(self) -> int:
        """Number of records ``N`` in the underlying relation."""
        return self._relation_size

    @property
    def size_fraction(self) -> float | None:
        """The fixed query size ``s``, when the file is size-separated."""
        return self._size_fraction

    @property
    def dataset(self) -> str:
        """Name of the data file the queries were generated against."""
        return self._dataset

    def __len__(self) -> int:
        return int(self._a.size)

    def __iter__(self) -> "Iterator[RangeQuery]":
        for qa, qb in zip(self._a, self._b):
            yield RangeQuery(float(qa), float(qb))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        size = f"{self._size_fraction:.0%}" if self._size_fraction else "mixed"
        return f"QueryFile({self._dataset or 'anon'}, s={size}, {len(self)} queries)"


def generate_query_file(
    relation: Relation,
    size_fraction: float,
    n_queries: int = PAPER_QUERIES_PER_FILE,
    seed: "int | np.random.Generator | None" = None,
    *,
    align_to_grid: bool | None = None,
) -> QueryFile:
    """Generate the paper's query file ``F_D(s)``.

    Queries have fixed width ``size_fraction * domain.width`` and are
    centered on records drawn (with replacement) from the relation, so
    the position distribution follows the data distribution.  Centers
    whose query would stick out of the domain are rejected, matching
    the paper's protocol.

    ``align_to_grid`` controls integer-query semantics: when on
    (default for :class:`IntegerDomain` attributes), query endpoints
    land on half-integers so every query covers whole grid values —
    a range predicate on an integer attribute has integer bounds.
    Without alignment, fractionally covered grid points add an
    irreducible quantization error on small domains.

    Raises
    ------
    InvalidQueryError
        If the parameters are out of range or rejection cannot find
        enough in-domain positions (pathologically boundary-heavy data).
    """
    if not 0 < size_fraction < 1:
        raise InvalidQueryError(f"size_fraction must be in (0, 1), got {size_fraction}")
    if n_queries <= 0:
        raise InvalidQueryError(f"n_queries must be positive, got {n_queries}")
    rng = resolve_rng(seed)
    domain = relation.domain
    if align_to_grid is None:
        align_to_grid = isinstance(domain, IntegerDomain)
    width = size_fraction * domain.width
    if align_to_grid:
        # Whole-value queries: an odd number of covered grid points
        # keeps the drawn record at the exact query center.
        width = max(1.0, float(round(width)))
    half = 0.5 * width
    lo_center = domain.low + half
    hi_center = domain.high - half

    centers = np.empty(n_queries, dtype=np.float64)
    filled = 0
    attempts = 0
    while filled < n_queries:
        attempts += 1
        if attempts > 200:
            raise InvalidQueryError(
                f"could not place {n_queries} size-{size_fraction:.0%} queries inside the "
                f"domain after {attempts} rounds; data mass sits too close to the boundary"
            )
        draw = relation.values[rng.integers(0, relation.size, size=2 * n_queries)]
        accepted = draw[(draw >= lo_center) & (draw <= hi_center)]
        take = min(accepted.size, n_queries - filled)
        centers[filled : filled + take] = accepted[:take]
        filled += take

    a = centers - half
    b = centers + half
    if align_to_grid:
        # Snap endpoints to half-integers (cell boundaries) and keep
        # the query inside the domain.
        a = np.floor(a) + 0.5
        b = a + width
        shift = np.maximum(domain.low - a, 0.0) - np.maximum(b - domain.high, 0.0)
        a = a + shift
        b = b + shift
    counts = _bulk_counts(relation, a, b)
    return QueryFile(
        a,
        b,
        counts,
        relation.size,
        size_fraction=size_fraction,
        dataset=relation.name,
    )


def position_sweep(
    relation: Relation,
    size_fraction: float,
    n_positions: int = 200,
) -> QueryFile:
    """Fixed-size queries whose centers sweep evenly across the domain.

    Used by the boundary-problem experiments (paper Figs. 3 and 10):
    the first query starts at the left domain edge and the last ends at
    the right edge, so queries near the sweep ends sit within one
    bandwidth of a boundary.
    """
    if not 0 < size_fraction < 1:
        raise InvalidQueryError(f"size_fraction must be in (0, 1), got {size_fraction}")
    if n_positions < 2:
        raise InvalidQueryError(f"n_positions must be >= 2, got {n_positions}")
    domain = relation.domain
    half = 0.5 * size_fraction * domain.width
    centers = np.linspace(domain.low + half, domain.high - half, n_positions)
    a = centers - half
    b = centers + half
    counts = _bulk_counts(relation, a, b)
    return QueryFile(
        a,
        b,
        counts,
        relation.size,
        size_fraction=size_fraction,
        dataset=relation.name,
    )


def _bulk_counts(relation: Relation, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Exact result sizes for parallel endpoint arrays in one pass."""
    values = relation.values
    lo = np.searchsorted(values, a, side="left")
    hi = np.searchsorted(values, b, side="right")
    return (hi - lo).astype(np.int64)
