"""Command-line entry point: ``python -m repro <experiment> [--paper]``.

Regenerates the paper's tables and figures from the terminal::

    python -m repro list             # available experiments
    python -m repro fig12            # one experiment, fast protocol
    python -m repro all --paper      # everything, full protocol
    python -m repro fig04 --csv      # machine-readable output
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import DEFAULT, FAST
from repro.experiments import (
    extended,
    profile,
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    table2,
)

EXPERIMENTS = {
    "table2": table2,
    "fig03": fig03,
    "fig04": fig04,
    "fig05": fig05,
    "fig06": fig06,
    "fig07": fig07,
    "fig08": fig08,
    "fig09": fig09,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "extended": extended,
    "profile": profile,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. fig12), 'all', or 'list'",
    )
    parser.add_argument(
        "--paper",
        action="store_true",
        help="run the paper's full protocol (1,000 queries, all data files)",
    )
    parser.add_argument(
        "--csv",
        action="store_true",
        help="emit CSV instead of the rendered table",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, module in EXPERIMENTS.items():
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:<8} {doc}")
        return 0

    if args.experiment == "all":
        selected = list(EXPERIMENTS.values())
    elif args.experiment in EXPERIMENTS:
        selected = [EXPERIMENTS[args.experiment]]
    else:
        parser.error(
            f"unknown experiment {args.experiment!r}; "
            f"choose from {', '.join(EXPERIMENTS)}, all, list"
        )

    config = DEFAULT if args.paper else FAST
    for module in selected:
        result = module.run(config)
        print(result.to_csv() if args.csv else result.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
