"""Command-line entry point: ``python -m repro <experiment> [--paper]``.

Regenerates the paper's tables and figures from the terminal::

    python -m repro list             # available experiments
    python -m repro fig12            # one experiment, fast protocol
    python -m repro all --paper      # everything, full protocol
    python -m repro fig04 --csv      # machine-readable output
    python -m repro fig12 --trace    # + span tree and JSON run manifest
    python -m repro stats            # aggregate existing run manifests
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import DEFAULT, FAST
from repro.experiments import (
    extended,
    profile,
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    table2,
)

EXPERIMENTS = {
    "table2": table2,
    "fig03": fig03,
    "fig04": fig04,
    "fig05": fig05,
    "fig06": fig06,
    "fig07": fig07,
    "fig08": fig08,
    "fig09": fig09,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "extended": extended,
    "profile": profile,
}


def _render_stats() -> str:
    """Aggregate the manifest drop box into one text table."""
    from repro import telemetry
    from repro.experiments.reporting import make_result

    rows = telemetry.aggregate_manifests()
    directory = telemetry.manifest_dir()
    if not rows:
        return (
            f"no run manifests under {directory}\n"
            "run an experiment with --trace first, e.g. "
            "`python -m repro fig12 --trace`\n"
        )
    # Durations and counts are not error fractions; format them as-is.
    formatted = [
        {key: (str(value) if isinstance(value, float) else value) for key, value in row.items()}
        for row in rows
    ]
    result = make_result(
        "stats",
        f"telemetry run manifests ({directory})",
        formatted,
    )
    return result.render()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. fig12), 'all', 'list', or 'stats'",
    )
    parser.add_argument(
        "--paper",
        action="store_true",
        help="run the paper's full protocol (1,000 queries, all data files)",
    )
    parser.add_argument(
        "--csv",
        action="store_true",
        help="emit CSV instead of the rendered table",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="enable telemetry: print a span-tree summary and write a "
        "JSON run manifest under benchmarks/reports/manifests/",
    )
    parser.add_argument(
        "--trace-memory",
        action="store_true",
        help="with --trace, additionally capture tracemalloc peak memory per span",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, module in EXPERIMENTS.items():
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:<8} {doc}")
        return 0

    if args.experiment == "stats":
        print(_render_stats(), end="")
        return 0

    if args.experiment == "all":
        selected = list(EXPERIMENTS.items())
    elif args.experiment in EXPERIMENTS:
        selected = [(args.experiment, EXPERIMENTS[args.experiment])]
    else:
        parser.error(
            f"unknown experiment {args.experiment!r}; "
            f"choose from {', '.join(EXPERIMENTS)}, all, list, stats"
        )

    config = DEFAULT if args.paper else FAST
    for name, module in selected:
        if args.trace:
            from repro.experiments.harness import run_traced

            result, manifest_path, session = run_traced(
                name, module.run, config, trace_memory=args.trace_memory
            )
            print(result.to_csv() if args.csv else result.render())
            print("-- telemetry spans --")
            print(session.render_spans())
            print(f"-- run manifest: {manifest_path}")
        else:
            result = module.run(config)
            print(result.to_csv() if args.csv else result.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
