"""Command-line entry point: ``python -m repro <experiment> [--paper]``.

Regenerates the paper's tables and figures from the terminal::

    python -m repro list             # available experiments
    python -m repro fig12            # one experiment, fast protocol
    python -m repro all --paper      # everything, full protocol
    python -m repro fig04 --csv      # machine-readable output
    python -m repro fig12 --trace    # + span tree and JSON run manifest
    python -m repro stats            # aggregate existing run manifests
    python -m repro stats --format json   # ... as JSON (or prom)
    python -m repro slo              # evaluate SLOs, exit 1 on failure
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.experiments import DEFAULT, FAST
from repro.experiments import (
    extended,
    profile,
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    table2,
)

EXPERIMENTS = {
    "table2": table2,
    "fig03": fig03,
    "fig04": fig04,
    "fig05": fig05,
    "fig06": fig06,
    "fig07": fig07,
    "fig08": fig08,
    "fig09": fig09,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "extended": extended,
    "profile": profile,
}


def _warn_skip(path: pathlib.Path, reason: str) -> None:
    """Per-file stderr warning for manifests the aggregator skipped."""
    print(f"warning: skipping manifest {path}: {reason}", file=sys.stderr)


def _render_stats(output_format: str = "table") -> str:
    """Aggregate the manifest drop box into one report.

    ``table`` renders the human-readable summary; ``json`` emits the
    raw aggregate rows; ``prom`` emits one Prometheus text exposition
    per experiment (latest run's metrics, labelled by experiment),
    concatenated — a textfile-collector drop-in.
    """
    from repro import telemetry
    from repro.experiments.reporting import make_result

    directory = telemetry.manifest_dir()
    if output_format == "prom":
        manifests = telemetry.load_manifests(on_skip=_warn_skip)
        latest: dict[str, dict] = {}
        for manifest in manifests:
            latest[str(manifest.get("experiment"))] = manifest
        chunks = []
        for experiment in sorted(latest):
            snapshot = latest[experiment].get("telemetry", {}).get("metrics", {})
            if isinstance(snapshot, dict):
                chunks.append(
                    telemetry.prometheus_exposition(
                        snapshot, labels={"experiment": experiment}
                    )
                )
        return "".join(chunks) if chunks else "# EOF\n"

    rows = telemetry.aggregate_manifests(on_skip=_warn_skip)
    if output_format == "json":
        return json.dumps(rows, indent=2, sort_keys=True) + "\n"
    if not rows:
        return (
            f"no run manifests under {directory}\n"
            "run an experiment with --trace first, e.g. "
            "`python -m repro fig12 --trace`\n"
        )
    # Durations and counts are not error fractions; format them as-is.
    formatted = [
        {key: (str(value) if isinstance(value, float) else value) for key, value in row.items()}
        for row in rows
    ]
    result = make_result(
        "stats",
        f"telemetry run manifests ({directory})",
        formatted,
    )
    return result.render()


def _run_slo(bench_path: "pathlib.Path | None") -> int:
    """Evaluate the default SLOs; exit 1 on any evaluated failure.

    Bench latency ceilings come from ``BENCH_perf.json`` (or
    ``--bench``); quantile and hit-rate objectives come from the
    latest run manifests' metric snapshots.
    """
    from repro import telemetry
    from repro.telemetry import slo as slo_mod

    results: list[telemetry.SLOResult] = []

    path = bench_path if bench_path is not None else pathlib.Path("BENCH_perf.json")
    if path.is_file():
        try:
            bench = slo_mod.load_bench(path)
        except ValueError as exc:
            print(f"warning: {exc}", file=sys.stderr)
        else:
            results.extend(telemetry.evaluate_bench(telemetry.DEFAULT_SLOS, bench))
    else:
        print(f"warning: no benchmark file at {path}; skipping bench SLOs", file=sys.stderr)

    # Merge the latest manifest snapshot per experiment into one view:
    # counters add, value summaries keep the best-fed series.
    manifests = telemetry.load_manifests(on_skip=_warn_skip)
    latest: dict[str, dict] = {}
    for manifest in manifests:
        latest[str(manifest.get("experiment"))] = manifest
    merged: dict[str, dict] = {"counters": {}, "gauges": {}, "values": {}}
    for manifest in latest.values():
        snapshot = manifest.get("telemetry", {}).get("metrics", {})
        if not isinstance(snapshot, dict):
            continue
        for name, amount in (snapshot.get("counters") or {}).items():
            if isinstance(amount, (int, float)):
                merged["counters"][name] = merged["counters"].get(name, 0.0) + amount
        for name, summary in (snapshot.get("values") or {}).items():
            if not isinstance(summary, dict):
                continue
            best = merged["values"].get(name)
            if best is None or summary.get("count", 0) > best.get("count", 0):
                merged["values"][name] = summary
    snapshot_specs = [spec for spec in telemetry.DEFAULT_SLOS if spec.kind != "bench"]
    results.extend(telemetry.evaluate_snapshot(snapshot_specs, merged))

    print(telemetry.render_report(results), end="")
    return 1 if any(result.passed is False for result in results) else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. fig12), 'all', 'list', 'stats', or 'slo'",
    )
    parser.add_argument(
        "--format",
        choices=("table", "json", "prom"),
        default="table",
        help="with 'stats': output format (text table, JSON rows, or "
        "Prometheus text exposition of the latest runs)",
    )
    parser.add_argument(
        "--bench",
        type=pathlib.Path,
        default=None,
        help="with 'slo': benchmark export file holding the latency "
        "medians (default: BENCH_perf.json)",
    )
    parser.add_argument(
        "--paper",
        action="store_true",
        help="run the paper's full protocol (1,000 queries, all data files)",
    )
    parser.add_argument(
        "--csv",
        action="store_true",
        help="emit CSV instead of the rendered table",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="enable telemetry: print a span-tree summary and write a "
        "JSON run manifest under benchmarks/reports/manifests/",
    )
    parser.add_argument(
        "--keep-going",
        action="store_true",
        help="run every selected experiment even if one fails; report "
        "per-experiment errors at the end and exit 1 if any failed",
    )
    parser.add_argument(
        "--trace-memory",
        action="store_true",
        help="with --trace, additionally capture tracemalloc peak memory per span",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, module in EXPERIMENTS.items():
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:<8} {doc}")
        return 0

    if args.experiment == "stats":
        print(_render_stats(args.format), end="")
        return 0

    if args.experiment == "slo":
        return _run_slo(args.bench)

    if args.experiment == "all":
        selected = list(EXPERIMENTS.items())
    elif args.experiment in EXPERIMENTS:
        selected = [(args.experiment, EXPERIMENTS[args.experiment])]
    else:
        parser.error(
            f"unknown experiment {args.experiment!r}; "
            f"choose from {', '.join(EXPERIMENTS)}, all, list, stats, slo"
        )

    config = DEFAULT if args.paper else FAST
    failures: list[tuple[str, BaseException]] = []
    for name, module in selected:
        try:
            if args.trace:
                from repro.experiments.harness import run_traced

                result, manifest_path, session = run_traced(
                    name, module.run, config, trace_memory=args.trace_memory
                )
                print(result.to_csv() if args.csv else result.render())
                print("-- telemetry spans --")
                print(session.render_spans())
                print(f"-- run manifest: {manifest_path}")
            else:
                result = module.run(config)
                print(result.to_csv() if args.csv else result.render())
        except Exception as exc:
            # --keep-going collects per-experiment failures (the CLI
            # face of run_cells(keep_going=True)); without it the
            # first failure propagates as before.
            if not args.keep_going:
                raise
            failures.append((name, exc))
            print(f"error: {name} failed: {type(exc).__name__}: {exc}", file=sys.stderr)
    if failures:
        names = ", ".join(name for name, _ in failures)
        print(
            f"{len(failures)} of {len(selected)} experiments failed: {names}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
