"""The hybrid histogram-kernel estimator (paper §3.3).

The paper's new estimator combines the strengths of both families:

1. **Partition** the domain into bins at the density's change points
   (detected via the second derivative,
   :mod:`repro.core.changepoints`).
2. **Merge** adjacent bins whose sample count is too small to support
   their own kernel estimate.
3. **Estimate within bins**: each bin runs an independent kernel
   estimator over its samples, with its *own* bandwidth, treating the
   bin edges as domain boundaries (boundary kernels by default).  A
   bin's mass is its sample fraction, so discontinuities of the true
   PDF end up *between* bins where kernel smoothing never crosses
   them.

Bins whose sample population is too thin for kernel estimation fall
back to the uniform-within-bin assumption — exactly a histogram bin —
which is why the method is a genuine hybrid.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.core.base import (
    DensityEstimator,
    EstimatorError,
    InvalidSampleError,
    validate_query,
    validate_query_batch,
    validate_sample,
)
from repro.bandwidth.scale import clamp_bandwidth
from repro.core.changepoints import detect_change_points
from repro.core.hybrid_flat import (
    FlatHybrid,
    bin_offsets,
    build_flat,
    flat_density,
    flat_selectivities,
)
from repro.core.kernel.boundary import make_kernel_estimator
from repro.data.domain import Interval
from repro.telemetry.runtime import get_telemetry

if TYPE_CHECKING:
    from repro.core.kernel.estimator import KernelSelectivityEstimator
    from repro.core.summary import FrozenSummary

#: Bins with fewer samples than this cannot support a kernel estimate
#: and fall back to the uniform-within-bin assumption.
MIN_KERNEL_SAMPLES = 8


class _UniformBin:
    """Uniform-density fallback for sparsely populated bins."""

    def __init__(self, interval: Interval) -> None:
        self._interval = interval

    def selectivities(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self.raw_selectivities(a, b)

    def raw_selectivities(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        lo = np.clip(a, self._interval.low, self._interval.high)
        hi = np.clip(b, self._interval.low, self._interval.high)
        return np.maximum(hi - lo, 0.0) / self._interval.width

    def density(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        inside = (x >= self._interval.low) & (x <= self._interval.high)
        return np.where(inside, 1.0 / self._interval.width, 0.0)


class HybridEstimator(DensityEstimator):
    """Change-point-partitioned kernel estimator.

    Parameters
    ----------
    sample:
        Sample set.
    domain:
        Attribute domain.
    max_changepoints:
        Upper bound on detected change points (bins = change points + 1).
    min_bin_fraction:
        Adjacent bins are merged until every bin holds at least this
        fraction of the sample ("merged into one if the corresponding
        number of records is not sufficiently large", paper §3.3).
    boundary:
        Boundary treatment of the per-bin kernel estimators
        (``"kernel"`` in the paper's experiments).
    bandwidth_rule:
        Callable mapping a bin's sample array to a bandwidth.  Defaults
        to the Epanechnikov normal-scale rule; the bandwidth is always
        clamped to half the bin width so boundary regions never overlap.
    changepoint_kwargs:
        Extra keyword arguments forwarded to
        :func:`repro.core.changepoints.detect_change_points`.
    """

    def __init__(
        self,
        sample: np.ndarray,
        domain: Interval,
        *,
        max_changepoints: int = 8,
        min_bin_fraction: float = 0.05,
        boundary: str = "kernel",
        bandwidth_rule: Callable[[np.ndarray], float] | None = None,
        changepoint_kwargs: dict | None = None,
    ) -> None:
        if not 0.0 < min_bin_fraction < 1.0:
            raise InvalidSampleError(
                f"min_bin_fraction must be in (0, 1), got {min_bin_fraction}"
            )
        values = validate_sample(sample, domain)
        if bandwidth_rule is None:
            from repro.bandwidth.normal_scale import kernel_bandwidth

            bandwidth_rule = kernel_bandwidth

        kwargs = dict(changepoint_kwargs or {})
        kwargs.setdefault("max_points", max_changepoints)
        points = detect_change_points(values, domain, **kwargs)
        sorted_values = np.sort(values)
        edges = self._merge_small_bins(sorted_values, domain, points, min_bin_fraction)
        offsets = bin_offsets(sorted_values, edges)

        self._domain = domain
        self._n = int(values.size)
        self._boundary = boundary
        self._edges = edges
        self._bins: list[Interval] = domain.subdivide(edges[1:-1])
        self._weights: list[float] = []
        self._estimators: list[object] = []
        self._scales: list[float] = []
        bandwidths: list[float] = []
        for index, interval in enumerate(self._bins):
            in_bin = sorted_values[offsets[index] : offsets[index + 1]]
            self._weights.append(in_bin.size / self._n)
            estimator = self._build_bin_estimator(in_bin, interval, boundary, bandwidth_rule)
            self._estimators.append(estimator)
            self._scales.append(self._bin_scale(estimator, interval))
            bandwidths.append(getattr(estimator, "bandwidth", 1.0))
        # Contiguous fast path (boundary kernels only — the default):
        # one concatenated sorted sample + per-bin arrays answers whole
        # batches with two edge searches and segmented reductions; the
        # per-bin objects above stay as the reference implementation.
        self._flat: FlatHybrid | None = None
        if boundary == "kernel":
            coeff = np.asarray(self._weights) * np.asarray(self._scales)
            is_kernel = np.array(
                [not isinstance(est, _UniformBin) for est in self._estimators]
            )
            self._flat = build_flat(
                sorted_values,
                edges,
                offsets,
                coeff,
                is_kernel,
                np.asarray(bandwidths, dtype=np.float64),
            )

    @classmethod
    def from_summary(cls, summary: "FrozenSummary", **kwargs: object) -> "HybridEstimator":
        """Build from a frozen column summary (see ``repro.core.summary``)."""
        return cls(summary.sample, summary.domain, **kwargs)

    @staticmethod
    def _bin_values(values: np.ndarray, interval: Interval, domain: Interval) -> np.ndarray:
        """Sample values belonging to a bin (shared binning rule).

        Bins are half-open ``[low, high)``; the rightmost bin is closed
        so no sample is dropped or double counted.  Delegates to the
        same ``searchsorted`` rule (:func:`bin_offsets`) the bin-merge
        step and the flat layout use, so edge-coincident samples land
        in one bin under every code path.
        """
        sorted_values = np.sort(values)
        lo = int(np.searchsorted(sorted_values, interval.low, side="left"))
        side = "right" if interval.high >= domain.high else "left"
        hi = int(np.searchsorted(sorted_values, interval.high, side=side))
        return sorted_values[lo:hi]

    @staticmethod
    def _merge_small_bins(
        sorted_values: np.ndarray,
        domain: Interval,
        points: np.ndarray,
        min_bin_fraction: float,
    ) -> np.ndarray:
        """Drop change points until every bin is sufficiently populated.

        Greedy: while some bin holds less than the minimum fraction,
        remove the interior boundary that separates it from its
        lighter neighbour.  Bin populations come from the same
        ``searchsorted`` rule as every other binning step
        (:func:`bin_offsets`), so a sample exactly on an interior edge
        is counted by the bin that will actually own it.
        """
        edges = np.concatenate(([domain.low], np.asarray(points, dtype=np.float64), [domain.high]))
        minimum = min_bin_fraction * sorted_values.size
        while edges.size > 2:
            counts = np.diff(bin_offsets(sorted_values, edges))
            light = int(np.argmin(counts))
            if counts[light] >= minimum:
                break
            if light == 0:
                drop = 1
            elif light == counts.size - 1:
                drop = edges.size - 2
            else:
                # Merge towards the lighter neighbour.
                drop = light if counts[light - 1] <= counts[light + 1] else light + 1
            edges = np.delete(edges, drop)
        return edges

    @staticmethod
    def _build_bin_estimator(
        in_bin: np.ndarray,
        interval: Interval,
        boundary: str,
        bandwidth_rule: Callable[[np.ndarray], float],
    ) -> "_UniformBin | KernelSelectivityEstimator":
        if in_bin.size < MIN_KERNEL_SAMPLES:
            return _UniformBin(interval)
        try:
            bandwidth = float(bandwidth_rule(in_bin))
        except EstimatorError:
            # Degenerate bins (all duplicates => zero scale) cannot
            # support a kernel estimate.
            return _UniformBin(interval)
        # Non-finite bandwidths (a rule dividing by a zero scale can
        # produce NaN/inf) must be caught *before* the clamp, which
        # would silently coerce them to the cap.
        if not np.isfinite(bandwidth):
            return _UniformBin(interval)
        # Cap the bandwidth at a quarter of the bin width so the two
        # boundary regions never cover more than half the bin.  The
        # looser half-width cap (which only keeps the regions disjoint)
        # lets oversmoothed bins degenerate into pure boundary
        # correction, whose signed-kernel dips grow with ``h``; also
        # guard degenerate zero bandwidths from duplicate-heavy bins.
        bandwidth = clamp_bandwidth(bandwidth, interval.width / 2.0)
        if bandwidth <= 0:
            return _UniformBin(interval)
        # ``use_moments=False``: the per-bin objects double as the
        # reference implementation for the flat fast path, so they pin
        # the per-sample arithmetic and stay numerically independent
        # of the prefix-moment evaluation.
        return make_kernel_estimator(
            in_bin, bandwidth, interval, boundary=boundary, use_moments=False
        )

    @staticmethod
    def _bin_scale(estimator: "_UniformBin | KernelSelectivityEstimator", interval: Interval) -> float:
        """Renormalization factor making the bin's mass exactly 1.

        Boundary-kernel estimates are consistent but not densities
        (paper §3.2.1): the mass a bin's estimator assigns to its own
        interval drifts from 1 as the bandwidth grows (observed up to
        ~1.08 high and ~0.9 low on duplicate-heavy bins).  The hybrid
        hands every bin exactly its sample fraction, so the per-bin
        estimate is rescaled by the *raw* (unclipped) mass over the
        bin.
        """
        low = np.array([interval.low])
        high = np.array([interval.high])
        mass = float(estimator.raw_selectivities(low, high)[0])
        if not np.isfinite(mass) or mass <= 1e-9:
            return 1.0
        return 1.0 / mass

    @property
    def sample_size(self) -> int:
        return self._n

    @property
    def domain(self) -> Interval:
        """Attribute domain."""
        return self._domain

    @property
    def bins(self) -> list[Interval]:
        """The change-point partition after merging."""
        return list(self._bins)

    @property
    def change_points(self) -> np.ndarray:
        """Interior bin boundaries actually in use."""
        return self._edges[1:-1].copy()

    @property
    def bin_weights(self) -> np.ndarray:
        """Sample mass fraction per bin."""
        return np.asarray(self._weights)

    def selectivity(self, a: float, b: float) -> float:
        a, b = validate_query(a, b)
        return float(self.selectivities(np.array([a]), np.array([b]))[0])

    def selectivities(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Batched selectivity over the partition.

        With boundary kernels (the default) the contiguous flat layout
        answers the whole batch with two ``searchsorted`` calls plus
        segmented reductions across all bins at once; other boundary
        treatments fall back to the per-bin reference loop.  Per-bin
        estimates are renormalized to unit mass over the bin before
        weighting (see :meth:`_bin_scale`).
        """
        a, b = validate_query_batch(a, b)
        shape = np.broadcast(a, b).shape
        flat_a = np.broadcast_to(a, shape).astype(np.float64, copy=False).ravel()
        flat_b = np.broadcast_to(b, shape).astype(np.float64, copy=False).ravel()
        if self._flat is not None:
            total = flat_selectivities(self._flat, flat_a, flat_b)
        else:
            self._count_fallback()
            total = self._selectivities_loop(flat_a, flat_b)
        return np.clip(total, 0.0, 1.0).reshape(shape)

    def selectivities_reference(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Per-bin reference implementation (independent arithmetic).

        Walks the per-bin estimator objects exactly as the pre-flat
        implementation did; ``tests/test_hybrid_flat.py`` property
        checks the flat fast path against this to 1e-12.
        """
        a, b = validate_query_batch(a, b)
        shape = np.broadcast(a, b).shape
        flat_a = np.broadcast_to(a, shape).astype(np.float64, copy=False).ravel()
        flat_b = np.broadcast_to(b, shape).astype(np.float64, copy=False).ravel()
        total = self._selectivities_loop(flat_a, flat_b)
        return np.clip(total, 0.0, 1.0).reshape(shape)

    def _selectivities_loop(self, flat_a: np.ndarray, flat_b: np.ndarray) -> np.ndarray:
        total = np.zeros(flat_a.shape, dtype=np.float64)
        for interval, weight, scale, estimator in zip(
            self._bins, self._weights, self._scales, self._estimators
        ):
            if weight == 0.0:
                continue
            overlap = (flat_b >= interval.low) & (flat_a <= interval.high)
            if not overlap.any():
                continue
            lo = np.clip(flat_a[overlap], interval.low, interval.high)
            hi = np.clip(flat_b[overlap], interval.low, interval.high)
            hi = np.maximum(hi, lo)
            part = estimator.raw_selectivities(lo, hi)
            total[overlap] += (weight * scale) * part
        return total

    def density(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_1d(np.asarray(x, dtype=np.float64))
        if self._flat is not None:
            return flat_density(self._flat, x.ravel()).reshape(x.shape)
        self._count_fallback()
        return self._density_loop(x)

    def _count_fallback(self) -> None:
        """Tally a serve on the per-bin loop (no flat layout built).

        The flat fast path only covers the ``"kernel"`` boundary
        policy; any other policy (reflection, none) serves through the
        per-bin Python loop.  That slow path is intentional but must be
        visible: every hit increments ``hybrid.fallback.<boundary>``
        so dashboards can see when production traffic lands on it.
        The explicit ``*_reference`` methods are exempt — tests call
        those on purpose.
        """
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.metrics.inc(f"hybrid.fallback.{self._boundary}")

    def density_reference(self, x: np.ndarray) -> np.ndarray:
        """Per-bin reference implementation of :meth:`density`."""
        x = np.atleast_1d(np.asarray(x, dtype=np.float64))
        return self._density_loop(x)

    def _density_loop(self, x: np.ndarray) -> np.ndarray:
        total = np.zeros(x.shape, dtype=np.float64)
        for interval, weight, scale, estimator in zip(
            self._bins, self._weights, self._scales, self._estimators
        ):
            if weight == 0.0:
                continue
            inside = (x >= interval.low) & (x <= interval.high)
            if np.any(inside):
                local = estimator.density(x[inside])
                total[inside] += (weight * scale) * np.asarray(local)
        return total
