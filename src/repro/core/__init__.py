"""Estimator core: the paper's primary contribution.

Subpackages
-----------

``repro.core.base``
    Abstract interfaces shared by every estimator.
``repro.core.sampling``
    Pure sampling (the baseline every other method is measured against).
``repro.core.histogram``
    Equi-width, equi-depth, max-diff, uniform and average shifted
    histograms (paper §3.1).
``repro.core.kernel``
    Kernel selectivity estimation with boundary treatments (paper §3.2).
``repro.core.hybrid``
    The paper's new hybrid histogram-kernel estimator (paper §3.3).
``repro.core.changepoints``
    Second-derivative change-point detection used by the hybrid.
``repro.core.summary``
    Mergeable, versioned column summaries — the incremental-ANALYZE
    substrate every estimator family can be rebuilt from.
"""

from repro.core.base import (
    DensityEstimator,
    EstimatorError,
    InvalidQueryError,
    InvalidSampleError,
    SelectivityEstimator,
)
from repro.core.summary import ColumnSummary, FrozenSummary

__all__ = [
    "ColumnSummary",
    "DensityEstimator",
    "EstimatorError",
    "FrozenSummary",
    "InvalidQueryError",
    "InvalidSampleError",
    "SelectivityEstimator",
]
