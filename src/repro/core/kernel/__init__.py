"""Kernel selectivity estimation (paper §3.2).

* :mod:`repro.core.kernel.functions` — kernel functions with exact
  primitives (the paper's ``F_K``), second moments and roughness.
* :mod:`repro.core.kernel.estimator` — Algorithm 1: the kernel
  selectivity estimator, with the sorted-sample ``O(log n + k)`` fast
  path the paper sketches.
* :mod:`repro.core.kernel.boundary` — the two boundary treatments of
  §3.2.1 (sample reflection and Simonoff–Dong boundary kernels).
* :mod:`repro.core.kernel.density` — pointwise density and derivative
  evaluation used by plug-in rules and change-point detection.
"""

from repro.core.kernel.adaptive import AdaptiveKernelEstimator
from repro.core.kernel.binned import BinnedKernelDensity
from repro.core.kernel.boundary import (
    BoundaryKernelEstimator,
    ReflectionKernelEstimator,
    make_kernel_estimator,
)
from repro.core.kernel.density import KernelDensity
from repro.core.kernel.estimator import KernelSelectivityEstimator
from repro.core.kernel.functions import (
    BIWEIGHT,
    COSINE,
    EPANECHNIKOV,
    GAUSSIAN,
    KERNELS,
    TRIANGULAR,
    TRIWEIGHT,
    UNIFORM,
    KernelFunction,
    get_kernel,
)

__all__ = [
    "AdaptiveKernelEstimator",
    "BIWEIGHT",
    "BinnedKernelDensity",
    "BoundaryKernelEstimator",
    "COSINE",
    "EPANECHNIKOV",
    "GAUSSIAN",
    "KERNELS",
    "KernelDensity",
    "KernelFunction",
    "KernelSelectivityEstimator",
    "ReflectionKernelEstimator",
    "TRIANGULAR",
    "TRIWEIGHT",
    "UNIFORM",
    "get_kernel",
    "make_kernel_estimator",
]
