"""Adaptive-bandwidth kernel estimation (Abramson; Silverman ch. 5).

The paper's kernel estimator uses one global bandwidth ``h`` — the
very parameter its §4 is about.  The statistics literature it cites
(Silverman 1986, ch. 5) offers the next step: *sample-point adaptive*
bandwidths

.. math::

   h_i = h \\cdot \\big( \\tilde f(X_i) / g \\big)^{-1/2}

where ``f~`` is a pilot density estimate and ``g`` its geometric mean
over the samples (Abramson's square-root law).  Dense regions get
narrow kernels, sparse tails get wide ones — exactly what the paper's
skewed files (exponential, census) call for.

Selectivity estimation carries over unchanged: each sample contributes
``C((b - X_i)/h_i) - C((a - X_i)/h_i)`` with its own ``h_i``, so the
estimator stays exact (no numerical integration) and still integrates
to one over the real line.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import (
    DensityEstimator,
    InvalidSampleError,
    validate_query,
    validate_sample,
    validate_query_batch,
)
from repro.core.kernel.density import KernelDensity
from repro.core.kernel.estimator import _validate_bandwidth
from repro.core.kernel.functions import EPANECHNIKOV, KernelFunction, get_kernel
from repro.data.domain import Interval

#: Abramson's sensitivity exponent: ``h_i ~ pilot_density^(-alpha)``.
ABRAMSON_ALPHA = 0.5


class AdaptiveKernelEstimator(DensityEstimator):
    """Sample-point adaptive kernel selectivity estimator.

    Parameters
    ----------
    sample:
        Sample set.
    bandwidth:
        Global bandwidth scale ``h`` (the per-sample bandwidths are
        modulated around it).
    kernel:
        Kernel function; Epanechnikov by default.
    domain:
        Optional attribute domain.  When given, samples near the
        boundaries are reflected (the reflection treatment carries
        over to per-sample bandwidths).
    pilot_bandwidth:
        Gaussian bandwidth of the pilot density estimate; defaults to
        the canonical conversion of ``bandwidth``.
    alpha:
        Sensitivity exponent in ``(0, 1]``; 0.5 is Abramson's value.
    """

    def __init__(
        self,
        sample: np.ndarray,
        bandwidth: float,
        kernel: "KernelFunction | str" = EPANECHNIKOV,
        domain: Interval | None = None,
        *,
        pilot_bandwidth: float | None = None,
        alpha: float = ABRAMSON_ALPHA,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise InvalidSampleError(f"alpha must be in (0, 1], got {alpha}")
        values = np.sort(validate_sample(sample, domain))
        h = _validate_bandwidth(bandwidth)
        self._kernel = get_kernel(kernel)
        self._domain = domain
        self._n = int(values.size)

        if pilot_bandwidth is None:
            from repro.bandwidth.scale import to_gaussian_bandwidth

            pilot_bandwidth = (
                to_gaussian_bandwidth(h) if self._kernel.name != "gaussian" else h
            )
        pilot = KernelDensity(values, _validate_bandwidth(pilot_bandwidth))
        density_at_samples = np.maximum(pilot.density(values), 1e-300)
        log_geometric_mean = float(np.mean(np.log(density_at_samples)))
        factors = (density_at_samples / np.exp(log_geometric_mean)) ** (-alpha)
        bandwidths = h * factors

        if domain is not None:
            # Reflection treatment with per-sample reach.
            reach = bandwidths * self._kernel.support
            left = values < domain.low + reach
            right = values > domain.high - reach
            values = np.concatenate(
                [values, 2.0 * domain.low - values[left], 2.0 * domain.high - values[right]]
            )
            bandwidths = np.concatenate([bandwidths, bandwidths[left], bandwidths[right]])
            order = np.argsort(values, kind="stable")
            values = values[order]
            bandwidths = bandwidths[order]

        self._points = values
        self._bandwidths = bandwidths
        self._h = h
        for array in (self._points, self._bandwidths):
            array.flags.writeable = False

    @property
    def sample_size(self) -> int:
        return self._n

    @property
    def domain(self) -> Interval | None:
        """Attribute domain, if declared."""
        return self._domain

    @property
    def global_bandwidth(self) -> float:
        """The global scale ``h``."""
        return self._h

    @property
    def bandwidths(self) -> np.ndarray:
        """Per-sample bandwidths (read-only; includes reflected copies)."""
        return self._bandwidths

    def selectivity(self, a: float, b: float) -> float:
        a, b = validate_query(a, b)
        return float(self.selectivities(np.array([a]), np.array([b]))[0])

    def selectivities(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a, b = validate_query_batch(a, b)
        if self._domain is not None:
            a = np.clip(a, self._domain.low, self._domain.high)
            b = np.clip(b, self._domain.low, self._domain.high)
        out = np.empty(np.broadcast(a, b).shape, dtype=np.float64)
        flat_a, flat_b, flat_out = np.ravel(a), np.ravel(b), out.ravel()
        for j in range(flat_a.size):
            qa, qb = flat_a[j], flat_b[j]
            mass = self._kernel.mass_between(
                (qa - self._points) / self._bandwidths,
                (qb - self._points) / self._bandwidths,
            )
            flat_out[j] = mass.sum() / self._n
        return np.clip(out, 0.0, 1.0)

    def density(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_1d(np.asarray(x, dtype=np.float64))
        out = np.empty(x.shape, dtype=np.float64)
        flat_x, flat_out = x.ravel(), out.ravel()
        for j, point in enumerate(flat_x):
            contributions = self._kernel.pdf(
                (point - self._points) / self._bandwidths
            ) / self._bandwidths
            flat_out[j] = contributions.sum() / self._n
        if self._domain is not None:
            inside = (x >= self._domain.low) & (x <= self._domain.high)
            out = np.where(inside, out, 0.0)
        return out
