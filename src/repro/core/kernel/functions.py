"""Kernel functions with exact primitives and AMISE constants.

A kernel ``K`` is a symmetric density on the real line (paper §4.2
conditions (a)-(c)).  For selectivity estimation the integral of the
kernel matters more than the kernel itself: Algorithm 1 evaluates the
primitive ``F_K`` at the transformed query endpoints.  Every kernel
here therefore ships an exact closed-form CDF.

Two constants drive bandwidth selection (paper eq. 9):

* ``k2 = int t^2 K(t) dt`` — the kernel's second moment,
* ``roughness = int K(t)^2 dt`` — usually written ``R(K)``.

The paper uses the Epanechnikov kernel (AMISE-optimal among all
kernels); the others exist because §3.2 notes the kernel choice barely
matters — a claim our ablation bench verifies.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np
from scipy.special import ndtr

#: Effective support radius used for the Gaussian kernel: beyond 8.5
#: standard deviations the CDF is 1 to within 1e-17, far below any
#: selectivity resolution, so window-based fast paths stay exact.
GAUSSIAN_EFFECTIVE_SUPPORT = 8.5


@dataclasses.dataclass(frozen=True)
class KernelFunction:
    """A kernel with its primitive and AMISE constants.

    Attributes
    ----------
    name:
        Registry name (lower case).
    support:
        Radius of the support: ``K(t) = 0`` for ``|t| > support``.
        Effective (not exact) for the Gaussian.
    k2:
        Second moment ``int t^2 K(t) dt``.
    roughness:
        ``R(K) = int K(t)^2 dt``.
    """

    name: str
    support: float
    k2: float
    roughness: float
    _pdf: Callable[[np.ndarray], np.ndarray]
    _cdf: Callable[[np.ndarray], np.ndarray]

    def pdf(self, t: np.ndarray) -> np.ndarray:
        """Evaluate ``K(t)`` elementwise."""
        t = np.asarray(t, dtype=np.float64)
        return self._pdf(t)

    def cdf(self, t: np.ndarray) -> np.ndarray:
        """Evaluate the primitive ``int_{-inf}^{t} K`` elementwise.

        This equals the paper's ``F_K(t) + 1/2`` (the paper centers its
        primitive at zero); using the plain CDF removes the case split
        of Algorithm 1 without changing any value.
        """
        t = np.asarray(t, dtype=np.float64)
        return self._cdf(t)

    def mass_between(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Kernel mass on ``[lo, hi]``: ``cdf(hi) - cdf(lo)``."""
        return self.cdf(hi) - self.cdf(lo)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KernelFunction({self.name!r})"


def _epanechnikov_pdf(t: np.ndarray) -> np.ndarray:
    inside = np.abs(t) <= 1.0
    return np.where(inside, 0.75 * (1.0 - t * t), 0.0)


def _epanechnikov_cdf(t: np.ndarray) -> np.ndarray:
    # Horner form, multiplications only (``np.power`` dominates the
    # runtime of large vectorized batches otherwise); the augmented
    # assignments keep the pass count but avoid fresh temporaries,
    # which matters at the multi-megabyte batch sizes the windowed
    # fast path feeds through here.
    tc = np.clip(t, -1.0, 1.0)
    u = tc * tc
    u -= 3.0
    u *= tc
    u *= -0.25
    u += 0.5
    return u


def _biweight_pdf(t: np.ndarray) -> np.ndarray:
    inside = np.abs(t) <= 1.0
    u = 1.0 - t * t
    return np.where(inside, (15.0 / 16.0) * u * u, 0.0)


def _biweight_cdf(t: np.ndarray) -> np.ndarray:
    tc = np.clip(t, -1.0, 1.0)
    u = tc * tc
    v = 0.2 * u
    v -= 2.0 / 3.0
    v *= u
    v += 1.0
    v *= tc
    v *= 15.0 / 16.0
    v += 0.5
    return v


def _triweight_pdf(t: np.ndarray) -> np.ndarray:
    inside = np.abs(t) <= 1.0
    u = 1.0 - t * t
    return np.where(inside, (35.0 / 32.0) * u**3, 0.0)


def _triweight_cdf(t: np.ndarray) -> np.ndarray:
    tc = np.clip(t, -1.0, 1.0)
    u = tc * tc
    v = (-1.0 / 7.0) * u
    v += 0.6
    v *= u
    v -= 1.0
    v *= u
    v += 1.0
    v *= tc
    v *= 35.0 / 32.0
    v += 0.5
    return v


def _triangular_pdf(t: np.ndarray) -> np.ndarray:
    inside = np.abs(t) <= 1.0
    return np.where(inside, 1.0 - np.abs(t), 0.0)


def _triangular_cdf(t: np.ndarray) -> np.ndarray:
    tc = np.clip(t, -1.0, 1.0)
    left = 0.5 * (1.0 + tc) ** 2
    right = 1.0 - 0.5 * (1.0 - tc) ** 2
    return np.where(tc < 0.0, left, right)


def _uniform_pdf(t: np.ndarray) -> np.ndarray:
    inside = np.abs(t) <= 1.0
    return np.where(inside, 0.5, 0.0)


def _uniform_cdf(t: np.ndarray) -> np.ndarray:
    return 0.5 * (np.clip(t, -1.0, 1.0) + 1.0)


def _cosine_pdf(t: np.ndarray) -> np.ndarray:
    inside = np.abs(t) <= 1.0
    return np.where(inside, 0.25 * np.pi * np.cos(0.5 * np.pi * t), 0.0)


def _cosine_cdf(t: np.ndarray) -> np.ndarray:
    tc = np.clip(t, -1.0, 1.0)
    return 0.5 + 0.5 * np.sin(0.5 * np.pi * tc)


def _gaussian_pdf(t: np.ndarray) -> np.ndarray:
    return np.exp(-0.5 * t * t) / np.sqrt(2.0 * np.pi)


def _gaussian_cdf(t: np.ndarray) -> np.ndarray:
    return ndtr(t)


EPANECHNIKOV = KernelFunction(
    "epanechnikov", 1.0, 1.0 / 5.0, 3.0 / 5.0, _epanechnikov_pdf, _epanechnikov_cdf
)
BIWEIGHT = KernelFunction("biweight", 1.0, 1.0 / 7.0, 5.0 / 7.0, _biweight_pdf, _biweight_cdf)
TRIWEIGHT = KernelFunction(
    "triweight", 1.0, 1.0 / 9.0, 350.0 / 429.0, _triweight_pdf, _triweight_cdf
)
TRIANGULAR = KernelFunction(
    "triangular", 1.0, 1.0 / 6.0, 2.0 / 3.0, _triangular_pdf, _triangular_cdf
)
UNIFORM = KernelFunction("uniform", 1.0, 1.0 / 3.0, 0.5, _uniform_pdf, _uniform_cdf)
COSINE = KernelFunction(
    "cosine",
    1.0,
    1.0 - 8.0 / np.pi**2,
    np.pi**2 / 16.0,
    _cosine_pdf,
    _cosine_cdf,
)
GAUSSIAN = KernelFunction(
    "gaussian",
    GAUSSIAN_EFFECTIVE_SUPPORT,
    1.0,
    0.5 / np.sqrt(np.pi),
    _gaussian_pdf,
    _gaussian_cdf,
)

#: All registered kernels by name.
KERNELS: dict[str, KernelFunction] = {
    kernel.name: kernel
    for kernel in (EPANECHNIKOV, BIWEIGHT, TRIWEIGHT, TRIANGULAR, UNIFORM, COSINE, GAUSSIAN)
}


def get_kernel(name: "str | KernelFunction") -> KernelFunction:
    """Resolve a kernel by name (or pass one through)."""
    if isinstance(name, KernelFunction):
        return name
    key = name.strip().lower()
    if key not in KERNELS:
        raise KeyError(f"unknown kernel {name!r}; available: {', '.join(sorted(KERNELS))}")
    return KERNELS[key]
