"""Linear-binned kernel density evaluation (Wand 1994).

Plug-in rules and change-point detection evaluate density derivatives
on grids; done exactly, each evaluation touches every sample.  The
standard engineering answer is *linear binning*: spread each sample's
unit weight over its two neighbouring grid points proportionally to
proximity, then evaluate the KDE as a discrete convolution of the
grid-weight vector with a sampled kernel — ``O(G * W)`` (grid times
kernel width) instead of ``O(G * n)``, with approximation error
``O(delta^2)`` in the grid step ``delta``.

:class:`BinnedKernelDensity` mirrors the exact
:class:`~repro.core.kernel.density.KernelDensity` API (density +
derivatives + roughness) so it can drop into the plug-in pipeline for
large samples.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import InvalidSampleError, validate_sample
from repro.core.kernel.density import _DERIVATIVES
from repro.core.kernel.estimator import _validate_bandwidth
from repro.data.domain import Interval

#: Gaussian effective support, in bandwidths, for the convolution stencil.
_REACH = 9.0


def linear_bin(sample: np.ndarray, grid: np.ndarray) -> np.ndarray:
    """Linear-binning weights of a sample on an equispaced grid.

    Each sample splits its unit mass between the two enclosing grid
    points, proportionally to proximity; samples outside the grid
    clamp to the end points.  The weights sum to ``len(sample)``.
    """
    grid = np.asarray(grid, dtype=np.float64)
    if grid.ndim != 1 or grid.size < 2:
        raise InvalidSampleError("grid must be 1-D with at least two points")
    step = grid[1] - grid[0]
    if step <= 0 or not np.allclose(np.diff(grid), step):
        raise InvalidSampleError("grid must be equispaced and increasing")
    position = np.clip((np.asarray(sample, dtype=np.float64) - grid[0]) / step, 0, grid.size - 1)
    left = np.floor(position).astype(np.int64)
    left = np.minimum(left, grid.size - 2)
    fraction = position - left
    weights = np.zeros(grid.size, dtype=np.float64)
    np.add.at(weights, left, 1.0 - fraction)
    np.add.at(weights, left + 1, fraction)
    return weights


class BinnedKernelDensity:
    """Gaussian KDE with derivatives, evaluated via linear binning.

    Parameters
    ----------
    sample:
        Sample set.
    bandwidth:
        Gaussian bandwidth.
    domain:
        Optional domain bounding the grid; otherwise the sample range
        padded by a few bandwidths.
    grid_points:
        Grid resolution; accuracy is ``O((range / grid_points)^2)``.
    """

    def __init__(
        self,
        sample: np.ndarray,
        bandwidth: float,
        domain: Interval | None = None,
        grid_points: int = 1_024,
    ) -> None:
        if grid_points < 16:
            raise InvalidSampleError(f"need at least 16 grid points, got {grid_points}")
        values = validate_sample(sample, domain)
        self._g = _validate_bandwidth(bandwidth)
        if domain is not None:
            lo, hi = domain.low, domain.high
        else:
            pad = 4.0 * self._g
            lo, hi = values.min() - pad, values.max() + pad
        self._grid = np.linspace(lo, hi, grid_points)
        self._weights = linear_bin(values, self._grid)
        self._n = int(values.size)
        self._step = self._grid[1] - self._grid[0]
        self._cache: dict[int, np.ndarray] = {}

    @property
    def bandwidth(self) -> float:
        """The Gaussian bandwidth."""
        return self._g

    @property
    def sample_size(self) -> int:
        """Number of samples."""
        return self._n

    @property
    def grid(self) -> np.ndarray:
        """The evaluation grid."""
        return self._grid

    def _on_grid(self, order: int) -> np.ndarray:
        """Derivative values on the whole grid (cached per order)."""
        if order not in _DERIVATIVES:
            raise InvalidSampleError(
                f"derivative order must be in {sorted(_DERIVATIVES)}, got {order}"
            )
        if order not in self._cache:
            half = int(np.ceil(_REACH * self._g / self._step))
            offsets = np.arange(-half, half + 1) * self._step
            stencil = _DERIVATIVES[order](offsets / self._g)
            full = np.convolve(self._weights, stencil, mode="same")
            self._cache[order] = full / (self._n * self._g ** (order + 1))
        return self._cache[order]

    def derivative_on_grid(self, order: int = 0) -> np.ndarray:
        """The ``order``-th KDE derivative at every grid point."""
        return self._on_grid(order).copy()

    def derivative(self, x: np.ndarray, order: int = 0) -> np.ndarray:
        """Derivative at arbitrary points (linear interpolation)."""
        x = np.atleast_1d(np.asarray(x, dtype=np.float64))
        return np.interp(x, self._grid, self._on_grid(order))

    def density(self, x: np.ndarray) -> np.ndarray:
        """The KDE itself."""
        return self.derivative(x, order=0)

    def roughness(self, order: int, points: int | None = None) -> float:
        """``R(f^(order))`` by trapezoid integration over the grid.

        ``points`` is accepted for API compatibility with the exact
        :class:`KernelDensity` and ignored (the grid is fixed at
        construction).
        """
        values = self._on_grid(order)
        return float(np.trapezoid(values * values, self._grid))
