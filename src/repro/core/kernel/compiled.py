"""Opt-in compiled window-sum kernels (numba) with NumPy fallback.

The two inner loops everything hot reduces to — Epanechnikov CDF sums
over sorted-sample windows (selectivity batches) and Gaussian
derivative sums over windows (change-point detection, the DPI plug-in
functionals) — are pure arithmetic over contiguous slices, exactly the
shape a JIT compiler eats.  When `numba` is importable the callers in
:mod:`repro.core.kernel.estimator` and :mod:`repro.core.kernel.density`
dispatch here; otherwise they stay on the vectorized NumPy path.  The
pattern mirrors the typing gate's "skip when mypy absent": the
compiled layer is an accelerator, never a dependency.

Selection is controlled by the ``REPRO_ACCEL`` environment variable:

``auto`` (default)
    Use numba when importable, NumPy otherwise.
``numba``
    Require numba; raise if it is missing (CI legs that *must*
    exercise the compiled layer set this so a broken install cannot
    silently fall back and still pass).
``none``
    Force the NumPy path even when numba is present (used by the
    bit-for-bit equivalence tests to time/compare both paths in one
    process).

The jitted loops accumulate each window strictly left to right — the
same order ``np.add.reduceat`` applies — so the compiled and fallback
paths produce identical bits on identical inputs, which
``tests/test_compiled.py`` asserts whenever numba is available.
"""

from __future__ import annotations

import math
import os
import threading
from typing import Any, Callable

import numpy as np

#: Environment variable selecting the acceleration mode.
ACCEL_ENV = "REPRO_ACCEL"

#: Accepted ``REPRO_ACCEL`` values.
ACCEL_MODES = ("auto", "numba", "none")

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
except Exception:  # pragma: no cover - the common (baked-image) case
    _numba = None

#: Whether the numba package is importable at all.
HAVE_NUMBA = _numba is not None

_SQRT_2PI = math.sqrt(2.0 * math.pi)

_compile_lock = threading.Lock()
#: Lazily jitted kernels, keyed by name; guarded by ``_compile_lock``.
_jitted: dict[str, Callable[..., Any]] = {}


def accel_mode() -> str:
    """The resolved ``REPRO_ACCEL`` mode (validated)."""
    mode = os.environ.get(ACCEL_ENV, "auto").strip().lower() or "auto"
    if mode not in ACCEL_MODES:
        raise ValueError(
            f"{ACCEL_ENV} must be one of {ACCEL_MODES}, got {mode!r}"
        )
    return mode


def accelerated() -> bool:
    """Whether the compiled layer is active for this process."""
    mode = accel_mode()
    if mode == "none":
        return False
    if mode == "numba":
        if not HAVE_NUMBA:
            raise RuntimeError(
                f"{ACCEL_ENV}=numba but the numba package is not importable; "
                "install numba or drop the override"
            )
        return True
    return HAVE_NUMBA


def _epan_cdf_sums_py(
    x: np.ndarray,
    sample: np.ndarray,
    inv_h: float,
    lo: np.ndarray,
    hi: np.ndarray,
    out: np.ndarray,
) -> None:
    # Jitted below; mirrors functions._epanechnikov_cdf exactly
    # (same clip, same Horner order) so both paths round identically.
    for j in range(x.size):
        acc = 0.0
        for i in range(lo[j], hi[j]):
            t = (x[j] - sample[i]) * inv_h
            if t < -1.0:
                t = -1.0
            elif t > 1.0:
                t = 1.0
            u = t * t
            u -= 3.0
            u *= t
            u *= -0.25
            u += 0.5
            acc += u
        out[j] = acc


def _gauss_deriv_sums_py(
    x: np.ndarray,
    sample: np.ndarray,
    inv_g: float,
    order: int,
    lo: np.ndarray,
    hi: np.ndarray,
    out: np.ndarray,
) -> None:
    # Jitted below; matches density._DERIVATIVES term for term.
    for j in range(x.size):
        acc = 0.0
        for i in range(lo[j], hi[j]):
            t = (x[j] - sample[i]) * inv_g
            phi = math.exp(-0.5 * t * t) / _SQRT_2PI
            if order == 0:
                acc += phi
            elif order == 1:
                acc += -t * phi
            elif order == 2:
                acc += (t * t - 1.0) * phi
            elif order == 3:
                acc += (3.0 * t - t * t * t) * phi
            else:
                tt = t * t
                acc += (tt * tt - 6.0 * tt + 3.0) * phi
        out[j] = acc


def _get_jitted(name: str) -> Callable[..., Any] | None:
    """The jitted kernel for ``name``, compiling on first use."""
    if _numba is None:
        return None
    jitted = _jitted.get(name)
    if jitted is not None:
        return jitted
    with _compile_lock:
        jitted = _jitted.get(name)
        if jitted is None:  # pragma: no cover - needs numba installed
            source = {
                "epan_cdf_sums": _epan_cdf_sums_py,
                "gauss_deriv_sums": _gauss_deriv_sums_py,
            }[name]
            jitted = _numba.njit(cache=True, fastmath=False)(source)
            _jitted[name] = jitted
    return jitted


def epan_cdf_window_sums(
    x: np.ndarray,
    sample: np.ndarray,
    inv_h: float,
    lo: np.ndarray,
    hi: np.ndarray,
) -> np.ndarray | None:
    """Compiled ``sum_i C((x_j - X_i) * inv_h)`` per window, or ``None``.

    Returns ``None`` when the compiled layer is inactive so the caller
    falls through to its vectorized NumPy path.
    """
    if not accelerated():
        return None
    kernel = _get_jitted("epan_cdf_sums")
    if kernel is None:  # pragma: no cover - accelerated() guarantees numba
        return None
    out = np.empty(x.shape, dtype=np.float64)
    kernel(
        np.ascontiguousarray(x),
        sample,
        float(inv_h),
        np.ascontiguousarray(lo, dtype=np.int64),
        np.ascontiguousarray(hi, dtype=np.int64),
        out,
    )
    return out


def gaussian_derivative_window_sums(
    x: np.ndarray,
    sample: np.ndarray,
    inv_g: float,
    order: int,
    lo: np.ndarray,
    hi: np.ndarray,
) -> np.ndarray | None:
    """Compiled ``sum_i phi^(order)((x_j - X_i) * inv_g)``, or ``None``."""
    if not accelerated() or order not in (0, 1, 2, 3, 4):
        return None
    kernel = _get_jitted("gauss_deriv_sums")
    if kernel is None:  # pragma: no cover - accelerated() guarantees numba
        return None
    out = np.empty(x.shape, dtype=np.float64)
    kernel(
        np.ascontiguousarray(x),
        sample,
        float(inv_g),
        int(order),
        np.ascontiguousarray(lo, dtype=np.int64),
        np.ascontiguousarray(hi, dtype=np.int64),
        out,
    )
    return out
