"""Algorithm 1: the kernel selectivity estimator (paper §3.2).

The estimator integrates a kernel density estimate over the query
range (paper eq. 6):

.. math::

   \\hat\\sigma_K(a, b) = \\frac{1}{n} \\sum_{i=1}^{n}
       \\Big( C\\big(\\tfrac{b - X_i}{h}\\big)
            - C\\big(\\tfrac{a - X_i}{h}\\big) \\Big)

where ``C`` is the kernel CDF.  Algorithm 1 of the paper is the
observation that most terms are exactly 0 or 1: only samples within
one bandwidth of a query endpoint need the primitive evaluated.  With
the sample kept sorted this gives the ``O(log n + k)`` evaluation the
paper sketches (``k`` = samples near the endpoints).

The batch path is vectorized end to end: a whole query batch is
answered with two ``searchsorted`` calls plus one flattened
kernel-CDF evaluation over the per-endpoint windows, reduced by
segmented sums (``np.add.reduceat``) — no Python-level per-query
loop.  An exhaustive ``Theta(n)`` reference path
(:meth:`KernelSelectivityEstimator.selectivity_scan`) keeps the fast
path honest in tests.

This class applies **no boundary treatment** — its estimates are
biased near the domain edges, which is exactly the behaviour the
paper's Fig. 3 demonstrates.  Use :mod:`repro.core.kernel.boundary`
for the corrected estimators.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.summary import FrozenSummary

from repro.core.base import (
    DensityEstimator,
    InvalidSampleError,
    validate_query,
    validate_query_batch,
    validate_sample,
)
from repro.core.kernel import compiled
from repro.core.kernel import moments as moments_mod
from repro.core.kernel.functions import EPANECHNIKOV, KernelFunction, get_kernel
from repro.data.domain import Interval

#: Cap on the flattened (query x window) work array of one vectorized
#: pass.  Batches whose windows would exceed it are processed in query
#: chunks, bounding peak memory at ~32 MB per intermediate array while
#: staying fully vectorized inside each chunk.
MAX_FLAT_WINDOW = 4_194_304


def _validate_bandwidth(bandwidth: float) -> float:
    bandwidth = float(bandwidth)
    if not np.isfinite(bandwidth) or bandwidth <= 0:
        raise InvalidSampleError(f"bandwidth must be a positive finite number, got {bandwidth}")
    return bandwidth


#: ``pick`` broadcasts a per-query array onto the flattened window
#: layout; a window term maps ``(pick, sample_idx)`` to per-element
#: kernel contributions.
PickFn = Callable[[np.ndarray], np.ndarray]
WindowTerm = Callable[[PickFn, np.ndarray], np.ndarray]
#: Multi-term variant: ``prepare`` builds shared per-element state
#: (e.g. the scaled offsets and one kernel evaluation) and each term
#: maps that state to its per-element contributions.
PrepareFn = Callable[[PickFn, np.ndarray], object]
SharedTerm = Callable[[object], np.ndarray]


def segment_window_sums(lo: np.ndarray, hi: np.ndarray, term: WindowTerm) -> np.ndarray:
    """Per-window sums of a kernel term over sorted-sample windows.

    For each window ``j`` spanning sample indices ``[lo[j], hi[j])``,
    computes ``sum_i term(j, i)`` fully vectorized: the windows are
    flattened into one index array, ``term`` is evaluated once over
    the flat arrays, and the per-window sums come from a segmented
    reduction.  Windows larger in aggregate than
    :data:`MAX_FLAT_WINDOW` are processed in query chunks.

    Parameters
    ----------
    lo, hi:
        Window boundaries (``hi >= lo``), one pair per query/point.
    term:
        Callable ``term(pick, sample_idx) -> float array`` where
        ``sample_idx`` is the flat array of window sample indices and
        ``pick(arr)`` expands a per-window array to the flat layout
        (``pick(arr)[k]`` is ``arr`` at the window the ``k``-th
        flattened element belongs to).  The flat arrays ``term``
        receives (and ``pick`` returns) are fresh, so it may mutate
        them in place.
    """

    def prepare(pick: PickFn, sample_idx: np.ndarray) -> object:
        return term(pick, sample_idx)

    def identity(values: object) -> np.ndarray:
        return values  # type: ignore[return-value]

    return segment_window_multi_sums(lo, hi, prepare, [identity])[0]


def segment_window_multi_sums(
    lo: np.ndarray,
    hi: np.ndarray,
    prepare: PrepareFn,
    terms: "list[SharedTerm]",
) -> "list[np.ndarray]":
    """Per-window sums of several kernel terms sharing one evaluation.

    Generalizes :func:`segment_window_sums` to terms that share
    expensive per-element state — e.g. the Gaussian derivative stack,
    where one ``exp`` evaluation feeds every Hermite order.
    ``prepare(pick, sample_idx)`` is called once per chunk and its
    result is handed to each ``terms[k]``, whose output is segment-
    reduced into the ``k``-th returned array.  Terms must not mutate
    the shared state they receive.
    """
    lo = np.asarray(lo, dtype=np.intp)
    hi = np.asarray(hi, dtype=np.intp)
    counts = hi - lo
    out = [np.zeros(counts.shape, dtype=np.float64) for _ in terms]
    if counts.size == 0:
        return out
    cumulative = np.cumsum(counts)
    total = int(cumulative[-1])
    if total == 0:
        return out
    start = 0
    while start < counts.size:
        base = int(cumulative[start - 1]) if start else 0
        stop = int(np.searchsorted(cumulative, base + MAX_FLAT_WINDOW, side="right")) + 1
        stop = max(start + 1, min(stop, counts.size))
        chunk_counts = counts[start:stop]
        chunk_total = int(cumulative[stop - 1]) - base
        if chunk_total:
            # Exclusive prefix sums double as the segment boundaries for
            # the reduction and the flattening shift: element ``k`` of
            # window ``j`` lands at flat position ``prefix[j] + k``, so
            # one ``repeat`` of ``lo - prefix`` plus one ``arange``
            # yields every window's sample indices at once.
            prefix = np.concatenate(([0], np.cumsum(chunk_counts)[:-1]))
            sample_idx = np.arange(chunk_total) + np.repeat(
                lo[start:stop] - prefix, chunk_counts
            )

            def pick(
                arr: np.ndarray,
                _s: int = start,
                _e: int = stop,
                _c: np.ndarray = chunk_counts,
            ) -> np.ndarray:
                return np.repeat(arr[_s:_e], _c)

            shared = prepare(pick, sample_idx)
            nonempty = chunk_counts > 0
            for k, term in enumerate(terms):
                values = term(shared)
                out[k][start:stop][nonempty] = np.add.reduceat(values, prefix[nonempty])
        start = stop
    return out


class KernelSelectivityEstimator(DensityEstimator):
    """Kernel selectivity estimator without boundary treatment.

    Parameters
    ----------
    sample:
        Sample set the estimator is built from.
    bandwidth:
        The smoothing parameter ``h`` (see :mod:`repro.bandwidth` for
        selection rules).
    kernel:
        Kernel function or registry name; the paper uses the
        Epanechnikov kernel.
    domain:
        Optional attribute domain (validation, CDF origin).
    """

    def __init__(
        self,
        sample: np.ndarray,
        bandwidth: float,
        kernel: "KernelFunction | str" = EPANECHNIKOV,
        domain: Interval | None = None,
        *,
        use_moments: bool = True,
    ) -> None:
        self._sorted = np.sort(validate_sample(sample, domain))
        self._sorted.flags.writeable = False
        self._h = _validate_bandwidth(bandwidth)
        self._kernel = get_kernel(kernel)
        self._domain = domain
        # Normalizing count: equals the stored sample size here, but the
        # reflection estimator stores mirrored copies while normalizing
        # by the original n (the mirrored mass belongs to its source
        # sample, paper §3.2.1).
        self._norm = int(self._sorted.size)
        # Prefix-moment O(1) window sums (Epanechnikov only; eager so
        # the estimator stays frozen after build).  The precision gate
        # keeps the polynomial-expansion cancellation far below 1e-12;
        # ``use_moments=False`` pins the per-sample path — the hybrid's
        # reference bins use it so the fast and reference paths stay
        # numerically independent.
        self._moments: moments_mod.PrefixMoments | None = None
        if (
            use_moments
            and self._kernel.name == "epanechnikov"
            and self._sorted.size > 0
            and moments_mod.half_spread(self._sorted)
            <= moments_mod.MOMENT_MAX_RATIO * self._h
        ):
            self._moments = moments_mod.build_moments(self._sorted)

    @classmethod
    def from_summary(
        cls,
        summary: "FrozenSummary",
        bandwidth: float,
        kernel: "KernelFunction | str" = EPANECHNIKOV,
        *,
        use_moments: bool = True,
    ) -> "KernelSelectivityEstimator":
        """Build from a frozen column summary (see ``repro.core.summary``).

        The summary's expanded reservoir sample and declared domain
        feed the ordinary constructor, so the estimator is exactly the
        one a raw-array build over that sample would produce.  Works
        for the boundary subclasses too (``cls`` dispatch).
        """
        return cls(
            summary.sample, bandwidth, kernel=kernel, domain=summary.domain,
            use_moments=use_moments,
        )

    @property
    def sample_size(self) -> int:
        return self._norm

    @property
    def bandwidth(self) -> float:
        """The smoothing parameter ``h``."""
        return self._h

    @property
    def kernel(self) -> KernelFunction:
        """The kernel function ``K``."""
        return self._kernel

    @property
    def domain(self) -> Interval | None:
        """Attribute domain, if declared."""
        return self._domain

    @property
    def sorted_sample(self) -> np.ndarray:
        """The sorted sample (read-only view)."""
        return self._sorted

    def _cdf_sums(self, x: np.ndarray) -> np.ndarray:
        """``sum_i C((x_j - X_i) / h)`` for every point of flat ``x``.

        Samples more than one kernel reach below ``x`` contribute
        exactly 1 (counted via ``searchsorted``), samples above the
        reach contribute 0; only the window in between evaluates the
        kernel primitive — in O(1) per point through the prefix
        moments when available, else per sample (compiled layer when
        active, vectorized NumPy otherwise).
        """
        sample, h = self._sorted, self._h
        reach = h * self._kernel.support
        lo = np.searchsorted(sample, x - reach, side="left")
        hi = np.searchsorted(sample, x + reach, side="right")
        inv_h = 1.0 / h
        if self._moments is not None:
            return lo + moments_mod.epan_cdf_sums(self._moments, x, inv_h, lo, hi)
        if self._kernel.name == "epanechnikov":
            jitted = compiled.epan_cdf_window_sums(x, sample, inv_h, lo, hi)
            if jitted is not None:
                return lo + jitted

        def term(pick: PickFn, i: np.ndarray) -> np.ndarray:
            t = pick(x)
            t -= sample[i]
            t *= inv_h
            return self._kernel.cdf(t)

        return lo + segment_window_sums(lo, hi, term)

    def density(self, x: np.ndarray) -> np.ndarray:
        """Pointwise KDE ``(1 / nh) * sum K((x - X_i) / h)``, vectorized."""
        x = np.atleast_1d(np.asarray(x, dtype=np.float64))
        flat = np.ascontiguousarray(x.ravel())
        sample, h = self._sorted, self._h
        reach = h * self._kernel.support
        lo = np.searchsorted(sample, flat - reach, side="left")
        hi = np.searchsorted(sample, flat + reach, side="right")
        if self._moments is not None:
            sums = moments_mod.epan_pdf_sums(self._moments, flat, 1.0 / h, lo, hi)
        else:
            sums = segment_window_sums(
                lo, hi, lambda pick, i: self._kernel.pdf((pick(flat) - sample[i]) / h)
            )
        return (sums / (self._norm * h)).reshape(x.shape)

    def selectivity(self, a: float, b: float) -> float:
        a, b = validate_query(a, b)
        return float(self.selectivities(np.array([a]), np.array([b]))[0])

    def raw_selectivities(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Unclipped batch selectivities (may exit ``[0, 1]`` by fp noise).

        The building block :meth:`selectivities` clips; the hybrid
        estimator uses the raw values to renormalize per-bin mass.
        Endpoints must already be validated ``float64`` arrays.
        """
        flat_a = np.ascontiguousarray(a.ravel())
        flat_b = np.ascontiguousarray(b.ravel())
        totals = self._cdf_sums(flat_b) - self._cdf_sums(flat_a)
        return (totals / self._norm).reshape(a.shape)

    def selectivities(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorized Algorithm 1 over a batch of queries.

        Per query: samples fully below ``a - h`` contribute 0 to both
        CDF sums, samples fully below ``b - h`` and above ``a + h``
        contribute exactly 1, and only the samples near the endpoints
        evaluate the kernel primitive — all queries at once through
        segmented window sums.
        """
        a, b = validate_query_batch(a, b)
        return np.clip(self.raw_selectivities(a, b), 0.0, 1.0)

    def selectivity_scan(self, a: float, b: float) -> float:
        """Reference ``Theta(n)`` evaluation (the literal Algorithm 1 loop).

        Exists to cross-check the windowed fast path; prefer
        :meth:`selectivity`.
        """
        a, b = validate_query(a, b)
        h = self._h
        total = self._kernel.mass_between((a - self._sorted) / h, (b - self._sorted) / h).sum()
        return float(np.clip(total / self._norm, 0.0, 1.0))
