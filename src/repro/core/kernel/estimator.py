"""Algorithm 1: the kernel selectivity estimator (paper §3.2).

The estimator integrates a kernel density estimate over the query
range (paper eq. 6):

.. math::

   \\hat\\sigma_K(a, b) = \\frac{1}{n} \\sum_{i=1}^{n}
       \\Big( C\\big(\\tfrac{b - X_i}{h}\\big)
            - C\\big(\\tfrac{a - X_i}{h}\\big) \\Big)

where ``C`` is the kernel CDF.  Algorithm 1 of the paper is the
observation that most terms are exactly 0 or 1: only samples within
one bandwidth of a query endpoint need the primitive evaluated.  With
the sample kept sorted this gives the ``O(log n + k)`` evaluation the
paper sketches (``k`` = samples near the endpoints), implemented here
with ``searchsorted`` windows; an exhaustive ``Theta(n)`` reference
path (:meth:`KernelSelectivityEstimator.selectivity_scan`) keeps the
fast path honest in tests.

This class applies **no boundary treatment** — its estimates are
biased near the domain edges, which is exactly the behaviour the
paper's Fig. 3 demonstrates.  Use :mod:`repro.core.kernel.boundary`
for the corrected estimators.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import (
    DensityEstimator,
    InvalidSampleError,
    validate_query,
    validate_sample,
)
from repro.core.kernel.functions import EPANECHNIKOV, KernelFunction, get_kernel
from repro.data.domain import Interval


def _validate_bandwidth(bandwidth: float) -> float:
    bandwidth = float(bandwidth)
    if not np.isfinite(bandwidth) or bandwidth <= 0:
        raise InvalidSampleError(f"bandwidth must be a positive finite number, got {bandwidth}")
    return bandwidth


class KernelSelectivityEstimator(DensityEstimator):
    """Kernel selectivity estimator without boundary treatment.

    Parameters
    ----------
    sample:
        Sample set the estimator is built from.
    bandwidth:
        The smoothing parameter ``h`` (see :mod:`repro.bandwidth` for
        selection rules).
    kernel:
        Kernel function or registry name; the paper uses the
        Epanechnikov kernel.
    domain:
        Optional attribute domain (validation, CDF origin).
    """

    def __init__(
        self,
        sample: np.ndarray,
        bandwidth: float,
        kernel: "KernelFunction | str" = EPANECHNIKOV,
        domain: Interval | None = None,
    ) -> None:
        self._sorted = np.sort(validate_sample(sample, domain))
        self._sorted.flags.writeable = False
        self._h = _validate_bandwidth(bandwidth)
        self._kernel = get_kernel(kernel)
        self._domain = domain
        # Normalizing count: equals the stored sample size here, but the
        # reflection estimator stores mirrored copies while normalizing
        # by the original n (the mirrored mass belongs to its source
        # sample, paper §3.2.1).
        self._norm = int(self._sorted.size)

    @property
    def sample_size(self) -> int:
        return self._norm

    @property
    def bandwidth(self) -> float:
        """The smoothing parameter ``h``."""
        return self._h

    @property
    def kernel(self) -> KernelFunction:
        """The kernel function ``K``."""
        return self._kernel

    @property
    def domain(self) -> Interval | None:
        """Attribute domain, if declared."""
        return self._domain

    @property
    def sorted_sample(self) -> np.ndarray:
        """The sorted sample (read-only view)."""
        return self._sorted

    def density(self, x: np.ndarray) -> np.ndarray:
        """Pointwise KDE ``(1 / nh) * sum K((x - X_i) / h)``."""
        x = np.atleast_1d(np.asarray(x, dtype=np.float64))
        reach = self._h * self._kernel.support
        out = np.empty(x.shape, dtype=np.float64)
        flat_x, flat_out = x.ravel(), out.ravel()
        for j, point in enumerate(flat_x):
            lo = np.searchsorted(self._sorted, point - reach, side="left")
            hi = np.searchsorted(self._sorted, point + reach, side="right")
            window = self._sorted[lo:hi]
            flat_out[j] = self._kernel.pdf((point - window) / self._h).sum()
        return out / (self._norm * self._h)

    def selectivity(self, a: float, b: float) -> float:
        a, b = validate_query(a, b)
        return float(self.selectivities(np.array([a]), np.array([b]))[0])

    def selectivities(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorized Algorithm 1 over a batch of queries.

        Per query: samples fully below/above the reach window
        contribute 0; samples fully inside ``[a + h, b - h]``
        contribute 1; only the ``k`` samples near the endpoints hit the
        kernel primitive.
        """
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if a.shape != b.shape:
            raise InvalidSampleError(f"endpoint arrays differ in shape: {a.shape} vs {b.shape}")
        sample = self._sorted
        n = self._norm
        h = self._h
        reach = h * self._kernel.support

        out = np.empty(a.shape, dtype=np.float64)
        flat_a, flat_b, flat_out = a.ravel(), b.ravel(), out.ravel()
        # Window boundaries for every query at once.
        lo_all = np.searchsorted(sample, flat_a - reach, side="left")
        hi_all = np.searchsorted(sample, flat_b + reach, side="right")
        full_lo = np.searchsorted(sample, flat_a + reach, side="right")
        full_hi = np.searchsorted(sample, flat_b - reach, side="left")
        for j in range(flat_a.size):
            qa, qb = flat_a[j], flat_b[j]
            if qa > qb:
                raise InvalidSampleError(f"query range is empty: a={qa} > b={qb}")
            lo, hi = lo_all[j], hi_all[j]
            if qb - qa >= 2.0 * reach:
                # Disjoint endpoint zones: count the fully-covered
                # samples, evaluate primitives only near the endpoints.
                flo, fhi = full_lo[j], full_hi[j]
                total = float(fhi - flo)
                left = sample[lo:flo]
                right = sample[fhi:hi]
                if left.size:
                    total += self._kernel.mass_between((qa - left) / h, (qb - left) / h).sum()
                if right.size:
                    total += self._kernel.mass_between((qa - right) / h, (qb - right) / h).sum()
            else:
                window = sample[lo:hi]
                total = float(
                    self._kernel.mass_between((qa - window) / h, (qb - window) / h).sum()
                )
            flat_out[j] = total / n
        return np.clip(out, 0.0, 1.0)

    def selectivity_scan(self, a: float, b: float) -> float:
        """Reference ``Theta(n)`` evaluation (the literal Algorithm 1 loop).

        Exists to cross-check the windowed fast path; prefer
        :meth:`selectivity`.
        """
        a, b = validate_query(a, b)
        h = self._h
        total = self._kernel.mass_between((a - self._sorted) / h, (b - self._sorted) / h).sum()
        return float(np.clip(total / self._norm, 0.0, 1.0))
