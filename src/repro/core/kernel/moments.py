"""Prefix-moment evaluation of Epanechnikov window sums in O(1)/window.

The windowed fast path of :mod:`repro.core.kernel.estimator` still
touches every sample within one bandwidth of a query endpoint.  For
the smooth-bandwidth regimes the paper's protocol lands in (normal
scale or plug-in bandwidths on n = 2,000 samples), those windows cover
a large fraction of the sample, so "only the window" is still O(n)
per query.  This module removes the per-sample work entirely for the
Epanechnikov kernel: its CDF is the cubic

.. math::

   C(t) = \\tfrac12 + \\tfrac34 t - \\tfrac14 t^3, \\qquad |t| \\le 1

so the window sum ``sum_i C((x - X_i) / h)`` expands in power sums of
the samples,

.. math::

   \\sum_i (x - X_i)^3 = N x^3 - 3 x^2 S_1 + 3 x S_2 - S_3,
   \\qquad S_p = \\sum_i X_i^p,

and every ``S_p`` over a contiguous window of the sorted sample is one
subtraction of precomputed prefix sums.  A query batch then costs two
``searchsorted`` calls plus O(1) arithmetic per query — independent of
the window width.  The same trick gives the quadratic PDF sums for
pointwise density evaluation.

Cancellation control
--------------------
The expansion subtracts terms of magnitude ``~(spread / h)^3`` times
the final answer, so three defenses bound the rounding error: samples
are centered per segment (halving the worst-case power magnitude),
the prefix sums are built with a vectorized compensated cumulative
sum (each prefix entry is accurate to ~machine epsilon of its own
value, instead of accumulating ``O(n)`` rounding), and the path is
only used when ``half-spread / h`` is modest
(:data:`MOMENT_MAX_RATIO`); beyond the cutoff the windows are narrow
and the per-sample path is both cheap and exact.
``tests/test_hybrid_flat.py`` property-checks the 1e-12 agreement
with the per-sample reference across regimes.

Segments generalize the single-sample case: the flat hybrid keeps one
concatenated sorted sample with per-bin offsets, and each bin gets its
own zero-based prefix run (one padding slot per bin), so window sums
never mix bins and carry no cross-bin rounding noise.
"""

from __future__ import annotations

import dataclasses

import numpy as np

#: Largest ``half-spread / bandwidth`` ratio the moment path accepts.
#: Evaluating the cubic bracket rounds at magnitude ``n * ratio^3``
#: relative to the O(n) answer, so the cutoff keeps normalized
#: selectivities well below the 1e-12 property-test tolerance
#: (~1e-13 at the cutoff for n = 2,000); wider ratios mean the
#: bandwidth is small relative to the segment, where the per-sample
#: windowed path is cheap anyway.
MOMENT_MAX_RATIO = 8.0


def compensated_cumsum(values: np.ndarray) -> np.ndarray:
    """Cumulative sum with first-order error compensation, vectorized.

    ``np.cumsum`` accumulates sequentially, so entry ``i`` carries
    ``O(i)`` rounding — fatal for prefix-sum *differences* whose true
    magnitude is far below the prefix magnitude.  Each step's exact
    rounding error is recovered with the TwoSum identity (all
    vectorized) and folded back in, making every entry accurate to
    ~machine epsilon of its own value.
    """
    sums = np.cumsum(values)
    previous = np.empty_like(sums)
    previous[0] = 0.0
    previous[1:] = sums[:-1]
    # TwoSum: sums = fl(previous + values); recover the exact error.
    virtual = sums - previous
    errors = (previous - (sums - virtual)) + (values - virtual)
    return sums + np.cumsum(errors)


@dataclasses.dataclass(frozen=True)
class PrefixMoments:
    """Per-segment prefix power sums of a sorted sample.

    ``offsets`` splits the sorted sample into segments (bins); sample
    index ``i`` of segment ``k`` maps to padded index ``i + k``, and
    each segment's run starts at an explicit zero, so the power sum
    over window ``[lo, hi)`` inside segment ``k`` is
    ``p[hi + k] - p[lo + k]`` with no contribution from other
    segments.  Samples are centered at ``center[k]`` before the powers
    are accumulated.
    """

    offsets: np.ndarray
    center: np.ndarray
    p1: np.ndarray
    p2: np.ndarray
    p3: np.ndarray


def build_moments(
    sorted_values: np.ndarray,
    offsets: np.ndarray | None = None,
    centers: np.ndarray | None = None,
) -> PrefixMoments:
    """Prefix moments of ``sorted_values`` split at ``offsets``.

    Parameters
    ----------
    sorted_values:
        The sorted (float64) sample.
    offsets:
        Segment boundaries ``[0, ..., n]``; default one segment.
    centers:
        Per-segment centering constants; default each segment's
        midrange (halves the worst-case power magnitude).
    """
    values = np.ascontiguousarray(sorted_values, dtype=np.float64)
    if offsets is None:
        offsets = np.array([0, values.size], dtype=np.intp)
    else:
        offsets = np.asarray(offsets, dtype=np.intp)
    segments = offsets.size - 1
    if centers is None:
        mids = np.empty(segments, dtype=np.float64)
        for k in range(segments):
            lo, hi = int(offsets[k]), int(offsets[k + 1])
            if hi > lo:
                mids[k] = 0.5 * (values[lo] + values[hi - 1])
            else:
                mids[k] = 0.0
        centers = mids
    else:
        centers = np.asarray(centers, dtype=np.float64)
    p1 = np.zeros(values.size + segments, dtype=np.float64)
    p2 = np.zeros(values.size + segments, dtype=np.float64)
    p3 = np.zeros(values.size + segments, dtype=np.float64)
    for k in range(segments):
        lo, hi = int(offsets[k]), int(offsets[k + 1])
        if hi <= lo:
            continue
        centered = values[lo:hi] - centers[k]
        base = lo + k + 1
        p1[base : base + (hi - lo)] = compensated_cumsum(centered)
        squared = centered * centered
        p2[base : base + (hi - lo)] = compensated_cumsum(squared)
        squared *= centered
        p3[base : base + (hi - lo)] = compensated_cumsum(squared)
    return PrefixMoments(offsets=offsets, center=centers, p1=p1, p2=p2, p3=p3)


def half_spread(sorted_values: np.ndarray) -> float:
    """Half the range of a sorted sample (0 when empty)."""
    if sorted_values.size == 0:
        return 0.0
    return 0.5 * float(sorted_values[-1] - sorted_values[0])


def epan_cdf_sums(
    moments: PrefixMoments,
    x: np.ndarray,
    inv_h: "float | np.ndarray",
    lo: np.ndarray,
    hi: np.ndarray,
    segment: np.ndarray | None = None,
) -> np.ndarray:
    """``sum_i C((x_j - X_i) * inv_h)`` over windows, O(1) each.

    ``lo``/``hi`` are window bounds into the sorted sample, already
    clamped to the segment given by ``segment`` (default: segment 0).
    Every sample inside the window must satisfy ``|t| <= 1`` —
    guaranteed when the windows come from ``searchsorted`` at
    ``x -/+ h`` — so the cubic branch of the CDF applies throughout.
    """
    seg = np.zeros(lo.shape, dtype=np.intp) if segment is None else segment
    pl = lo + seg
    ph = hi + seg
    count = (hi - lo).astype(np.float64)
    s1 = moments.p1[ph] - moments.p1[pl]
    s2 = moments.p2[ph] - moments.p2[pl]
    s3 = moments.p3[ph] - moments.p3[pl]
    xc = x - moments.center[seg]
    lin = (count * xc - s1) * inv_h
    cubic = (((count * xc - 3.0 * s1) * xc + 3.0 * s2) * xc - s3) * (
        inv_h * inv_h * inv_h
    )
    return 0.5 * count + 0.75 * lin - 0.25 * cubic


def epan_pdf_sums(
    moments: PrefixMoments,
    x: np.ndarray,
    inv_h: "float | np.ndarray",
    lo: np.ndarray,
    hi: np.ndarray,
    segment: np.ndarray | None = None,
) -> np.ndarray:
    """``sum_i K((x_j - X_i) * inv_h)`` over windows, O(1) each."""
    seg = np.zeros(lo.shape, dtype=np.intp) if segment is None else segment
    pl = lo + seg
    ph = hi + seg
    count = (hi - lo).astype(np.float64)
    s1 = moments.p1[ph] - moments.p1[pl]
    s2 = moments.p2[ph] - moments.p2[pl]
    xc = x - moments.center[seg]
    sum_t2 = ((count * xc - 2.0 * s1) * xc + s2) * (inv_h * inv_h)
    return 0.75 * (count - sum_t2)
