"""Pointwise kernel density and derivative estimation.

The smoothing-parameter machinery needs more than selectivities: the
direct plug-in rule (paper §4.3) estimates the roughness functionals
``R(f') = int f'(x)^2 dx`` and ``R(f'') = int f''(x)^2 dx``, and the
hybrid estimator's change-point detector (paper §3.3) scans the
estimated second derivative.  Both need smooth derivative estimates,
so this module evaluates Gaussian-kernel density derivatives (the
Gaussian has analytic derivatives of every order); selectivity
estimation itself stays on the Epanechnikov kernel as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import InvalidSampleError, validate_sample
from repro.core.kernel import compiled
from repro.core.kernel.estimator import (
    PickFn,
    _validate_bandwidth,
    segment_window_multi_sums,
)
from repro.data.domain import Interval

#: Hermite-polynomial factors of the standard normal density:
#: ``phi^(r)(t) = He_r(t) * phi(t)`` with signs folded in.  The
#: expressions use explicit products (no ``**``) in the exact order of
#: the compiled sources in :mod:`repro.core.kernel.compiled`, so the
#: NumPy and jitted paths round identically term for term.
_SQRT_2PI = np.sqrt(2.0 * np.pi)


def _phi(t: np.ndarray) -> np.ndarray:
    return np.exp(-0.5 * t * t) / _SQRT_2PI


def _phi_d1(t: np.ndarray) -> np.ndarray:
    return -t * _phi(t)


def _phi_d2(t: np.ndarray) -> np.ndarray:
    return (t * t - 1.0) * _phi(t)


def _phi_d3(t: np.ndarray) -> np.ndarray:
    return (3.0 * t - t * t * t) * _phi(t)


def _phi_d4(t: np.ndarray) -> np.ndarray:
    tt = t * t
    return (tt * tt - 6.0 * tt + 3.0) * _phi(t)


_DERIVATIVES = {0: _phi, 1: _phi_d1, 2: _phi_d2, 3: _phi_d3, 4: _phi_d4}


def _hermite_factor(t: np.ndarray, order: int) -> np.ndarray:
    """The polynomial factor of ``phi^(order)`` (without ``phi``)."""
    if order == 1:
        return -t
    if order == 2:
        return t * t - 1.0
    if order == 3:
        return 3.0 * t - t * t * t
    tt = t * t
    return tt * tt - 6.0 * tt + 3.0


#: Gaussian effective support in standard deviations for derivative
#: evaluation windows.
_REACH = 9.0

#: Minimum bandwidth-to-grid-step ratio for the linear-binned grid
#: path.  Binning error scales like ``(step / g)^2`` (and worsens with
#: derivative order), so the approximation is only taken when the
#: kernel is much wider than the grid spacing; below the ratio the
#: exact windowed path is used — and is cheap there, because narrow
#: kernels mean narrow windows.
BINNED_MIN_RATIO = 4.0


class KernelDensity:
    """Gaussian-kernel density with analytic derivatives.

    Parameters
    ----------
    sample:
        Sample set.
    bandwidth:
        Gaussian bandwidth ``g``.  Note Gaussian bandwidths are *not*
        interchangeable with Epanechnikov ones; see
        :func:`repro.bandwidth.scale.to_gaussian_bandwidth`.
    domain:
        Optional domain used to bound evaluation grids.
    """

    def __init__(
        self,
        sample: np.ndarray,
        bandwidth: float,
        domain: Interval | None = None,
    ) -> None:
        self._sorted = np.sort(validate_sample(sample, domain))
        self._g = _validate_bandwidth(bandwidth)
        self._domain = domain

    @property
    def bandwidth(self) -> float:
        """The Gaussian bandwidth ``g``."""
        return self._g

    @property
    def sample_size(self) -> int:
        """Number of samples."""
        return int(self._sorted.size)

    def derivative(
        self, x: np.ndarray, order: int = 0, *, binned: bool = False
    ) -> np.ndarray:
        """Evaluate the ``order``-th derivative of the KDE at ``x``.

        ``f_hat^(r)(x) = (1 / (n g^(r+1))) * sum phi^(r)((x - X_i) / g)``.
        Orders 0 through 4 are supported (4 is what the plug-in rule's
        stage functionals need).  ``binned=True`` permits the
        linear-binned grid approximation (see :meth:`derivatives`).
        """
        return self.derivatives(x, (order,), binned=binned)[order]

    def derivatives(
        self,
        x: np.ndarray,
        orders: "tuple[int, ...]",
        *,
        binned: bool = False,
    ) -> "dict[int, np.ndarray]":
        """Evaluate several KDE derivative orders at ``x`` in one pass.

        All orders share the windowing and — on the NumPy path — the
        single expensive ``exp`` evaluation (each Hermite factor is a
        cheap polynomial on top of the same ``phi``), so asking for
        ``(0, 1, 2)`` together costs barely more than one order.

        With ``binned=True`` and ``x`` a uniform grid whose spacing is
        much finer than the bandwidth (:data:`BINNED_MIN_RATIO`), the
        sums are evaluated by linear-binning the sample onto the grid
        and convolving with the kernel vector — ``O(n + G * K)`` with
        relative error ``O((step / g)^2)`` instead of ``O(G * n)``
        exact work.  When the gate does not apply the exact path runs,
        so ``binned=True`` callers degrade in speed, never accuracy.
        """
        unique: list[int] = []
        for order in orders:
            if order not in _DERIVATIVES:
                raise InvalidSampleError(
                    f"derivative order must be in {sorted(_DERIVATIVES)}, got {order}"
                )
            if order not in unique:
                unique.append(order)
        x = np.atleast_1d(np.asarray(x, dtype=np.float64))
        flat = np.ascontiguousarray(x.ravel())
        sums = self._binned_sums(flat, unique) if binned else None
        if sums is None:
            sums = self._windowed_sums(flat, unique)
        n, g = self._sorted.size, self._g
        return {
            order: (sums[order] / (n * g ** (order + 1))).reshape(x.shape)
            for order in unique
        }

    def _windowed_sums(
        self, flat: np.ndarray, orders: "list[int]"
    ) -> "dict[int, np.ndarray]":
        """Exact ``sum_i phi^(r)((x_j - X_i) / g)`` per point and order."""
        sample, g = self._sorted, self._g
        reach = _REACH * g
        inv_g = 1.0 / g
        lo = np.searchsorted(sample, flat - reach, side="left")
        hi = np.searchsorted(sample, flat + reach, side="right")
        jitted = {
            order: compiled.gaussian_derivative_window_sums(
                flat, sample, inv_g, order, lo, hi
            )
            for order in orders
        }
        if all(value is not None for value in jitted.values()):
            return jitted  # type: ignore[return-value]

        def prepare(pick: PickFn, i: np.ndarray) -> object:
            t = pick(flat)
            t -= sample[i]
            t *= inv_g
            phi = np.exp(-0.5 * t * t)
            phi /= _SQRT_2PI
            return t, phi

        def term(shared: object, _order: int = 0) -> np.ndarray:
            t, phi = shared  # type: ignore[misc]
            if _order == 0:
                return phi  # type: ignore[no-any-return]
            return _hermite_factor(t, _order) * phi

        terms = [lambda shared, _o=order: term(shared, _o) for order in orders]
        sums = segment_window_multi_sums(lo, hi, prepare, terms)
        return dict(zip(orders, sums))

    def _binned_sums(
        self, flat: np.ndarray, orders: "list[int]"
    ) -> "dict[int, np.ndarray] | None":
        """Linear-binned convolution sums on a uniform grid, or ``None``.

        The sample is spread onto the grid nodes (extended to cover
        samples outside the evaluation range) with linear weights, and
        each derivative order becomes one discrete convolution with the
        kernel vector ``phi^(r)(d * step / g)``.  Returns ``None`` when
        ``flat`` is not a uniform ascending grid or the spacing is too
        coarse relative to the bandwidth for the binning error bound.
        """
        if flat.size < 8:
            return None
        step = (float(flat[-1]) - float(flat[0])) / (flat.size - 1)
        if not np.isfinite(step) or step <= 0.0:
            return None
        if not np.allclose(np.diff(flat), step, rtol=1e-9, atol=1e-12 * step):
            return None
        g = self._g
        if g < BINNED_MIN_RATIO * step:
            return None
        sample = self._sorted
        pad_lo = max(0, int(np.ceil((float(flat[0]) - float(sample[0])) / step)))
        pad_hi = max(0, int(np.ceil((float(sample[-1]) - float(flat[-1])) / step)))
        padded = flat.size + pad_lo + pad_hi
        origin = float(flat[0]) - pad_lo * step
        position = (sample - origin) / step
        node = np.clip(np.floor(position).astype(np.intp), 0, padded - 2)
        frac = position - node
        weights = np.bincount(node, weights=1.0 - frac, minlength=padded)
        weights += np.bincount(node + 1, weights=frac, minlength=padded)
        half = min(int(np.ceil(_REACH * g / step)), padded - 1)
        t_kernel = np.arange(-half, half + 1, dtype=np.float64) * (step / g)
        sums: dict[int, np.ndarray] = {}
        for order in orders:
            kernel = _DERIVATIVES[order](t_kernel)
            # full convolution: value at padded node ``i`` is
            # ``sum_m weights[m] * phi^(r)((i - m) step / g)`` =
            # ``conv[i + half]``.
            conv = np.convolve(weights, kernel)
            sums[order] = conv[pad_lo + half : pad_lo + half + flat.size].copy()
        return sums

    def density(self, x: np.ndarray) -> np.ndarray:
        """The KDE itself (order-0 derivative)."""
        return self.derivative(x, order=0)

    def grid(self, points: int = 512, pad: float = 3.0) -> np.ndarray:
        """An evaluation grid covering the sample (or declared domain).

        The grid spans the domain when one was given, otherwise the
        sample range padded by ``pad`` bandwidths.
        """
        if points < 2:
            raise InvalidSampleError(f"grid needs at least 2 points, got {points}")
        if self._domain is not None:
            lo, hi = self._domain.low, self._domain.high
        else:
            lo = self._sorted[0] - pad * self._g
            hi = self._sorted[-1] + pad * self._g
        return np.linspace(lo, hi, points)

    def roughness(self, order: int, points: int = 512, *, binned: bool = True) -> float:
        """Estimate ``R(f^(order)) = int f^(order)(x)^2 dx`` on a grid.

        This is the plug-in estimate of the unknown functional in the
        AMISE-optimal formulas (paper eqs. 7 and 9): ``order=1`` feeds
        the histogram bin-width rule, ``order=2`` the kernel bandwidth
        rule.  The grid is uniform and plug-in stage bandwidths are
        wide, so the binned fast path applies by default; pass
        ``binned=False`` to force the exact evaluation.
        """
        grid = self.grid(points)
        values = self.derivative(grid, order=order, binned=binned)
        return float(np.trapezoid(values * values, grid))
