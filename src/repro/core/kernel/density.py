"""Pointwise kernel density and derivative estimation.

The smoothing-parameter machinery needs more than selectivities: the
direct plug-in rule (paper §4.3) estimates the roughness functionals
``R(f') = int f'(x)^2 dx`` and ``R(f'') = int f''(x)^2 dx``, and the
hybrid estimator's change-point detector (paper §3.3) scans the
estimated second derivative.  Both need smooth derivative estimates,
so this module evaluates Gaussian-kernel density derivatives (the
Gaussian has analytic derivatives of every order); selectivity
estimation itself stays on the Epanechnikov kernel as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import InvalidSampleError, validate_sample
from repro.core.kernel.estimator import _validate_bandwidth
from repro.data.domain import Interval

#: Hermite-polynomial factors of the standard normal density:
#: ``phi^(r)(t) = He_r(t) * phi(t)`` with signs folded in.
_SQRT_2PI = np.sqrt(2.0 * np.pi)


def _phi(t: np.ndarray) -> np.ndarray:
    return np.exp(-0.5 * t * t) / _SQRT_2PI


def _phi_d1(t: np.ndarray) -> np.ndarray:
    return -t * _phi(t)


def _phi_d2(t: np.ndarray) -> np.ndarray:
    return (t * t - 1.0) * _phi(t)


def _phi_d3(t: np.ndarray) -> np.ndarray:
    return (3.0 * t - t**3) * _phi(t)


def _phi_d4(t: np.ndarray) -> np.ndarray:
    return (t**4 - 6.0 * t * t + 3.0) * _phi(t)


_DERIVATIVES = {0: _phi, 1: _phi_d1, 2: _phi_d2, 3: _phi_d3, 4: _phi_d4}

#: Gaussian effective support in standard deviations for derivative
#: evaluation windows.
_REACH = 9.0


class KernelDensity:
    """Gaussian-kernel density with analytic derivatives.

    Parameters
    ----------
    sample:
        Sample set.
    bandwidth:
        Gaussian bandwidth ``g``.  Note Gaussian bandwidths are *not*
        interchangeable with Epanechnikov ones; see
        :func:`repro.bandwidth.scale.to_gaussian_bandwidth`.
    domain:
        Optional domain used to bound evaluation grids.
    """

    def __init__(
        self,
        sample: np.ndarray,
        bandwidth: float,
        domain: Interval | None = None,
    ) -> None:
        self._sorted = np.sort(validate_sample(sample, domain))
        self._g = _validate_bandwidth(bandwidth)
        self._domain = domain

    @property
    def bandwidth(self) -> float:
        """The Gaussian bandwidth ``g``."""
        return self._g

    @property
    def sample_size(self) -> int:
        """Number of samples."""
        return int(self._sorted.size)

    def derivative(self, x: np.ndarray, order: int = 0) -> np.ndarray:
        """Evaluate the ``order``-th derivative of the KDE at ``x``.

        ``f_hat^(r)(x) = (1 / (n g^(r+1))) * sum phi^(r)((x - X_i) / g)``.
        Orders 0 through 4 are supported (4 is what the plug-in rule's
        stage functionals need).
        """
        if order not in _DERIVATIVES:
            raise InvalidSampleError(
                f"derivative order must be in {sorted(_DERIVATIVES)}, got {order}"
            )
        kernel_derivative = _DERIVATIVES[order]
        x = np.atleast_1d(np.asarray(x, dtype=np.float64))
        g = self._g
        reach = _REACH * g
        out = np.empty(x.shape, dtype=np.float64)
        flat_x, flat_out = x.ravel(), out.ravel()
        for j, point in enumerate(flat_x):
            lo = np.searchsorted(self._sorted, point - reach, side="left")
            hi = np.searchsorted(self._sorted, point + reach, side="right")
            window = self._sorted[lo:hi]
            flat_out[j] = kernel_derivative((point - window) / g).sum()
        return out / (self._sorted.size * g ** (order + 1))

    def density(self, x: np.ndarray) -> np.ndarray:
        """The KDE itself (order-0 derivative)."""
        return self.derivative(x, order=0)

    def grid(self, points: int = 512, pad: float = 3.0) -> np.ndarray:
        """An evaluation grid covering the sample (or declared domain).

        The grid spans the domain when one was given, otherwise the
        sample range padded by ``pad`` bandwidths.
        """
        if points < 2:
            raise InvalidSampleError(f"grid needs at least 2 points, got {points}")
        if self._domain is not None:
            lo, hi = self._domain.low, self._domain.high
        else:
            lo = self._sorted[0] - pad * self._g
            hi = self._sorted[-1] + pad * self._g
        return np.linspace(lo, hi, points)

    def roughness(self, order: int, points: int = 512) -> float:
        """Estimate ``R(f^(order)) = int f^(order)(x)^2 dx`` on a grid.

        This is the plug-in estimate of the unknown functional in the
        AMISE-optimal formulas (paper eqs. 7 and 9): ``order=1`` feeds
        the histogram bin-width rule, ``order=2`` the kernel bandwidth
        rule.
        """
        grid = self.grid(points)
        values = self.derivative(grid, order=order)
        return float(np.trapezoid(values * values, grid))
