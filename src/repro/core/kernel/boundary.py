"""Boundary treatments for kernel estimators (paper §3.2.1).

Kernel estimators leak probability mass across the domain boundaries:
for queries within one bandwidth of an edge the untreated estimator
underestimates badly (paper Fig. 3).  The paper compares two cures:

:class:`ReflectionKernelEstimator`
    Mirror the samples near each boundary back into the domain, so the
    leaked mass is folded back in.  The result *is* a density (it
    integrates to one over the domain) but is not consistent at the
    boundary.

:class:`BoundaryKernelEstimator`
    Replace the kernel near the boundary with the Simonoff–Dong family

    .. math::

       K^{(l)}(t, q) = \\frac{3 + 3 q^2 - 6 t^2}{(1 + q)^3}
                       \\cdot I_{[-1, q]}(t), \\qquad q = (x - l) / h

    whose support never crosses the boundary.  The result is
    consistent but not a density (the boundary kernels dip negative).

For selectivity estimation the boundary-kernel integral must be taken
over the *query* coordinate, along which ``q`` varies with ``x``.
Eliminating that dependence (as the paper prescribes) gives the exact
primitive, derived by substituting ``v = (x - l)/h``, ``w = (X_i - l)/h``:

.. math::

   P(v; w) = -3 \\ln(1 + v) - \\frac{6 + 12 w}{1 + v}
             + \\frac{3 w (2 + w)}{(1 + v)^2}

with per-sample contribution ``P(v_hi; w) - P(max(v_lo, w - 1); w)``.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import InvalidSampleError, validate_query, validate_sample
from repro.core.kernel.estimator import KernelSelectivityEstimator, _validate_bandwidth
from repro.core.kernel.functions import EPANECHNIKOV, KernelFunction, get_kernel
from repro.data.domain import Interval


class ReflectionKernelEstimator(KernelSelectivityEstimator):
    """Kernel estimator with the reflection boundary treatment.

    Samples within one kernel reach of a boundary are mirrored at that
    boundary ("these samples are considered twice", paper §3.2.1); the
    normalization stays at the original ``n``.  Queries are clipped to
    the domain, outside which the estimator assigns no mass.
    """

    def __init__(
        self,
        sample: np.ndarray,
        bandwidth: float,
        domain: Interval,
        kernel: "KernelFunction | str" = EPANECHNIKOV,
    ) -> None:
        values = validate_sample(sample, domain)
        h = _validate_bandwidth(bandwidth)
        resolved = get_kernel(kernel)
        reach = h * resolved.support
        left = values[values < domain.low + reach]
        right = values[values > domain.high - reach]
        augmented = np.concatenate(
            [values, 2.0 * domain.low - left, 2.0 * domain.high - right]
        )
        super().__init__(augmented, h, resolved, domain=None)
        self._domain = domain
        self._norm = int(values.size)

    def selectivities(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        domain = self._domain
        a = np.clip(np.asarray(a, dtype=np.float64), domain.low, domain.high)
        b = np.clip(np.asarray(b, dtype=np.float64), domain.low, domain.high)
        return super().selectivities(a, b)

    def density(self, x: np.ndarray) -> np.ndarray:
        """Reflected KDE; zero outside the domain."""
        x = np.atleast_1d(np.asarray(x, dtype=np.float64))
        inside = (x >= self._domain.low) & (x <= self._domain.high)
        return np.where(inside, super().density(x), 0.0)


def _left_primitive(v: np.ndarray, w: np.ndarray) -> np.ndarray:
    """The boundary-kernel selectivity primitive ``P(v; w)`` (module doc)."""
    s = 1.0 + v
    return -3.0 * np.log(s) - (6.0 + 12.0 * w) / s + 3.0 * w * (2.0 + w) / (s * s)


def _left_region_mass(
    v_lo: float, v_hi: float, w: np.ndarray
) -> np.ndarray:
    """Per-sample boundary-kernel mass over ``v in [v_lo, v_hi]``.

    ``v`` and ``w`` are the query position and sample position in
    boundary units (distance from the boundary divided by ``h``).
    Samples only contribute where the kernel support ``t >= -1`` holds,
    i.e. for ``v >= w - 1``.
    """
    start = np.maximum(v_lo, w - 1.0)
    active = start < v_hi
    start = np.where(active, start, v_hi)
    return np.where(active, _left_primitive(v_hi, w) - _left_primitive(start, w), 0.0)


def boundary_kernel_pdf(t: np.ndarray, q: np.ndarray) -> np.ndarray:
    """The Simonoff–Dong left-boundary kernel ``K^(l)(t, q)``.

    Vectorized over ``t`` and ``q`` (broadcast together).  Values can
    be negative near ``t = -1`` — the price of consistency at the
    boundary.
    """
    t = np.asarray(t, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    inside = (t >= -1.0) & (t <= q)
    value = (3.0 + 3.0 * q * q - 6.0 * t * t) / (1.0 + q) ** 3
    return np.where(inside, value, 0.0)


class BoundaryKernelEstimator(KernelSelectivityEstimator):
    """Kernel estimator using Simonoff–Dong boundary kernels.

    Within one bandwidth of each domain edge the Epanechnikov kernel
    is replaced by the boundary kernel whose shape varies with the
    distance ``q`` to the edge; in the interior the ordinary kernel
    applies.  Selectivities are assembled from the exact primitives of
    the three regions, so no numerical integration is involved.

    Only the Epanechnikov kernel is supported — the Simonoff–Dong
    family is constructed for it (paper §3.2.1).
    """

    def __init__(
        self,
        sample: np.ndarray,
        bandwidth: float,
        domain: Interval,
        kernel: "KernelFunction | str" = EPANECHNIKOV,
    ) -> None:
        resolved = get_kernel(kernel)
        if resolved.name != "epanechnikov":
            raise InvalidSampleError(
                "boundary kernels are derived for the Epanechnikov kernel; "
                f"got {resolved.name!r} (use the reflection treatment instead)"
            )
        h = _validate_bandwidth(bandwidth)
        if 2.0 * h > domain.width:
            raise InvalidSampleError(
                f"bandwidth {h} is too large for boundary treatment on a domain of "
                f"width {domain.width}: the two boundary regions would overlap"
            )
        super().__init__(sample, h, resolved, domain)

    def selectivities(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        domain = self._domain
        a = np.clip(np.asarray(a, dtype=np.float64), domain.low, domain.high)
        b = np.clip(np.asarray(b, dtype=np.float64), domain.low, domain.high)
        out = np.empty(np.broadcast(a, b).shape, dtype=np.float64)
        flat_a, flat_b, flat_out = np.ravel(a), np.ravel(b), out.ravel()
        # Fast path: queries entirely inside the interior region use
        # the ordinary kernel everywhere, so the parent's vectorized
        # evaluation applies as-is.  With workload-typical query sizes
        # only a small minority touches a boundary region.
        h = self._h
        interior = (flat_a >= domain.low + h) & (flat_b <= domain.high - h)
        if np.any(interior):
            flat_out[interior] = super().selectivities(
                flat_a[interior], flat_b[interior]
            )
        for j in np.flatnonzero(~interior):
            flat_out[j] = self._one_query(flat_a[j], flat_b[j])
        return np.clip(out, 0.0, 1.0)

    def selectivity(self, a: float, b: float) -> float:
        a, b = validate_query(a, b)
        return float(self.selectivities(np.array([a]), np.array([b]))[0])

    def _one_query(self, a: float, b: float) -> float:
        domain = self._domain
        h = self._h
        left_edge = domain.low + h
        right_edge = domain.high - h
        total = 0.0
        # Left boundary region [low, low + h).
        lo, hi = a, min(b, left_edge)
        if lo < hi:
            total += self._left_mass(lo, hi)
        # Interior region [low + h, high - h]: ordinary kernel.
        lo, hi = max(a, left_edge), min(b, right_edge)
        if lo < hi:
            total += float(super().selectivities(np.array([lo]), np.array([hi]))[0])
        # Right boundary region (high - h, high]: mirror of the left.
        lo, hi = max(a, right_edge), b
        if lo < hi:
            total += self._right_mass(lo, hi)
        return total

    def _left_mass(self, a: float, b: float) -> float:
        """Boundary-kernel mass of ``[a, b]`` inside the left region."""
        domain = self._domain
        h = self._h
        v_lo = (a - domain.low) / h
        v_hi = (b - domain.low) / h
        # Contributing samples: X < b + h  <=>  w < v_hi + 1.
        cutoff = domain.low + (v_hi + 1.0) * h
        hi_idx = np.searchsorted(self._sorted, cutoff, side="left")
        w = (self._sorted[:hi_idx] - domain.low) / h
        return float(_left_region_mass(v_lo, v_hi, w).sum()) / self._norm

    def _right_mass(self, a: float, b: float) -> float:
        """Boundary-kernel mass of ``[a, b]`` inside the right region."""
        domain = self._domain
        h = self._h
        # Mirror the coordinate system: x' = high - x.
        v_lo = (domain.high - b) / h
        v_hi = (domain.high - a) / h
        cutoff = domain.high - (v_hi + 1.0) * h
        lo_idx = np.searchsorted(self._sorted, cutoff, side="right")
        w = (domain.high - self._sorted[lo_idx:]) / h
        return float(_left_region_mass(v_lo, v_hi, w).sum()) / self._norm

    def density(self, x: np.ndarray) -> np.ndarray:
        """Pointwise estimate with the region-appropriate kernel."""
        x = np.atleast_1d(np.asarray(x, dtype=np.float64))
        domain = self._domain
        h = self._h
        out = np.zeros(x.shape, dtype=np.float64)
        flat_x, flat_out = x.ravel(), out.ravel()
        interior = super().density(x).ravel()
        for j, point in enumerate(flat_x):
            if point < domain.low or point > domain.high:
                flat_out[j] = 0.0
            elif point < domain.low + h:
                q = (point - domain.low) / h
                t = (point - self._sorted) / h
                flat_out[j] = boundary_kernel_pdf(t, q).sum() / (self._norm * h)
            elif point > domain.high - h:
                q = (domain.high - point) / h
                t = (self._sorted - point) / h
                flat_out[j] = boundary_kernel_pdf(t, q).sum() / (self._norm * h)
            else:
                flat_out[j] = interior[j]
        return out


#: Registry of boundary treatments accepted by the factory.
BOUNDARY_TREATMENTS = ("none", "reflection", "kernel")


def make_kernel_estimator(
    sample: np.ndarray,
    bandwidth: float,
    domain: Interval | None = None,
    *,
    boundary: str = "none",
    kernel: "KernelFunction | str" = EPANECHNIKOV,
) -> KernelSelectivityEstimator:
    """Build a kernel estimator with the requested boundary treatment.

    Parameters
    ----------
    sample, bandwidth, domain, kernel:
        Passed through to the estimator.
    boundary:
        ``"none"`` (untreated), ``"reflection"`` or ``"kernel"``
        (Simonoff–Dong boundary kernels).  Both treatments require a
        domain.
    """
    if boundary not in BOUNDARY_TREATMENTS:
        raise ValueError(
            f"unknown boundary treatment {boundary!r}; expected one of {BOUNDARY_TREATMENTS}"
        )
    if boundary == "none":
        return KernelSelectivityEstimator(sample, bandwidth, kernel, domain)
    if domain is None:
        raise InvalidSampleError(f"boundary treatment {boundary!r} requires a domain")
    if boundary == "reflection":
        return ReflectionKernelEstimator(sample, bandwidth, domain, kernel)
    return BoundaryKernelEstimator(sample, bandwidth, domain, kernel)
