"""Boundary treatments for kernel estimators (paper §3.2.1).

Kernel estimators leak probability mass across the domain boundaries:
for queries within one bandwidth of an edge the untreated estimator
underestimates badly (paper Fig. 3).  The paper compares two cures:

:class:`ReflectionKernelEstimator`
    Mirror the samples near each boundary back into the domain, so the
    leaked mass is folded back in.  The result *is* a density (it
    integrates to one over the domain) but is not consistent at the
    boundary.

:class:`BoundaryKernelEstimator`
    Replace the kernel near the boundary with the Simonoff–Dong family

    .. math::

       K^{(l)}(t, q) = \\frac{3 + 3 q^2 - 6 t^2}{(1 + q)^3}
                       \\cdot I_{[-1, q]}(t), \\qquad q = (x - l) / h

    whose support never crosses the boundary.  The result is
    consistent but not a density (the boundary kernels dip negative).

For selectivity estimation the boundary-kernel integral must be taken
over the *query* coordinate, along which ``q`` varies with ``x``.
Eliminating that dependence (as the paper prescribes) gives the exact
primitive, derived by substituting ``v = (x - l)/h``, ``w = (X_i - l)/h``:

.. math::

   P(v; w) = -3 \\ln(1 + v) - \\frac{6 + 12 w}{1 + v}
             + \\frac{3 w (2 + w)}{(1 + v)^2}

with per-sample contribution ``P(v_hi; w) - P(max(v_lo, w - 1); w)``.

Every query path here is batch-first: a query batch decomposes into
its left-boundary, interior, and right-boundary segments, and each
region evaluates all its segments at once through the same segmented
window sums the interior fast path uses (no Python per-query loop).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import (
    InvalidSampleError,
    validate_query,
    validate_query_batch,
    validate_sample,
)
from repro.core.kernel.estimator import (
    KernelSelectivityEstimator,
    _validate_bandwidth,
    segment_window_sums,
)
from repro.core.kernel.functions import EPANECHNIKOV, KernelFunction, get_kernel
from repro.data.domain import Interval


class ReflectionKernelEstimator(KernelSelectivityEstimator):
    """Kernel estimator with the reflection boundary treatment.

    Samples within one kernel reach of a boundary are mirrored at that
    boundary ("these samples are considered twice", paper §3.2.1); the
    normalization stays at the original ``n``.  Queries are clipped to
    the domain, outside which the estimator assigns no mass.
    """

    def __init__(
        self,
        sample: np.ndarray,
        bandwidth: float,
        domain: Interval,
        kernel: "KernelFunction | str" = EPANECHNIKOV,
        *,
        use_moments: bool = True,
    ) -> None:
        values = validate_sample(sample, domain)
        h = _validate_bandwidth(bandwidth)
        resolved = get_kernel(kernel)
        reach = h * resolved.support
        left = values[values < domain.low + reach]
        right = values[values > domain.high - reach]
        augmented = np.concatenate(
            [values, 2.0 * domain.low - left, 2.0 * domain.high - right]
        )
        super().__init__(augmented, h, resolved, domain=None, use_moments=use_moments)
        self._domain = domain
        self._norm = int(values.size)

    def raw_selectivities(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        domain = self._domain
        a = np.clip(a, domain.low, domain.high)
        b = np.clip(b, domain.low, domain.high)
        return super().raw_selectivities(a, b)

    def selectivities(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a, b = validate_query_batch(a, b)
        return np.clip(self.raw_selectivities(a, b), 0.0, 1.0)

    def density(self, x: np.ndarray) -> np.ndarray:
        """Reflected KDE; zero outside the domain."""
        x = np.atleast_1d(np.asarray(x, dtype=np.float64))
        inside = (x >= self._domain.low) & (x <= self._domain.high)
        return np.where(inside, super().density(x), 0.0)


def _left_primitive(v: np.ndarray, w: np.ndarray) -> np.ndarray:
    """The boundary-kernel selectivity primitive ``P(v; w)`` (module doc)."""
    s = 1.0 + v
    return -3.0 * np.log(s) - (6.0 + 12.0 * w) / s + 3.0 * w * (2.0 + w) / (s * s)


def _left_region_mass(
    v_lo: np.ndarray, v_hi: np.ndarray, w: np.ndarray
) -> np.ndarray:
    """Per-sample boundary-kernel mass over ``v in [v_lo, v_hi]``.

    ``v`` and ``w`` are the query position and sample position in
    boundary units (distance from the boundary divided by ``h``).
    Samples only contribute where the kernel support ``t >= -1`` holds,
    i.e. for ``v >= w - 1``.
    """
    start = np.maximum(v_lo, w - 1.0)
    active = start < v_hi
    start = np.where(active, start, v_hi)
    return np.where(active, _left_primitive(v_hi, w) - _left_primitive(start, w), 0.0)


def boundary_kernel_pdf(t: np.ndarray, q: np.ndarray) -> np.ndarray:
    """The Simonoff–Dong left-boundary kernel ``K^(l)(t, q)``.

    Vectorized over ``t`` and ``q`` (broadcast together).  Values can
    be negative near ``t = -1`` — the price of consistency at the
    boundary.
    """
    t = np.asarray(t, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    inside = (t >= -1.0) & (t <= q)
    value = (3.0 + 3.0 * q * q - 6.0 * t * t) / (1.0 + q) ** 3
    return np.where(inside, value, 0.0)


class BoundaryKernelEstimator(KernelSelectivityEstimator):
    """Kernel estimator using Simonoff–Dong boundary kernels.

    Within one bandwidth of each domain edge the Epanechnikov kernel
    is replaced by the boundary kernel whose shape varies with the
    distance ``q`` to the edge; in the interior the ordinary kernel
    applies.  Selectivities are assembled from the exact primitives of
    the three regions, so no numerical integration is involved, and
    all three regions evaluate their whole query batch at once.

    Only the Epanechnikov kernel is supported — the Simonoff–Dong
    family is constructed for it (paper §3.2.1).
    """

    def __init__(
        self,
        sample: np.ndarray,
        bandwidth: float,
        domain: Interval,
        kernel: "KernelFunction | str" = EPANECHNIKOV,
        *,
        use_moments: bool = True,
    ) -> None:
        resolved = get_kernel(kernel)
        if resolved.name != "epanechnikov":
            raise InvalidSampleError(
                "boundary kernels are derived for the Epanechnikov kernel; "
                f"got {resolved.name!r} (use the reflection treatment instead)"
            )
        h = _validate_bandwidth(bandwidth)
        if 2.0 * h > domain.width:
            raise InvalidSampleError(
                f"bandwidth {h} is too large for boundary treatment on a domain of "
                f"width {domain.width}: the two boundary regions would overlap"
            )
        super().__init__(sample, h, resolved, domain, use_moments=use_moments)

    def raw_selectivities(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        domain, h = self._domain, self._h
        flat_a = np.clip(np.ascontiguousarray(a.ravel()), domain.low, domain.high)
        flat_b = np.clip(np.ascontiguousarray(b.ravel()), domain.low, domain.high)
        left_edge = domain.low + h
        right_edge = domain.high - h
        # Left boundary region [low, low + h): mass in boundary units.
        left = self._left_masses(
            (flat_a - domain.low) / h,
            (np.minimum(flat_b, left_edge) - domain.low) / h,
        )
        # Right boundary region (high - h, high]: mirror of the left.
        right = self._right_masses(
            (domain.high - flat_b) / h,
            (domain.high - np.maximum(flat_a, right_edge)) / h,
        )
        # Interior region: the ordinary kernel applies unchanged.
        lo = np.minimum(np.maximum(flat_a, left_edge), right_edge)
        hi = np.maximum(np.minimum(flat_b, right_edge), lo)
        interior = super().raw_selectivities(lo, hi)
        return (left + interior + right).reshape(a.shape)

    def selectivities(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a, b = validate_query_batch(a, b)
        return np.clip(self.raw_selectivities(a, b), 0.0, 1.0)

    def selectivity(self, a: float, b: float) -> float:
        a, b = validate_query(a, b)
        return float(self.selectivities(np.array([a]), np.array([b]))[0])

    def _left_masses(self, v_lo: np.ndarray, v_hi: np.ndarray) -> np.ndarray:
        """Batched left-region boundary-kernel mass of ``[v_lo, v_hi]``.

        Segment endpoints are in left-boundary units ``(x - low)/h``.
        Contributing samples (``w < v_hi + 1``) form a prefix of the
        sorted sample.  Zero-width segments — every query that does not
        touch the region — get empty windows, so interior-only batches
        pay one ``searchsorted`` call and nothing else.
        """
        domain, h = self._domain, self._h
        v_lo = np.minimum(v_lo, v_hi)
        cutoff = domain.low + (v_hi + 1.0) * h
        hi_idx = np.searchsorted(self._sorted, cutoff, side="left")
        hi_idx = np.where(v_hi > v_lo, hi_idx, 0)
        sample = self._sorted
        sums = segment_window_sums(
            np.zeros(hi_idx.shape, dtype=np.intp),
            hi_idx,
            lambda pick, i: _left_region_mass(
                pick(v_lo), pick(v_hi), (sample[i] - domain.low) / h
            ),
        )
        return sums / self._norm

    def _right_masses(self, v_lo: np.ndarray, v_hi: np.ndarray) -> np.ndarray:
        """Batched right-region mass; mirror image of :meth:`_left_masses`.

        Endpoints are in mirrored units ``(high - x)/h``; contributing
        samples form a *suffix* of the sorted sample.
        """
        domain, h = self._domain, self._h
        n = self._sorted.size
        v_lo = np.minimum(v_lo, v_hi)
        cutoff = domain.high - (v_hi + 1.0) * h
        lo_idx = np.searchsorted(self._sorted, cutoff, side="right")
        lo_idx = np.where(v_hi > v_lo, lo_idx, n)
        sample = self._sorted
        sums = segment_window_sums(
            lo_idx,
            np.full(lo_idx.shape, n, dtype=np.intp),
            lambda pick, i: _left_region_mass(
                pick(v_lo), pick(v_hi), (domain.high - sample[i]) / h
            ),
        )
        return sums / self._norm

    def density(self, x: np.ndarray) -> np.ndarray:
        """Pointwise estimate with the region-appropriate kernel."""
        x = np.atleast_1d(np.asarray(x, dtype=np.float64))
        domain = self._domain
        h = self._h
        flat = np.ascontiguousarray(x.ravel())
        interior = super().density(flat)
        out = np.where(
            (flat >= domain.low) & (flat <= domain.high), interior, 0.0
        )
        inside = (flat >= domain.low) & (flat <= domain.high)
        left = (flat < domain.low + h) & inside
        right = (flat > domain.high - h) & inside
        # Boundary-region points only see samples within 2h of their
        # edge (|t| <= 1 requires |x - X| <= h and x is within h of the
        # edge), so the outer product is over a small prefix/suffix.
        near_left = self._sorted[: np.searchsorted(self._sorted, domain.low + 2.0 * h, side="right")]
        near_right = self._sorted[np.searchsorted(self._sorted, domain.high - 2.0 * h, side="left") :]
        for mask, edge, sign, window in (
            (left, domain.low, 1.0, near_left),
            (right, domain.high, -1.0, near_right),
        ):
            if not np.any(mask):
                continue
            points = flat[mask]
            q = sign * (points - edge) / h
            t = sign * (points[:, None] - window[None, :]) / h
            out[mask] = boundary_kernel_pdf(t, q[:, None]).sum(axis=1) / (self._norm * h)
        return out.reshape(x.shape)


#: Registry of boundary treatments accepted by the factory.
BOUNDARY_TREATMENTS = ("none", "reflection", "kernel")


def make_kernel_estimator(
    sample: np.ndarray,
    bandwidth: float,
    domain: Interval | None = None,
    *,
    boundary: str = "none",
    kernel: "KernelFunction | str" = EPANECHNIKOV,
    use_moments: bool = True,
) -> KernelSelectivityEstimator:
    """Build a kernel estimator with the requested boundary treatment.

    Parameters
    ----------
    sample, bandwidth, domain, kernel:
        Passed through to the estimator.
    boundary:
        ``"none"`` (untreated), ``"reflection"`` or ``"kernel"``
        (Simonoff–Dong boundary kernels).  Both treatments require a
        domain.
    use_moments:
        Permit the prefix-moment O(1) window sums (Epanechnikov only;
        automatically gated by the precision ratio).  ``False`` pins
        the per-sample reference arithmetic.
    """
    if boundary not in BOUNDARY_TREATMENTS:
        raise ValueError(
            f"unknown boundary treatment {boundary!r}; expected one of {BOUNDARY_TREATMENTS}"
        )
    if boundary == "none":
        return KernelSelectivityEstimator(
            sample, bandwidth, kernel, domain, use_moments=use_moments
        )
    if domain is None:
        raise InvalidSampleError(f"boundary treatment {boundary!r} requires a domain")
    if boundary == "reflection":
        return ReflectionKernelEstimator(
            sample, bandwidth, domain, kernel, use_moments=use_moments
        )
    return BoundaryKernelEstimator(
        sample, bandwidth, domain, kernel, use_moments=use_moments
    )
