"""Mergeable, versioned column statistics for incremental ANALYZE.

The paper's estimators are build-once: every insert or delete
invalidates the whole model and the fingerprint-keyed statistics
cache.  This module provides the mutable substrate that breaks that
coupling.  A :class:`ColumnSummary` absorbs row batches in O(batch)
(``update`` / ``delete``), combines with summaries built over disjoint
partitions (``merge``), and at any point emits an immutable
:class:`FrozenSummary` (``freeze``) from which every estimator family
can be constructed — so the catalog refreshes statistics in O(delta)
instead of re-scanning O(n) rows.

Three mergeable components are maintained per column:

* a **distinct-value bottom-k reservoir** — the ``capacity`` distinct
  values with the smallest deterministic seeded hash, each with an
  exact multiplicity count.  Retention is a *global* condition (the
  hash ranks against every distinct value ever seen, independent of
  arrival order), which makes the reservoir exactly mergeable: for the
  same seed, ``merge(update(A), update(B))`` is byte-identical to
  ``update(A + B)`` in any split or merge order.
* a **bin-count/CDF sketch** — equal-width counts over the declared
  domain; merge is vector addition, delete is subtraction.
* **moment accumulators** — live row count, sum and sum of squares.

Determinism comes from hashing, not an RNG: each value's priority is a
splitmix64-style mix of its float64 bit pattern with the seed, so no
random state needs to be carried, split, or re-synchronized across
partitions (see DESIGN.md §seeding).  splitmix64's finalizer is a
bijection on 64-bit words, so distinct values get distinct priorities
and the bottom-k cut needs no tie-breaking.

Deletions are exact for values still tracked by the reservoir;
deletions of values that were evicted (only possible once the distinct
count exceeded ``capacity``) degrade gracefully — they adjust the
sketch and moments exactly and are tallied on the
``summary.delete.unaccounted`` counter so dashboards can see when a
summary's sample has drifted from the live multiset.

``freeze`` expands the reservoir back into a sorted sample array.  A
one-shot summary whose capacity covers every distinct value reproduces
the input multiset exactly, which is what keeps the raw-array
estimator path bit-identical (see :meth:`FrozenSummary.from_sample`).
"""

from __future__ import annotations

import dataclasses
import zlib

import numpy as np

from repro.core.base import InvalidSampleError, validate_sample
from repro.data.domain import Interval
from repro.telemetry.runtime import get_telemetry

__all__ = [
    "ColumnSummary",
    "FrozenSummary",
    "value_priorities",
    "DEFAULT_CAPACITY",
    "DEFAULT_GRID_BINS",
]

#: Default number of distinct values retained by the reservoir.
DEFAULT_CAPACITY = 2048

#: Default number of equal-width bins in the CDF sketch.
DEFAULT_GRID_BINS = 256

#: Expansion cap: ``freeze`` never materializes a sample larger than
#: this multiple of the reservoir capacity (duplicate-heavy columns
#: would otherwise expand back to O(n) values).
EXPANSION_FACTOR = 4

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def value_priorities(values: np.ndarray, seed: int) -> np.ndarray:
    """Deterministic 64-bit priority per float64 value.

    splitmix64-style finalizer over the value's bit pattern offset by
    the seed.  The mix is bijective for a fixed seed, so distinct
    values always receive distinct priorities; ``-0.0`` is canonicalized
    to ``0.0`` first so equal floats hash equally.
    """
    canonical = np.where(values == 0.0, 0.0, np.asarray(values, dtype=np.float64))
    bits = np.ascontiguousarray(canonical, dtype=np.float64).view(np.uint64)
    offset = np.uint64(((int(seed) & _MASK64) * _GOLDEN + _GOLDEN) & _MASK64)
    # uint64 wrap-around is the *point* of the mix (mod-2^64 arithmetic
    # produces a bijection, never NaN/inf), so the overflow warning is
    # suppressed rather than handled.
    with np.errstate(over="ignore"):
        z = bits + offset
        z = (z ^ (z >> np.uint64(30))) * _MIX1
        z = (z ^ (z >> np.uint64(27))) * _MIX2
        return z ^ (z >> np.uint64(31))


def _readonly(array: np.ndarray) -> np.ndarray:
    out = np.ascontiguousarray(array)
    if out is array:
        out = array.copy()
    out.flags.writeable = False
    return out


@dataclasses.dataclass(frozen=True, eq=False)
class FrozenSummary:
    """Immutable estimator inputs produced by :meth:`ColumnSummary.freeze`.

    Everything an estimator constructor needs — a sorted sample, the
    declared domain, the live row count, the CDF sketch and the first
    two moments — plus a content fingerprint for cache keys.  Frozen
    summaries never change; refreshing statistics means freezing a new
    one and swapping the reference (see ``repro.db.catalog``).
    """

    domain: Interval
    sample: np.ndarray
    row_count: int
    grid_edges: np.ndarray
    grid_counts: np.ndarray
    total: float
    total_sq: float
    seed: int
    version: int
    fingerprint: str
    unaccounted_deletes: int

    @property
    def mean(self) -> float:
        """Mean of the live rows (exact, from the moment accumulators)."""
        return self.total / self.row_count

    @property
    def variance(self) -> float:
        """Population variance of the live rows (exact)."""
        mean = self.mean
        return max(self.total_sq / self.row_count - mean * mean, 0.0)

    @property
    def grid_cdf(self) -> np.ndarray:
        """Empirical CDF at the grid edges (length ``bins + 1``)."""
        mass = float(self.grid_counts.sum())
        if mass <= 0.0:
            return np.zeros(self.grid_edges.size)
        return np.concatenate(([0.0], np.cumsum(self.grid_counts) / mass))

    @classmethod
    def from_sample(
        cls,
        sample: np.ndarray,
        domain: Interval,
        *,
        seed: int = 0,
        grid_bins: int = DEFAULT_GRID_BINS,
    ) -> "FrozenSummary":
        """Thin adapter: wrap a raw sample array as a frozen summary.

        The reservoir capacity is set to the sample size, so every
        distinct value is retained and the frozen sample is the input
        multiset, sorted — estimators built through this path are
        bit-identical to the historical raw-array constructors.
        """
        values = validate_sample(sample, domain)
        summary = ColumnSummary(
            domain, seed=seed, capacity=max(int(values.size), 1), grid_bins=grid_bins
        )
        summary.update(values)
        return summary.freeze()


class ColumnSummary:
    """Mutable, mergeable statistics over one metric column.

    Parameters
    ----------
    domain:
        Declared attribute domain; all ingested values must lie inside
        it (the grid sketch bins over it).
    seed:
        Hash seed for the reservoir priorities.  Summaries can only be
        merged when built with the same seed, capacity, grid and
        domain.
    capacity:
        Maximum number of *distinct* values retained by the reservoir.
    grid_bins:
        Number of equal-width bins in the CDF sketch.

    Not thread-safe: callers (the catalog's refresh path) serialize
    mutations and publish frozen snapshots to readers.
    """

    def __init__(
        self,
        domain: Interval,
        *,
        seed: int,
        capacity: int = DEFAULT_CAPACITY,
        grid_bins: int = DEFAULT_GRID_BINS,
    ) -> None:
        if capacity < 1:
            raise InvalidSampleError(f"reservoir capacity must be >= 1, got {capacity}")
        if grid_bins < 1:
            raise InvalidSampleError(f"grid must have >= 1 bin, got {grid_bins}")
        self._domain = domain
        self._seed = int(seed)
        self._capacity = int(capacity)
        self._grid_bins = int(grid_bins)
        self._edges = np.linspace(domain.low, domain.high, self._grid_bins + 1)
        self._grid = np.zeros(self._grid_bins, dtype=np.int64)
        self._count = 0
        self._total = 0.0
        self._total_sq = 0.0
        # Reservoir arrays, kept sorted by value and row-aligned.
        self._values = np.empty(0, dtype=np.float64)
        self._counts = np.empty(0, dtype=np.int64)
        self._prios = np.empty(0, dtype=np.uint64)
        self._unaccounted = 0
        self._version = 0

    # -- inspection ----------------------------------------------------

    @property
    def domain(self) -> Interval:
        """Declared attribute domain."""
        return self._domain

    @property
    def seed(self) -> int:
        """Reservoir hash seed."""
        return self._seed

    @property
    def capacity(self) -> int:
        """Maximum distinct values retained."""
        return self._capacity

    @property
    def grid_bins(self) -> int:
        """Number of sketch bins."""
        return self._grid_bins

    @property
    def row_count(self) -> int:
        """Live rows currently represented (inserts minus deletes)."""
        return self._count

    @property
    def version(self) -> int:
        """Monotone mutation counter (bumped by update/delete/merge)."""
        return self._version

    @property
    def distinct_tracked(self) -> int:
        """Distinct values currently held by the reservoir."""
        return int(self._values.size)

    @property
    def unaccounted_deletes(self) -> int:
        """Deleted rows whose value had been evicted from the reservoir."""
        return self._unaccounted

    def compatible_with(self, other: "ColumnSummary") -> bool:
        """Whether ``other`` can be merged into this summary."""
        return (
            self._seed == other._seed
            and self._capacity == other._capacity
            and self._grid_bins == other._grid_bins
            and self._domain == other._domain
        )

    # -- lifecycle -----------------------------------------------------

    def update(self, batch: np.ndarray) -> "ColumnSummary":
        """Absorb a batch of inserted values; returns ``self``."""
        values = self._validate(batch)
        if values.size == 0:
            return self
        self._count += int(values.size)
        self._total += float(values.sum())
        self._total_sq += float(np.square(values).sum())
        self._grid += self._bincount(values)
        unique, counts = np.unique(values, return_counts=True)
        self._absorb(unique, counts.astype(np.int64))
        self._truncate()
        self._version += 1
        self._emit("summary.update", values.size)
        return self

    def delete(self, batch: np.ndarray) -> "ColumnSummary":
        """Remove a batch of previously inserted values; returns ``self``.

        Values still tracked by the reservoir are decremented exactly.
        Values already evicted (possible only after the distinct count
        exceeded capacity) adjust the sketch and moments but leave the
        reservoir untouched; they are tallied as unaccounted so the
        staleness policy can force a full rebuild.
        """
        values = self._validate(batch)
        if values.size == 0:
            return self
        removed = min(int(values.size), self._count)
        self._count -= removed
        self._total -= float(values.sum())
        self._total_sq -= float(np.square(values).sum())
        self._grid = np.maximum(self._grid - self._bincount(values), 0)
        if self._count == 0:
            self._total = 0.0
            self._total_sq = 0.0
        unique, counts = np.unique(values, return_counts=True)
        position = np.searchsorted(self._values, unique)
        position = np.clip(position, 0, max(self._values.size - 1, 0))
        tracked = self._values.size > 0
        hit = (
            (self._values[position] == unique)
            if tracked
            else np.zeros(unique.size, dtype=bool)
        )
        misses = int(counts[~hit].sum()) if unique.size else 0
        if np.any(hit):
            index = position[hit]
            wanted = counts[hit]
            taken = np.minimum(self._counts[index], wanted)
            self._counts[index] -= taken
            misses += int((wanted - taken).sum())
            keep = self._counts > 0
            if not np.all(keep):
                self._values = self._values[keep]
                self._counts = self._counts[keep]
                self._prios = self._prios[keep]
        self._unaccounted += misses
        self._version += 1
        self._emit("summary.delete", values.size)
        if misses:
            self._emit("summary.delete.unaccounted", misses)
        return self

    def merge(self, other: "ColumnSummary") -> "ColumnSummary":
        """Pure merge: a new summary equivalent to ingesting both inputs.

        Both summaries must share seed, capacity, grid and domain.
        Because retention is the global bottom-k-by-hash condition,
        the result is byte-identical to a single summary that saw the
        concatenated input, in any split or merge order.
        """
        if not self.compatible_with(other):
            raise InvalidSampleError(
                "cannot merge summaries with different seed/capacity/grid/domain"
            )
        merged = ColumnSummary(
            self._domain,
            seed=self._seed,
            capacity=self._capacity,
            grid_bins=self._grid_bins,
        )
        merged._count = self._count + other._count
        merged._total = self._total + other._total
        merged._total_sq = self._total_sq + other._total_sq
        merged._grid = self._grid + other._grid
        merged._unaccounted = self._unaccounted + other._unaccounted
        values = np.concatenate([self._values, other._values])
        counts = np.concatenate([self._counts, other._counts])
        prios = np.concatenate([self._prios, other._prios])
        order = np.argsort(values, kind="stable")
        values, counts, prios = values[order], counts[order], prios[order]
        if values.size:
            boundary = np.ones(values.size, dtype=bool)
            boundary[1:] = values[1:] != values[:-1]
            group = np.cumsum(boundary) - 1
            merged._values = values[boundary]
            merged._prios = prios[boundary]
            merged._counts = np.bincount(group, weights=counts).astype(np.int64)
        merged._truncate()
        merged._version = max(self._version, other._version) + 1
        merged._emit("summary.merge", 1)
        return merged

    def freeze(self) -> FrozenSummary:
        """Emit an immutable snapshot usable as estimator input."""
        if self._count <= 0 or self._values.size == 0:
            raise InvalidSampleError("cannot freeze an empty summary")
        counts = self._counts
        total = int(counts.sum())
        cap = self._capacity * EXPANSION_FACTOR
        if total > cap:
            scaled = np.floor(counts * (cap / total)).astype(np.int64)
            counts = np.maximum(scaled, 1)
        sample = np.repeat(self._values, counts)
        digest = zlib.crc32(self._values.tobytes())
        digest = zlib.crc32(self._counts.tobytes(), digest)
        digest = zlib.crc32(self._grid.tobytes(), digest)
        self._emit("summary.freeze", 1)
        return FrozenSummary(
            domain=self._domain,
            sample=_readonly(sample),
            row_count=self._count,
            grid_edges=_readonly(self._edges),
            grid_counts=_readonly(self._grid),
            total=self._total,
            total_sq=self._total_sq,
            seed=self._seed,
            version=self._version,
            fingerprint=f"{self._count}-{self._version}-{digest:08x}",
            unaccounted_deletes=self._unaccounted,
        )

    def copy(self) -> "ColumnSummary":
        """Independent deep copy (used to stage atomic refreshes)."""
        out = ColumnSummary(
            self._domain,
            seed=self._seed,
            capacity=self._capacity,
            grid_bins=self._grid_bins,
        )
        out._grid = self._grid.copy()
        out._count = self._count
        out._total = self._total
        out._total_sq = self._total_sq
        out._values = self._values.copy()
        out._counts = self._counts.copy()
        out._prios = self._prios.copy()
        out._unaccounted = self._unaccounted
        out._version = self._version
        return out

    # -- internals -----------------------------------------------------

    def _validate(self, batch: np.ndarray) -> np.ndarray:
        values = np.asarray(batch, dtype=np.float64)
        if values.ndim != 1:
            raise InvalidSampleError(f"batch must be one-dimensional, got shape {values.shape}")
        if values.size == 0:
            return values
        return validate_sample(values, self._domain)

    def _bincount(self, values: np.ndarray) -> np.ndarray:
        index = np.searchsorted(self._edges, values, side="right") - 1
        index = np.clip(index, 0, self._grid_bins - 1)
        return np.bincount(index, minlength=self._grid_bins).astype(np.int64)

    def _absorb(self, unique: np.ndarray, counts: np.ndarray) -> None:
        if self._values.size == 0:
            self._values = unique.copy()
            self._counts = counts.copy()
            self._prios = value_priorities(unique, self._seed)
            return
        position = np.searchsorted(self._values, unique)
        position_clipped = np.clip(position, 0, self._values.size - 1)
        hit = self._values[position_clipped] == unique
        if np.any(hit):
            self._counts[position_clipped[hit]] += counts[hit]
        if np.any(~hit):
            fresh = unique[~hit]
            values = np.concatenate([self._values, fresh])
            new_counts = np.concatenate([self._counts, counts[~hit]])
            prios = np.concatenate([self._prios, value_priorities(fresh, self._seed)])
            order = np.argsort(values, kind="stable")
            self._values = values[order]
            self._counts = new_counts[order]
            self._prios = prios[order]

    def _truncate(self) -> None:
        if self._values.size <= self._capacity:
            return
        # Bottom-k by priority.  Priorities are unique per distinct
        # value (bijective mix), so the cut is deterministic.
        keep = np.argsort(self._prios, kind="stable")[: self._capacity]
        keep.sort()
        self._values = self._values[keep]
        self._counts = self._counts[keep]
        self._prios = self._prios[keep]

    def _emit(self, name: str, amount: float) -> None:
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.metrics.inc(name, float(amount))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ColumnSummary(rows={self._count}, distinct={self._values.size}, "
            f"capacity={self._capacity}, version={self._version})"
        )
