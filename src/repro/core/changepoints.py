"""Change-point detection via the estimated second derivative (paper §3.3).

The hybrid estimator partitions the domain at *change points* — points
where the true PDF changes considerably.  The paper detects them with
the second derivative of a (smooth) density estimate: the first change
point is the location of the maximum of ``|f''|``, and further points
are found recursively.  The rationale is that the kernel estimator's
asymptotic error is driven by ``R(f'')`` (paper §4.2), so removing the
maxima of the second derivative from any single bin's interior lowers
the achievable error inside every bin.

Three refinements make the textbook recipe usable in practice:

* **Boundary reflection.**  An untreated KDE rolls off to zero at the
  domain edges, which manufactures enormous phantom curvature there.
  Derivatives are therefore estimated on a boundary-reflected sample.
* **Noise floor.**  On smooth data ``f'' = 0`` and the estimated
  curvature is pure sampling noise.  The pointwise standard deviation
  of a Gaussian-KDE second derivative is
  ``sqrt(f(x) * R(phi'') / (n * g^5))``; only curvature several sigmas
  above it counts as structure.
* **Jump refinement.**  For a *jump* of the density the smoothed
  ``|f''|`` peaks at +-g around the jump (it is ``|phi'|`` of the
  smoothed step) while ``|f'|`` peaks exactly at it; each detected
  point is therefore refined to an interior peak of ``|f'|`` when one
  exists.  For a *kink* (slope change) ``|f''|`` is already centered
  and the refinement leaves it alone.

The greedy maxima-with-separation loop is exactly the paper's
recursive scheme: after each split the next global maximum over all
segment interiors is the next recursive maximum.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import InvalidSampleError, validate_sample
from repro.core.kernel.density import KernelDensity
from repro.data.domain import Interval

#: Roughness of the standard normal's second derivative,
#: ``R(phi'') = 3 / (8 sqrt(pi))`` — the constant in the curvature
#: noise floor.
_R_PHI2 = 3.0 / (8.0 * np.sqrt(np.pi))


def pilot_bandwidth(sample: np.ndarray, order: int = 2) -> float:
    """Generalized normal-scale pilot for derivative estimation.

    ``g = s * (4 / ((2 r + 1) n))^(1 / (2 r + 5))`` — Silverman's rule
    extended to the estimation of the ``r``-th density derivative.  It
    only needs to land in the right ballpark: the detector looks for
    the *locations* of second-derivative extremes, not their values.
    """
    from repro.bandwidth.scale import robust_scale

    values = np.asarray(sample, dtype=np.float64)
    n = values.size
    s = robust_scale(values)
    return s * (4.0 / ((2.0 * order + 1.0) * n)) ** (1.0 / (2.0 * order + 5.0))


def _reflected(sample: np.ndarray, domain: Interval, reach: float) -> np.ndarray:
    """Mirror boundary-adjacent samples so KDE derivatives see a flat
    continuation instead of a rolloff at the domain edges."""
    left = sample[sample < domain.low + reach]
    right = sample[sample > domain.high - reach]
    return np.concatenate([sample, 2.0 * domain.low - left, 2.0 * domain.high - right])


def detect_change_points(
    sample: np.ndarray,
    domain: Interval,
    *,
    max_points: int = 8,
    min_separation: float = 0.04,
    relative_threshold: float = 0.05,
    significance: float = 4.0,
    grid_points: int = 512,
    bandwidth: float | None = None,
) -> np.ndarray:
    """Find density change points inside the domain.

    Parameters
    ----------
    sample:
        Sample set.
    domain:
        Attribute domain; change points are strictly interior.
    max_points:
        Upper bound on the number of change points returned.
    min_separation:
        Minimum distance between change points (and to the domain
        edges) as a fraction of the domain width.  Prevents splintering
        the domain into unusably thin bins.
    relative_threshold:
        Stop once the next maximum of ``|f''|`` falls below this
        fraction of the global maximum — smaller wiggles are not worth
        a bin of their own even when statistically real.
    significance:
        Minimum ratio of ``|f''|`` to its pointwise sampling noise; a
        few sigmas keep smooth densities from splintering on noise.
    grid_points:
        Resolution of the evaluation grid.
    bandwidth:
        Gaussian pilot bandwidth; default :func:`pilot_bandwidth`.

    Returns
    -------
    numpy.ndarray
        Sorted change-point positions (possibly empty).
    """
    if max_points < 0:
        raise InvalidSampleError(f"max_points must be non-negative, got {max_points}")
    if not 0.0 < min_separation < 0.5:
        raise InvalidSampleError(
            f"min_separation must be in (0, 0.5) as a domain fraction, got {min_separation}"
        )
    if significance < 0:
        raise InvalidSampleError(f"significance must be non-negative, got {significance}")
    values = validate_sample(sample, domain)
    if max_points == 0 or values.size < 4:
        return np.empty(0)
    if bandwidth is None:
        try:
            bandwidth = pilot_bandwidth(values)
        except InvalidSampleError:
            # Zero-scale samples (all duplicates) have no structure to
            # partition.
            return np.empty(0)
    if bandwidth <= 0:
        return np.empty(0)

    n = values.size
    g = float(bandwidth)
    # Degenerate scales: g**5 under/overflow would poison the noise
    # floor, and no meaningful structure exists at such scales anyway.
    if not np.isfinite(g) or g**5 == 0.0 or not np.isfinite(g**5):
        return np.empty(0)
    reflected = _reflected(values, domain, 8.0 * g)
    kde = KernelDensity(reflected, g)
    grid = np.linspace(domain.low, domain.high, grid_points)
    # The reflected array dilutes the normalization; rescale to the
    # original sample size so density magnitudes stay meaningful.
    correction = reflected.size / n
    # One shared evaluation for all three orders; the pilot bandwidth
    # is far wider than the grid step, so the binned path applies.
    stack = kde.derivatives(grid, (0, 1, 2), binned=True)
    density = np.maximum(stack[0] * correction, 0.0)
    slope = stack[1] * correction
    curvature = np.abs(stack[2] * correction)

    # Pointwise sampling noise of the estimated second derivative.
    noise = np.sqrt(density * _R_PHI2 / (n * g**5))
    significant = curvature > significance * noise

    separation = min_separation * domain.width
    margin = max(separation, g)
    interior = (grid >= domain.low + margin) & (grid <= domain.high - margin)
    candidates = np.where(significant & interior, curvature, 0.0)
    peak = candidates.max()
    if peak <= 0:
        return np.empty(0)

    step = grid[1] - grid[0]
    refine_radius = max(1, int(round(1.5 * g / step)))
    chosen: list[float] = []
    blocked = ~(significant & interior)
    while len(chosen) < max_points:
        masked = np.where(blocked, 0.0, candidates)
        index = int(np.argmax(masked))
        value = masked[index]
        if value < relative_threshold * peak or value <= 0:
            break
        position = _refine_jump(grid, slope, index, refine_radius)
        blocked[index] = True
        blocked |= np.abs(grid - position) < separation
        # Several curvature peaks can refine onto one density jump
        # (|f''| peaks on both sides of it); keep each jump once.
        if all(abs(position - previous) >= separation for previous in chosen):
            chosen.append(position)
    return np.sort(np.asarray(chosen))


def _refine_jump(
    grid: np.ndarray,
    slope: np.ndarray,
    index: int,
    radius: int,
) -> float:
    """Snap a curvature peak to the nearby ``|f'|`` peak when one exists.

    A density *jump* puts its ``|f''|`` maxima one pilot bandwidth to
    either side of the jump while ``|f'|`` peaks exactly on it.  A
    *kink* has no interior ``|f'|`` peak nearby, in which case the
    curvature location is already right and is kept.
    """
    lo = max(0, index - radius)
    hi = min(grid.size, index + radius + 1)
    window = np.abs(slope[lo:hi])
    local = int(np.argmax(window))
    absolute = lo + local
    interior = 0 < local < window.size - 1
    if interior and window[local] > 0:
        return float(grid[absolute])
    return float(grid[index])
