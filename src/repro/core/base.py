"""Abstract interfaces for selectivity and density estimators.

The paper (§2) frames every method the same way: given a set of ``n``
samples drawn from a relation's attribute, build an estimator once and
answer many range queries ``Q(a, b)`` with an approximation of the
*distribution selectivity* ``sigma(a, b) = F(b) - F(a)``.

Two abstractions capture that contract:

:class:`SelectivityEstimator`
    Anything that can map a query range to an estimated selectivity in
    ``[0, 1]``.  This is the interface the experiment harness and a
    query optimizer consume.

:class:`DensityEstimator`
    Anything that can additionally evaluate an estimated probability
    density function pointwise.  Histograms and kernel estimators are
    density estimators; pure sampling is only a selectivity estimator.
"""

from __future__ import annotations

import abc
import functools
import threading
import time
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.telemetry import get_telemetry

if TYPE_CHECKING:
    from repro.data.domain import Interval
    from repro.telemetry.runtime import Telemetry


class EstimatorError(Exception):
    """Base class for all errors raised by ``repro`` estimators."""


class InvalidSampleError(EstimatorError):
    """The sample set handed to an estimator is unusable.

    Raised for empty samples, samples containing NaN/inf, or samples
    that fall outside the declared attribute domain.
    """


class InvalidQueryError(EstimatorError):
    """A query range is malformed (``a > b``, NaN endpoints, ...)."""


class MissingSeedError(EstimatorError):
    """A random draw was requested without an explicit seed.

    Every random draw in this codebase must be reproducibly seeded —
    the paper's estimator comparisons are only meaningful when every
    estimator sees the same data, and an unseeded draw makes a figure
    unreproducible.  Pass an integer seed or a ready
    ``np.random.Generator`` (derive composite seeds with
    ``np.random.SeedSequence``).
    """


def validate_sample(sample: np.ndarray, domain: "Interval | None" = None) -> np.ndarray:
    """Validate and canonicalize a sample set.

    Parameters
    ----------
    sample:
        One-dimensional array-like of attribute values.
    domain:
        Optional attribute domain; when given, every sample value must
        lie inside it.

    Returns
    -------
    numpy.ndarray
        A one-dimensional, C-contiguous ``float64`` copy of the sample.

    Raises
    ------
    InvalidSampleError
        If the sample is empty, not one-dimensional, contains
        non-finite values, or violates the domain bounds.
    """
    values = np.asarray(sample, dtype=np.float64)
    if values.ndim != 1:
        raise InvalidSampleError(f"sample must be one-dimensional, got shape {values.shape}")
    if values.size == 0:
        raise InvalidSampleError("sample must contain at least one value")
    if not np.all(np.isfinite(values)):
        raise InvalidSampleError("sample contains NaN or infinite values")
    if domain is not None:
        low, high = domain.low, domain.high
        if values.min() < low or values.max() > high:
            raise InvalidSampleError(
                f"sample values fall outside the domain [{low}, {high}]: "
                f"observed range [{values.min()}, {values.max()}]"
            )
    return np.ascontiguousarray(values)


def validate_query(a: float, b: float) -> tuple[float, float]:
    """Validate a query range and return it as a ``(a, b)`` float pair.

    Raises
    ------
    InvalidQueryError
        If either endpoint is non-finite or ``a > b``.
    """
    a = float(a)
    b = float(b)
    if not (np.isfinite(a) and np.isfinite(b)):
        raise InvalidQueryError(f"query endpoints must be finite, got [{a}, {b}]")
    if a > b:
        raise InvalidQueryError(f"query range is empty: a={a} > b={b}")
    return a, b


def validate_query_batch(
    a: np.ndarray, b: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Validate a whole batch of query ranges up front.

    The batch analogue of :func:`validate_query`: endpoint arrays must
    have matching shapes, finite values, and ``a <= b`` elementwise.
    Validation happens *before* any evaluation work so a malformed
    batch cannot fail halfway through with a misleading error type.

    Returns
    -------
    tuple[numpy.ndarray, numpy.ndarray]
        The endpoints as ``float64`` arrays.

    Raises
    ------
    InvalidQueryError
        If shapes differ, any endpoint is non-finite, or any range is
        empty (``a > b``).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise InvalidQueryError(f"endpoint arrays differ in shape: {a.shape} vs {b.shape}")
    if not (np.all(np.isfinite(a)) and np.all(np.isfinite(b))):
        raise InvalidQueryError("query endpoints must be finite")
    bad = np.ravel(a > b)
    if bad.any():
        j = int(np.flatnonzero(bad)[0])
        qa, qb = np.ravel(a)[j], np.ravel(b)[j]
        raise InvalidQueryError(f"query range is empty: a={qa} > b={qb} (batch index {j})")
    return a, b


# --------------------------------------------------------------------
# Telemetry instrumentation (see docs/OBSERVABILITY.md).
#
# Every concrete estimator subclass is wrapped automatically via
# ``__init_subclass__``: construction is traced as an
# ``estimator.build`` span and queries are recorded as
# ``estimator.query`` metrics.  The wrappers short-circuit to the
# original method when the process-global telemetry is disabled (the
# default), so the steady-state cost is one attribute check.

#: Re-entrancy depth of query instrumentation.  A batch call that
#: falls back to the scalar loop (or an estimator delegating to inner
#: estimators, like the hybrid) must be recorded once, at the
#: outermost level.  Thread-local so concurrent harness workers track
#: their own depth.
_query_state = threading.local()


def _depth() -> int:
    return getattr(_query_state, "depth", 0)


def _set_depth(value: int) -> None:
    _query_state.depth = value


def _observe_smoothing(telemetry: "Telemetry", estimator: object) -> None:
    """Record the smoothing parameter the finished build chose."""
    cls_name = type(estimator).__name__
    for attribute, metric in (("bandwidth", "estimator.bandwidth"), ("bin_count", "estimator.bins")):
        try:
            value = getattr(estimator, attribute, None)
        except Exception:  # a property that itself fails must not break builds
            continue
        if isinstance(value, (int, float)) and np.isfinite(value):
            telemetry.metrics.observe(f"{metric}.{cls_name}", float(value))


def _wrap_build(fn: Callable[..., Any]) -> Callable[..., Any]:
    @functools.wraps(fn)
    def build(self: Any, *args: Any, **kwargs: Any) -> Any:
        telemetry = get_telemetry()
        if not telemetry.enabled or telemetry.in_span("estimator.build"):
            return fn(self, *args, **kwargs)
        cls_name = type(self).__name__
        with telemetry.span("estimator.build", **{"class": cls_name}) as record:
            result = fn(self, *args, **kwargs)
        telemetry.metrics.inc("estimator.build")
        telemetry.metrics.observe(f"estimator.build.seconds.{cls_name}", record.duration)
        _observe_smoothing(telemetry, self)
        return result

    build.__telemetry_wrapped__ = True  # type: ignore[attr-defined]
    return build


def _wrap_selectivity(fn: Callable[..., float]) -> Callable[..., float]:
    @functools.wraps(fn)
    def selectivity(self: Any, a: float, b: float) -> float:
        telemetry = get_telemetry()
        if not telemetry.enabled or _depth():
            return fn(self, a, b)
        cls_name = type(self).__name__
        _set_depth(_depth() + 1)
        start = time.perf_counter()
        try:
            result = fn(self, a, b)
        finally:
            _set_depth(_depth() - 1)
        elapsed = time.perf_counter() - start
        telemetry.metrics.inc("estimator.query")
        telemetry.metrics.observe(f"estimator.query.seconds.{cls_name}", elapsed)
        telemetry.metrics.observe(f"estimator.query.latency.{cls_name}", elapsed)
        return result

    selectivity.__telemetry_wrapped__ = True  # type: ignore[attr-defined]
    return selectivity


def _wrap_selectivities(fn: Callable[..., np.ndarray]) -> Callable[..., np.ndarray]:
    @functools.wraps(fn)
    def selectivities(self: Any, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        telemetry = get_telemetry()
        if not telemetry.enabled or _depth():
            return fn(self, a, b)
        cls_name = type(self).__name__
        _set_depth(_depth() + 1)
        try:
            with telemetry.span("estimator.query_batch", **{"class": cls_name}) as record:
                result = fn(self, a, b)
        finally:
            _set_depth(_depth() - 1)
        size = int(np.asarray(a).size)
        telemetry.metrics.inc("estimator.query", size)
        telemetry.metrics.inc("estimator.query_batch")
        telemetry.metrics.observe("estimator.query_batch.size", size)
        telemetry.metrics.observe(f"estimator.query.seconds.{cls_name}", record.duration)
        if size:
            telemetry.metrics.observe(
                f"estimator.query.latency.{cls_name}", record.duration / size
            )
        return result

    selectivities.__telemetry_wrapped__ = True  # type: ignore[attr-defined]
    return selectivities


_INSTRUMENTED = {
    "__init__": _wrap_build,
    "selectivity": _wrap_selectivity,
    "selectivities": _wrap_selectivities,
}


def _instrument_estimator_class(cls: type) -> None:
    """Wrap the methods ``cls`` itself defines (inherited ones are
    already wrapped in the class that defined them)."""
    for name, wrapper in _INSTRUMENTED.items():
        fn = cls.__dict__.get(name)
        if fn is None or not callable(fn):
            continue
        if getattr(fn, "__telemetry_wrapped__", False):
            continue
        if getattr(fn, "__isabstractmethod__", False):
            continue
        setattr(cls, name, wrapper(fn))


class SelectivityEstimator(abc.ABC):
    """A built statistic that estimates range-query selectivities.

    Implementations are immutable after construction: they are built
    once from a sample (the cheap statistics-collection step a database
    system runs at ANALYZE time) and then answer arbitrarily many
    queries.

    Subclasses are automatically instrumented for telemetry: builds
    emit ``estimator.build`` spans, queries emit ``estimator.query``
    metrics (no-ops while telemetry is disabled, the default).
    """

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        _instrument_estimator_class(cls)

    @property
    @abc.abstractmethod
    def sample_size(self) -> int:
        """Number of samples the estimator was built from."""

    @abc.abstractmethod
    def selectivity(self, a: float, b: float) -> float:
        """Estimate the distribution selectivity of ``Q(a, b)``.

        Parameters
        ----------
        a, b:
            Query range endpoints with ``a <= b``.  The query retrieves
            records ``r`` with ``a <= r.A <= b`` (paper §2).

        Returns
        -------
        float
            Estimated selectivity, clipped to ``[0, 1]``.
        """

    def selectivities(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`selectivity` over parallel endpoint arrays.

        The default implementation loops; estimators override it when a
        faster vectorized path exists.  The whole batch is validated up
        front (:func:`validate_query_batch`) so malformed queries fail
        before any evaluation work.
        """
        a, b = validate_query_batch(a, b)
        out = np.empty(a.shape, dtype=np.float64)
        flat_a, flat_b, flat_out = a.ravel(), b.ravel(), out.ravel()
        for i in range(flat_a.size):
            flat_out[i] = self.selectivity(flat_a[i], flat_b[i])
        return out

    def estimate_result_size(self, a: float, b: float, relation_size: int) -> float:
        """Estimate the *instance* result size ``N * sigma(a, b)`` (paper §2)."""
        if relation_size < 0:
            raise InvalidQueryError(f"relation size must be non-negative, got {relation_size}")
        return self.selectivity(a, b) * relation_size


class DensityEstimator(SelectivityEstimator):
    """A selectivity estimator backed by an explicit density estimate."""

    @abc.abstractmethod
    def density(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the estimated PDF at each point of ``x``.

        Parameters
        ----------
        x:
            Array of evaluation points.

        Returns
        -------
        numpy.ndarray
            Estimated density values, same shape as ``x``.  Values may
            be negative for estimators that are consistent but not
            proper densities (boundary-kernel methods, paper §3.2.1).
        """

    def cdf(self, x: np.ndarray, *, origin: float | None = None) -> np.ndarray:
        """Evaluate the estimated CDF ``F(x) = integral of density``.

        The default implementation integrates via :meth:`selectivity`
        from ``origin`` (the estimator's domain low end when ``None``).
        """
        x = np.atleast_1d(np.asarray(x, dtype=np.float64))
        if origin is None:
            origin = getattr(self, "domain", None)
            if origin is None:
                raise InvalidQueryError("cdf() needs an origin for estimators without a domain")
            origin = origin.low
        lo = np.full(x.shape, float(origin))
        return self.selectivities(lo, np.maximum(x, origin))
