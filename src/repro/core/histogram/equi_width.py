"""Equi-width histograms (paper §3.1).

The equi-width histogram partitions the *complete attribute domain*
into ``k`` bins of equal width.  Its selectivity estimator simplifies
to ``(1 / (n h)) * sum_i n_i * psi_i(a, b)`` (paper eq. 4); the
generic :class:`~repro.core.histogram.bins.PiecewiseConstantDensity`
evaluates exactly that.

The number of bins is the histogram's smoothing parameter; the rules
of :mod:`repro.bandwidth` (normal scale, plug-in, oracle) choose it.
An optional ``origin`` shifts the grid, which is what the average
shifted histogram exploits.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import InvalidSampleError, validate_sample
from repro.core.histogram.bins import PiecewiseConstantDensity, bin_samples
from repro.data.domain import Interval


class EquiWidthHistogram(PiecewiseConstantDensity):
    """Equi-width histogram over a declared attribute domain.

    Parameters
    ----------
    sample:
        Sample set the histogram is built from.
    domain:
        Attribute domain; bins tile ``[domain.low, domain.high]``.
    bins:
        Number of bins ``k >= 1``.
    origin:
        Optional left edge of the grid.  Defaults to ``domain.low``;
        an origin below ``domain.low`` shifts the whole grid left (the
        grid is extended so it still covers the domain).  Samples keep
        their mass in all cases.
    """

    def __init__(
        self,
        sample: np.ndarray,
        domain: Interval,
        bins: int,
        *,
        origin: float | None = None,
    ) -> None:
        if bins < 1:
            raise InvalidSampleError(f"need at least one bin, got {bins}")
        values = validate_sample(sample, domain)
        bin_width = domain.width / bins
        if origin is None:
            origin = domain.low
        if origin > domain.low:
            raise InvalidSampleError(
                f"grid origin {origin} must not exceed the domain low end {domain.low}"
            )
        # Extend the grid right until it covers the domain end.
        total = int(np.ceil((domain.high - origin) / bin_width - 1e-12))
        edges = origin + bin_width * np.arange(total + 1)
        # Guard against floating point shortfall at the right edge.
        if edges[-1] < domain.high:
            edges = np.append(edges, edges[-1] + bin_width)
        counts = bin_samples(values, edges)
        super().__init__(edges, counts, values.size, domain)
        self._bin_width = bin_width
        self._origin = float(origin)

    @property
    def bin_width(self) -> float:
        """The common bin width ``h`` (the smoothing parameter)."""
        return self._bin_width

    @property
    def origin(self) -> float:
        """Left edge of the bin grid."""
        return self._origin
