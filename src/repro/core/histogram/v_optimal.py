"""V-optimal histograms (Ioannidis & Christodoulakis; Jagadish et al.).

The paper cites optimal histograms ([2], [7]) as the other end of the
design space: instead of a fixed boundary policy, choose the ``k - 1``
boundaries that minimize a bucket-error objective.  For metric
attributes the natural objective is the one Jagadish et al. make
tractable by dynamic programming: the total *sum of squared errors* of
approximating the per-cell frequencies by their bucket mean.

Running the DP on raw sample values would cost ``O(m^2 k)`` for ``m``
distinct values; the standard practice (and what keeps construction
comparable to the other histograms here) is to pre-aggregate the
sample onto a fine base grid — 256 cells by default, an order of
magnitude finer than any useful bucket count — and run the exact DP on
the grid's frequency vector with prefix sums.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import InvalidSampleError, validate_sample
from repro.core.histogram.bins import PiecewiseConstantDensity
from repro.data.domain import Interval

#: Default resolution of the base grid the DP runs on.
DEFAULT_BASE_CELLS = 256


def _sse_prefixes(frequencies: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Prefix sums of frequencies and squared frequencies."""
    p1 = np.concatenate(([0.0], np.cumsum(frequencies)))
    p2 = np.concatenate(([0.0], np.cumsum(frequencies * frequencies)))
    return p1, p2


def _segment_sse(p1: np.ndarray, p2: np.ndarray, i: int, j: int) -> float:
    """SSE of cells ``[i, j)`` approximated by their mean frequency."""
    count = j - i
    total = p1[j] - p1[i]
    squares = p2[j] - p2[i]
    return squares - total * total / count


def optimal_partition(frequencies: np.ndarray, buckets: int) -> list[int]:
    """Exact V-optimal partition of a frequency vector.

    Returns the interior cut indices (``buckets - 1`` of them) of the
    SSE-minimizing partition into ``buckets`` contiguous segments,
    via the classic ``O(m^2 k)`` dynamic program.
    """
    freq = np.asarray(frequencies, dtype=np.float64)
    m = freq.size
    if buckets < 1:
        raise InvalidSampleError(f"need at least one bucket, got {buckets}")
    if buckets >= m:
        return list(range(1, m))
    p1, p2 = _sse_prefixes(freq)

    # cost[b][j]: minimal SSE of the first j cells in b+1 buckets.
    cost = np.full((buckets, m + 1), np.inf)
    cut = np.zeros((buckets, m + 1), dtype=np.int64)
    for j in range(1, m + 1):
        cost[0][j] = _segment_sse(p1, p2, 0, j)
    for b in range(1, buckets):
        for j in range(b + 1, m + 1):
            # Vectorized over the split position i in [b, j).
            i_vec = np.arange(b, j)
            width = j - i_vec
            total = p1[j] - p1[i_vec]
            segment = (p2[j] - p2[i_vec]) - total * total / width
            candidates = cost[b - 1][i_vec] + segment
            best = int(np.argmin(candidates))
            cost[b][j] = candidates[best]
            cut[b][j] = i_vec[best]

    cuts = []
    j = m
    for b in range(buckets - 1, 0, -1):
        j = int(cut[b][j])
        cuts.append(j)
    return sorted(cuts)


class VOptimalHistogram(PiecewiseConstantDensity):
    """V-optimal histogram over a base grid of the attribute domain.

    Parameters
    ----------
    sample:
        Sample set.
    domain:
        Attribute domain tiled by the base grid.
    bins:
        Number of buckets ``k``.
    base_cells:
        Resolution of the grid whose frequency vector the DP
        partitions.  Must be at least ``bins``.
    """

    def __init__(
        self,
        sample: np.ndarray,
        domain: Interval,
        bins: int,
        *,
        base_cells: int = DEFAULT_BASE_CELLS,
    ) -> None:
        if bins < 1:
            raise InvalidSampleError(f"need at least one bucket, got {bins}")
        if base_cells < bins:
            raise InvalidSampleError(
                f"base grid ({base_cells} cells) must be at least as fine as "
                f"the bucket count ({bins})"
            )
        values = validate_sample(sample, domain)
        grid = np.linspace(domain.low, domain.high, base_cells + 1)
        frequencies, _ = np.histogram(values, bins=grid)
        cuts = optimal_partition(frequencies.astype(np.float64), bins)
        edges = np.concatenate(([domain.low], grid[cuts], [domain.high]))
        counts = np.array(
            [
                frequencies[i:j].sum()
                for i, j in zip([0, *cuts], [*cuts, base_cells])
            ],
            dtype=np.float64,
        )
        super().__init__(edges, counts, values.size, domain)
        self._base_cells = base_cells

    @property
    def base_cells(self) -> int:
        """Resolution of the DP base grid."""
        return self._base_cells
