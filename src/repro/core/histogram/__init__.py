"""Histogram selectivity estimators (paper §3.1).

All histogram policies share one piece of machinery — a piecewise
constant density with the overlap integral of the paper's eq. (4) —
and differ only in how bin boundaries are chosen:

* :class:`EquiWidthHistogram` — equal bin widths over the whole domain.
* :class:`EquiDepthHistogram` — equal sample counts per bin.
* :class:`MaxDiffHistogram` — boundaries in the largest gaps between
  adjacent sample values.
* :class:`UniformEstimator` — the one-bin histogram (System R's
  uniform assumption).
* :class:`AverageShiftedHistogram` — the mean of several shifted
  equi-width histograms.

Two further families the paper cites as the state of the art are
implemented for completeness of the comparison:

* :class:`VOptimalHistogram` — SSE-optimal boundaries by dynamic
  programming (refs [2]/[7]).
* :class:`WaveletHistogram` — Haar-compressed cumulative frequencies
  (ref [4]).
* :class:`EndBiasedHistogram` — exact top-k frequencies plus a uniform
  remainder (for duplicate-heavy attributes).
"""

from repro.core.histogram.ash import AverageShiftedHistogram
from repro.core.histogram.bins import PiecewiseConstantDensity
from repro.core.histogram.end_biased import EndBiasedHistogram
from repro.core.histogram.equi_depth import EquiDepthHistogram
from repro.core.histogram.equi_width import EquiWidthHistogram
from repro.core.histogram.max_diff import MaxDiffHistogram
from repro.core.histogram.uniform import UniformEstimator
from repro.core.histogram.v_optimal import VOptimalHistogram
from repro.core.histogram.wavelet import WaveletHistogram

__all__ = [
    "AverageShiftedHistogram",
    "EndBiasedHistogram",
    "EquiDepthHistogram",
    "EquiWidthHistogram",
    "MaxDiffHistogram",
    "PiecewiseConstantDensity",
    "UniformEstimator",
    "VOptimalHistogram",
    "WaveletHistogram",
]
