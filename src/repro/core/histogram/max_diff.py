"""Max-diff histograms (Poosala et al.; paper §3.1).

For ``k`` bins, the ``k - 1`` pairs of *adjacent sorted sample values*
with the largest distance are computed and a bin boundary is placed in
the middle of each gap — exactly the policy the paper describes and
compares against.  (Poosala et al. also define a frequency-based
variant for small categorical domains; the paper's experiments are on
large metric domains where the spacing-based variant applies.)
"""

from __future__ import annotations

import numpy as np

from repro.core.base import InvalidSampleError, validate_sample
from repro.core.histogram.bins import PiecewiseConstantDensity, bin_samples
from repro.data.domain import Interval


class MaxDiffHistogram(PiecewiseConstantDensity):
    """Max-diff histogram.

    Parameters
    ----------
    sample:
        Sample set.  Boundaries are placed inside the ``k - 1`` largest
        gaps between consecutive *distinct* sample values; the outer
        boundaries are the sample extremes.
    bins:
        Number of bins ``k >= 1``.  When the sample has fewer than
        ``k`` distinct values every gap gets a boundary (the histogram
        degenerates to one bin per distinct value).
    domain:
        Optional attribute domain (validation and reporting only).
    """

    def __init__(
        self,
        sample: np.ndarray,
        bins: int,
        domain: Interval | None = None,
    ) -> None:
        if bins < 1:
            raise InvalidSampleError(f"need at least one bin, got {bins}")
        values = np.sort(validate_sample(sample, domain))
        distinct = np.unique(values)
        if distinct.size == 1:
            # A single distinct value: the whole sample is a point mass.
            edges = np.array([distinct[0], distinct[0], distinct[0] + 1.0])
            counts = np.array([float(values.size), 0.0])
            super().__init__(edges, counts, values.size, domain)
            return

        gaps = np.diff(distinct)
        n_boundaries = min(bins - 1, gaps.size)
        if n_boundaries > 0:
            # Indices of the largest gaps; ties broken towards the left
            # for determinism.
            order = np.argsort(gaps, kind="stable")[::-1][:n_boundaries]
            cut_positions = np.sort(distinct[order] + 0.5 * gaps[order])
        else:
            cut_positions = np.empty(0)
        edges = np.concatenate([[distinct[0]], cut_positions, [distinct[-1]]])
        counts = bin_samples(values, edges)
        super().__init__(edges, counts, values.size, domain)
