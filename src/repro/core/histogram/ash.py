"""Average shifted histograms (Scott; paper §3.1).

An ASH with ``m`` shifts is the pointwise average of ``m`` equi-width
histograms with a common bin width ``h`` and origins offset by
``h / m``.  Averaging smooths the discontinuities at bin boundaries
(the paper: the jump-point problem "still exists, however in a more
diminished form") without the cost of a kernel estimator — the ASH is
in fact a discretized triangular-kernel estimator.

The paper's final comparison (Fig. 12) runs the ASH with ten shifts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.base import (
    DensityEstimator,
    InvalidSampleError,
    validate_query,
    validate_query_batch,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.summary import FrozenSummary
from repro.core.histogram.equi_width import EquiWidthHistogram
from repro.data.domain import Interval

#: Number of shifts used in the paper's experiments.
PAPER_SHIFTS = 10


class AverageShiftedHistogram(DensityEstimator):
    """Average of ``shifts`` shifted equi-width histograms.

    Parameters
    ----------
    sample:
        Sample set shared by all component histograms.
    domain:
        Attribute domain.
    bins:
        Number of bins of each component histogram (sets the common
        bin width ``h = domain.width / bins``).
    shifts:
        Number of component histograms ``m``; origins are offset by
        ``j * h / m`` to the left of the domain start.
    """

    def __init__(
        self,
        sample: np.ndarray,
        domain: Interval,
        bins: int,
        *,
        shifts: int = PAPER_SHIFTS,
    ) -> None:
        if shifts < 1:
            raise InvalidSampleError(f"need at least one shift, got {shifts}")
        if bins < 1:
            raise InvalidSampleError(f"need at least one bin, got {bins}")
        bin_width = domain.width / bins
        step = bin_width / shifts
        self._components = tuple(
            EquiWidthHistogram(sample, domain, bins, origin=domain.low - j * step)
            for j in range(shifts)
        )
        self._domain = domain
        self._bin_width = bin_width
        # Merged fine-grid CDF: every component CDF is piecewise
        # linear on its own (coarse) edge lattice, so their average is
        # piecewise linear on the union of all edges — a lattice with
        # step ``h / shifts``.  Precomputing the averaged CDF at those
        # knots turns a whole query batch into two ``np.interp`` calls
        # instead of one pass per component.
        knots = np.unique(
            np.concatenate([component.boundaries for component in self._components])
        )
        cdf = np.zeros(knots.shape, dtype=np.float64)
        for component in self._components:
            cdf += component._bulk_cdf(knots)
        self._cdf_knots = knots
        self._cdf_values = cdf / len(self._components)

    @classmethod
    def from_summary(
        cls,
        summary: "FrozenSummary",
        bins: int,
        *,
        shifts: int = PAPER_SHIFTS,
    ) -> "AverageShiftedHistogram":
        """Build from a frozen column summary (see ``repro.core.summary``)."""
        return cls(summary.sample, summary.domain, bins, shifts=shifts)

    @property
    def sample_size(self) -> int:
        return self._components[0].sample_size

    @property
    def domain(self) -> Interval:
        """Attribute domain."""
        return self._domain

    @property
    def shifts(self) -> int:
        """Number of component histograms."""
        return len(self._components)

    @property
    def bin_width(self) -> float:
        """Common bin width ``h`` of the component histograms."""
        return self._bin_width

    def density(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        total = np.zeros(x.shape, dtype=np.float64)
        for component in self._components:
            total += component.density(x)
        return total / len(self._components)

    def selectivity(self, a: float, b: float) -> float:
        a, b = validate_query(a, b)
        return float(self.selectivities(np.array([a]), np.array([b]))[0])

    def selectivities(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Batch evaluation against the merged fine-grid CDF."""
        a, b = validate_query_batch(a, b)
        result = np.interp(b, self._cdf_knots, self._cdf_values) - np.interp(
            a, self._cdf_knots, self._cdf_values
        )
        return np.clip(result, 0.0, 1.0)
