"""Equi-depth histograms (Piatetsky-Shapiro & Connell; paper §3.1).

Bin boundaries sit at sample quantiles so every bin holds (nearly) the
same number of samples.  On data with heavy duplicates several
quantiles can coincide; the resulting zero-width bins are retained as
point masses by the shared machinery, so the estimator stays exact on
discrete domains.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.base import InvalidSampleError, validate_sample
from repro.core.histogram.bins import PiecewiseConstantDensity
from repro.data.domain import Interval

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.summary import FrozenSummary


class EquiDepthHistogram(PiecewiseConstantDensity):
    """Equi-depth (equi-height) histogram.

    Parameters
    ----------
    sample:
        Sample set; boundaries are its ``i/k`` quantiles.
    bins:
        Number of bins ``k >= 1``.
    domain:
        Optional attribute domain (validation and reporting only; the
        binned range is the sample range, outside which the estimated
        density is zero).
    """

    def __init__(
        self,
        sample: np.ndarray,
        bins: int,
        domain: Interval | None = None,
    ) -> None:
        if bins < 1:
            raise InvalidSampleError(f"need at least one bin, got {bins}")
        values = np.sort(validate_sample(sample, domain))
        if bins > values.size:
            raise InvalidSampleError(
                f"cannot build {bins} equi-depth bins from {values.size} samples"
            )
        quantiles = np.linspace(0.0, 1.0, bins + 1)
        edges = np.quantile(values, quantiles)
        # Equi-depth by definition: every bin carries exactly n/k of the
        # sample mass.  On heavy-duplicate data several quantiles
        # coincide; those zero-width bins then carry n/k each, which is
        # precisely the point mass of the duplicated value.
        counts = np.full(bins, values.size / bins, dtype=np.float64)
        super().__init__(edges, counts, values.size, domain)

    @classmethod
    def from_summary(cls, summary: "FrozenSummary", bins: int) -> "EquiDepthHistogram":
        """Build from a frozen column summary (see ``repro.core.summary``)."""
        return cls(summary.sample, bins, summary.domain)
