"""End-biased histograms (Ioannidis & Poosala's taxonomy).

An end-biased histogram stores the ``k`` most frequent attribute
values *exactly* (as point masses) and assumes uniformity over
everything else.  The paper's experiments exclude it because its real
files have few duplicates per value — but the census instance-weight
file is precisely the case it was built for (a handful of values
carrying a third of the mass), so it completes the comparison on
duplicate-heavy data.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import DensityEstimator, InvalidSampleError, validate_query, validate_query_batch, validate_sample
from repro.data.domain import Interval


class EndBiasedHistogram(DensityEstimator):
    """Exact top-``k`` frequencies plus a uniform remainder.

    Parameters
    ----------
    sample:
        Sample set.
    domain:
        Attribute domain; the non-top remainder is spread uniformly
        over it.
    top:
        Number of most frequent values stored exactly.
    """

    def __init__(self, sample: np.ndarray, domain: Interval, top: int = 16) -> None:
        if top < 1:
            raise InvalidSampleError(f"need at least one stored value, got {top}")
        values = validate_sample(sample, domain)
        distinct, counts = np.unique(values, return_counts=True)
        order = np.argsort(counts, kind="stable")[::-1][:top]
        order = order[counts[order] > 1]  # singletons carry no frequency signal
        self._top_values = distinct[order]
        self._top_masses = counts[order] / values.size
        remainder = 1.0 - self._top_masses.sum()
        self._uniform_density = max(remainder, 0.0) / domain.width
        self._domain = domain
        self._n = int(values.size)
        for array in (self._top_values, self._top_masses):
            array.flags.writeable = False

    @property
    def sample_size(self) -> int:
        return self._n

    @property
    def domain(self) -> Interval:
        """Attribute domain."""
        return self._domain

    @property
    def stored_values(self) -> np.ndarray:
        """The exactly-stored frequent values (read-only)."""
        return self._top_values

    def selectivity(self, a: float, b: float) -> float:
        a, b = validate_query(a, b)
        return float(self.selectivities(np.array([a]), np.array([b]))[0])

    def selectivities(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a, b = validate_query_batch(a, b)
        lo = np.clip(a, self._domain.low, self._domain.high)
        hi = np.clip(b, self._domain.low, self._domain.high)
        uniform_part = np.maximum(hi - lo, 0.0) * self._uniform_density
        if self._top_values.size:
            inside = (self._top_values >= a[..., None]) & (
                self._top_values <= b[..., None]
            )
            uniform_part = uniform_part + inside @ self._top_masses
        return np.clip(uniform_part, 0.0, 1.0)

    def density(self, x: np.ndarray) -> np.ndarray:
        """The continuous (uniform remainder) part of the density.

        The stored values are point masses and have no finite density;
        :meth:`selectivity` accounts for them.
        """
        x = np.asarray(x, dtype=np.float64)
        inside = (x >= self._domain.low) & (x <= self._domain.high)
        return np.where(inside, self._uniform_density, 0.0)
