"""Wavelet-based histograms (Matias, Vitter & Wang, SIGMOD 1998).

The paper cites wavelet histograms ([4]) as one of the modern
selectivity-estimation families.  The idea: take the cumulative
frequency vector of the attribute over a dyadic grid, run a Haar
wavelet transform, and keep only the ``B`` largest (normalized)
coefficients.  Reconstruction gives an approximate CDF; the
selectivity of ``Q(a, b)`` is the reconstructed ``C(b) - C(a)``,
linearly interpolated inside grid cells.

Keeping coefficients of the *cumulative* vector (the "path-coefficient"
method of the original paper) makes range queries a two-point
evaluation, and the largest normalized coefficients are exactly the
ones minimizing the L2 reconstruction error.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import DensityEstimator, InvalidSampleError, validate_query, validate_query_batch, validate_sample
from repro.data.domain import Interval

#: Default dyadic grid resolution (must be a power of two).
DEFAULT_GRID = 1_024


def haar_transform(vector: np.ndarray) -> np.ndarray:
    """Unnormalized Haar wavelet decomposition of a power-of-two vector.

    Output layout: ``[overall average, detail coefficients...]`` with
    the coarsest details first (the standard pyramid layout).
    """
    data = np.asarray(vector, dtype=np.float64).copy()
    n = data.size
    if n == 0 or n & (n - 1):
        raise InvalidSampleError(f"Haar transform needs a power-of-two length, got {n}")
    output = np.empty(n, dtype=np.float64)
    length = n
    while length > 1:
        half = length // 2
        evens = data[0:length:2]
        odds = data[1:length:2]
        output[half:length] = (evens - odds) / 2.0
        data[:half] = (evens + odds) / 2.0
        length = half
    output[0] = data[0]
    return output


def haar_inverse(coefficients: np.ndarray) -> np.ndarray:
    """Inverse of :func:`haar_transform`."""
    coeffs = np.asarray(coefficients, dtype=np.float64)
    n = coeffs.size
    if n == 0 or n & (n - 1):
        raise InvalidSampleError(f"Haar inverse needs a power-of-two length, got {n}")
    data = coeffs.copy()
    length = 1
    while length < n:
        averages = data[:length].copy()
        # Copy: the expansion below writes into the detail positions.
        details = data[length : 2 * length].copy()
        data[0 : 2 * length : 2] = averages + details
        data[1 : 2 * length : 2] = averages - details
        length *= 2
    return data


def _level_weights(n: int) -> np.ndarray:
    """L2 normalization weight of each coefficient in pyramid layout.

    A detail coefficient at level with ``2^l`` coefficients spans
    ``n / 2^l`` cells; its L2 norm contribution scales with the square
    root of that support.
    """
    weights = np.empty(n, dtype=np.float64)
    weights[0] = np.sqrt(n)
    length = 1
    while length < n:
        weights[length : 2 * length] = np.sqrt(n / (2 * length))
        length *= 2
    return weights


class WaveletHistogram(DensityEstimator):
    """Haar-compressed cumulative-frequency selectivity estimator.

    Parameters
    ----------
    sample:
        Sample set.
    domain:
        Attribute domain, tiled by the dyadic grid.
    coefficients:
        Storage budget ``B``: number of wavelet coefficients kept
        (the overall average always counts as one of them).
    grid:
        Dyadic grid resolution (power of two).
    """

    def __init__(
        self,
        sample: np.ndarray,
        domain: Interval,
        coefficients: int = 32,
        *,
        grid: int = DEFAULT_GRID,
    ) -> None:
        if coefficients < 1:
            raise InvalidSampleError(f"need at least one coefficient, got {coefficients}")
        if grid < 2 or grid & (grid - 1):
            raise InvalidSampleError(f"grid must be a power of two >= 2, got {grid}")
        values = validate_sample(sample, domain)
        edges = np.linspace(domain.low, domain.high, grid + 1)
        counts, _ = np.histogram(values, bins=edges)
        cumulative = np.cumsum(counts) / values.size

        transformed = haar_transform(cumulative)
        importance = np.abs(transformed) * _level_weights(grid)
        importance[0] = np.inf  # always keep the overall average
        keep = min(coefficients, grid)
        threshold_index = np.argsort(importance)[::-1][:keep]
        compressed = np.zeros_like(transformed)
        compressed[threshold_index] = transformed[threshold_index]

        reconstructed = haar_inverse(compressed)
        # A CDF must be monotone in [0, 1]; enforce it on the
        # reconstruction (compression can introduce small dips), and
        # renormalize so the known total mass of exactly 1 is reached
        # at the right domain edge.
        reconstructed = np.maximum.accumulate(np.clip(reconstructed, 0.0, None))
        if reconstructed[-1] > 0:
            reconstructed = reconstructed / reconstructed[-1]
        reconstructed = np.clip(reconstructed, 0.0, 1.0)

        self._edges = edges
        self._cdf_at_edges = np.concatenate(([0.0], reconstructed))
        self._n = int(values.size)
        self._domain = domain
        self._budget = keep
        for array in (self._edges, self._cdf_at_edges):
            array.flags.writeable = False

    @property
    def sample_size(self) -> int:
        return self._n

    @property
    def domain(self) -> Interval:
        """Attribute domain."""
        return self._domain

    @property
    def coefficient_budget(self) -> int:
        """Number of wavelet coefficients retained."""
        return self._budget

    def _cdf(self, x: np.ndarray) -> np.ndarray:
        return np.interp(x, self._edges, self._cdf_at_edges)

    def selectivity(self, a: float, b: float) -> float:
        a, b = validate_query(a, b)
        return float(self.selectivities(np.array([a]), np.array([b]))[0])

    def selectivities(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a, b = validate_query_batch(a, b)
        return np.clip(self._cdf(b) - self._cdf(a), 0.0, 1.0)

    def density(self, x: np.ndarray) -> np.ndarray:
        """Piecewise constant density implied by the reconstructed CDF."""
        x = np.asarray(x, dtype=np.float64)
        cell = self._edges[1] - self._edges[0]
        idx = np.clip(
            np.searchsorted(self._edges, x, side="right") - 1,
            0,
            self._edges.size - 2,
        )
        slope = np.diff(self._cdf_at_edges) / cell
        inside = (x >= self._edges[0]) & (x <= self._edges[-1])
        return np.where(inside, slope[idx], 0.0)
