"""The uniform estimator: a histogram with a single bin (paper §5.2.4).

This is System R's uniformity assumption — the selectivity of
``Q(a, b)`` is the fraction of the domain the query covers.  It needs
no sample at all and serves as the floor of the paper's comparison
(it loses everywhere except on uniform data, with a 600 % MRE on the
census file in Fig. 8).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import SelectivityEstimator, validate_query, validate_query_batch
from repro.data.domain import Interval


class UniformEstimator(SelectivityEstimator):
    """Selectivity = covered fraction of the domain."""

    def __init__(self, domain: Interval) -> None:
        self._domain = domain

    @property
    def sample_size(self) -> int:
        """The uniform estimator uses no sample."""
        return 0

    @property
    def domain(self) -> Interval:
        """Attribute domain."""
        return self._domain

    def selectivity(self, a: float, b: float) -> float:
        a, b = validate_query(a, b)
        return self._domain.fraction(a, b)

    def selectivities(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a, b = validate_query_batch(a, b)
        lo = np.clip(a, self._domain.low, self._domain.high)
        hi = np.clip(b, self._domain.low, self._domain.high)
        return np.maximum(hi - lo, 0.0) / self._domain.width
