"""Shared histogram machinery: piecewise constant densities.

Every histogram in the paper reduces to the same estimator once its
boundaries are fixed (paper eq. 4):

.. math::

   \\hat\\sigma_H(a, b) = \\frac{1}{n} \\sum_i \\frac{n_i}{h_i}
                          \\cdot \\psi_i(a, b)

where ``psi_i`` is the length of the intersection between bin ``i``
and the query range.  :class:`PiecewiseConstantDensity` implements that
formula through the equivalent cumulative form ``F(b) - F(a)`` (the CDF
of a piecewise constant density is piecewise linear, so a single
``np.interp`` evaluates whole query batches).

Zero-width bins — which arise when quantile boundaries coincide on
data with heavy duplicates — are carried as explicit *point masses*
so no probability mass is silently dropped.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import (
    DensityEstimator,
    InvalidSampleError,
    validate_query,
    validate_query_batch,
)
from repro.data.domain import Interval


class PiecewiseConstantDensity(DensityEstimator):
    """A histogram density with optional point masses.

    Parameters
    ----------
    boundaries:
        Bin edges ``c_0 <= c_1 <= ... <= c_k`` (non-decreasing).  Pairs
        of equal consecutive edges declare a zero-width bin whose count
        becomes a point mass at that position.
    counts:
        Number of samples per bin, length ``k``.
    sample_size:
        Total number of samples ``n`` the histogram was built from.
        May exceed ``counts.sum()`` if some samples fall outside the
        binned range (their mass is then assigned zero density).
    domain:
        Optional attribute domain, used for CDF origins and reporting.
    """

    def __init__(
        self,
        boundaries: np.ndarray,
        counts: np.ndarray,
        sample_size: int,
        domain: Interval | None = None,
    ) -> None:
        edges = np.asarray(boundaries, dtype=np.float64)
        counts = np.asarray(counts, dtype=np.float64)
        if edges.ndim != 1 or counts.ndim != 1 or edges.size != counts.size + 1:
            raise InvalidSampleError(
                f"need k+1 boundaries for k counts, got {edges.size} and {counts.size}"
            )
        if counts.size == 0:
            raise InvalidSampleError("histogram needs at least one bin")
        if np.any(np.diff(edges) < 0):
            raise InvalidSampleError("bin boundaries must be non-decreasing")
        if np.any(counts < 0):
            raise InvalidSampleError("bin counts must be non-negative")
        if sample_size <= 0:
            raise InvalidSampleError(f"sample size must be positive, got {sample_size}")
        if counts.sum() > sample_size + 1e-9:
            raise InvalidSampleError(
                f"bin counts sum to {counts.sum()}, more than the sample size {sample_size}"
            )

        # Canonicalize: edges closer than the smallest normal float are
        # snapped together — a bin that narrow would overflow
        # count / width, and is a point mass in all but name.
        squeeze = np.diff(edges) > np.finfo(np.float64).tiny
        keep = np.concatenate(([True], squeeze))
        segment = np.maximum.accumulate(np.where(keep, np.arange(edges.size), 0))
        edges = edges[segment]
        widths = np.diff(edges)
        degenerate = widths == 0.0

        # Zero-width bins become point masses; the rest stay bins.  With
        # non-decreasing edges there is exactly one positive-width bin
        # between each pair of consecutive *distinct* edges, so the
        # non-degenerate counts align 1:1 with np.unique(edges) bins.
        self._point_positions = edges[:-1][degenerate]
        self._point_masses = counts[degenerate] / sample_size
        bulk_counts = counts[~degenerate]
        bulk_edges = np.unique(edges)
        if bulk_edges.size < 2:
            # All mass is concentrated in point masses; keep a token
            # empty bin so the bulk machinery stays well-formed.
            bulk_edges = np.array([edges[0], edges[0] + 1.0])
            bulk_counts = np.zeros(1)

        self._edges = bulk_edges
        self._counts = bulk_counts
        self._n = int(sample_size)
        self._domain = domain
        self._widths = np.diff(self._edges)
        self._density = self._counts / (self._n * self._widths)
        # CDF of the bulk at every edge (point masses handled separately).
        self._cdf_at_edges = np.concatenate([[0.0], np.cumsum(self._counts)]) / self._n
        for array in (
            self._edges,
            self._counts,
            self._widths,
            self._density,
            self._cdf_at_edges,
            self._point_positions,
            self._point_masses,
        ):
            array.flags.writeable = False

    @property
    def sample_size(self) -> int:
        return self._n

    @property
    def domain(self) -> Interval | None:
        """Attribute domain, if declared."""
        return self._domain

    @property
    def boundaries(self) -> np.ndarray:
        """Strictly increasing bin edges of the bulk part (read-only)."""
        return self._edges

    @property
    def counts(self) -> np.ndarray:
        """Per-bin sample counts of the bulk part (read-only)."""
        return self._counts

    @property
    def bin_count(self) -> int:
        """Number of (non-degenerate) bins."""
        return int(self._counts.size)

    @property
    def point_masses(self) -> list[tuple[float, float]]:
        """``(position, probability)`` pairs for degenerate bins."""
        return list(zip(self._point_positions.tolist(), self._point_masses.tolist()))

    def density(self, x: np.ndarray) -> np.ndarray:
        """Histogram density ``n_i / (n * h_i)`` at each point.

        Point masses are excluded (a Dirac mass has no finite density);
        :meth:`selectivity` accounts for them.
        """
        x = np.asarray(x, dtype=np.float64)
        idx = np.clip(np.searchsorted(self._edges, x, side="right") - 1, 0, self._counts.size - 1)
        values = self._density[idx]
        inside = (x >= self._edges[0]) & (x <= self._edges[-1])
        return np.where(inside, values, 0.0)

    def _bulk_cdf(self, x: np.ndarray) -> np.ndarray:
        """CDF of the bulk (non-point-mass) part; piecewise linear."""
        return np.interp(x, self._edges, self._cdf_at_edges)

    def selectivity(self, a: float, b: float) -> float:
        a, b = validate_query(a, b)
        return float(self.selectivities(np.array([a]), np.array([b]))[0])

    def selectivities(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a, b = validate_query_batch(a, b)
        result = self._bulk_cdf(b) - self._bulk_cdf(a)
        if self._point_positions.size:
            # Closed query range: a point mass at an endpoint counts fully.
            inside = (self._point_positions >= a[..., None]) & (
                self._point_positions <= b[..., None]
            )
            result = result + inside @ self._point_masses
        return np.clip(result, 0.0, 1.0)

    def total_mass(self) -> float:
        """Probability mass represented by the histogram (<= 1).

        Less than 1 when some samples fell outside the binned range
        (possible for sample-bounded policies queried about a wider
        domain).
        """
        return float(self._cdf_at_edges[-1] + self._point_masses.sum())


def bin_samples(sample: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Count samples per bin for strictly increasing ``edges``.

    Uses half-open bins ``[c_i, c_{i+1})`` with the last bin closed,
    matching ``numpy.histogram`` semantics.
    """
    counts, _ = np.histogram(sample, bins=edges)
    return counts.astype(np.float64)
