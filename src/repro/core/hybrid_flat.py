"""Flat (structure-of-arrays) evaluation of the hybrid estimator.

The object layout of :class:`repro.core.hybrid.HybridEstimator` — a
Python list of per-bin estimator objects — answers a query batch with
one vectorized call *per bin*, each paying its own validation,
window bookkeeping, and reduction overhead.  This module flattens the
whole partition into contiguous arrays:

- one concatenated sorted-sample array (bins partition the domain in
  order, so per-bin sorted samples concatenate to the globally sorted
  sample) with per-bin ``offsets``;
- per-bin ``coeff`` (weight x mass-renormalization scale), bandwidth,
  and uniform-fallback arrays;
- per-bin prefix moments (:mod:`repro.core.kernel.moments`) so the
  interior Epanechnikov sums of *every* (query, bin) pair cost O(1).

A query batch expands into (query, bin) pairs for the bins each query
overlaps — two ``searchsorted`` calls against the edge array — and
every pair evaluates the exact same per-bin formulas the object path
uses (:class:`~repro.core.kernel.boundary.BoundaryKernelEstimator`
three-region decomposition, uniform fallback), reduced back to per-
query totals with one ``np.add.reduceat``.  No Python loop over bins
or queries survives.

The object path stays available as the reference implementation
(``HybridEstimator.selectivities_reference``); the property tests in
``tests/test_hybrid_flat.py`` pin the two paths together to 1e-12.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.kernel.boundary import _left_region_mass, boundary_kernel_pdf
from repro.core.kernel.estimator import PickFn, segment_window_sums
from repro.core.kernel.functions import EPANECHNIKOV
from repro.core.kernel.moments import (
    MOMENT_MAX_RATIO,
    PrefixMoments,
    build_moments,
    epan_cdf_sums,
    epan_pdf_sums,
    half_spread,
)


def bin_offsets(sorted_values: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Offsets of each bin's samples within the sorted sample.

    This is the single binning rule of the hybrid estimator: bins are
    half-open ``[low, high)`` with the rightmost bin closed, so a
    sample exactly on an interior edge belongs to the bin on its
    right.  Returns ``len(edges)`` offsets with ``offsets[k] ..
    offsets[k + 1]`` spanning bin ``k``'s samples.
    """
    offsets = np.empty(edges.size, dtype=np.intp)
    offsets[0] = 0
    offsets[-1] = sorted_values.size
    if edges.size > 2:
        offsets[1:-1] = np.searchsorted(sorted_values, edges[1:-1], side="left")
    return offsets


@dataclasses.dataclass(frozen=True)
class FlatHybrid:
    """Contiguous representation of a built hybrid partition.

    All arrays are per-bin (length ``m``) except ``edges``/``offsets``
    (length ``m + 1``) and ``values`` (the concatenated sorted
    sample).  Uniform-fallback bins carry a placeholder bandwidth of
    1.0 and are routed by ``is_kernel``.
    """

    edges: np.ndarray
    offsets: np.ndarray
    values: np.ndarray
    coeff: np.ndarray
    is_kernel: np.ndarray
    h: np.ndarray
    inv_h: np.ndarray
    inv_width: np.ndarray
    counts: np.ndarray
    moments: PrefixMoments
    use_moments: np.ndarray


def build_flat(
    sorted_values: np.ndarray,
    edges: np.ndarray,
    offsets: np.ndarray,
    coeff: np.ndarray,
    is_kernel: np.ndarray,
    bandwidths: np.ndarray,
) -> FlatHybrid:
    """Assemble the flat layout from per-bin build results.

    ``bandwidths`` entries for non-kernel bins are ignored (stored as
    the 1.0 placeholder).  The prefix moments are built per bin (each
    bin is its own segment, centered on its own midrange) so interior
    sums never mix bins and carry no cross-bin cancellation.
    """
    values = np.ascontiguousarray(sorted_values, dtype=np.float64)
    edges = np.asarray(edges, dtype=np.float64)
    offsets = np.asarray(offsets, dtype=np.intp)
    is_kernel = np.asarray(is_kernel, dtype=bool)
    h = np.where(is_kernel, np.asarray(bandwidths, dtype=np.float64), 1.0)
    counts = np.diff(offsets)
    moments = build_moments(values, offsets)
    spreads = np.array(
        [
            half_spread(values[offsets[k] : offsets[k + 1]])
            for k in range(offsets.size - 1)
        ]
    )
    use_moments = is_kernel & (spreads <= MOMENT_MAX_RATIO * h)
    return FlatHybrid(
        edges=edges,
        offsets=offsets,
        values=values,
        coeff=np.asarray(coeff, dtype=np.float64),
        is_kernel=is_kernel,
        h=h,
        inv_h=1.0 / h,
        inv_width=1.0 / np.diff(edges),
        counts=counts,
        moments=moments,
        use_moments=use_moments,
    )


def _expand_pairs(
    flat: FlatHybrid, k_min: np.ndarray, k_max: np.ndarray
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """(query, bin) pair arrays for per-query bin ranges.

    Returns ``(pair_q, pair_k, counts, prefix)`` where ``prefix`` is
    the exclusive pair-count prefix (segment starts for the final
    reduction).
    """
    counts = np.maximum(k_max - k_min + 1, 0)
    prefix = np.concatenate(([0], np.cumsum(counts)[:-1]))
    total = int(counts.sum())
    pair_q = np.repeat(np.arange(counts.size), counts)
    pair_k = np.arange(total) + np.repeat(k_min - prefix, counts)
    return pair_q, pair_k, counts, prefix


def _pair_cdf_sums(
    flat: FlatHybrid, x: np.ndarray, pair_k: np.ndarray
) -> np.ndarray:
    """``sum_{i in bin k} C((x_j - X_i) / h_k)`` per (query, bin) pair.

    Matches ``KernelSelectivityEstimator._cdf_sums`` bin by bin:
    samples of the bin below the kernel window contribute exactly 1,
    the window itself goes through the prefix-moment O(1) path when
    the bin's precision gate allows, and through the per-sample
    Epanechnikov CDF otherwise.
    """
    values = flat.values
    reach = flat.h[pair_k]
    off_lo = flat.offsets[pair_k]
    off_hi = flat.offsets[pair_k + 1]
    lo = np.clip(np.searchsorted(values, x - reach, side="left"), off_lo, off_hi)
    hi = np.clip(np.searchsorted(values, x + reach, side="right"), off_lo, off_hi)
    out = (lo - off_lo).astype(np.float64)
    fast = flat.use_moments[pair_k]
    if fast.any():
        out[fast] += epan_cdf_sums(
            flat.moments,
            x[fast],
            flat.inv_h[pair_k[fast]],
            lo[fast],
            hi[fast],
            segment=pair_k[fast],
        )
    slow = ~fast
    if slow.any():
        x_s = x[slow]
        inv_h_s = flat.inv_h[pair_k[slow]]

        def term(pick: PickFn, i: np.ndarray) -> np.ndarray:
            t = pick(x_s)
            t -= values[i]
            t *= pick(inv_h_s)
            return EPANECHNIKOV.cdf(t)

        out[slow] += segment_window_sums(lo[slow], hi[slow], term)
    return out


def _pair_left_sums(
    flat: FlatHybrid,
    v_lo: np.ndarray,
    v_hi: np.ndarray,
    pair_k: np.ndarray,
) -> np.ndarray:
    """Left-boundary-region mass sums per pair, in boundary units.

    Mirrors ``BoundaryKernelEstimator._left_masses``: contributing
    samples (``w < v_hi + 1``) form a prefix of the bin's samples;
    zero-width segments get empty windows.
    """
    values = flat.values
    left = flat.edges[pair_k]
    h = flat.h[pair_k]
    off_lo = flat.offsets[pair_k]
    off_hi = flat.offsets[pair_k + 1]
    v_lo = np.minimum(v_lo, v_hi)
    cutoff = left + (v_hi + 1.0) * h
    hi_idx = np.minimum(np.searchsorted(values, cutoff, side="left"), off_hi)
    hi_idx = np.where(v_hi > v_lo, hi_idx, off_lo)

    def term(pick: PickFn, i: np.ndarray) -> np.ndarray:
        return _left_region_mass(
            pick(v_lo), pick(v_hi), (values[i] - pick(left)) / pick(h)
        )

    return segment_window_sums(off_lo, hi_idx, term)


def _pair_right_sums(
    flat: FlatHybrid,
    v_lo: np.ndarray,
    v_hi: np.ndarray,
    pair_k: np.ndarray,
) -> np.ndarray:
    """Right-boundary-region mass sums per pair; mirror of the left."""
    values = flat.values
    right = flat.edges[pair_k + 1]
    h = flat.h[pair_k]
    off_lo = flat.offsets[pair_k]
    off_hi = flat.offsets[pair_k + 1]
    v_lo = np.minimum(v_lo, v_hi)
    cutoff = right - (v_hi + 1.0) * h
    lo_idx = np.maximum(np.searchsorted(values, cutoff, side="right"), off_lo)
    lo_idx = np.where(v_hi > v_lo, lo_idx, off_hi)

    def term(pick: PickFn, i: np.ndarray) -> np.ndarray:
        return _left_region_mass(
            pick(v_lo), pick(v_hi), (pick(right) - values[i]) / pick(h)
        )

    return segment_window_sums(lo_idx, off_hi, term)


def flat_selectivities(
    flat: FlatHybrid, flat_a: np.ndarray, flat_b: np.ndarray
) -> np.ndarray:
    """Unclipped hybrid selectivities over a validated flat batch.

    Expands each query to the bins it overlaps, evaluates every pair's
    contribution with the per-bin formulas (three-region boundary
    kernel or uniform fallback), and reduces to per-query totals.
    Bins a query merely touches at an edge contribute exactly 0, so
    the edge conventions of the pair expansion cannot change totals.
    """
    edges = flat.edges
    bins = edges.size - 1
    k_min = np.clip(np.searchsorted(edges, flat_a, side="right") - 1, 0, bins - 1)
    k_max = np.clip(np.searchsorted(edges, flat_b, side="left") - 1, 0, bins - 1)
    pair_q, pair_k, counts, prefix = _expand_pairs(flat, k_min, k_max)
    totals = np.zeros(flat_a.shape, dtype=np.float64)
    if pair_q.size == 0:
        return totals
    left_edge = edges[pair_k]
    right_edge = edges[pair_k + 1]
    lo = np.clip(flat_a[pair_q], left_edge, right_edge)
    hi = np.maximum(np.clip(flat_b[pair_q], left_edge, right_edge), lo)
    contrib = np.zeros(pair_q.shape, dtype=np.float64)

    uniform = ~flat.is_kernel[pair_k]
    if uniform.any():
        contrib[uniform] = (hi[uniform] - lo[uniform]) * flat.inv_width[
            pair_k[uniform]
        ]

    kernel = ~uniform
    if kernel.any():
        pk = pair_k[kernel]
        k_lo = lo[kernel]
        k_hi = hi[kernel]
        left = left_edge[kernel]
        right = right_edge[kernel]
        h = flat.h[pk]
        inv_h = flat.inv_h[pk]
        inner_left = left + h
        inner_right = right - h
        # Left boundary region [left, left + h), in boundary units.
        left_mass = _pair_left_sums(
            flat,
            (k_lo - left) * inv_h,
            (np.minimum(k_hi, inner_left) - left) * inv_h,
            pk,
        )
        # Right boundary region (right - h, right], mirrored units.
        right_mass = _pair_right_sums(
            flat,
            (right - k_hi) * inv_h,
            (right - np.maximum(k_lo, inner_right)) * inv_h,
            pk,
        )
        # Interior region: ordinary Epanechnikov CDF sums.
        i_lo = np.minimum(np.maximum(k_lo, inner_left), inner_right)
        i_hi = np.maximum(np.minimum(k_hi, inner_right), i_lo)
        interior = _pair_cdf_sums(flat, i_hi, pk) - _pair_cdf_sums(flat, i_lo, pk)
        contrib[kernel] = (left_mass + interior + right_mass) / flat.counts[pk]

    weighted = contrib * flat.coeff[pair_k]
    populated = counts > 0
    totals[populated] = np.add.reduceat(weighted, prefix[populated])
    return totals


def flat_density(flat: FlatHybrid, flat_x: np.ndarray) -> np.ndarray:
    """Pointwise hybrid density over a flat batch of points.

    Points on an interior edge receive contributions from *both*
    adjacent bins (each bin's density is inclusive of both its edges),
    matching the per-bin reference path.
    """
    edges = flat.edges
    bins = edges.size - 1
    k_min = np.clip(np.searchsorted(edges, flat_x, side="left") - 1, 0, bins - 1)
    k_max = np.clip(np.searchsorted(edges, flat_x, side="right") - 1, 0, bins - 1)
    pair_q, pair_k, counts, prefix = _expand_pairs(flat, k_min, k_max)
    totals = np.zeros(flat_x.shape, dtype=np.float64)
    if pair_q.size == 0:
        return totals
    x = flat_x[pair_q]
    left_edge = edges[pair_k]
    right_edge = edges[pair_k + 1]
    inside = (x >= left_edge) & (x <= right_edge)
    contrib = np.zeros(pair_q.shape, dtype=np.float64)

    uniform = inside & ~flat.is_kernel[pair_k]
    if uniform.any():
        contrib[uniform] = flat.inv_width[pair_k[uniform]]

    kernel = inside & flat.is_kernel[pair_k]
    if kernel.any():
        h = flat.h[pair_k]
        in_left = kernel & (x < left_edge + h)
        in_right = kernel & (x > right_edge - h)
        interior = kernel & ~in_left & ~in_right
        values = flat.values
        if interior.any():
            pk = pair_k[interior]
            x_i = x[interior]
            reach = flat.h[pk]
            off_lo = flat.offsets[pk]
            off_hi = flat.offsets[pk + 1]
            lo = np.clip(
                np.searchsorted(values, x_i - reach, side="left"), off_lo, off_hi
            )
            hi = np.clip(
                np.searchsorted(values, x_i + reach, side="right"), off_lo, off_hi
            )
            sums = np.zeros(x_i.shape, dtype=np.float64)
            fast = flat.use_moments[pk]
            if fast.any():
                sums[fast] = epan_pdf_sums(
                    flat.moments,
                    x_i[fast],
                    flat.inv_h[pk[fast]],
                    lo[fast],
                    hi[fast],
                    segment=pk[fast],
                )
            slow = ~fast
            if slow.any():
                x_s = x_i[slow]
                h_s = flat.h[pk[slow]]

                def term(pick: PickFn, i: np.ndarray) -> np.ndarray:
                    return EPANECHNIKOV.pdf((pick(x_s) - values[i]) / pick(h_s))

                sums[slow] = segment_window_sums(lo[slow], hi[slow], term)
            contrib[interior] = sums / (flat.counts[pk] * flat.h[pk])
        for mask, mirrored in ((in_left, False), (in_right, True)):
            if not mask.any():
                continue
            pk = pair_k[mask]
            x_b = x[mask]
            h_b = flat.h[pk]
            if mirrored:
                edge = edges[pk + 1]
                q = (edge - x_b) / h_b
                # Contributing samples lie within 2h of the right edge:
                # a suffix of the bin's samples.
                lo_idx = np.maximum(
                    np.searchsorted(values, edge - 2.0 * h_b, side="left"),
                    flat.offsets[pk],
                )
                hi_idx = flat.offsets[pk + 1]
            else:
                edge = edges[pk]
                q = (x_b - edge) / h_b
                lo_idx = flat.offsets[pk]
                hi_idx = np.minimum(
                    np.searchsorted(values, edge + 2.0 * h_b, side="right"),
                    flat.offsets[pk + 1],
                )
            sign = -1.0 if mirrored else 1.0

            def boundary_term(
                pick: PickFn,
                i: np.ndarray,
                _sign: float = sign,
                _x: np.ndarray = x_b,
                _q: np.ndarray = q,
                _h: np.ndarray = h_b,
            ) -> np.ndarray:
                t = _sign * (pick(_x) - values[i]) / pick(_h)
                return boundary_kernel_pdf(t, pick(_q))

            sums = segment_window_sums(lo_idx, hi_idx, boundary_term)
            contrib[mask] = sums / (flat.counts[pk] * h_b)

    weighted = contrib * flat.coeff[pair_k]
    populated = counts > 0
    totals[populated] = np.add.reduceat(weighted, prefix[populated])
    return totals
