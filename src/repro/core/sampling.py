"""Pure sampling: the baseline selectivity estimator.

The fraction of sample points falling inside the query range is a
consistent estimator of the selectivity with convergence rate
``O(n^(-1/2))`` (paper §2) — the slowest of all methods compared, which
is exactly why the paper builds histogram and kernel estimators on top
of the same sample.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import SelectivityEstimator, validate_query, validate_query_batch, validate_sample
from repro.data.domain import Interval


class SamplingEstimator(SelectivityEstimator):
    """Estimate ``sigma(a, b)`` as ``#{X_i in [a, b]} / n``.

    Parameters
    ----------
    sample:
        The sample set drawn from the relation.
    domain:
        Optional attribute domain for input validation.
    """

    def __init__(self, sample: np.ndarray, domain: Interval | None = None) -> None:
        values = validate_sample(sample, domain)
        self._sorted = np.sort(values)
        self._domain = domain

    @property
    def sample_size(self) -> int:
        return int(self._sorted.size)

    @property
    def domain(self) -> Interval | None:
        """Attribute domain the estimator was declared over, if any."""
        return self._domain

    def selectivity(self, a: float, b: float) -> float:
        a, b = validate_query(a, b)
        lo = np.searchsorted(self._sorted, a, side="left")
        hi = np.searchsorted(self._sorted, b, side="right")
        return float(hi - lo) / self._sorted.size

    def selectivities(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a, b = validate_query_batch(a, b)
        lo = np.searchsorted(self._sorted, a, side="left")
        hi = np.searchsorted(self._sorted, b, side="right")
        return (hi - lo) / self._sorted.size

    def standard_error(self, selectivity: float) -> float:
        """Binomial standard error of the estimate at a true selectivity.

        Documents the ``O(n^(-1/2))`` convergence rate the paper cites:
        ``sqrt(sigma * (1 - sigma) / n)``.
        """
        if not 0.0 <= selectivity <= 1.0:
            raise ValueError(f"selectivity must be in [0, 1], got {selectivity}")
        return float(np.sqrt(selectivity * (1.0 - selectivity) / self.sample_size))
