"""Query feedback for kernel estimators (paper §6, third item).

The paper's exact sentence: "we will include the knowledge of previous
queries to improve the quality of kernel estimators".  The histogram
variant (:mod:`repro.feedback.adaptive`) redistributes bin masses; the
kernel variant here keeps the *samples* and reweights them:

* each sample ``X_i`` carries a weight ``w_i`` (initially ``1/n``),
* the estimator is the weighted kernel sum
  ``sigma_hat(a,b) = sum_i w_i * [C((b-X_i)/h) - C((a-X_i)/h)]``,
* after a query executes, the weights of the samples responsible for
  the estimate inside the range are scaled multiplicatively towards
  the observed truth and renormalized —
  a multiplicative-weights update, damped by a learning rate.

Reweighting preserves everything that makes the kernel estimator good
(smoothness, boundary behaviour, exact primitives) while letting the
workload correct what the sample got wrong — e.g. a sample that
under-represents a hot region.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import (
    DensityEstimator,
    InvalidQueryError,
    InvalidSampleError,
    validate_query,
    validate_sample,
    validate_query_batch,
)
from repro.core.kernel.estimator import PickFn, segment_window_sums
from repro.core.kernel.functions import EPANECHNIKOV, KernelFunction, get_kernel
from repro.data.domain import Interval
from repro.telemetry import get_telemetry
from repro.telemetry.quality import record_quality


class FeedbackKernelEstimator(DensityEstimator):
    """A kernel estimator whose sample weights learn from feedback.

    Parameters
    ----------
    sample:
        Sample set (reflected at the domain boundaries internally).
    bandwidth:
        Kernel bandwidth ``h``.
    domain:
        Attribute domain (required: reflection boundary treatment).
    kernel:
        Kernel function.
    learning_rate:
        Fraction of each observed log-discrepancy applied per update,
        in ``(0, 1]``.
    """

    def __init__(
        self,
        sample: np.ndarray,
        bandwidth: float,
        domain: Interval,
        kernel: "KernelFunction | str" = EPANECHNIKOV,
        learning_rate: float = 0.5,
    ) -> None:
        if not 0.0 < learning_rate <= 1.0:
            raise InvalidSampleError(
                f"learning_rate must be in (0, 1], got {learning_rate}"
            )
        values = np.sort(validate_sample(sample, domain))
        if bandwidth <= 0 or not np.isfinite(bandwidth):
            raise InvalidSampleError(f"bandwidth must be positive, got {bandwidth}")
        self._kernel = get_kernel(kernel)
        self._domain = domain
        self._h = float(bandwidth)
        self._n = int(values.size)
        self._rate = float(learning_rate)

        reach = self._h * self._kernel.support
        left = values[values < domain.low + reach]
        right = values[values > domain.high - reach]
        self._points = np.concatenate(
            [values, 2.0 * domain.low - left, 2.0 * domain.high - right]
        )
        # Mirror bookkeeping: each reflected copy shares its source's
        # weight, so updates touch both together.
        self._source = np.concatenate(
            [
                np.arange(values.size),
                np.flatnonzero(values < domain.low + reach),
                np.flatnonzero(values > domain.high - reach),
            ]
        )
        order = np.argsort(self._points, kind="stable")
        self._points = self._points[order]
        self._source = self._source[order]
        self._weights = np.full(self._n, 1.0 / self._n)
        self._updates = 0

    @property
    def sample_size(self) -> int:
        return self._n

    @property
    def domain(self) -> Interval:
        """Attribute domain."""
        return self._domain

    @property
    def bandwidth(self) -> float:
        """Kernel bandwidth ``h``."""
        return self._h

    @property
    def updates(self) -> int:
        """Feedback observations consumed."""
        return self._updates

    @property
    def weights(self) -> np.ndarray:
        """Current per-sample weights (copy; sums to 1)."""
        return self._weights.copy()

    @property
    def distribution_shift(self) -> float:
        """Total-variation distance from the uniform build-time weights.

        0 means feedback has not reweighted anything; emitted as the
        ``drift.feedback.shift.FeedbackKernelEstimator`` gauge in
        traced runs.
        """
        return float(0.5 * np.abs(self._weights - 1.0 / self._n).sum())

    def _per_sample_mass(self, a: float, b: float) -> np.ndarray:
        """Unweighted kernel mass of ``[a, b]`` per stored point."""
        return self._kernel.mass_between(
            (a - self._points) / self._h, (b - self._points) / self._h
        )

    def selectivity(self, a: float, b: float) -> float:
        a, b = validate_query(a, b)
        a = max(a, self._domain.low)
        b = min(b, self._domain.high)
        if a > b:
            return 0.0
        mass = self._per_sample_mass(a, b)
        total = float(self._weights[self._source] @ mass)
        return float(np.clip(total, 0.0, 1.0))

    def _weighted_cdf_sums(self, x: np.ndarray) -> np.ndarray:
        """``sum_i w_i * C((x_j - X_i) / h)`` for every point of flat ``x``.

        The weighted analogue of the plain kernel estimator's windowed
        CDF sums: points more than one kernel reach below ``x``
        contribute their full weight (via a prefix sum over the sorted
        points), points above contribute 0, and only the window around
        ``x`` evaluates the kernel primitive.  The weight prefix is
        recomputed per call because :meth:`observe` reweights.
        """
        points, h = self._points, self._h
        weights = self._weights[self._source]
        prefix = np.concatenate(([0.0], np.cumsum(weights)))
        reach = h * self._kernel.support
        lo = np.searchsorted(points, x - reach, side="left")
        hi = np.searchsorted(points, x + reach, side="right")
        inv_h = 1.0 / h

        def term(pick: PickFn, i: np.ndarray) -> np.ndarray:
            t = pick(x)
            t -= points[i]
            t *= inv_h
            return weights[i] * self._kernel.cdf(t)

        return prefix[lo] + segment_window_sums(lo, hi, term)

    def selectivities(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorized weighted-kernel batch path (no per-query loop)."""
        a, b = validate_query_batch(a, b)
        shape = np.broadcast(a, b).shape
        lo = np.maximum(np.ravel(np.broadcast_to(a, shape)), self._domain.low)
        hi = np.minimum(np.ravel(np.broadcast_to(b, shape)), self._domain.high)
        nonempty = lo <= hi
        lo = np.where(nonempty, lo, self._domain.low)
        hi = np.where(nonempty, hi, self._domain.low)
        totals = self._weighted_cdf_sums(hi) - self._weighted_cdf_sums(lo)
        out = np.where(nonempty, np.clip(totals, 0.0, 1.0), 0.0)
        return out.reshape(shape)

    def density(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_1d(np.asarray(x, dtype=np.float64))
        out = np.empty(x.shape, dtype=np.float64)
        flat_x, flat_out = x.ravel(), out.ravel()
        for j, point in enumerate(flat_x):
            contributions = self._kernel.pdf((point - self._points) / self._h)
            flat_out[j] = float(
                self._weights[self._source] @ contributions
            ) / self._h
        inside = (x >= self._domain.low) & (x <= self._domain.high)
        return np.where(inside, out, 0.0)

    def observe(self, a: float, b: float, true_selectivity: float) -> float:
        """Feed back one executed query; returns the pre-update error.

        Weights of samples contributing mass inside ``[a, b]`` are
        scaled towards the ratio ``truth / estimate`` (exponentiated by
        the learning rate and each sample's share of contribution),
        then renormalized.
        """
        a, b = validate_query(a, b)
        if not 0.0 <= true_selectivity <= 1.0:
            raise InvalidQueryError(
                f"true selectivity must be in [0, 1], got {true_selectivity}"
            )
        estimate = self.selectivity(a, b)
        error = true_selectivity - estimate
        # This estimator is *explicitly* adaptive: observe() is its whole
        # point, callers own one instance per workload, and it is never
        # served from the shared statistics cache.
        self._updates += 1  # repro: allow[frozen-after-build] — adaptive by design; not cache-shared
        if estimate <= 0.0 and true_selectivity <= 0.0:
            self._record_feedback_telemetry(estimate, true_selectivity)
            return float(error)

        mass = self._per_sample_mass(max(a, self._domain.low), min(b, self._domain.high))
        # Fraction of each source sample's kernel mass inside the range
        # (mirrored copies fold into their source).
        inside_fraction = np.zeros(self._n, dtype=np.float64)
        np.add.at(inside_fraction, self._source, mass)
        inside_fraction = np.clip(inside_fraction, 0.0, 1.0)

        if estimate > 0.0:
            ratio = (true_selectivity + 1e-12) / (estimate + 1e-12)
            factors = ratio ** (self._rate * inside_fraction)
        else:
            # Nothing currently contributes but the truth is positive:
            # boost the nearest samples uniformly by their proximity.
            factors = 1.0 + self._rate * inside_fraction
        self._weights = self._weights * factors  # repro: allow[frozen-after-build] — adaptive by design; not cache-shared
        total = self._weights.sum()
        if total > 0:
            self._weights /= total  # repro: allow[frozen-after-build] — adaptive by design; not cache-shared
        self._record_feedback_telemetry(estimate, true_selectivity)
        return float(error)

    def _record_feedback_telemetry(self, estimate: float, truth: float) -> None:
        telemetry = get_telemetry()
        if telemetry.enabled:
            record_quality(estimate, truth, key=type(self).__name__)
            telemetry.metrics.set_gauge(
                f"drift.feedback.shift.{type(self).__name__}",
                self.distribution_shift,
            )

    def observe_workload(
        self, a: np.ndarray, b: np.ndarray, true_selectivities: np.ndarray
    ) -> np.ndarray:
        """Feed back a whole executed workload; returns per-query errors."""
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        true = np.asarray(true_selectivities, dtype=np.float64)
        if not (a.shape == b.shape == true.shape):
            raise InvalidQueryError("workload arrays must be parallel")
        return np.array([self.observe(x, y, t) for x, y, t in zip(a, b, true)])
