"""Query-feedback-adaptive selectivity estimation (paper §6, future work).

The paper's third future-work item: "we will include the knowledge of
previous queries to improve the quality of kernel estimators", citing
Chen & Roussopoulos (SIGMOD 1994).  :mod:`repro.feedback.adaptive`
implements that idea over the histogram machinery: an estimator that
starts from any prior (uniform, or a sample-built histogram) and
refines its bin frequencies from observed ``(query, true result
size)`` pairs as the workload executes.
"""

from repro.feedback.adaptive import AdaptiveHistogram
from repro.feedback.kernel_feedback import FeedbackKernelEstimator
from repro.online.learning import OnlineLearningEstimator

__all__ = ["AdaptiveHistogram", "FeedbackKernelEstimator", "OnlineLearningEstimator"]
