"""Adaptive selectivity estimation from query feedback.

After a query executes, the system knows its *exact* result size for
free.  Chen & Roussopoulos (1994) use that feedback to refine an
approximate distribution without ever re-scanning the data; this
module implements the idea over an equi-width frequency vector:

1. Estimate the query's selectivity from the current bin frequencies.
2. Observe the true selectivity.
3. Distribute the error over the bins the query overlaps,
   proportionally to each bin's overlapped mass (so already-heavy
   bins absorb more of a positive error), damped by a learning rate.

Frequencies stay non-negative; total mass stays 1 by construction —
the update is a redistribution between the query region and its
complement.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import InvalidQueryError, InvalidSampleError, validate_query, validate_query_batch
from repro.data.domain import Interval
from repro.telemetry import get_telemetry
from repro.telemetry.quality import record_quality


class AdaptiveHistogram:
    """An equi-width frequency model refined by query feedback.

    Parameters
    ----------
    domain:
        Attribute domain.
    bins:
        Grid resolution.
    prior:
        Optional initial bin masses (length ``bins``, summing to 1).
        Defaults to the uniform assumption — the interesting case,
        because feedback then has to discover the distribution from
        nothing.
    learning_rate:
        Fraction of each observed error applied per update (0, 1].
    """

    def __init__(
        self,
        domain: Interval,
        bins: int = 64,
        prior: np.ndarray | None = None,
        learning_rate: float = 0.5,
    ) -> None:
        if bins < 1:
            raise InvalidSampleError(f"need at least one bin, got {bins}")
        if not 0.0 < learning_rate <= 1.0:
            raise InvalidSampleError(
                f"learning_rate must be in (0, 1], got {learning_rate}"
            )
        self._domain = domain
        self._edges = np.linspace(domain.low, domain.high, bins + 1)
        self._widths = np.diff(self._edges)
        if prior is None:
            mass = np.full(bins, 1.0 / bins)
        else:
            mass = np.asarray(prior, dtype=np.float64).copy()
            if mass.shape != (bins,):
                raise InvalidSampleError(
                    f"prior must have shape ({bins},), got {mass.shape}"
                )
            if np.any(mass < 0) or not np.isclose(mass.sum(), 1.0):
                raise InvalidSampleError("prior must be non-negative and sum to 1")
        self._mass = mass
        # Build-time masses, kept to report how far feedback has moved
        # the model (the drift.feedback.shift.<Class> gauge).
        self._initial_mass = mass.copy()
        self._rate = float(learning_rate)
        self._updates = 0

    @property
    def sample_size(self) -> int:
        """Feedback observations consumed so far."""
        return self._updates

    @property
    def domain(self) -> Interval:
        """Attribute domain."""
        return self._domain

    @property
    def bin_masses(self) -> np.ndarray:
        """Current bin probability masses (copy)."""
        return self._mass.copy()

    def _overlap(self, a: float, b: float) -> np.ndarray:
        """Covered fraction of each bin by ``[a, b]``."""
        covered = np.clip(
            np.minimum(b, self._edges[1:]) - np.maximum(a, self._edges[:-1]), 0.0, None
        )
        return covered / self._widths

    def selectivity(self, a: float, b: float) -> float:
        """Estimated selectivity under the current frequencies."""
        a, b = validate_query(a, b)
        return float(np.clip(self._overlap(a, b) @ self._mass, 0.0, 1.0))

    def selectivities(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`selectivity`."""
        a, b = validate_query_batch(a, b)
        out = np.empty(a.shape, dtype=np.float64)
        flat_a, flat_b, flat_out = a.ravel(), b.ravel(), out.ravel()
        for i in range(flat_a.size):
            flat_out[i] = self.selectivity(flat_a[i], flat_b[i])
        return out

    def observe(self, a: float, b: float, true_selectivity: float) -> float:
        """Feed back one executed query; returns the pre-update error.

        The mass moved into (or out of) the query region is taken from
        (or given to) the complement proportionally to the existing
        masses, so the total stays exactly 1.
        """
        a, b = validate_query(a, b)
        if not 0.0 <= true_selectivity <= 1.0:
            raise InvalidQueryError(
                f"true selectivity must be in [0, 1], got {true_selectivity}"
            )
        overlap = self._overlap(a, b)
        inside = overlap @ self._mass
        error = true_selectivity - inside
        step = self._rate * error

        inside_mass = overlap * self._mass
        outside_mass = self._mass - inside_mass
        inside_total = inside_mass.sum()
        outside_total = outside_mass.sum()

        if step > 0 and outside_total > 0:
            # Pull mass from the complement into the query region,
            # proportionally on both sides.
            add = inside_mass / inside_total * step if inside_total > 0 else (
                overlap * self._widths / (overlap @ self._widths) * step
            )
            remove = outside_mass / outside_total * step
            self._mass = self._mass + add - remove
        elif step < 0 and inside_total > 0:
            remove = inside_mass / inside_total * (-step)
            add = (
                outside_mass / outside_total * (-step)
                if outside_total > 0
                else np.zeros_like(self._mass)
            )
            self._mass = self._mass - remove + add
        self._mass = np.clip(self._mass, 0.0, None)
        total = self._mass.sum()
        if total > 0:
            self._mass /= total
        self._updates += 1
        telemetry = get_telemetry()
        if telemetry.enabled:
            record_quality(inside, true_selectivity, key=type(self).__name__)
            telemetry.metrics.set_gauge(
                f"drift.feedback.shift.{type(self).__name__}",
                self.distribution_shift,
            )
        return float(error)

    @property
    def distribution_shift(self) -> float:
        """Total-variation distance from the build-time bin masses.

        0 means feedback has not moved the model; 1 is total
        displacement — an intrinsic measure of how much the workload
        disagreed with the prior, emitted as the
        ``drift.feedback.shift.AdaptiveHistogram`` gauge in traced runs.
        """
        return float(0.5 * np.abs(self._mass - self._initial_mass).sum())

    def observe_workload(
        self, a: np.ndarray, b: np.ndarray, true_selectivities: np.ndarray
    ) -> np.ndarray:
        """Feed back a whole executed workload; returns per-query errors."""
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        true = np.asarray(true_selectivities, dtype=np.float64)
        if not (a.shape == b.shape == true.shape):
            raise InvalidQueryError("workload arrays must be parallel")
        return np.array(
            [self.observe(x, y, t) for x, y, t in zip(a, b, true)]
        )
