"""Attribute domains.

The paper studies *metric* attributes whose domain is an interval of
the real line, instantiated in the experiments as the integer grid
``[0, 2**p - 1]`` where the exponent ``p`` controls the domain
cardinality (paper §5.1.1).  :class:`Interval` models the continuous
view every estimator works on; :class:`IntegerDomain` adds the grid
semantics (cardinality, snapping real values to grid points).
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class Interval:
    """A closed real interval ``[low, high]``.

    This is the continuous attribute domain of paper §2: range queries
    and density estimators are defined over it.
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        if not (np.isfinite(self.low) and np.isfinite(self.high)):
            raise ValueError(f"interval bounds must be finite, got [{self.low}, {self.high}]")
        if self.low >= self.high:
            raise ValueError(f"interval must have positive width, got [{self.low}, {self.high}]")

    @property
    def width(self) -> float:
        """Length of the interval."""
        return self.high - self.low

    @property
    def center(self) -> float:
        """Midpoint of the interval."""
        return 0.5 * (self.low + self.high)

    def contains(self, x: float | np.ndarray) -> bool | np.ndarray:
        """Whether ``x`` (scalar or array) lies inside the interval."""
        x = np.asarray(x)
        result = (x >= self.low) & (x <= self.high)
        return bool(result) if result.ndim == 0 else result

    def clip(self, x: float | np.ndarray) -> float | np.ndarray:
        """Clamp ``x`` into the interval."""
        clipped = np.clip(x, self.low, self.high)
        return float(clipped) if np.ndim(x) == 0 else clipped

    def intersect(self, other: "Interval") -> "Interval | None":
        """Intersection with another interval, or ``None`` when disjoint
        or degenerate (touching at a single point)."""
        low = max(self.low, other.low)
        high = min(self.high, other.high)
        if low >= high:
            return None
        return Interval(low, high)

    def fraction(self, a: float, b: float) -> float:
        """Fraction of this interval covered by ``[a, b]``.

        This is the overlap functional ``psi_i(a, b) / h_i`` from the
        histogram selectivity formula (paper eq. 4), normalized by the
        interval width.
        """
        if b < self.low or a > self.high:
            return 0.0
        return (min(b, self.high) - max(a, self.low)) / self.width

    def subdivide(self, boundaries: np.ndarray) -> list["Interval"]:
        """Split the interval at the given interior boundary points.

        Boundaries outside the open interval are ignored; duplicates
        are collapsed.  The returned pieces tile the interval.
        """
        pts = np.asarray(boundaries, dtype=np.float64)
        pts = np.unique(pts[(pts > self.low) & (pts < self.high)])
        edges = np.concatenate(([self.low], pts, [self.high]))
        return [Interval(edges[i], edges[i + 1]) for i in range(edges.size - 1)]


class IntegerDomain(Interval):
    """The paper's integer attribute domain ``{0, 1, ..., 2**p - 1}``.

    The continuous hull is ``[0, 2**p - 1]``; estimators operate on the
    hull while data generators snap values to the grid, which is what
    creates duplicates on small domains (the effect studied in the
    paper's Fig. 5).
    """

    def __init__(self, p: int) -> None:
        if not isinstance(p, (int, np.integer)):
            raise TypeError(f"domain exponent p must be an integer, got {type(p).__name__}")
        if p < 1:
            raise ValueError(f"domain exponent p must be >= 1, got {p}")
        object.__setattr__(self, "p", int(p))
        super().__init__(0.0, float(2**p - 1))

    p: int

    @property
    def cardinality(self) -> int:
        """Number of distinct grid values, ``2**p``."""
        return 2**self.p

    def snap(self, x: np.ndarray) -> np.ndarray:
        """Round real values to the nearest grid point, clipped to the domain.

        This is the "mapping to the integer domain" step of §5.1.1: the
        generators first draw from a continuous distribution and then
        discretize.
        """
        x = np.asarray(x, dtype=np.float64)
        return np.clip(np.rint(x), self.low, self.high)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IntegerDomain(p={self.p})"

    def __reduce__(self) -> "tuple[type[IntegerDomain], tuple[int]]":
        return (IntegerDomain, (self.p,))
