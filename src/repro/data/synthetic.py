"""Synthetic data files: Uniform, Normal and Exponential (paper §5.1.1).

Each generator draws from a continuous distribution, maps the values
onto the integer grid ``[0, 2**p - 1]`` and rejects records that fall
outside the domain, exactly as the paper describes:

* ``u(p)`` — Uniform over the whole domain.
* ``n(p)`` — standard Normal, mapped so the mean sits at the domain
  center.  Records outside the domain are not considered (redrawn).
* ``e(p)`` — Exponential with high density at the left boundary; the
  paper uses it as a stand-in for the Zipf distribution.

The continuous-to-grid mapping is what produces duplicates on small
domains: ``n(10)`` packs 100,000 records onto 1,024 grid values, the
regime where histogram errors drop (paper Fig. 5).

**Scale anchoring.**  The Normal and Exponential scales are *absolute*
— fixed fractions of the width of the largest paper domain
(``p = 20``) — rather than relative to each file's own domain.  Two
observations force this reading of §5.1.1: the paper explicitly
discards records falling outside the domain (pointless if the scale
shrank with the domain), and Fig. 5 reports *lower* errors on smaller
domains, which happens exactly because a small domain keeps only the
flat center slice of the bell curve (nearly uniform, easy to
estimate) while ``n(20)`` holds the full bell.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.data.domain import IntegerDomain

#: Domain exponent the absolute scales are anchored to (the largest
#: domain used by the paper's synthetic files).
REFERENCE_P = 20

#: Width of the reference domain.
_REFERENCE_WIDTH = float(2**REFERENCE_P - 1)

#: Standard deviation of the Normal files, as a fraction of the
#: *reference* domain width.  1/8 keeps ~four sigma inside the p = 20
#: domain, so ``n(20)`` carries the full bell while smaller domains
#: truncate to the flat center slice.
NORMAL_SIGMA_FRACTION = 0.125

#: Mean of the Exponential files as a fraction of the *reference*
#: domain width.  1/8 gives the strong left-skew the paper wants from
#: its Zipf substitute while keeping most of the tail inside p = 20.
EXPONENTIAL_SCALE_FRACTION = 0.125


def _rejection_fill(
    domain: IntegerDomain,
    n_records: int,
    draw: Callable[[np.random.Generator, int], np.ndarray],
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw until ``n_records`` values land inside the domain.

    ``draw(rng, k)`` must return ``k`` continuous values; out-of-domain
    values are rejected *before* snapping, mirroring the paper's "we
    did not consider data records that were outside of the domain".
    """
    out = np.empty(n_records, dtype=np.float64)
    filled = 0
    acceptance = 1.0
    while filled < n_records:
        need = n_records - filled
        # Over-draw based on the observed acceptance rate so heavily
        # truncated files (e.g. the Normal on a small domain) fill in
        # a handful of passes instead of thousands.
        batch = draw(rng, int(need / acceptance * 1.2) + 64)
        kept = batch[(batch >= domain.low) & (batch <= domain.high)]
        acceptance = max(kept.size / batch.size, 1e-4)
        take = min(kept.size, need)
        out[filled : filled + take] = kept[:take]
        filled += take
    return domain.snap(out)


def uniform(p: int, n_records: int, rng: np.random.Generator) -> np.ndarray:
    """Generate the ``u(p)`` file: uniform integers over the domain."""
    domain = IntegerDomain(p)
    values = rng.integers(0, domain.cardinality, size=n_records)
    return values.astype(np.float64)


def normal(
    p: int,
    n_records: int,
    rng: np.random.Generator,
    *,
    sigma_fraction: float = NORMAL_SIGMA_FRACTION,
) -> np.ndarray:
    """Generate the ``n(p)`` file: Normal centered on the domain."""
    if sigma_fraction <= 0:
        raise ValueError(f"sigma_fraction must be positive, got {sigma_fraction}")
    domain = IntegerDomain(p)
    mean = domain.center
    sigma = sigma_fraction * _REFERENCE_WIDTH

    def draw(generator: np.random.Generator, k: int) -> np.ndarray:
        return generator.normal(mean, sigma, size=k)

    return _rejection_fill(domain, n_records, draw, rng)


def exponential(
    p: int,
    n_records: int,
    rng: np.random.Generator,
    *,
    scale_fraction: float = EXPONENTIAL_SCALE_FRACTION,
) -> np.ndarray:
    """Generate the ``e(p)`` file: Exponential anchored at the left boundary."""
    if scale_fraction <= 0:
        raise ValueError(f"scale_fraction must be positive, got {scale_fraction}")
    domain = IntegerDomain(p)
    scale = scale_fraction * _REFERENCE_WIDTH

    def draw(generator: np.random.Generator, k: int) -> np.ndarray:
        return generator.exponential(scale, size=k)

    return _rejection_fill(domain, n_records, draw, rng)
