"""Simulated census-income "instance weight" file (paper files ``iw``/``ci``).

The paper's last real data set is the instance-weight attribute of the
census-income KDD file: 199,523 positive weights on a ``p = 21`` domain.
Instance weights are produced by a post-stratified sampling design, so
the attribute mixes

* a **continuous skewed bulk** (most strata get an individually
  calibrated weight), and
* a handful of **very heavy repeated values** (large demographic strata
  share one weight).

The stand-in reproduces both features.  What matters for the paper's
experiments is (a) the mass is concentrated on a small part of the
large domain, which makes the one-bin uniform estimator collapse
(≈600 % MRE in Fig. 8), and (b) the distribution is neither smooth nor
block-structured, which makes all of the serious estimators perform
about equally (Fig. 12).
"""

from __future__ import annotations

import numpy as np

from repro.data.domain import IntegerDomain

#: Fraction of records carrying one of the repeated heavy weights.
SPIKE_MASS = 0.30

#: Relative positions (as fractions of the domain width) and relative
#: popularity of the heavy repeated weights.
SPIKES: tuple[tuple[float, float], ...] = (
    (0.052, 0.30),
    (0.061, 0.22),
    (0.075, 0.16),
    (0.093, 0.12),
    (0.118, 0.09),
    (0.140, 0.06),
    (0.190, 0.03),
    (0.260, 0.02),
)

#: Log-normal shape of the continuous bulk.  The median sits near 7 %
#: of the domain and the right tail stretches far into it, mirroring
#: the long-tailed weight distribution of the real file.
BULK_MEDIAN_FRACTION = 0.07
BULK_SIGMA = 0.55


def instance_weight(p: int, n_records: int, rng: np.random.Generator) -> np.ndarray:
    """Generate the simulated instance-weight file on ``[0, 2**p - 1]``."""
    domain = IntegerDomain(p)
    n_spikes = rng.binomial(n_records, SPIKE_MASS)
    n_bulk = n_records - n_spikes

    positions = np.array([s[0] for s in SPIKES], dtype=np.float64)
    popularity = np.array([s[1] for s in SPIKES], dtype=np.float64)
    popularity /= popularity.sum()
    spike_values = domain.low + positions * domain.width
    spikes = spike_values[rng.choice(positions.size, size=n_spikes, p=popularity)]

    mu = np.log(BULK_MEDIAN_FRACTION * domain.width)
    bulk = np.empty(n_bulk, dtype=np.float64)
    filled = 0
    while filled < n_bulk:
        batch = rng.lognormal(mu, BULK_SIGMA, size=(n_bulk - filled) * 2 + 8)
        batch = batch[(batch >= domain.low) & (batch <= domain.high)]
        take = min(batch.size, n_bulk - filled)
        bulk[filled : filled + take] = batch[:take]
        filled += take

    values = np.concatenate([spikes, bulk])
    rng.shuffle(values)
    return domain.snap(values)
