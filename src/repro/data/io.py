"""Materializing the test environment (paper §5.1: "all the files are
freely available").

The paper published its data and query files for download; this module
provides the same service for the reproduction: export any registry
relation or generated query file to disk (compressed ``.npz`` with a
small JSON header) and load it back, so external tools — or a reviewer
— can consume exactly the bytes the experiments ran on.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.core.base import InvalidSampleError
from repro.data.domain import IntegerDomain, Interval
from repro.data.relation import Relation
from repro.workload.queries import QueryFile

_FORMAT_VERSION = 1


def save_relation(relation: Relation, path: "str | pathlib.Path") -> pathlib.Path:
    """Write a relation to ``<path>`` as a compressed ``.npz`` archive."""
    path = pathlib.Path(path)
    domain = relation.domain
    header = {
        "format": _FORMAT_VERSION,
        "kind": "relation",
        "name": relation.name,
        "domain_low": domain.low,
        "domain_high": domain.high,
        "domain_p": getattr(domain, "p", None),
    }
    actual = path if path.suffix == ".npz" else path.parent / (path.name + ".npz")
    np.savez_compressed(actual, header=json.dumps(header), values=relation.values)
    return actual


def load_relation(path: "str | pathlib.Path") -> Relation:
    """Read a relation written by :func:`save_relation`."""
    with np.load(pathlib.Path(path), allow_pickle=False) as archive:
        header = json.loads(str(archive["header"]))
        if header.get("kind") != "relation":
            raise InvalidSampleError(f"{path} does not contain a relation")
        values = archive["values"]
    if header.get("domain_p") is not None:
        domain: Interval = IntegerDomain(int(header["domain_p"]))
    else:
        domain = Interval(float(header["domain_low"]), float(header["domain_high"]))
    return Relation(values, domain, name=header.get("name", ""))


def save_query_file(queries: QueryFile, path: "str | pathlib.Path") -> pathlib.Path:
    """Write a query file to ``<path>`` as a compressed ``.npz`` archive."""
    path = pathlib.Path(path)
    header = {
        "format": _FORMAT_VERSION,
        "kind": "query_file",
        "dataset": queries.dataset,
        "size_fraction": queries.size_fraction,
        "relation_size": queries.relation_size,
    }
    actual = path if path.suffix == ".npz" else path.parent / (path.name + ".npz")
    np.savez_compressed(
        actual,
        header=json.dumps(header),
        a=queries.a,
        b=queries.b,
        true_counts=queries.true_counts,
    )
    return actual


def load_query_file(path: "str | pathlib.Path") -> QueryFile:
    """Read a query file written by :func:`save_query_file`."""
    with np.load(pathlib.Path(path), allow_pickle=False) as archive:
        header = json.loads(str(archive["header"]))
        if header.get("kind") != "query_file":
            raise InvalidSampleError(f"{path} does not contain a query file")
        return QueryFile(
            archive["a"],
            archive["b"],
            archive["true_counts"],
            int(header["relation_size"]),
            size_fraction=header.get("size_fraction"),
            dataset=header.get("dataset", ""),
        )


def export_test_environment(
    directory: "str | pathlib.Path",
    datasets: "list[str] | None" = None,
    query_sizes: "tuple[float, ...]" = (0.01, 0.02, 0.05, 0.10),
    n_queries: int = 1_000,
    seed: int = 0,
) -> list[pathlib.Path]:
    """Materialize the paper's full test environment on disk.

    Writes every requested data file plus its four size-separated
    query files, mirroring the download page the paper pointed to.
    Returns the written paths.
    """
    from repro.data import registry
    from repro.workload.queries import generate_query_file

    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if datasets is None:
        datasets = registry.dataset_names()
    written: list[pathlib.Path] = []
    for name in datasets:
        relation = registry.load(name, seed=seed)
        safe = name.replace("(", "_").replace(")", "")
        written.append(save_relation(relation, directory / f"{safe}.npz"))
        for size in query_sizes:
            queries = generate_query_file(
                relation, size, n_queries=n_queries, seed=seed + int(size * 10_000)
            )
            written.append(
                save_query_file(queries, directory / f"{safe}_q{size:.2f}.npz")
            )
    return written
