"""Simulated TIGER/Line data files (arap1, arap2, rr1(p), rr2(p)).

The paper's real data are 1-D projections of line endpoints from the
U.S. Census TIGER/Line files (county Arapahoe and an L.A.-area
railroads & rivers extract).  Those files are not redistributable, so
this module generates synthetic stand-ins with the structural features
the paper's conclusions rest on (DESIGN.md §3):

* **piecewise-dense regions with sharp edges** — city cores, county
  boundaries — which give the true density pronounced *change points*
  (the regime where the hybrid estimator wins, paper Fig. 12);
* **street-grid point masses** — coordinates repeated on grid lines —
  which give duplicates even on a large integer domain;
* **narrow linear features** (rivers, rail corridors) projecting to
  high, narrow density bands.

Each file is described declaratively as a mixture of components and
rendered by :func:`render_mixture`; the concrete layouts for the four
paper files are in :data:`ARAPAHOE_1`, :data:`ARAPAHOE_2`,
:data:`RAILROADS_RIVERS_1` and :data:`RAILROADS_RIVERS_2`.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.data.domain import IntegerDomain


@dataclasses.dataclass(frozen=True)
class UniformBlock:
    """Uniform density over ``[lo, hi]`` (fractions of the domain width).

    Blocks are the source of genuine density change points: the true
    PDF jumps at both edges.
    """

    lo: float
    hi: float
    weight: float

    def draw(self, k: int, domain: IntegerDomain, rng: np.random.Generator) -> np.ndarray:
        lo = domain.low + self.lo * domain.width
        hi = domain.low + self.hi * domain.width
        return rng.uniform(lo, hi, size=k)


@dataclasses.dataclass(frozen=True)
class GaussCluster:
    """A Gaussian town/cluster at ``center`` with spread ``sigma``
    (fractions of the domain width), truncated to the domain."""

    center: float
    sigma: float
    weight: float

    def draw(self, k: int, domain: IntegerDomain, rng: np.random.Generator) -> np.ndarray:
        mean = domain.low + self.center * domain.width
        sigma = self.sigma * domain.width
        out = np.empty(k, dtype=np.float64)
        filled = 0
        while filled < k:
            batch = rng.normal(mean, sigma, size=(k - filled) * 2 + 8)
            batch = batch[(batch >= domain.low) & (batch <= domain.high)]
            take = min(batch.size, k - filled)
            out[filled : filled + take] = batch[:take]
            filled += take
        return out


@dataclasses.dataclass(frozen=True)
class GridSpikes:
    """Point masses on ``n_lines`` evenly spaced street-grid coordinates
    spanning ``[lo, hi]`` (fractions of the domain width).

    Line popularity follows a geometric profile so a few main streets
    dominate, as in real street networks.
    """

    lo: float
    hi: float
    n_lines: int
    weight: float
    decay: float = 0.97

    def draw(self, k: int, domain: IntegerDomain, rng: np.random.Generator) -> np.ndarray:
        lines = domain.low + np.linspace(self.lo, self.hi, self.n_lines) * domain.width
        popularity = self.decay ** np.arange(self.n_lines, dtype=np.float64)
        rng.shuffle(popularity)
        popularity /= popularity.sum()
        picks = rng.choice(self.n_lines, size=k, p=popularity)
        return lines[picks]


@dataclasses.dataclass(frozen=True)
class NarrowBand:
    """A river/rail corridor: a narrow uniform band at ``center`` of
    total width ``width`` (fractions of the domain width)."""

    center: float
    width: float
    weight: float

    def draw(self, k: int, domain: IntegerDomain, rng: np.random.Generator) -> np.ndarray:
        half = 0.5 * self.width * domain.width
        mid = domain.low + self.center * domain.width
        lo = max(domain.low, mid - half)
        hi = min(domain.high, mid + half)
        return rng.uniform(lo, hi, size=k)


Component = UniformBlock | GaussCluster | GridSpikes | NarrowBand


def render_mixture(
    components: tuple[Component, ...],
    p: int,
    n_records: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``n_records`` values from a component mixture and snap them
    onto the ``[0, 2**p - 1]`` integer grid.

    Component weights must sum to 1 (within floating-point tolerance).
    The output is shuffled so record order carries no information.
    """
    weights = np.array([c.weight for c in components], dtype=np.float64)
    if weights.size == 0:
        raise ValueError("mixture needs at least one component")
    if np.any(weights <= 0):
        raise ValueError("component weights must be positive")
    if abs(weights.sum() - 1.0) > 1e-9:
        raise ValueError(f"component weights must sum to 1, got {weights.sum()!r}")

    domain = IntegerDomain(p)
    counts = rng.multinomial(n_records, weights)
    parts = [
        component.draw(int(count), domain, rng)
        for component, count in zip(components, counts)
        if count > 0
    ]
    values = np.concatenate(parts)
    rng.shuffle(values)
    return domain.snap(values)


#: Arapahoe county, first coordinate (paper file ``arap1``, p=21):
#: a dense urban core with street grid, a secondary town, suburban and
#: rural blocks with sharp edges.
ARAPAHOE_1: tuple[Component, ...] = (
    UniformBlock(0.10, 0.28, 0.20),
    UniformBlock(0.28, 0.55, 0.16),
    UniformBlock(0.55, 0.96, 0.09),
    GaussCluster(0.18, 0.016, 0.12),
    GaussCluster(0.43, 0.022, 0.08),
    GridSpikes(0.08, 0.60, 120, 0.26),
    UniformBlock(0.04, 0.97, 0.09),
)

#: Arapahoe county, second coordinate (paper file ``arap2``, p=18):
#: the same county seen along the other axis — a flatter profile with
#: two towns and a coarser street grid.
ARAPAHOE_2: tuple[Component, ...] = (
    UniformBlock(0.05, 0.45, 0.22),
    UniformBlock(0.45, 0.80, 0.14),
    GaussCluster(0.30, 0.025, 0.14),
    GaussCluster(0.62, 0.018, 0.10),
    GridSpikes(0.10, 0.75, 90, 0.24),
    UniformBlock(0.02, 0.95, 0.16),
)

#: L.A.-area railroads & rivers, first coordinate (paper file
#: ``rr1(p)``): narrow corridors over a broad sparse background.
RAILROADS_RIVERS_1: tuple[Component, ...] = (
    NarrowBand(0.12, 0.010, 0.09),
    NarrowBand(0.21, 0.022, 0.11),
    NarrowBand(0.33, 0.006, 0.07),
    NarrowBand(0.45, 0.030, 0.13),
    NarrowBand(0.52, 0.012, 0.08),
    NarrowBand(0.66, 0.018, 0.10),
    NarrowBand(0.79, 0.008, 0.06),
    NarrowBand(0.88, 0.025, 0.08),
    UniformBlock(0.05, 0.95, 0.18),
    GaussCluster(0.48, 0.060, 0.10),
)

#: L.A.-area railroads & rivers, second coordinate (paper file
#: ``rr2(p)``).
RAILROADS_RIVERS_2: tuple[Component, ...] = (
    NarrowBand(0.09, 0.015, 0.10),
    NarrowBand(0.25, 0.008, 0.08),
    NarrowBand(0.38, 0.020, 0.12),
    NarrowBand(0.57, 0.010, 0.09),
    NarrowBand(0.71, 0.028, 0.12),
    NarrowBand(0.84, 0.006, 0.05),
    UniformBlock(0.03, 0.97, 0.22),
    GaussCluster(0.40, 0.050, 0.12),
    GaussCluster(0.70, 0.040, 0.10),
)


def arapahoe(dimension: int, p: int, n_records: int, rng: np.random.Generator) -> np.ndarray:
    """Generate the ``arap1``/``arap2`` stand-in for the given dimension (1 or 2)."""
    if dimension == 1:
        return render_mixture(ARAPAHOE_1, p, n_records, rng)
    if dimension == 2:
        return render_mixture(ARAPAHOE_2, p, n_records, rng)
    raise ValueError(f"dimension must be 1 or 2, got {dimension}")


def railroads_rivers(
    dimension: int, p: int, n_records: int, rng: np.random.Generator
) -> np.ndarray:
    """Generate the ``rr1(p)``/``rr2(p)`` stand-in for the given dimension (1 or 2)."""
    if dimension == 1:
        return render_mixture(RAILROADS_RIVERS_1, p, n_records, rng)
    if dimension == 2:
        return render_mixture(RAILROADS_RIVERS_2, p, n_records, rng)
    raise ValueError(f"dimension must be 1 or 2, got {dimension}")
