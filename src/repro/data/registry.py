"""Named data files: the paper's Table 2 as a loadable registry.

Every file of the paper's test environment is available by its paper
name::

    >>> from repro.data import registry
    >>> rel = registry.load("n(20)")
    >>> rel.size
    100000

Names follow the paper exactly: ``u(p)``, ``n(p)``, ``e(p)`` for the
synthetic files with the exponents listed in Table 2, ``arap1``,
``arap2``, ``rr1(p)``, ``rr2(p)`` for the simulated TIGER/Line files
and ``iw`` for the simulated census instance-weight file (``ci`` is an
alias — the paper uses both labels for the census file).

Loading is deterministic: ``load(name, seed=s)`` always returns the
same records.  The per-name default seeds are fixed so that two
experiments referring to the same file see the same relation, exactly
as the paper's experiments all run against one set of data files.
"""

from __future__ import annotations

import dataclasses
import functools
import re
from typing import Callable

import numpy as np

from repro.data import census, spatial, synthetic
from repro.data.domain import IntegerDomain
from repro.data.relation import Relation


@dataclasses.dataclass(frozen=True)
class DatasetSpec:
    """Static description of one paper data file (one Table 2 row)."""

    name: str
    distribution: str
    p: int
    n_records: int
    generator: Callable[[int, int, np.random.Generator], np.ndarray]
    seed_offset: int


def _specs() -> dict[str, DatasetSpec]:
    table: list[DatasetSpec] = []
    for p in (15, 20):
        table.append(DatasetSpec(f"u({p})", "Uniform", p, 100_000, synthetic.uniform, 100 + p))
    for p in (10, 15, 20):
        table.append(DatasetSpec(f"n({p})", "Normal", p, 100_000, synthetic.normal, 200 + p))
    for p in (15, 20):
        table.append(
            DatasetSpec(f"e({p})", "Exponential", p, 100_000, synthetic.exponential, 300 + p)
        )
    table.append(
        DatasetSpec(
            "arap1",
            "Arapahoe, 1st dim.",
            21,
            52_120,
            functools.partial(spatial.arapahoe, 1),
            401,
        )
    )
    table.append(
        DatasetSpec(
            "arap2",
            "Arapahoe, 2nd dim.",
            18,
            52_120,
            functools.partial(spatial.arapahoe, 2),
            402,
        )
    )
    for p in (12, 22):
        table.append(
            DatasetSpec(
                f"rr1({p})",
                "Rail road & Rivers, 1st dim.",
                p,
                257_942,
                functools.partial(spatial.railroads_rivers, 1),
                500 + p,
            )
        )
        table.append(
            DatasetSpec(
                f"rr2({p})",
                "Rail road & Rivers, 2nd dim.",
                p,
                257_942,
                functools.partial(spatial.railroads_rivers, 2),
                520 + p,
            )
        )
    table.append(
        DatasetSpec("iw", "Instance Weight", 21, 199_523, census.instance_weight, 600)
    )
    return {spec.name: spec for spec in table}


_SPECS = _specs()

#: The paper switches between ``iw`` (Table 2) and ``ci`` (Figs. 8/12)
#: for the census file; accept both.
_ALIASES = {"ci": "iw"}

_NAME_RE = re.compile(r"^[a-z]+[12]?(\(\d+\))?$")


def dataset_names() -> list[str]:
    """All registry names, in Table 2 order."""
    return list(_SPECS)


def spec(name: str) -> DatasetSpec:
    """Look up the :class:`DatasetSpec` for a (possibly aliased) name."""
    key = name.strip()
    key = _ALIASES.get(key, key)
    if key not in _SPECS:
        if not _NAME_RE.match(key):
            raise KeyError(f"malformed dataset name: {name!r}")
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(dataset_names())} (alias: ci)"
        )
    return _SPECS[key]


def derive_seed_sequence(seed: int, seed_offset: int) -> np.random.SeedSequence:
    """Mix the realization seed with a dataset's stream offset.

    ``SeedSequence`` guarantees that distinct ``(seed, seed_offset)``
    pairs yield statistically independent streams — unlike arithmetic
    mixing (``seed * K + offset``), which collides whenever two pairs
    land on the same integer.
    """
    if seed < 0:
        raise ValueError(f"realization seed must be non-negative, got {seed}")
    return np.random.SeedSequence(entropy=seed, spawn_key=(seed_offset,))


@functools.lru_cache(maxsize=32)
def _load_cached(key: str, seed: int) -> Relation:
    dataset = _SPECS[key]
    rng = np.random.default_rng(derive_seed_sequence(seed, dataset.seed_offset))
    values = dataset.generator(dataset.p, dataset.n_records, rng)
    return Relation(values, IntegerDomain(dataset.p), name=dataset.name)


def load(name: str, seed: int = 0) -> Relation:
    """Load a paper data file by name.

    Parameters
    ----------
    name:
        A Table 2 name such as ``"n(20)"`` or ``"arap1"``.
    seed:
        Realization seed.  The default (0) is the canonical instance
        used by all experiment modules; other seeds give independent
        realizations of the same file model for robustness studies.
    """
    dataset = spec(name)
    return _load_cached(dataset.name, int(seed))


def table2(seed: int = 0) -> list[dict[str, object]]:
    """Reproduce the paper's Table 2 from the generated files.

    Returns one dict per data file with the declared properties plus
    the *measured* record and distinct-value counts of the generated
    instance, so the table doubles as a self-check.
    """
    rows = []
    for name in dataset_names():
        dataset = _SPECS[name]
        relation = load(name, seed=seed)
        rows.append(
            {
                "data file": name,
                "data distribution": dataset.distribution,
                "p": dataset.p,
                "#records": dataset.n_records,
                "measured #records": relation.size,
                "#distinct": relation.distinct_count(),
            }
        )
    return rows
