"""The relation abstraction: exact query execution and sampling.

A :class:`Relation` is the "actual instance" of paper §2: a bag of
``N`` attribute values over a metric domain.  It provides the two
operations every experiment needs:

* **exact range counts** ``|Q(a, b)|`` — the ground truth the error
  metrics compare against — in ``O(log N)`` via a sorted copy, and
* **random samples without replacement** — the input every estimator
  is built from (paper §5.1.1 draws 2,000-record samples this way).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import (
    InvalidQueryError,
    InvalidSampleError,
    MissingSeedError,
    validate_query,
)
from repro.data.domain import Interval


def resolve_rng(
    seed: "int | np.random.SeedSequence | np.random.Generator | None",
) -> np.random.Generator:
    """Turn an explicit seed into a :class:`numpy.random.Generator`.

    Accepts an integer seed, a :class:`numpy.random.SeedSequence`, or a
    ready generator.  ``None`` is rejected: an unseeded draw would make
    the experiment that requested it unreproducible, so every call site
    must say which stream it wants.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        raise MissingSeedError(
            "random draw requested without a seed; pass an explicit integer "
            "seed or an np.random.Generator so the result is reproducible"
        )
    return np.random.default_rng(seed)


#: Backwards-compatible alias for the pre-hardening private name.
_resolve_rng = resolve_rng


class Relation:
    """An in-memory relation instance with one metric attribute.

    Parameters
    ----------
    values:
        The attribute column (any 1-D array-like).  Values are stored
        sorted; the original order is irrelevant to every operation.
    domain:
        The attribute domain.  All values must lie inside it.
    name:
        Optional label used in reports (e.g. the paper file name).
    """

    def __init__(
        self,
        values: np.ndarray,
        domain: Interval,
        *,
        name: str = "",
    ) -> None:
        column = np.asarray(values, dtype=np.float64)
        if column.ndim != 1:
            raise InvalidSampleError(f"relation column must be 1-D, got shape {column.shape}")
        if column.size == 0:
            raise InvalidSampleError("relation must contain at least one record")
        if not np.all(np.isfinite(column)):
            raise InvalidSampleError("relation column contains NaN or infinite values")
        if column.min() < domain.low or column.max() > domain.high:
            raise InvalidSampleError(
                f"relation values fall outside the domain [{domain.low}, {domain.high}]"
            )
        self._sorted = np.sort(column)
        self._sorted.flags.writeable = False
        self._domain = domain
        self._name = name

    @property
    def name(self) -> str:
        """Label of this relation (paper file name for registry data)."""
        return self._name

    @property
    def domain(self) -> Interval:
        """Attribute domain."""
        return self._domain

    @property
    def size(self) -> int:
        """Number of records ``N``."""
        return int(self._sorted.size)

    @property
    def values(self) -> np.ndarray:
        """Read-only sorted view of the attribute column."""
        return self._sorted

    def count(self, a: float, b: float) -> int:
        """Exact number of records with ``a <= value <= b`` (closed range)."""
        a, b = validate_query(a, b)
        lo = int(np.searchsorted(self._sorted, a, side="left"))
        hi = int(np.searchsorted(self._sorted, b, side="right"))
        return hi - lo

    def selectivity(self, a: float, b: float) -> float:
        """Exact instance selectivity ``|Q(a, b)| / N`` (paper §2)."""
        return self.count(a, b) / self.size

    def sample(self, n: int, seed: "int | np.random.Generator | None" = None) -> np.ndarray:
        """Draw ``n`` records uniformly without replacement.

        This is the paper's sampling protocol (§5.1.1).  Returns a new
        ``float64`` array; order is random.  ``seed`` is required in
        practice: leaving it ``None`` raises :class:`MissingSeedError`
        so that no experiment can depend on an unseeded draw.
        """
        if n <= 0:
            raise InvalidQueryError(f"sample size must be positive, got {n}")
        if n > self.size:
            raise InvalidQueryError(
                f"cannot draw {n} samples without replacement from {self.size} records"
            )
        rng = resolve_rng(seed)
        index = rng.choice(self.size, size=n, replace=False)
        return self._sorted[index].copy()

    def distinct_count(self) -> int:
        """Number of distinct attribute values (duplicates collapse)."""
        return int(np.unique(self._sorted).size)

    def quantile(self, q: "float | np.ndarray") -> "float | np.ndarray":
        """Empirical quantile(s) of the attribute column."""
        return np.quantile(self._sorted, q)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self._name or "relation"
        return f"Relation({label!r}, N={self.size}, domain={self._domain!r})"
