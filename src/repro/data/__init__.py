"""Data substrate: attribute domains, data files and relations.

The paper's test environment (§5.1.1) uses attribute domains that are
integer grids ``[0, 2**p - 1]`` and eight families of data files —
three synthetic distributions (Uniform, Normal, Exponential) plus five
"real" files derived from TIGER/Line and census data.  The real files
are not redistributable, so :mod:`repro.data.spatial` and
:mod:`repro.data.census` generate faithful synthetic stand-ins (see
DESIGN.md §3 for the substitution argument).

:mod:`repro.data.registry` exposes every file of the paper's Table 2 by
its paper name, e.g. ``load("n(20)")`` or ``load("arap1")``.
"""

from repro.data.domain import IntegerDomain, Interval
from repro.data.registry import dataset_names, load, table2
from repro.data.relation import Relation

__all__ = [
    "IntegerDomain",
    "Interval",
    "Relation",
    "dataset_names",
    "load",
    "table2",
]
