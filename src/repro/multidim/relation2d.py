"""Two-attribute relations: exact rectangle counts and sampling.

The 2-D analogue of :class:`repro.data.relation.Relation`.  Points are
kept sorted by the first coordinate so rectangle counting scans only
the x-slab instead of the whole relation.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import InvalidQueryError, InvalidSampleError, validate_query
from repro.data.domain import Interval
from repro.data.relation import resolve_rng
from repro.data.spatial import GaussCluster, GridSpikes, NarrowBand, UniformBlock


class Relation2D:
    """An in-memory relation with two metric attributes.

    Parameters
    ----------
    points:
        Array of shape ``(N, 2)``.
    domain_x, domain_y:
        Attribute domains; all points must lie inside them.
    name:
        Optional label for reports.
    """

    def __init__(
        self,
        points: np.ndarray,
        domain_x: Interval,
        domain_y: Interval,
        *,
        name: str = "",
    ) -> None:
        data = np.asarray(points, dtype=np.float64)
        if data.ndim != 2 or data.shape[1] != 2:
            raise InvalidSampleError(f"points must have shape (N, 2), got {data.shape}")
        if data.shape[0] == 0:
            raise InvalidSampleError("relation must contain at least one record")
        if not np.all(np.isfinite(data)):
            raise InvalidSampleError("points contain NaN or infinite values")
        for axis, domain in ((0, domain_x), (1, domain_y)):
            column = data[:, axis]
            if column.min() < domain.low or column.max() > domain.high:
                raise InvalidSampleError(
                    f"axis-{axis} values fall outside [{domain.low}, {domain.high}]"
                )
        order = np.argsort(data[:, 0], kind="stable")
        self._points = data[order]
        self._points.flags.writeable = False
        self._x = self._points[:, 0]
        self._domain_x = domain_x
        self._domain_y = domain_y
        self._name = name

    @property
    def name(self) -> str:
        """Label of this relation."""
        return self._name

    @property
    def size(self) -> int:
        """Number of records ``N``."""
        return int(self._points.shape[0])

    @property
    def domain_x(self) -> Interval:
        """Domain of the first attribute."""
        return self._domain_x

    @property
    def domain_y(self) -> Interval:
        """Domain of the second attribute."""
        return self._domain_y

    @property
    def points(self) -> np.ndarray:
        """Read-only ``(N, 2)`` view, sorted by the first coordinate."""
        return self._points

    def count(self, ax: float, bx: float, ay: float, by: float) -> int:
        """Exact number of records inside the closed rectangle."""
        ax, bx = validate_query(ax, bx)
        ay, by = validate_query(ay, by)
        lo = int(np.searchsorted(self._x, ax, side="left"))
        hi = int(np.searchsorted(self._x, bx, side="right"))
        slab = self._points[lo:hi, 1]
        return int(np.count_nonzero((slab >= ay) & (slab <= by)))

    def selectivity(self, ax: float, bx: float, ay: float, by: float) -> float:
        """Exact instance selectivity of the rectangle query."""
        return self.count(ax, bx, ay, by) / self.size

    def sample(self, n: int, seed: "int | np.random.Generator | None" = None) -> np.ndarray:
        """Draw ``n`` records uniformly without replacement, shape (n, 2)."""
        if n <= 0:
            raise InvalidQueryError(f"sample size must be positive, got {n}")
        if n > self.size:
            raise InvalidQueryError(
                f"cannot draw {n} samples without replacement from {self.size} records"
            )
        rng = resolve_rng(seed)
        index = rng.choice(self.size, size=n, replace=False)
        return self._points[index].copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation2D({self._name!r}, N={self.size})"


def synthetic_spatial_2d(
    n_records: int,
    seed: int = 0,
    *,
    width: float = 1_000.0,
) -> Relation2D:
    """A synthetic 2-D spatial relation: clusters, corridors, background.

    Reuses the 1-D TIGER component models per axis with per-component
    coupling, producing the anisotropic, multi-cluster point cloud a
    county map projects from.
    """
    rng = np.random.default_rng(seed)
    domain = Interval(0.0, width)

    # Component layout: (x model, y model, weight).
    components = (
        (GaussCluster(0.25, 0.04, 1.0), GaussCluster(0.30, 0.05, 1.0), 0.30),
        (GaussCluster(0.70, 0.03, 1.0), GaussCluster(0.65, 0.04, 1.0), 0.20),
        (NarrowBand(0.50, 0.02, 1.0), UniformBlock(0.05, 0.95, 1.0), 0.15),
        (UniformBlock(0.05, 0.95, 1.0), NarrowBand(0.40, 0.03, 1.0), 0.10),
        (GridSpikes(0.1, 0.9, 40, 1.0), UniformBlock(0.10, 0.90, 1.0), 0.10),
        (UniformBlock(0.0, 1.0, 1.0), UniformBlock(0.0, 1.0, 1.0), 0.15),
    )
    weights = np.array([w for _, __, w in components])
    counts = rng.multinomial(n_records, weights / weights.sum())

    from repro.data.domain import IntegerDomain

    proxy = IntegerDomain(20)  # component draw() needs a domain; rescale after
    parts = []
    for (model_x, model_y, _), k in zip(components, counts):
        if k == 0:
            continue
        x = model_x.draw(int(k), proxy, rng) / proxy.width * width
        y = model_y.draw(int(k), proxy, rng) / proxy.width * width
        parts.append(np.column_stack([x, y]))
    points = np.concatenate(parts)
    points = np.clip(points, domain.low, domain.high)
    rng.shuffle(points)
    return Relation2D(points, domain, domain, name="synthetic-spatial-2d")
