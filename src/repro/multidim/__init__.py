"""Multidimensional selectivity estimation (paper §6, future work).

The paper closes with: "First, we will consider multidimensional
kernel estimators to estimate the selectivity of multidimensional
range queries."  This package builds that extension for two
dimensions — the case spatial databases need:

* :mod:`repro.multidim.relation2d` — two-attribute relations with
  exact rectangle counts and sampling.
* :mod:`repro.multidim.kernel2d` — product-Epanechnikov kernel
  estimator with per-axis reflection boundary treatment and the
  multivariate normal scale rule.
* :mod:`repro.multidim.histogram2d` — the 2-D equi-width histogram
  baseline.
* :mod:`repro.multidim.workload2d` — rectangle query files and MRE.
"""

from repro.multidim.histogram2d import EquiWidthHistogram2D
from repro.multidim.kernel2d import (
    KernelEstimator2D,
    normal_scale_bandwidths_2d,
    plugin_bandwidths_2d,
)
from repro.multidim.relation2d import Relation2D
from repro.multidim.workload2d import (
    QueryFile2D,
    generate_query_file_2d,
    mean_relative_error_2d,
)

__all__ = [
    "EquiWidthHistogram2D",
    "KernelEstimator2D",
    "QueryFile2D",
    "Relation2D",
    "generate_query_file_2d",
    "mean_relative_error_2d",
    "normal_scale_bandwidths_2d",
    "plugin_bandwidths_2d",
]
