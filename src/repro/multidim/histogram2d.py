"""2-D equi-width histograms: the baseline for rectangle queries.

A ``kx x ky`` grid over the product domain with per-cell sample
counts; selectivity is the doubly-uniform-in-cell overlap sum — the
2-D version of the paper's eq. (4), which factorizes into per-axis
overlap vectors around the count matrix.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import InvalidSampleError, validate_query
from repro.data.domain import Interval


class EquiWidthHistogram2D:
    """Equi-width grid histogram over a rectangle domain.

    Parameters
    ----------
    sample:
        Sample array of shape ``(n, 2)``.
    domain_x, domain_y:
        Attribute domains tiled by the grid.
    bins_x, bins_y:
        Grid resolution per axis.
    """

    def __init__(
        self,
        sample: np.ndarray,
        domain_x: Interval,
        domain_y: Interval,
        bins_x: int,
        bins_y: int,
    ) -> None:
        data = np.asarray(sample, dtype=np.float64)
        if data.ndim != 2 or data.shape[1] != 2:
            raise InvalidSampleError(f"sample must have shape (n, 2), got {data.shape}")
        if bins_x < 1 or bins_y < 1:
            raise InvalidSampleError(f"need at least one bin per axis, got {bins_x}x{bins_y}")
        if not np.all(np.isfinite(data)):
            raise InvalidSampleError("sample contains NaN or infinite values")
        self._edges_x = np.linspace(domain_x.low, domain_x.high, bins_x + 1)
        self._edges_y = np.linspace(domain_y.low, domain_y.high, bins_y + 1)
        counts, _, _ = np.histogram2d(
            data[:, 0], data[:, 1], bins=(self._edges_x, self._edges_y)
        )
        self._counts = counts
        self._n = data.shape[0]
        self._domain_x = domain_x
        self._domain_y = domain_y

    @property
    def sample_size(self) -> int:
        """Number of sample points."""
        return self._n

    @property
    def shape(self) -> tuple[int, int]:
        """Grid resolution ``(bins_x, bins_y)``."""
        return (self._edges_x.size - 1, self._edges_y.size - 1)

    @staticmethod
    def _axis_overlap(edges: np.ndarray, a: float, b: float) -> np.ndarray:
        """Covered fraction of each bin along one axis."""
        widths = np.diff(edges)
        covered = np.clip(np.minimum(b, edges[1:]) - np.maximum(a, edges[:-1]), 0.0, None)
        return covered / widths

    def selectivity(self, ax: float, bx: float, ay: float, by: float) -> float:
        """Estimated selectivity of the closed rectangle query."""
        ax, bx = validate_query(ax, bx)
        ay, by = validate_query(ay, by)
        fx = self._axis_overlap(self._edges_x, ax, bx)
        fy = self._axis_overlap(self._edges_y, ay, by)
        return float(np.clip(fx @ self._counts @ fy / self._n, 0.0, 1.0))
