"""Product-kernel selectivity estimation for rectangle queries.

The 2-D kernel density estimator with a product kernel is

.. math::

   \\hat f(x, y) = \\frac{1}{n h_x h_y} \\sum_i
       K\\Big(\\frac{x - X_i}{h_x}\\Big) K\\Big(\\frac{y - Y_i}{h_y}\\Big)

For *rectangle* queries the integral factorizes per sample into a
product of two 1-D kernel masses, so the exact 1-D primitives carry
over unchanged — no numerical integration appears:

.. math::

   \\hat\\sigma = \\frac{1}{n} \\sum_i
       \\big[C(\\tfrac{b_x - X_i}{h_x}) - C(\\tfrac{a_x - X_i}{h_x})\\big]
       \\cdot
       \\big[C(\\tfrac{b_y - Y_i}{h_y}) - C(\\tfrac{a_y - Y_i}{h_y})\\big]

Boundary treatment is per-axis sample reflection (the 1-D reflection
argument applies axis-wise for product kernels on rectangle domains).
"""

from __future__ import annotations

import numpy as np

from repro.bandwidth.scale import robust_scale
from repro.core.base import InvalidSampleError, validate_query
from repro.core.kernel.functions import EPANECHNIKOV, KernelFunction, get_kernel
from repro.data.domain import Interval

#: Normal-scale constant for the bivariate product Epanechnikov kernel.
#: From the multivariate AMISE (Scott 1992, eq. 6.42 specialized to
#: d = 2, product Epanechnikov): ``h_j ~ 2.40 * s_j * n^(-1/6)``.
EPANECHNIKOV_2D_CONSTANT = 2.40


def plugin_bandwidths_2d(sample: np.ndarray, steps: int = 2) -> tuple[float, float]:
    """Per-axis plug-in bandwidths for a product Epanechnikov kernel.

    A full 2-D plug-in would estimate the bivariate curvature
    functional; this practical variant runs the paper's 1-D direct
    plug-in on each *marginal* and rescales from the 1-D rate
    ``n^(-1/5)`` to the 2-D rate ``n^(-1/6)``.  Marginal structure is a
    good proxy for joint structure on spatial data (corridors and
    clusters project to sharp marginal features), and the rule inherits
    the plug-in's key property: it shrinks hard when the data is
    structured, where the normal scale rule oversmooths.
    """
    from repro.bandwidth.plugin import plugin_bandwidth

    data = np.asarray(sample, dtype=np.float64)
    if data.ndim != 2 or data.shape[1] != 2:
        raise InvalidSampleError(f"sample must have shape (n, 2), got {data.shape}")
    n = data.shape[0]
    rate_shift = n ** (1.0 / 5.0 - 1.0 / 6.0)
    return (
        float(plugin_bandwidth(data[:, 0], steps=steps) * rate_shift),
        float(plugin_bandwidth(data[:, 1], steps=steps) * rate_shift),
    )


def normal_scale_bandwidths_2d(sample: np.ndarray) -> tuple[float, float]:
    """Per-axis normal-scale bandwidths for a product Epanechnikov kernel.

    ``h_j = 2.40 * s_j * n^(-1/6)`` with the paper's robust scale per
    axis; the ``n^(-1/(d+4))`` rate is the 2-D analogue of the 1-D
    ``n^(-1/5)``.
    """
    data = np.asarray(sample, dtype=np.float64)
    if data.ndim != 2 or data.shape[1] != 2:
        raise InvalidSampleError(f"sample must have shape (n, 2), got {data.shape}")
    n = data.shape[0]
    factor = EPANECHNIKOV_2D_CONSTANT * n ** (-1.0 / 6.0)
    return (
        factor * robust_scale(data[:, 0]),
        factor * robust_scale(data[:, 1]),
    )


class KernelEstimator2D:
    """Product-kernel rectangle-selectivity estimator.

    Parameters
    ----------
    sample:
        Sample array of shape ``(n, 2)``.
    bandwidths:
        Per-axis bandwidths ``(h_x, h_y)``; default multivariate
        normal scale rule.
    domain_x, domain_y:
        Optional attribute domains; when given, boundary-adjacent
        samples are reflected per axis.
    kernel:
        1-D kernel used on both axes (Epanechnikov by default).
    """

    def __init__(
        self,
        sample: np.ndarray,
        bandwidths: tuple[float, float] | None = None,
        domain_x: Interval | None = None,
        domain_y: Interval | None = None,
        kernel: "KernelFunction | str" = EPANECHNIKOV,
    ) -> None:
        data = np.asarray(sample, dtype=np.float64)
        if data.ndim != 2 or data.shape[1] != 2:
            raise InvalidSampleError(f"sample must have shape (n, 2), got {data.shape}")
        if data.shape[0] < 2:
            raise InvalidSampleError("need at least two sample points")
        if not np.all(np.isfinite(data)):
            raise InvalidSampleError("sample contains NaN or infinite values")
        if bandwidths is None:
            bandwidths = normal_scale_bandwidths_2d(data)
        hx, hy = float(bandwidths[0]), float(bandwidths[1])
        if hx <= 0 or hy <= 0:
            raise InvalidSampleError(f"bandwidths must be positive, got {(hx, hy)}")

        self._kernel = get_kernel(kernel)
        self._n = data.shape[0]
        self._hx, self._hy = hx, hy
        self._domain_x, self._domain_y = domain_x, domain_y

        reach_x = hx * self._kernel.support
        reach_y = hy * self._kernel.support
        augmented = [data]
        # Per-axis reflection: mirrored copies fold the leaked mass
        # back into the domain (paper §3.2.1, applied axis-wise).
        if domain_x is not None:
            for low_edge, is_low in ((domain_x.low, True), (domain_x.high, False)):
                if is_low:
                    near = data[data[:, 0] < domain_x.low + reach_x]
                else:
                    near = data[data[:, 0] > domain_x.high - reach_x]
                if near.size:
                    mirrored = near.copy()
                    mirrored[:, 0] = 2.0 * low_edge - mirrored[:, 0]
                    augmented.append(mirrored)
        if domain_y is not None:
            for edge, is_low in ((domain_y.low, True), (domain_y.high, False)):
                if is_low:
                    near = data[data[:, 1] < domain_y.low + reach_y]
                else:
                    near = data[data[:, 1] > domain_y.high - reach_y]
                if near.size:
                    mirrored = near.copy()
                    mirrored[:, 1] = 2.0 * edge - mirrored[:, 1]
                    augmented.append(mirrored)
        stacked = np.concatenate(augmented)
        order = np.argsort(stacked[:, 0], kind="stable")
        self._points = stacked[order]
        self._points.flags.writeable = False
        self._x = self._points[:, 0]

    @property
    def sample_size(self) -> int:
        """Number of (original) sample points."""
        return self._n

    @property
    def bandwidths(self) -> tuple[float, float]:
        """Per-axis bandwidths ``(h_x, h_y)``."""
        return self._hx, self._hy

    def selectivity(self, ax: float, bx: float, ay: float, by: float) -> float:
        """Estimated selectivity of the closed rectangle query."""
        ax, bx = validate_query(ax, bx)
        ay, by = validate_query(ay, by)
        if self._domain_x is not None:
            ax = max(ax, self._domain_x.low)
            bx = min(bx, self._domain_x.high)
        if self._domain_y is not None:
            ay = max(ay, self._domain_y.low)
            by = min(by, self._domain_y.high)
        if ax > bx or ay > by:
            return 0.0
        reach_x = self._hx * self._kernel.support
        lo = np.searchsorted(self._x, ax - reach_x, side="left")
        hi = np.searchsorted(self._x, bx + reach_x, side="right")
        window = self._points[lo:hi]
        if window.shape[0] == 0:
            return 0.0
        mass_x = self._kernel.mass_between(
            (ax - window[:, 0]) / self._hx, (bx - window[:, 0]) / self._hx
        )
        mass_y = self._kernel.mass_between(
            (ay - window[:, 1]) / self._hy, (by - window[:, 1]) / self._hy
        )
        return float(np.clip((mass_x * mass_y).sum() / self._n, 0.0, 1.0))

    def density(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Pointwise 2-D density at paired coordinates."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.shape != y.shape:
            raise InvalidSampleError("x and y must have the same shape")
        out = np.empty(x.shape, dtype=np.float64)
        flat_x, flat_y, flat_out = x.ravel(), y.ravel(), out.ravel()
        reach_x = self._hx * self._kernel.support
        for i in range(flat_x.size):
            lo = np.searchsorted(self._x, flat_x[i] - reach_x, side="left")
            hi = np.searchsorted(self._x, flat_x[i] + reach_x, side="right")
            window = self._points[lo:hi]
            kx = self._kernel.pdf((flat_x[i] - window[:, 0]) / self._hx)
            ky = self._kernel.pdf((flat_y[i] - window[:, 1]) / self._hy)
            flat_out[i] = (kx * ky).sum()
        return out / (self._n * self._hx * self._hy)
