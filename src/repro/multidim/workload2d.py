"""Rectangle-query workloads and error metrics for two dimensions.

The 2-D analogue of :mod:`repro.workload`: fixed-size square queries
centered on records (positions follow the data distribution), exact
counts attached, and the paper's mean relative error.
"""

from __future__ import annotations

import dataclasses
from typing import Protocol

import numpy as np

from repro.core.base import InvalidQueryError
from repro.data.relation import resolve_rng
from repro.multidim.relation2d import Relation2D


class Selectivity2D(Protocol):
    """Anything that estimates rectangle-query selectivities."""

    def selectivity(self, ax: float, bx: float, ay: float, by: float) -> float: ...


@dataclasses.dataclass(frozen=True)
class QueryFile2D:
    """A batch of rectangle queries with exact result sizes."""

    ax: np.ndarray
    bx: np.ndarray
    ay: np.ndarray
    by: np.ndarray
    true_counts: np.ndarray
    relation_size: int

    def __len__(self) -> int:
        return int(self.ax.size)


def generate_query_file_2d(
    relation: Relation2D,
    size_fraction: float,
    n_queries: int = 300,
    seed: "int | np.random.Generator | None" = None,
) -> QueryFile2D:
    """Square rectangle queries whose *area* is ``size_fraction`` of
    the domain area, centered on records, rejected at the boundary."""
    if not 0 < size_fraction < 1:
        raise InvalidQueryError(f"size_fraction must be in (0, 1), got {size_fraction}")
    if n_queries <= 0:
        raise InvalidQueryError(f"n_queries must be positive, got {n_queries}")
    rng = resolve_rng(seed)
    dom_x, dom_y = relation.domain_x, relation.domain_y
    side = np.sqrt(size_fraction)
    half_x = 0.5 * side * dom_x.width
    half_y = 0.5 * side * dom_y.width

    centers = np.empty((n_queries, 2), dtype=np.float64)
    filled = 0
    attempts = 0
    while filled < n_queries:
        attempts += 1
        if attempts > 200:
            raise InvalidQueryError(
                "could not place enough rectangle queries inside the domain"
            )
        draw = relation.points[rng.integers(0, relation.size, size=2 * n_queries)]
        inside = (
            (draw[:, 0] >= dom_x.low + half_x)
            & (draw[:, 0] <= dom_x.high - half_x)
            & (draw[:, 1] >= dom_y.low + half_y)
            & (draw[:, 1] <= dom_y.high - half_y)
        )
        accepted = draw[inside]
        take = min(accepted.shape[0], n_queries - filled)
        centers[filled : filled + take] = accepted[:take]
        filled += take

    ax = centers[:, 0] - half_x
    bx = centers[:, 0] + half_x
    ay = centers[:, 1] - half_y
    by = centers[:, 1] + half_y
    counts = np.array(
        [relation.count(a, b, c, d) for a, b, c, d in zip(ax, bx, ay, by)],
        dtype=np.int64,
    )
    return QueryFile2D(ax, bx, ay, by, counts, relation.size)


def mean_relative_error_2d(estimator: "Selectivity2D", queries: QueryFile2D) -> float:
    """The paper's MRE over a 2-D query file (zero-result queries skipped)."""
    errors = []
    for i in range(len(queries)):
        true = queries.true_counts[i]
        if true == 0:
            continue
        estimate = estimator.selectivity(
            queries.ax[i], queries.bx[i], queries.ay[i], queries.by[i]
        )
        errors.append(abs(estimate * queries.relation_size - true) / true)
    if not errors:
        raise ValueError("every query in the file has an empty true result")
    return float(np.mean(errors))
