"""The fault-tolerant estimation service.

:class:`EstimationService` wraps the catalog/planner stack for
concurrent callers who need an answer *now*, every time — the paper's
accuracy-vs-cost comparison turned into a graceful-degradation ladder:

* Each registered table carries one estimator **tier** per configured
  family, best first (default ``hybrid`` → ``equi-depth`` →
  ``uniform``: the paper's most accurate estimator backed by the
  ~13 µs histogram answer and the free uniform prior).
* Requests pass a bounded **admission queue**: at most ``max_inflight``
  execute, at most ``max_queue`` wait, and a full queue rejects with a
  typed :class:`~repro.serving.errors.Overloaded` carrying a
  retry-after hint — the service never blocks a caller without bound.
* Every request has a **deadline**; it is enforced while queued,
  before every tier attempt and before every retry sleep, so a
  request that cannot finish in time fails with
  :class:`~repro.serving.errors.DeadlineExceeded` instead of late.
* Transient tier failures **retry** with seeded jittered exponential
  backoff; repeated failures trip the per-(table, tier) **circuit
  breaker**, taking the broken tier out of the rotation until its
  cooldown probes succeed.
* A tier that fails (or is breaker-blocked, or shed) **falls back** to
  the next tier; each step is recorded in the returned plan's
  provenance and in ``serving.degraded`` metrics.  SLO burn measured
  by :mod:`repro.telemetry.slo` can preemptively shed the primary
  tier, trading accuracy for latency before the queue melts.
* ANALYZE never blocks readers: :meth:`register` builds the new tier
  set aside and publishes it through an atomic
  :class:`~repro.serving.snapshot.SnapshotStore` swap; in-flight
  requests finish on the version they pinned.
* Statistics maintenance is **incremental**: :meth:`refresh_incremental`
  forks each tier's catalog (:meth:`repro.db.catalog.Catalog.fork`),
  replays the table's delta log into the forks, and publishes the
  refreshed tier set as a new snapshot — in-flight estimates never see
  a half-merged summary, and a fault mid-refresh leaves the previous
  (consistent) tier serving.  :meth:`maintain` runs the drift-triggered
  variant across every registered table.

Every failure the caller can see is a subclass of
:class:`~repro.serving.errors.ServingError`.
"""

from __future__ import annotations

import dataclasses
import math
import threading
import time
from typing import Callable, Sequence

import numpy as np

from repro.core.base import InvalidQueryError
from repro.db.cache import MISS, LRUCache
from repro.db.catalog import FAMILIES, Catalog
from repro.db.planner import Plan, Planner, RangePredicate
from repro.db.table import Table
from repro.serving.breaker import BreakerBoard, BreakerConfig, CircuitBreaker
from repro.serving.errors import (
    CircuitOpen,
    DeadlineExceeded,
    EstimatorUnavailable,
    Overloaded,
    PoisonedResult,
    is_transient,
)
from repro.serving.faults import FaultInjector
from repro.serving.retry import RetryPolicy
from repro.serving.snapshot import SnapshotStore
from repro.telemetry import get_telemetry
from repro.telemetry.slo import SLOSpec, evaluate_registry, max_burn

#: Default fallback ladder: accuracy first, cheapness last.
DEFAULT_FAMILIES = ("hybrid", "equi-depth", "uniform")


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of one :class:`EstimationService`."""

    families: tuple[str, ...] = DEFAULT_FAMILIES
    sample_size: int = 2_000
    max_inflight: int = 4
    max_queue: int = 16
    default_deadline_s: float = 1.0
    result_cache_size: int = 256
    breaker: BreakerConfig = BreakerConfig()
    retry: RetryPolicy = RetryPolicy()
    #: Shed the primary tier while any watched SLO burns at or above
    #: this ratio (1.0 = the objective is exactly exhausted).
    shed_burn_threshold: float = 1.0
    #: Re-evaluate the watched SLOs every N admitted requests
    #: (0 disables burn-driven shedding).
    shed_check_interval: int = 64

    def __post_init__(self) -> None:
        if not self.families:
            raise InvalidQueryError("at least one estimator family is required")
        unknown = [family for family in self.families if family not in FAMILIES]
        if unknown:
            raise InvalidQueryError(
                f"unknown estimator families {unknown}; available: {', '.join(FAMILIES)}"
            )
        if len(set(self.families)) != len(self.families):
            raise InvalidQueryError("estimator families must be distinct")
        if self.max_inflight < 1 or self.max_queue < 0:
            raise InvalidQueryError(
                "max_inflight must be >= 1 and max_queue >= 0"
            )
        if self.default_deadline_s <= 0:
            raise InvalidQueryError(
                f"default_deadline_s must be > 0, got {self.default_deadline_s}"
            )
        if self.shed_burn_threshold <= 0:
            raise InvalidQueryError(
                f"shed_burn_threshold must be > 0, got {self.shed_burn_threshold}"
            )


@dataclasses.dataclass(frozen=True)
class EstimateResult:
    """One served estimate plus its degradation record."""

    plan: Plan
    table: str
    tier: str
    snapshot_version: int
    degraded: bool
    fallbacks: tuple[str, ...]
    attempts: int
    wait_s: float
    total_s: float
    cached: bool = False


@dataclasses.dataclass(frozen=True)
class _Tier:
    """One estimator family's catalog + planner for one snapshot."""

    family: str
    catalog: Catalog
    planner: Planner


@dataclasses.dataclass(frozen=True)
class _TableEntry:
    """Everything one table contributes to a snapshot payload."""

    table: Table
    tiers: tuple[_Tier, ...]
    seed: int
    joint: "tuple[tuple[str, str], ...]"
    #: Families whose build failed (with the reason), for EXPLAIN-style
    #: introspection of a degraded tier set.
    build_failures: tuple[tuple[str, str], ...] = ()


class _Admission:
    """Bounded admission: ``max_inflight`` slots + ``max_queue`` waiters.

    A request either gets a slot, waits (deadline-bounded) for one, or
    is rejected immediately with :class:`Overloaded` — never unbounded
    blocking.  The retry-after hint scales with the queue length and
    an EMA of recent service times.
    """

    def __init__(
        self, max_inflight: int, max_queue: int, clock: Callable[[], float]
    ) -> None:
        self._max_inflight = max_inflight
        self._max_queue = max_queue
        self._clock = clock
        self._cond = threading.Condition(threading.Lock())
        self._inflight = 0
        self._waiting = 0
        # Cold-start prior for the service-time EMA, used to size the
        # retry-after hint before any request completes.  1 ms matches
        # the flattened hybrid serving path (a cold estimate runs
        # ~0.4 ms; the old 10 ms prior dated from the per-bin loop and
        # overstated early back-off hints by an order of magnitude).
        self._ema_serve_s = 0.001

    def acquire(self, start: float, deadline_s: float) -> float:
        """Take a slot; returns seconds spent waiting in the queue."""
        entered = self._clock()
        with self._cond:
            if self._inflight >= self._max_inflight:
                if self._waiting >= self._max_queue:
                    retry_after = (self._waiting + 1) * max(self._ema_serve_s, 1e-3)
                    raise Overloaded(
                        f"admission queue full ({self._waiting} waiting, "
                        f"{self._inflight} in flight); retry after "
                        f"~{retry_after * 1e3:.0f} ms",
                        retry_after_s=retry_after,
                    )
                self._waiting += 1
                self._publish()
                try:
                    while self._inflight >= self._max_inflight:
                        elapsed = self._clock() - start
                        remaining = deadline_s - elapsed
                        if remaining <= 0:
                            raise DeadlineExceeded(
                                "deadline expired while queued for admission",
                                deadline_s=deadline_s,
                                elapsed_s=elapsed,
                            )
                        self._cond.wait(remaining)
                finally:
                    self._waiting -= 1
                    self._publish()
            self._inflight += 1
            self._publish()
        return self._clock() - entered

    def release(self, serve_s: float) -> None:
        """Return a slot and fold the service time into the EMA."""
        with self._cond:
            self._inflight -= 1
            self._ema_serve_s = 0.8 * self._ema_serve_s + 0.2 * max(serve_s, 0.0)
            self._publish()
            self._cond.notify()

    @property
    def depth(self) -> int:
        """Current number of queued (not yet admitted) requests."""
        with self._cond:
            return self._waiting

    def _publish(self) -> None:
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.metrics.set_gauge("serving.queue.depth", float(self._waiting))
            telemetry.metrics.set_gauge("serving.inflight", float(self._inflight))


class EstimationService:
    """Deadline-bounded, degradation-aware selectivity serving.

    Parameters
    ----------
    config:
        Tier ladder, admission limits, breaker/retry tuning.
    seed:
        Seeds the retry-jitter RNG (explicit, per the project's
        seeding rules); two services with the same seed and fault
        schedule behave identically.
    slos:
        SLO specs watched for burn-driven shedding (see
        :data:`repro.telemetry.slo.SERVING_SLOS`).
    faults:
        Optional fault-injection schedule; also supplies the service
        clock, so injected skew moves deadlines and breaker cooldowns.
    sleep:
        Backoff sleeper (injectable for fast deterministic tests).
    """

    def __init__(
        self,
        config: ServiceConfig = ServiceConfig(),
        *,
        seed: int,
        slos: Sequence[SLOSpec] = (),
        faults: "FaultInjector | None" = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._config = config
        self._rng = np.random.default_rng(seed)
        self._rng_lock = threading.Lock()
        self._slos = tuple(slos)
        self._faults = faults if faults is not None else FaultInjector()
        self._clock = self._faults.clock
        self._sleep = sleep
        self._store = SnapshotStore()
        self._breakers = BreakerBoard(config.breaker, clock=self._clock)
        self._admission = _Admission(
            config.max_inflight, config.max_queue, self._clock
        )
        self._results = LRUCache(config.result_cache_size, name="serving")
        self._state_lock = threading.Lock()
        self._requests = 0
        self._shedding = False
        self._shed_burn = 0.0

    # -- registration / snapshot lifecycle ----------------------------

    def register(
        self,
        table: Table,
        *,
        seed: int,
        joint: "list[tuple[str, str]] | None" = None,
    ) -> int:
        """ANALYZE ``table`` into a fresh tier set and publish it.

        Builds every configured family off to the side and swaps the
        result in atomically — readers keep serving from the snapshot
        they pinned.  A family whose build fails (e.g. an injected
        build exception) is skipped and recorded; the table serves
        degraded from the remaining tiers.  Returns the published
        snapshot version.

        Raises
        ------
        EstimatorUnavailable
            If *every* configured family fails to build.
        """
        tiers: list[_Tier] = []
        causes: list[tuple[str, BaseException]] = []
        joint_pairs = tuple(joint or ())
        for family in self._config.families:
            try:
                self._faults.check(f"tier.{family}.build")
                catalog = Catalog(family=family, sample_size=self._config.sample_size)
                catalog.analyze(table, joint=list(joint_pairs) or None, seed=seed)
                tiers.append(_Tier(family, catalog, Planner(catalog)))
            except Exception as exc:  # repro: allow[serving-errors] — a failed tier build degrades to the next family; the cause is kept and re-raised when no tier builds
                causes.append((family, exc))
        if not tiers:
            raise EstimatorUnavailable(
                f"every estimator tier failed to build for table {table.name!r}: "
                + "; ".join(f"{family}: {exc}" for family, exc in causes),
                causes=tuple(causes),
            )
        entry = _TableEntry(
            table=table,
            tiers=tuple(tiers),
            seed=seed,
            joint=joint_pairs,
            build_failures=tuple(
                (family, f"{type(exc).__name__}: {exc}") for family, exc in causes
            ),
        )
        try:
            payload = dict(self._store.current().payload)
        except InvalidQueryError:  # repro: allow[serving-errors] — an empty store just means this is the first table registered
            payload = {}
        payload[table.name] = entry
        return self._store.publish(payload).version

    def refresh(self, table_name: str, *, seed: "int | None" = None) -> int:
        """Rebuild one table's tiers and publish a new snapshot.

        Reuses the registration-time seed (and joint pairs) unless a
        new ``seed`` is given.  Readers pinned to the old snapshot are
        untouched; it retires once they finish.
        """
        entry = self._entry(self._store.current().payload, table_name)
        return self.register(
            entry.table,
            seed=entry.seed if seed is None else seed,
            joint=list(entry.joint) or None,
        )

    def refresh_incremental(self, table_name: str) -> "tuple[int, dict[str, str]]":
        """Fold one table's delta log into its tiers and publish.

        For each tier, forks the catalog (estimators shared, live
        summaries deep-copied), replays the table's recorded deltas
        into the fork (:meth:`repro.db.catalog.Catalog.refresh` decides
        incremental vs full per its staleness budget), and swaps the
        refreshed tier set in through the snapshot store — pinned
        readers keep the old, fully consistent catalogs.  A tier whose
        refresh fails (injected fault, stale delta log the catalog
        could not recover from) keeps serving its previous statistics;
        the failure is recorded in the returned mode map rather than
        published half-applied.

        Returns ``(snapshot_version, {family: mode})`` where mode is
        ``"fresh"``, ``"incremental"``, ``"full"`` or
        ``"failed: <error>"``.
        """
        entry = self._entry(self._store.current().payload, table_name)
        tiers: list[_Tier] = []
        modes: dict[str, str] = {}
        for tier in entry.tiers:
            try:
                self._faults.check(f"tier.{tier.family}.refresh")
                fork = tier.catalog.fork()
                modes[tier.family] = fork.refresh(entry.table, seed=entry.seed)
            except Exception as exc:  # repro: allow[serving-errors] — a failed tier refresh keeps the old (consistent) statistics serving; the error is reported in the mode map
                modes[tier.family] = f"failed: {type(exc).__name__}"
                tiers.append(tier)
                self._inc(f"serving.degraded.{table_name}")
                continue
            tiers.append(_Tier(tier.family, fork, Planner(fork)))
        payload = dict(self._store.current().payload)
        payload[table_name] = dataclasses.replace(entry, tiers=tuple(tiers))
        return self._store.publish(payload).version, modes

    def maintain(self, *, ks_threshold: float = 0.15) -> "dict[str, dict[str, str]]":
        """Drift-triggered selective refresh across all registered tables.

        Each tier's catalog decides per table whether its statistics
        drifted (KS distance against the frozen baseline) or lag the
        table's statistics version; only those tables are refreshed.
        One atomic snapshot publish covers everything that changed —
        no publish at all when every table is fresh.  Returns
        ``{table: {family: mode}}``.
        """
        payload = dict(self._store.current().payload)
        report: dict[str, dict[str, str]] = {}
        changed = False
        for table_name, entry in payload.items():
            tiers: list[_Tier] = []
            modes: dict[str, str] = {}
            for tier in entry.tiers:
                try:
                    self._faults.check(f"tier.{tier.family}.refresh")
                    fork = tier.catalog.fork()
                    mode = fork.maintain(
                        [entry.table], ks_threshold=ks_threshold
                    ).get(table_name, "fresh")
                except Exception as exc:  # repro: allow[serving-errors] — same contract as refresh_incremental: a failed tier keeps its previous statistics
                    modes[tier.family] = f"failed: {type(exc).__name__}"
                    tiers.append(tier)
                    self._inc(f"serving.degraded.{table_name}")
                    continue
                modes[tier.family] = mode
                if mode == "fresh":
                    tiers.append(tier)
                else:
                    tiers.append(_Tier(tier.family, fork, Planner(fork)))
                    changed = True
            report[table_name] = modes
            payload[table_name] = dataclasses.replace(entry, tiers=tuple(tiers))
        if changed:
            self._store.publish(payload)
        return report

    @property
    def snapshot_version(self) -> int:
        """Version of the currently published snapshot."""
        return self._store.version

    def retired_snapshots(self) -> tuple[int, ...]:
        """Superseded snapshot versions still pinned by readers."""
        return self._store.retired()

    def tiers(self, table_name: str) -> tuple[str, ...]:
        """Families actually serving ``table_name`` (build order)."""
        entry = self._entry(self._store.current().payload, table_name)
        return tuple(tier.family for tier in entry.tiers)

    def build_failures(self, table_name: str) -> tuple[tuple[str, str], ...]:
        """Families that failed to build in the current snapshot."""
        entry = self._entry(self._store.current().payload, table_name)
        return entry.build_failures

    # -- shedding -----------------------------------------------------

    @property
    def shedding(self) -> bool:
        """Whether SLO burn is currently shedding the primary tier."""
        with self._state_lock:
            return self._shedding

    def refresh_shed(self) -> bool:
        """Re-evaluate the watched SLOs and update the shed decision.

        Called automatically every ``shed_check_interval`` admitted
        requests; callable directly for an immediate re-evaluation.
        With telemetry disabled (no burn data) shedding switches off.
        """
        telemetry = get_telemetry()
        shedding = False
        burn = 0.0
        if self._slos and telemetry.enabled:
            burn = max_burn(evaluate_registry(self._slos, telemetry.metrics))
            shedding = burn >= self._config.shed_burn_threshold
        with self._state_lock:
            self._shedding = shedding
            self._shed_burn = burn
        return shedding

    def _count_request(self) -> None:
        interval = self._config.shed_check_interval
        with self._state_lock:
            self._requests += 1
            due = interval > 0 and self._slos and self._requests % interval == 0
        if due:
            self.refresh_shed()

    # -- serving ------------------------------------------------------

    def estimate(
        self,
        table_name: str,
        predicates: "list[RangePredicate]",
        *,
        deadline_s: "float | None" = None,
    ) -> EstimateResult:
        """Serve one cardinality estimate within a deadline.

        Walks the tier ladder with retries, breakers and fallback as
        described in the module docstring.  Raises a
        :class:`~repro.serving.errors.ServingError` subclass on
        rejection, deadline expiry or total tier exhaustion.
        """
        budget = self._config.default_deadline_s if deadline_s is None else deadline_s
        if budget <= 0 or not math.isfinite(budget):
            raise InvalidQueryError(f"deadline must be positive and finite, got {budget}")
        start = self._clock()
        self._count_request()
        telemetry = get_telemetry()
        try:
            wait_s = self._admission.acquire(start, budget)
        except Overloaded:
            if telemetry.enabled:
                telemetry.metrics.inc("serving.rejected")
            raise
        except DeadlineExceeded:
            if telemetry.enabled:
                telemetry.metrics.inc("serving.deadline.exceeded")
            raise
        try:
            result = self._serve(table_name, predicates, start, budget, wait_s)
        except DeadlineExceeded:
            if telemetry.enabled:
                telemetry.metrics.inc("serving.deadline.exceeded")
            raise
        except EstimatorUnavailable:
            if telemetry.enabled:
                telemetry.metrics.inc("serving.unavailable")
            raise
        finally:
            self._admission.release(self._clock() - start)
        if telemetry.enabled:
            telemetry.metrics.inc("serving.request")
            telemetry.metrics.observe("serving.wait.seconds", result.wait_s)
            telemetry.metrics.observe("serving.request.seconds", result.total_s)
            telemetry.metrics.inc(f"serving.tier.{result.tier}")
            if result.degraded:
                telemetry.metrics.inc("serving.degraded")
                telemetry.metrics.inc(f"serving.degraded.{table_name}")
        return result

    def _serve(
        self,
        table_name: str,
        predicates: "list[RangePredicate]",
        start: float,
        deadline_s: float,
        wait_s: float,
    ) -> EstimateResult:
        with self._store.pin() as snapshot:
            entry = self._entry(snapshot.payload, table_name)
            key = (
                table_name,
                snapshot.version,
                tuple(sorted((p.column, p.a, p.b) for p in predicates)),
            )
            cached = self._cached_result(key)
            if cached is not None:
                plan, tier = cached
                return EstimateResult(
                    plan=plan,
                    table=table_name,
                    tier=tier,
                    snapshot_version=snapshot.version,
                    degraded=False,
                    fallbacks=(),
                    attempts=0,
                    wait_s=wait_s,
                    total_s=self._clock() - start,
                    cached=True,
                )
            shed = self.shedding and len(entry.tiers) > 1
            fallbacks: list[str] = []
            causes: list[tuple[str, BaseException]] = []
            for index, tier in enumerate(entry.tiers):
                if shed and index == 0:
                    with self._state_lock:
                        burn = self._shed_burn
                    fallbacks.append(f"{tier.family}: shed (slo burn {burn:.2f})")
                    self._inc("serving.shed")
                    continue
                breaker = self._breakers.get(table_name, tier.family)
                if not breaker.allow():
                    fallbacks.append(f"{tier.family}: breaker open")
                    causes.append(
                        (
                            tier.family,
                            CircuitOpen(
                                f"breaker open for {table_name}.{tier.family}",
                                table=table_name,
                                tier=tier.family,
                            ),
                        )
                    )
                    continue
                plan, attempts = self._attempt_tier(
                    entry, tier, breaker, predicates, start, deadline_s, causes
                )
                if plan is None:
                    fallbacks.append(f"{tier.family}: {type(causes[-1][1]).__name__}")
                    continue
                degraded = index > 0 or shed
                notes = [f"served by {tier.family} tier (snapshot v{snapshot.version})"]
                if fallbacks:
                    notes.append("degraded: " + "; ".join(fallbacks))
                plan = plan.with_provenance(*notes)
                self._store_result(key, plan, tier.family, degraded)
                return EstimateResult(
                    plan=plan,
                    table=table_name,
                    tier=tier.family,
                    snapshot_version=snapshot.version,
                    degraded=degraded,
                    fallbacks=tuple(fallbacks),
                    attempts=attempts,
                    wait_s=wait_s,
                    total_s=self._clock() - start,
                )
        raise EstimatorUnavailable(
            f"every estimator tier failed for table {table_name!r}: "
            + "; ".join(f"{family}: {type(exc).__name__}" for family, exc in causes),
            causes=tuple(causes),
        )

    def _attempt_tier(
        self,
        entry: _TableEntry,
        tier: _Tier,
        breaker: CircuitBreaker,
        predicates: "list[RangePredicate]",
        start: float,
        deadline_s: float,
        causes: "list[tuple[str, BaseException]]",
    ) -> "tuple[Plan | None, int]":
        """Run one tier with transient-failure retries under the deadline.

        Returns ``(plan, attempts)``; ``plan`` is ``None`` when the
        tier is exhausted (its last error appended to ``causes``).
        """
        policy = self._config.retry
        attempt = 0
        while True:
            elapsed = self._clock() - start
            if elapsed >= deadline_s:
                raise DeadlineExceeded(
                    f"deadline expired before the {tier.family} tier answered",
                    deadline_s=deadline_s,
                    elapsed_s=elapsed,
                )
            attempt += 1
            try:
                self._faults.check(
                    f"tier.{tier.family}.estimate",
                    budget_s=deadline_s - (self._clock() - start),
                )
                elapsed = self._clock() - start
                if elapsed >= deadline_s:
                    # A stall (injected or real) consumed the budget:
                    # fail the request *now* rather than answer late.
                    raise DeadlineExceeded(
                        f"deadline expired in the {tier.family} tier",
                        deadline_s=deadline_s,
                        elapsed_s=elapsed,
                    )
                plan = tier.planner.plan(entry.table, predicates)
                self._validate_plan(plan, tier.family)
            except DeadlineExceeded:
                # The slow tier is charged (a stalled estimator is an
                # unhealthy estimator), but the deadline verdict goes
                # to the caller — it cannot be retried away.
                breaker.record_failure()
                raise
            except InvalidQueryError:
                # A malformed request is the caller's error, not the
                # tier's: do not charge the breaker, do not degrade.
                raise
            except Exception as exc:  # repro: allow[serving-errors] — tier failure is recorded in causes; it either retries below or falls back to the next tier
                breaker.record_failure()
                causes.append((tier.family, exc))
                remaining = deadline_s - (self._clock() - start)
                if (
                    is_transient(exc)
                    and attempt < policy.max_attempts
                    and remaining > 0
                ):
                    self._inc("serving.retry")
                    with self._rng_lock:
                        delay = policy.delay_s(attempt - 1, self._rng)
                    delay = min(delay, remaining)
                    if delay > 0:
                        self._sleep(delay)
                    continue
                return None, attempt
            breaker.record_success()
            return plan, attempt

    # -- result cache -------------------------------------------------

    def _cached_result(self, key: "tuple") -> "tuple[Plan, str] | None":
        cached = self._results.get(key)
        if cached is MISS:
            return None
        plan, tier = cached
        if not self._plan_is_valid(plan):
            # Poisoned entry: evict, count, recompute from statistics.
            self._results.evict(lambda entry_key: entry_key == key)
            self._inc("serving.poisoned")
            return None
        return plan, tier

    def _store_result(self, key: "tuple", plan: Plan, tier: str, degraded: bool) -> None:
        if degraded:
            # Degraded answers are circumstantial (breaker state, shed
            # posture); caching them would outlive the circumstance.
            return
        actions = self._faults.check("serving.cache.store")
        if "poison" in actions:
            plan = dataclasses.replace(plan, estimated_rows=float("nan"))
        self._results.put(key, (plan, tier))

    @staticmethod
    def _plan_is_valid(plan: Plan) -> bool:
        return (
            math.isfinite(plan.estimated_rows)
            and plan.estimated_rows >= 0
            and math.isfinite(plan.estimated_cost)
        )

    def _validate_plan(self, plan: Plan, family: str) -> None:
        if not self._plan_is_valid(plan):
            raise PoisonedResult(
                f"{family} tier produced an invalid estimate "
                f"(rows={plan.estimated_rows}, cost={plan.estimated_cost})"
            )

    # -- helpers ------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for admission."""
        return self._admission.depth

    def breaker_states(self) -> dict[tuple[str, str], str]:
        """State of every instantiated (table, tier) breaker."""
        return self._breakers.states()

    @staticmethod
    def _entry(payload: "dict[str, _TableEntry]", table_name: str) -> _TableEntry:
        entry = payload.get(table_name)
        if entry is None:
            raise InvalidQueryError(
                f"unknown table {table_name!r}; register() it first"
            )
        return entry

    @staticmethod
    def _inc(name: str) -> None:
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.metrics.inc(name)
