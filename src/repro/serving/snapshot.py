"""Versioned snapshots with publish-then-retire semantics.

The serving tier must keep answering while ANALYZE rebuilds
statistics.  The classic solution: readers *pin* an immutable,
versioned snapshot of the estimator sets; a writer builds the
replacement off to the side, *publishes* it with one atomic reference
swap, and the superseded snapshot is *retired* — kept alive only until
its last pinned reader releases it.  No reader ever blocks on a
rebuild, and no reader ever observes a half-built estimator set.

:class:`SnapshotStore` is deliberately generic (the payload is opaque
and must be treated as immutable); the service stores a
``{table name: tier tuple}`` mapping per snapshot.
"""

from __future__ import annotations

import dataclasses
import threading
from contextlib import contextmanager
from typing import Any, Iterator

from repro.core.base import InvalidQueryError
from repro.telemetry import get_telemetry


@dataclasses.dataclass(frozen=True)
class Snapshot:
    """One published, immutable version of the serving state."""

    version: int
    payload: Any


class SnapshotStore:
    """Atomic publish / pinned read of versioned snapshots.

    ``pin()`` hands a reader the current snapshot and guarantees it
    stays tracked until the reader releases it; ``publish()`` swaps in
    a new version without waiting for readers.  ``retired()`` lists
    superseded versions still held by at least one reader — the
    writer-side observability hook (and the leak detector in tests).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._current: "Snapshot | None" = None
        self._pins: dict[int, int] = {}
        self._retired: dict[int, Snapshot] = {}

    @property
    def version(self) -> int:
        """Version of the current snapshot (0 before the first publish)."""
        with self._lock:
            return 0 if self._current is None else self._current.version

    def current(self) -> Snapshot:
        """The current snapshot (unpinned peek).

        Raises
        ------
        InvalidQueryError
            If nothing has been published yet.
        """
        with self._lock:
            if self._current is None:
                raise InvalidQueryError("no snapshot published yet")
            return self._current

    def publish(self, payload: Any) -> Snapshot:
        """Swap in a new snapshot; the old one retires.

        The swap is a single reference assignment under the store lock
        — readers pin either the old or the new version, never a
        mixture.  Returns the published snapshot.
        """
        with self._lock:
            version = 1 if self._current is None else self._current.version + 1
            snapshot = Snapshot(version=version, payload=payload)
            previous = self._current
            self._current = snapshot
            if previous is not None and self._pins.get(previous.version, 0) > 0:
                self._retired[previous.version] = previous
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.metrics.inc("serving.snapshot.publish")
            telemetry.metrics.set_gauge("serving.snapshot.version", float(version))
        return snapshot

    @contextmanager
    def pin(self) -> Iterator[Snapshot]:
        """Pin the current snapshot for the duration of the block.

        The pinned version survives any number of concurrent publishes
        and is only forgotten once every pinning reader exits.
        """
        with self._lock:
            if self._current is None:
                raise InvalidQueryError("no snapshot published yet")
            snapshot = self._current
            self._pins[snapshot.version] = self._pins.get(snapshot.version, 0) + 1
        try:
            yield snapshot
        finally:
            with self._lock:
                remaining = self._pins.get(snapshot.version, 0) - 1
                if remaining <= 0:
                    self._pins.pop(snapshot.version, None)
                    self._retired.pop(snapshot.version, None)
                else:
                    self._pins[snapshot.version] = remaining

    def retired(self) -> tuple[int, ...]:
        """Versions superseded but still pinned by at least one reader."""
        with self._lock:
            return tuple(sorted(self._retired))

    def pinned(self) -> dict[int, int]:
        """Active pin counts by version (current and retired)."""
        with self._lock:
            return dict(self._pins)
