"""The fault-tolerant serving tier (see docs/SERVING.md).

Public surface:

* :class:`EstimationService` / :class:`ServiceConfig` /
  :class:`EstimateResult` — the service itself.
* The typed error hierarchy (:class:`ServingError` and friends).
* The building blocks, usable on their own: circuit breakers
  (:class:`CircuitBreaker`, :class:`BreakerBoard`), retry policies
  (:class:`RetryPolicy`), versioned snapshots (:class:`SnapshotStore`)
  and deterministic fault injection (:class:`FaultInjector`,
  :class:`FaultRule`).
"""

from __future__ import annotations

from repro.serving.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerBoard,
    BreakerConfig,
    CircuitBreaker,
)
from repro.serving.errors import (
    CircuitOpen,
    DeadlineExceeded,
    EstimatorUnavailable,
    InjectedFault,
    Overloaded,
    PoisonedResult,
    ServingError,
    TransientServingError,
    is_transient,
)
from repro.serving.faults import FaultInjector, FaultRule
from repro.serving.retry import RetryPolicy
from repro.serving.service import (
    DEFAULT_FAMILIES,
    EstimateResult,
    EstimationService,
    ServiceConfig,
)
from repro.serving.snapshot import Snapshot, SnapshotStore

__all__ = [
    "BreakerBoard",
    "BreakerConfig",
    "CircuitBreaker",
    "CircuitOpen",
    "CLOSED",
    "DEFAULT_FAMILIES",
    "DeadlineExceeded",
    "EstimateResult",
    "EstimationService",
    "EstimatorUnavailable",
    "FaultInjector",
    "FaultRule",
    "HALF_OPEN",
    "InjectedFault",
    "OPEN",
    "Overloaded",
    "PoisonedResult",
    "RetryPolicy",
    "ServiceConfig",
    "ServingError",
    "Snapshot",
    "SnapshotStore",
    "TransientServingError",
    "is_transient",
]
