"""The typed error hierarchy of the serving tier.

Every failure the service can hand a caller is a subclass of
:class:`ServingError`, split along the axis that matters to a client:
*transient* errors (:class:`TransientServingError`) are worth retrying
— possibly after the attached ``retry_after`` hint — while permanent
ones are not.  The static-analysis rule ``serving-errors`` enforces
that no ``except`` inside :mod:`repro.serving` swallows an exception
silently: handlers re-raise, wrap into this hierarchy, or carry an
explicit ``# repro: allow[serving-errors]`` pragma.
"""

from __future__ import annotations

from repro.core.base import EstimatorError


class ServingError(EstimatorError):
    """Base class for every error raised by the serving tier."""


class TransientServingError(ServingError):
    """A failure that may succeed on retry (overload, injected blip)."""


class Overloaded(TransientServingError):
    """The admission queue is full; try again after ``retry_after_s``.

    Raised instead of blocking without bound: a saturated service
    sheds load explicitly and tells the caller when capacity is
    plausible again.
    """

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(message)
        #: Suggested client back-off before re-submitting, in seconds.
        self.retry_after_s = float(retry_after_s)


class DeadlineExceeded(ServingError):
    """The request's deadline elapsed before an estimate was produced.

    Not transient from the request's point of view — the answer is
    already too late — though the *next* request may well succeed.
    """

    def __init__(self, message: str, deadline_s: float, elapsed_s: float) -> None:
        super().__init__(message)
        #: The request's total budget, in seconds.
        self.deadline_s = float(deadline_s)
        #: Wall-clock spent when the deadline check fired, in seconds.
        self.elapsed_s = float(elapsed_s)


class CircuitOpen(TransientServingError):
    """A circuit breaker is refusing calls to one (table, tier) pair."""

    def __init__(self, message: str, table: str, tier: str) -> None:
        super().__init__(message)
        self.table = table
        self.tier = tier


class PoisonedResult(TransientServingError):
    """A cached or computed estimate failed validation (NaN, negative).

    Transient: the poisoned entry is evicted on detection, so the
    retry recomputes from statistics.
    """


class EstimatorUnavailable(ServingError):
    """Every tier of the fallback chain failed for this request.

    ``causes`` records one ``(tier, error)`` pair per attempted tier,
    so the caller (and the chaos suite) can see the whole descent.
    """

    def __init__(
        self, message: str, causes: "tuple[tuple[str, BaseException], ...]" = ()
    ) -> None:
        super().__init__(message)
        self.causes = tuple(causes)


class InjectedFault(TransientServingError):
    """An error deliberately raised by the fault-injection layer.

    Carries the injection site so chaos tests can assert exactly which
    scheduled fault fired; ``transient`` mirrors the rule's flag so
    the retry classifier can be exercised both ways.
    """

    def __init__(self, message: str, site: str, transient: bool = True) -> None:
        super().__init__(message)
        self.site = site
        self.transient = bool(transient)


def is_transient(error: BaseException) -> bool:
    """Whether ``error`` is worth an in-place retry.

    Transient serving errors retry unless they are injected faults
    explicitly marked permanent; everything else (validation errors,
    programming errors) fails fast to the next tier.
    """
    if isinstance(error, InjectedFault):
        return error.transient
    return isinstance(error, TransientServingError)
