"""Retry policy: jittered exponential backoff under a deadline.

Transient failures (overload blips, injected faults marked transient)
deserve another try; everything else fails fast.  The backoff is the
standard exponential ladder ``base * multiplier**attempt`` capped at
``max_delay_s``, with multiplicative jitter drawn from a seeded
``numpy`` generator — the project's seeding rules apply to the serving
tier too, so two services built with the same seed retry on identical
schedules (what the chaos suite's determinism assertions rely on).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.base import InvalidQueryError


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Backoff shape for transient-failure retries.

    ``max_attempts`` counts total tries (1 = no retries).  ``jitter``
    is the half-width of the multiplicative noise: a delay is scaled
    by a uniform draw from ``[1 - jitter, 1 + jitter]``.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.005
    multiplier: float = 2.0
    max_delay_s: float = 0.25
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise InvalidQueryError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise InvalidQueryError("retry delays must be >= 0")
        if self.multiplier < 1.0:
            raise InvalidQueryError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter < 1.0:
            raise InvalidQueryError(f"jitter must be in [0, 1), got {self.jitter}")

    def delay_s(self, attempt: int, rng: np.random.Generator) -> float:
        """Jittered sleep before retry number ``attempt`` (0-based).

        Consumes exactly one draw from ``rng`` so retry schedules are
        reproducible from the service seed.
        """
        if attempt < 0:
            raise InvalidQueryError(f"attempt must be >= 0, got {attempt}")
        raw = min(self.base_delay_s * self.multiplier**attempt, self.max_delay_s)
        scale = 1.0 + self.jitter * float(rng.uniform(-1.0, 1.0))
        return raw * scale
