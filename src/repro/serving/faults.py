"""Deterministic fault injection for the serving tier.

Chaos testing a serving path needs failures that are *scheduled*, not
sampled: a test must be able to say "the third hybrid estimate throws,
the fifth stalls 40 ms" and assert the exact breaker transitions that
follow.  :class:`FaultInjector` therefore triggers on per-site call
counters — :class:`FaultRule` names an injection *site* (a dotted
string the service passes to :meth:`FaultInjector.check` at each
instrumented point) and a counter schedule (``after`` / ``every`` /
``times``), so the same rule list always produces the same fault
sequence regardless of thread interleaving or wall-clock.

Four fault kinds cover the serving failure modes:

``latency``
    Sleep ``latency_s`` at the site (capped at the caller's remaining
    deadline budget, so an injected stall surfaces as a deadline hit,
    never as an unbounded hang).
``error``
    Raise :class:`~repro.serving.errors.InjectedFault` (transient or
    permanent per the rule).
``poison``
    Tell the call site to corrupt its value (the service's result
    cache writes a NaN estimate); the detection/recovery path is the
    thing under test.
``skew``
    Step the injector's clock by ``skew_s``.  Components using
    :meth:`FaultInjector.clock` (deadlines, breaker cooldowns) see the
    jump; the chaos suite uses it to expire deadlines and cooldowns
    without real waiting.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Callable

from repro.core.base import InvalidQueryError
from repro.serving.errors import InjectedFault
from repro.telemetry import get_telemetry

#: Fault kinds a rule may inject.
KINDS = frozenset({"latency", "error", "poison", "skew"})


@dataclasses.dataclass(frozen=True)
class FaultRule:
    """One scheduled fault at one injection site.

    The rule fires on site calls ``after, after + every, after +
    2*every, ...`` (0-based per-site call index), at most ``times``
    times (``None`` = unlimited).  ``site`` may end in ``*`` to match
    any site with that prefix.
    """

    site: str
    kind: str
    after: int = 0
    every: int = 1
    times: "int | None" = None
    latency_s: float = 0.0
    skew_s: float = 0.0
    transient: bool = True
    message: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise InvalidQueryError(
                f"unknown fault kind {self.kind!r}; choose from {sorted(KINDS)}"
            )
        if not self.site:
            raise InvalidQueryError("fault site must be a non-empty string")
        if self.after < 0 or self.every < 1:
            raise InvalidQueryError(
                f"fault schedule needs after >= 0 and every >= 1, "
                f"got after={self.after}, every={self.every}"
            )
        if self.times is not None and self.times < 1:
            raise InvalidQueryError(f"times must be >= 1 or None, got {self.times}")
        if self.kind == "latency" and self.latency_s <= 0:
            raise InvalidQueryError("latency faults need latency_s > 0")

    def matches(self, site: str) -> bool:
        """Whether this rule applies at ``site``."""
        if self.site.endswith("*"):
            return site.startswith(self.site[:-1])
        return site == self.site

    def due(self, call_index: int, fired: int) -> bool:
        """Whether the rule fires on the ``call_index``-th matching call."""
        if self.times is not None and fired >= self.times:
            return False
        if call_index < self.after:
            return False
        return (call_index - self.after) % self.every == 0


class FaultInjector:
    """Applies a rule schedule at named sites; no rules means no-ops.

    Thread-safe: per-site call counters and per-rule fire counts are
    lock-guarded, so concurrent requests observe a single global call
    order per site (the order requests reach the site).  Everything
    else — which call indices fire — is deterministic.
    """

    def __init__(
        self,
        rules: "tuple[FaultRule, ...] | list[FaultRule]" = (),
        *,
        base_clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._rules = tuple(rules)
        self._base_clock = base_clock
        self._sleep = sleep
        self._lock = threading.Lock()
        self._calls: dict[str, int] = {}
        self._fired: dict[int, int] = {}
        self._fired_by_site: dict[str, int] = {}
        self._skew_s = 0.0

    @property
    def rules(self) -> tuple[FaultRule, ...]:
        """The installed rule schedule."""
        return self._rules

    def clock(self) -> float:
        """Monotonic seconds, plus any injected clock skew."""
        with self._lock:
            skew = self._skew_s
        return self._base_clock() + skew

    def calls(self, site: str) -> int:
        """How many times ``site`` was checked."""
        with self._lock:
            return self._calls.get(site, 0)

    def fired(self, site: str) -> int:
        """How many faults actually fired at ``site``."""
        with self._lock:
            return self._fired_by_site.get(site, 0)

    def check(self, site: str, budget_s: "float | None" = None) -> tuple[str, ...]:
        """Run the site's due faults; returns the fired kinds in order.

        ``latency`` faults sleep here (capped at ``budget_s`` when
        given, so a stall cannot overshoot the caller's deadline by
        more than scheduler noise); ``skew`` steps the injector clock;
        ``error`` raises :class:`InjectedFault`.  ``poison`` is
        returned for the call site to act on — only it knows what a
        corrupted value looks like.
        """
        if not self._rules:
            return ()
        to_raise: "InjectedFault | None" = None
        actions: list[str] = []
        sleep_s = 0.0
        with self._lock:
            index = self._calls.get(site, 0)
            self._calls[site] = index + 1
            for position, rule in enumerate(self._rules):
                if not rule.matches(site):
                    continue
                fired = self._fired.get(position, 0)
                if not rule.due(index, fired):
                    continue
                self._fired[position] = fired + 1
                self._fired_by_site[site] = self._fired_by_site.get(site, 0) + 1
                actions.append(rule.kind)
                if rule.kind == "latency":
                    sleep_s += rule.latency_s
                elif rule.kind == "skew":
                    self._skew_s += rule.skew_s
                elif rule.kind == "error" and to_raise is None:
                    to_raise = InjectedFault(
                        rule.message or f"injected fault at {site}",
                        site=site,
                        transient=rule.transient,
                    )
        if actions:
            self._record(site, actions)
        if sleep_s > 0.0:
            if budget_s is not None:
                sleep_s = min(sleep_s, max(budget_s, 0.0))
            if sleep_s > 0.0:
                self._sleep(sleep_s)
        if to_raise is not None:
            raise to_raise
        return tuple(actions)

    def _record(self, site: str, actions: "list[str]") -> None:
        telemetry = get_telemetry()
        if not telemetry.enabled:
            return
        for kind in actions:
            telemetry.metrics.inc("serving.fault")
            telemetry.metrics.inc(f"serving.fault.{kind}")


#: Shared no-op injector for services built without fault injection.
NO_FAULTS = FaultInjector()
