"""Per-(table, tier) circuit breakers driven by failure-rate windows.

The classic three-state machine:

``closed``
    Calls flow; outcomes land in a sliding window of the last
    ``window`` results.  When the window holds at least
    ``min_samples`` outcomes and the failure fraction reaches
    ``failure_threshold``, the breaker *opens*.
``open``
    Calls are refused (:meth:`CircuitBreaker.allow` returns ``False``)
    until ``cooldown_s`` has elapsed on the injected clock — under
    fault-injected clock skew, cooldowns expire deterministically.
``half-open``
    After the cooldown, up to ``half_open_probes`` trial calls are
    admitted.  Any probe failure reopens the breaker (and restarts the
    cooldown); once all probes succeed the breaker closes with a fresh
    window.

A breaker guards one (table, estimator-tier) pair: the hybrid tier of
one table can be open while its histogram tier — and every other
table — keeps serving.  :class:`BreakerBoard` is the keyed collection
the service consults; state changes surface as
``serving.breaker.state.<table>.<tier>`` gauges (0 closed, 1 open,
2 half-open) and ``serving.breaker.open.<table>.<tier>`` counters.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import deque
from typing import Callable

from repro.core.base import InvalidQueryError
from repro.telemetry import get_telemetry

#: State names, in gauge-value order.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

_STATE_GAUGE = {CLOSED: 0.0, OPEN: 1.0, HALF_OPEN: 2.0}


@dataclasses.dataclass(frozen=True)
class BreakerConfig:
    """Tuning knobs for one breaker (shared by a board's breakers)."""

    window: int = 8
    failure_threshold: float = 0.5
    min_samples: int = 4
    cooldown_s: float = 1.0
    half_open_probes: int = 2

    def __post_init__(self) -> None:
        if self.window < 1 or self.min_samples < 1 or self.half_open_probes < 1:
            raise InvalidQueryError(
                "window, min_samples and half_open_probes must all be >= 1"
            )
        if self.min_samples > self.window:
            raise InvalidQueryError(
                f"min_samples ({self.min_samples}) cannot exceed window ({self.window})"
            )
        if not 0.0 < self.failure_threshold <= 1.0:
            raise InvalidQueryError(
                f"failure_threshold must be in (0, 1], got {self.failure_threshold}"
            )
        if self.cooldown_s < 0:
            raise InvalidQueryError(f"cooldown_s must be >= 0, got {self.cooldown_s}")


class CircuitBreaker:
    """One closed → open → half-open state machine.

    Thread-safe; the clock is injectable so tests (and the fault
    injector's skewed clock) drive cooldowns deterministically.
    """

    def __init__(
        self,
        config: BreakerConfig = BreakerConfig(),
        *,
        clock: Callable[[], float] = time.monotonic,
        name: str = "",
    ) -> None:
        self._config = config
        self._clock = clock
        self._name = name
        self._lock = threading.Lock()
        self._state = CLOSED
        self._outcomes: "deque[bool]" = deque(maxlen=config.window)
        self._opened_at = 0.0
        self._probes_issued = 0
        self._probes_succeeded = 0
        self._times_opened = 0

    @property
    def state(self) -> str:
        """Current state name (cooldown expiry applies on ``allow``)."""
        with self._lock:
            return self._state

    @property
    def times_opened(self) -> int:
        """How often the breaker has tripped since construction."""
        with self._lock:
            return self._times_opened

    def allow(self) -> bool:
        """Whether a call may proceed right now.

        An open breaker whose cooldown has elapsed transitions to
        half-open here and admits the first probe.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at < self._config.cooldown_s:
                    return False
                self._to_half_open()
            # Half-open: admit while probe slots remain.
            if self._probes_issued < self._config.half_open_probes:
                self._probes_issued += 1
                return True
            return False

    def record_success(self) -> None:
        """Report a successful call through the breaker."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._probes_succeeded += 1
                if self._probes_succeeded >= self._config.half_open_probes:
                    self._to_closed()
                return
            self._outcomes.append(True)

    def record_failure(self) -> None:
        """Report a failed call; may trip the breaker."""
        with self._lock:
            if self._state == HALF_OPEN:
                # One bad probe is enough evidence the fault persists.
                self._to_open()
                return
            self._outcomes.append(False)
            if self._state == CLOSED and self._should_trip():
                self._to_open()

    def _should_trip(self) -> bool:
        if len(self._outcomes) < self._config.min_samples:
            return False
        failures = sum(1 for ok in self._outcomes if not ok)
        return failures / len(self._outcomes) >= self._config.failure_threshold

    # -- transitions (lock held) --------------------------------------

    def _to_open(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._times_opened += 1
        self._outcomes.clear()
        self._publish(opened=True)

    def _to_half_open(self) -> None:
        self._state = HALF_OPEN
        self._probes_issued = 0
        self._probes_succeeded = 0
        self._publish()

    def _to_closed(self) -> None:
        self._state = CLOSED
        self._outcomes.clear()
        self._publish()

    def _publish(self, opened: bool = False) -> None:
        telemetry = get_telemetry()
        if not telemetry.enabled or not self._name:
            return
        telemetry.metrics.set_gauge(
            f"serving.breaker.state.{self._name}", _STATE_GAUGE[self._state]
        )
        if opened:
            telemetry.metrics.inc(f"serving.breaker.open.{self._name}")


class BreakerBoard:
    """Lazily created breakers keyed by (table, tier)."""

    def __init__(
        self,
        config: BreakerConfig = BreakerConfig(),
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._config = config
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: dict[tuple[str, str], CircuitBreaker] = {}

    def get(self, table: str, tier: str) -> CircuitBreaker:
        """The breaker guarding one (table, tier) pair."""
        key = (table, tier)
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(
                    self._config, clock=self._clock, name=f"{table}.{tier}"
                )
                self._breakers[key] = breaker
            return breaker

    def states(self) -> dict[tuple[str, str], str]:
        """Current state of every instantiated breaker."""
        with self._lock:
            pairs = list(self._breakers.items())
        return {key: breaker.state for key, breaker in pairs}
