"""Shared experiment configuration and context loading.

Experiments vary three knobs: which data file, how many samples, and
which query file.  :class:`ExperimentConfig` bundles the paper's
protocol values; :data:`FAST` is the configuration used by the test
and benchmark suites, which trades query count (and the number of
data files in the bar figures) for runtime while preserving every
qualitative shape.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import os
import pathlib
import typing
import zlib

import numpy as np

from repro.data import registry
from repro.data.relation import Relation
from repro.db.cache import MISS, LRUCache
from repro.telemetry import get_telemetry
from repro.workload.queries import QueryFile, generate_query_file

if typing.TYPE_CHECKING:
    from repro.experiments.reporting import FigureResult
    from repro.telemetry import Telemetry

#: Data files used by the bar-style figures (8, 9, 11, 12).  The paper
#: shows "the different data files"; this is the large-domain subset
#: its §5.2.1 keeps after discarding high-duplicate domains.
PAPER_BAR_DATASETS = (
    "u(20)",
    "n(20)",
    "e(20)",
    "arap1",
    "arap2",
    "rr1(22)",
    "rr2(22)",
    "iw",
)

#: Reduced data-file list for fast runs.
FAST_BAR_DATASETS = ("u(20)", "n(20)", "e(20)", "arap1", "rr1(22)", "iw")


@dataclasses.dataclass(frozen=True)
class ExperimentConfig:
    """Protocol parameters shared by the experiment modules.

    Attributes mirror the paper's §5.1: 2,000-record samples, 1,000
    queries per file, 1 % default query size.
    """

    seed: int = 0
    sample_size: int = 2_000
    n_queries: int = 1_000
    query_size: float = 0.01
    datasets: tuple[str, ...] = PAPER_BAR_DATASETS

    def sample_seed(self, name: str) -> int:
        """Deterministic (process-independent) per-dataset sample seed."""
        return (zlib.crc32(f"{name}|sample".encode()) ^ self.seed) & 0x7FFFFFFF

    def query_seed(self, name: str, size: float) -> int:
        """Deterministic (process-independent) per-query-file seed."""
        return (zlib.crc32(f"{name}|queries|{size:.6f}".encode()) ^ self.seed) & 0x7FFFFFFF


#: The paper's protocol.
DEFAULT = ExperimentConfig()

#: Fast protocol for tests and benchmarks.
FAST = ExperimentConfig(n_queries=150, datasets=FAST_BAR_DATASETS)


@dataclasses.dataclass(frozen=True)
class Context:
    """Everything an estimator needs for one (dataset, query size) cell."""

    relation: Relation
    sample: np.ndarray
    queries: QueryFile


#: Cached (relation, sample, queries) realizations; lookups surface as
#: ``cache.hit.context`` / ``cache.miss.context`` telemetry counters.
_CONTEXT_CACHE = LRUCache(capacity=128, name="context")


def _cached_context(
    name: str,
    seed: int,
    sample_size: int,
    n_queries: int,
    query_size: float,
) -> Context:
    key = (name, seed, sample_size, n_queries, query_size)
    cached = _CONTEXT_CACHE.get(key)
    if cached is not MISS:
        return cached
    telemetry = get_telemetry()
    with telemetry.span("harness.load_context", dataset=name):
        relation = registry.load(name, seed=seed)
        config = ExperimentConfig(seed=seed)
        sample = relation.sample(sample_size, seed=config.sample_seed(name))
        sample.flags.writeable = False
        queries = generate_query_file(
            relation,
            query_size,
            n_queries=n_queries,
            seed=config.query_seed(name, query_size),
        )
    if telemetry.enabled:
        telemetry.metrics.inc("harness.context.load")
    context = Context(relation, sample, queries)
    _CONTEXT_CACHE.put(key, context)
    return context


def load_context(
    name: str,
    config: ExperimentConfig = DEFAULT,
    query_size: float | None = None,
) -> Context:
    """Load (relation, sample, query file) for one experiment cell.

    Contexts are cached: experiments sharing a dataset and protocol
    reuse the same realization, mirroring the paper's fixed data and
    query files.
    """
    size = config.query_size if query_size is None else query_size
    return _cached_context(
        name, config.seed, config.sample_size, config.n_queries, float(size)
    )


def default_worker_count(n_cells: int) -> int:
    """Worker threads for :func:`run_cells`.

    ``REPRO_HARNESS_WORKERS`` overrides (``1`` forces serial
    execution); otherwise one thread per cell up to the CPU count,
    capped at 8 — the cells are NumPy-heavy, so most of their time
    releases the GIL inside vectorized kernels.
    """
    override = os.environ.get("REPRO_HARNESS_WORKERS")
    if override:
        try:
            return max(1, int(override))
        except ValueError:
            pass
    return max(1, min(n_cells, os.cpu_count() or 1, 8))


class CellError(RuntimeError):
    """A worker exception wrapped with the failing cell's identity.

    A bare exception out of a thread pool loses which cell died;
    :func:`run_cells` wraps worker failures in this type so the sweep
    can be rerun or triaged by cell.  The original exception is
    chained as ``__cause__`` and kept as :attr:`cause`; :attr:`cell`
    is the failing cell's label.
    """

    def __init__(self, cell: str, cause: BaseException) -> None:
        super().__init__(f"cell {cell!r} failed: {type(cause).__name__}: {cause}")
        self.cell = cell
        self.cause = cause


def run_cells(
    cells: "typing.Sequence[typing.Any]",
    evaluate: "typing.Callable[[typing.Any], typing.Any]",
    *,
    max_workers: "int | None" = None,
    label: "typing.Callable[[typing.Any], str]" = str,
    keep_going: bool = False,
) -> list:
    """Evaluate independent experiment cells, in parallel when possible.

    ``cells`` are opaque descriptors (typically ``(dataset,
    estimator)`` pairs); ``evaluate`` maps one cell to its result.
    Results come back in input order regardless of completion order.
    Determinism is unaffected: every cell derives its randomness from
    the per-dataset ``sample_seed`` / ``query_seed`` scheme, so the
    schedule cannot change any number.

    A worker exception surfaces as :class:`CellError` naming the
    failing cell (counted as ``harness.cell.error``).  By default the
    first failure propagates; with ``keep_going=True`` every cell runs
    to completion and failed cells yield their :class:`CellError` *in
    place* in the result list, so a long sweep reports all casualties
    in one pass instead of dying on the first.

    Each cell runs inside a ``harness.cell`` span tagged with its
    label, counts one ``harness.cell`` metric, and records its
    wall-clock as ``harness.cell.seconds.<label>`` — the per-cell
    timings the run manifest merges from all workers.
    """
    telemetry = get_telemetry()

    def run_one(cell: typing.Any) -> typing.Any:
        tag = label(cell)
        try:
            with telemetry.span("harness.cell", cell=tag) as record:
                result = evaluate(cell)
        except Exception as exc:
            if telemetry.enabled:
                telemetry.metrics.inc("harness.cell.error")
            error = CellError(tag, exc)
            if keep_going:
                return error
            raise error from exc
        if telemetry.enabled:
            telemetry.metrics.inc("harness.cell")
            telemetry.metrics.observe(f"harness.cell.seconds.{tag}", record.duration)
        return result

    workers = default_worker_count(len(cells)) if max_workers is None else max_workers
    if workers <= 1 or len(cells) <= 1:
        return [run_one(cell) for cell in cells]
    with concurrent.futures.ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(run_one, cells))


def run_traced(
    name: str,
    run: "typing.Callable[[ExperimentConfig], FigureResult]",
    config: ExperimentConfig = DEFAULT,
    *,
    trace_memory: bool = False,
    manifest_directory: "pathlib.Path | None" = None,
) -> "tuple[FigureResult, pathlib.Path, Telemetry]":
    """Run one experiment under telemetry and write its run manifest.

    A fresh enabled :class:`~repro.telemetry.Telemetry` session wraps
    the whole run (so the manifest only contains this run's spans and
    metrics); the experiment executes inside a ``harness.experiment``
    span, and the resulting manifest — config, per-estimator
    build/query timings, error metrics — is written under
    :func:`repro.telemetry.manifest_dir`.  A Prometheus text
    exposition of the run's metrics (labelled by experiment) lands
    next to the manifest as ``<manifest>.prom``, ready for a textfile
    collector or CI artifact upload.

    Returns ``(result, manifest_path, telemetry)``; the telemetry
    object is already detached from the process global, ready for
    rendering or snapshotting.
    """
    from repro import telemetry as _telemetry

    with _telemetry.session(trace_memory=trace_memory) as session:
        with session.span("harness.experiment", experiment=name) as record:
            result = run(config)
        session.metrics.inc("harness.experiment")
        manifest = _telemetry.build_manifest(
            name, result, config, session, duration_seconds=record.duration
        )
        path = _telemetry.write_manifest(manifest, manifest_directory)
        exposition = _telemetry.prometheus_exposition(
            session.metrics.snapshot(), labels={"experiment": name}
        )
        path.with_suffix(".prom").write_text(exposition)
    return result, path, session
