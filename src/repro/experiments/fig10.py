"""Fig. 10: boundary treatments compared.

Relative error of 1 % queries as a function of the query position on
uniform data, for the untreated kernel estimator, the reflection
technique and Simonoff–Dong boundary kernels.  Both treatments remove
the error spike at the domain edges; the paper finds the boundary
kernels slightly ahead of reflection in almost all cases.
"""

from __future__ import annotations

import numpy as np

from repro.bandwidth.normal_scale import kernel_bandwidth
from repro.core.kernel import make_kernel_estimator
from repro.experiments.harness import DEFAULT, ExperimentConfig, load_context
from repro.experiments.reporting import FigureResult, make_result
from repro.workload.metrics import relative_errors
from repro.workload.queries import position_sweep

#: Data file used by the paper for this figure.
DATASET = "u(20)"

#: The three estimator variants shown.
TREATMENTS = ("none", "reflection", "kernel")


def run(config: ExperimentConfig = DEFAULT, positions: int = 100) -> FigureResult:
    """Position sweep per boundary treatment."""
    context = load_context(DATASET, config)
    relation = context.relation
    bandwidth = kernel_bandwidth(context.sample)
    sweep = position_sweep(relation, config.query_size, n_positions=positions)
    per_treatment = {}
    for treatment in TREATMENTS:
        estimator = make_kernel_estimator(
            context.sample, bandwidth, relation.domain, boundary=treatment
        )
        per_treatment[treatment] = relative_errors(estimator, sweep)
    centers = (0.5 * (sweep.a + sweep.b) - relation.domain.low) / relation.domain.width
    rows = []
    for i, position in enumerate(centers):
        row: dict[str, object] = {"position": float(position)}
        for treatment in TREATMENTS:
            value = per_treatment[treatment][i]
            row[f"{treatment} rel. error"] = float(value) if np.isfinite(value) else 0.0
        rows.append(row)
    return make_result(
        "fig-10",
        "Relative error of 1% queries vs. position per boundary treatment (uniform data)",
        rows,
        notes=(
            "expected shape: untreated error spikes at both edges; both "
            "treatments flatten it, boundary kernels slightly best overall"
        ),
    )
