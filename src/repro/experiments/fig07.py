"""Fig. 7: the impact of the query size.

MRE of equi-width histograms (normal-scale bins) for query files of
size 1 %, 2 %, 5 % and 10 % across the data files.  Larger queries
are easier: absolute bin-boundary effects amortize over a larger true
result (the paper quotes arap2 falling from 17.5 % at 1 % queries to
4.5 % at 10 %).
"""

from __future__ import annotations

from repro.bandwidth.normal_scale import histogram_bin_count
from repro.core.histogram import EquiWidthHistogram
from repro.experiments.harness import DEFAULT, ExperimentConfig, load_context
from repro.experiments.reporting import FigureResult, make_result
from repro.workload.metrics import mean_relative_error
from repro.workload.queries import PAPER_QUERY_SIZES


def run(
    config: ExperimentConfig = DEFAULT,
    query_sizes: tuple[float, ...] = PAPER_QUERY_SIZES,
) -> FigureResult:
    """Evaluate equi-width histograms per dataset and query size."""
    rows = []
    for name in config.datasets:
        row: dict[str, object] = {"dataset": name}
        for size in query_sizes:
            context = load_context(name, config, query_size=size)
            bins = histogram_bin_count(context.sample, context.relation.domain)
            histogram = EquiWidthHistogram(context.sample, context.relation.domain, bins)
            row[f"{size:.0%} MRE"] = mean_relative_error(histogram, context.queries)
        rows.append(row)
    return make_result(
        "fig-7",
        "MRE of equi-width histograms for different query sizes",
        rows,
        notes="expected shape: error decreases monotonically (up to noise) with query size",
    )
