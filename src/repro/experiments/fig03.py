"""Fig. 3: the boundary problem of untreated kernel estimators.

Signed absolute estimation error of 1 % queries as a function of the
query position on uniformly distributed data.  The untreated kernel
estimator is accurate in the domain center and loses up to half the
query's records (error approaching -500 of 1,000) where the query
touches a boundary, because the kernel mass spills out of the domain.
"""

from __future__ import annotations

from repro.bandwidth.normal_scale import kernel_bandwidth
from repro.core.kernel import make_kernel_estimator
from repro.experiments.harness import DEFAULT, ExperimentConfig, load_context
from repro.experiments.reporting import FigureResult, make_result
from repro.workload.metrics import signed_errors
from repro.workload.queries import position_sweep

#: Data file used by the paper for this figure.
DATASET = "u(20)"


def run(config: ExperimentConfig = DEFAULT, positions: int = 100) -> FigureResult:
    """Sweep 1 % queries across the domain with no boundary treatment."""
    context = load_context(DATASET, config)
    relation = context.relation
    bandwidth = kernel_bandwidth(context.sample)
    estimator = make_kernel_estimator(
        context.sample, bandwidth, relation.domain, boundary="none"
    )
    sweep = position_sweep(relation, config.query_size, n_positions=positions)
    errors = signed_errors(estimator, sweep)
    centers = 0.5 * (sweep.a + sweep.b)
    width = relation.domain.width
    rows = [
        {
            "position": float((center - relation.domain.low) / width),
            "signed error [records]": float(err),
            "true result": int(true),
        }
        for center, err, true in zip(centers, errors, sweep.true_counts)
    ]
    return make_result(
        "fig-3",
        "Signed error of 1% queries vs. position (uniform data, untreated kernel)",
        rows,
        notes="expected shape: near-zero error in the center, large negative error at both edges",
    )
