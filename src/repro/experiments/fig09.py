"""Fig. 9: bin-count selection rules for equi-width histograms.

For every data file, the MRE of the equi-width histogram with the
observed-optimal bin count (``h-opt``, the workload oracle) and with
the bin count of the normal scale rule (``h-NS``, paper eq. 8).  The
paper finds the rule lands about 3 percentage points above the
optimum on average.
"""

from __future__ import annotations

from repro.bandwidth.normal_scale import histogram_bin_count
from repro.bandwidth.oracle import oracle_bin_count
from repro.core.histogram import EquiWidthHistogram
from repro.experiments.fig08 import bin_candidates  # noqa: F401 - shared grid
from repro.experiments.harness import DEFAULT, ExperimentConfig, load_context
from repro.experiments.reporting import FigureResult, make_result
from repro.workload.metrics import mean_relative_error


def run(config: ExperimentConfig = DEFAULT) -> FigureResult:
    """h-opt vs. h-NS bin counts per data file."""
    rows = []
    for name in config.datasets:
        context = load_context(name, config)
        sample, domain, queries = context.sample, context.relation.domain, context.queries
        ns_bins = histogram_bin_count(sample, domain)
        # The oracle grid must contain the rule's own pick, otherwise
        # grid granularity could make the "optimum" lose to the rule.
        candidates = sorted(set(bin_candidates().tolist()) | {ns_bins})
        oracle = oracle_bin_count(
            lambda k: EquiWidthHistogram(sample, domain, k), queries, candidates
        )
        ns_error = mean_relative_error(
            EquiWidthHistogram(sample, domain, ns_bins), queries
        )
        rows.append(
            {
                "dataset": name,
                "h-opt MRE": oracle.best_error,
                "h-NS MRE": ns_error,
                "h-opt bins": int(oracle.best),
                "h-NS bins": ns_bins,
            }
        )
    return make_result(
        "fig-9",
        "Equi-width histograms: observed-optimal vs. normal-scale bin counts (1% queries)",
        rows,
        notes="expected shape: h-NS within a few percentage points of h-opt",
    )
