"""Fig. 4: dependence of the MRE on the number of bins.

Equi-width histograms on Normal data show the characteristic U-shape:
too few bins oversmooth (error above even pure sampling), too many
bins degenerate towards pure sampling.  The paper reports a minimum
around 20 bins (~7 % MRE) against a 17.5 % sampling baseline for
n(20) with 2,000 samples and 1 % queries.
"""

from __future__ import annotations

import numpy as np

from repro.core.histogram import EquiWidthHistogram
from repro.core.sampling import SamplingEstimator
from repro.experiments.harness import DEFAULT, ExperimentConfig, load_context
from repro.experiments.reporting import FigureResult, make_result
from repro.workload.metrics import mean_relative_error

#: Data file used by the paper for this figure.
DATASET = "n(20)"


def default_bin_grid() -> np.ndarray:
    """Bin counts swept by the figure (log-spaced, 2..2000)."""
    return np.unique(np.round(np.geomspace(2, 2000, num=25)).astype(int))


def run(
    config: ExperimentConfig = DEFAULT,
    bin_grid: np.ndarray | None = None,
) -> FigureResult:
    """Sweep the number of equi-width bins on Normal data."""
    context = load_context(DATASET, config)
    if bin_grid is None:
        bin_grid = default_bin_grid()
    sampling_error = mean_relative_error(SamplingEstimator(context.sample), context.queries)
    rows = []
    for bins in bin_grid:
        histogram = EquiWidthHistogram(context.sample, context.relation.domain, int(bins))
        rows.append(
            {
                "bins": int(bins),
                "equi-width MRE": mean_relative_error(histogram, context.queries),
                "sampling MRE": sampling_error,
            }
        )
    return make_result(
        "fig-4",
        "MRE vs. number of bins (equi-width on n(20), 1% queries)",
        rows,
        notes="expected shape: U-curve dipping well below the flat sampling baseline",
    )
