"""Experiment modules: one per table/figure of the paper's §5.

Every module exposes ``run(config) -> FigureResult``; the default
configuration reproduces the paper's protocol (2,000 samples, 1,000
queries per file), while :data:`repro.experiments.harness.FAST` trades
query count for speed in tests and benchmarks.  The *shapes* (who
wins, where the error curves bend) are the reproduction target — see
DESIGN.md §4 and EXPERIMENTS.md.
"""

from repro.experiments.harness import DEFAULT, FAST, ExperimentConfig, load_context
from repro.experiments.reporting import FigureResult

__all__ = [
    "DEFAULT",
    "FAST",
    "ExperimentConfig",
    "FigureResult",
    "load_context",
]
