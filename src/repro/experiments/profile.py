"""Error profile: *where* the hybrid beats the plain kernel.

A diagnostic behind Fig. 12: on change-point data the plain kernel's
error concentrates around the density's discontinuities (smoothing
across them), while the hybrid turns those points into bin boundaries
that no kernel crosses.  This experiment sweeps fixed-size queries
across the arap1 stand-in and reports the relative error by position
band, split into queries near a detected change point vs. far from
all of them.
"""

from __future__ import annotations

import numpy as np

from repro.bandwidth.plugin import plugin_bandwidth
from repro.bandwidth.scale import clamp_bandwidth
from repro.core.hybrid import HybridEstimator
from repro.core.kernel import make_kernel_estimator
from repro.experiments.fig12 import HYBRID_KWARGS
from repro.experiments.harness import DEFAULT, ExperimentConfig, load_context
from repro.experiments.reporting import FigureResult, make_result
from repro.workload.metrics import relative_errors
from repro.workload.queries import position_sweep

DATASET = "arap1"


def run(config: ExperimentConfig = DEFAULT, positions: int = 220) -> FigureResult:
    """Near-change-point vs. far-from-change-point error comparison."""
    context = load_context(DATASET, config)
    relation = context.relation
    domain = relation.domain
    sample = context.sample

    h_dpi = clamp_bandwidth(plugin_bandwidth(sample, steps=2, domain=domain), domain.width)
    kernel = make_kernel_estimator(sample, h_dpi, domain, boundary="kernel")
    hybrid = HybridEstimator(sample, domain, **HYBRID_KWARGS)
    change_points = hybrid.change_points

    sweep = position_sweep(relation, config.query_size, n_positions=positions)
    centers = 0.5 * (sweep.a + sweep.b)
    kernel_errors = relative_errors(kernel, sweep)
    hybrid_errors = relative_errors(hybrid, sweep)

    # "Near": within one query width of a detected change point.
    width = config.query_size * domain.width
    if change_points.size:
        distance = np.min(np.abs(centers[:, None] - change_points[None, :]), axis=1)
    else:
        distance = np.full(centers.shape, np.inf)
    near = distance <= width

    def mean_error(errors: np.ndarray, mask: np.ndarray) -> float:
        values = errors[mask]
        values = values[~np.isnan(values)]
        return float(values.mean()) if values.size else float("nan")

    rows = [
        {
            "region": "near change points",
            "queries": int(near.sum()),
            "kernel MRE": mean_error(kernel_errors, near),
            "hybrid MRE": mean_error(hybrid_errors, near),
        },
        {
            "region": "away from change points",
            "queries": int((~near).sum()),
            "kernel MRE": mean_error(kernel_errors, ~near),
            "hybrid MRE": mean_error(hybrid_errors, ~near),
        },
    ]
    return make_result(
        "profile-hybrid",
        f"Error by distance to detected change points ({DATASET}, "
        f"{len(change_points)} change points)",
        rows,
        notes=(
            "measured: the hybrid wins in both bands — change-point "
            "isolation near the jumps, per-bin bandwidth adaptation "
            "elsewhere; bands differ in data density, so compare "
            "within a band only"
        ),
    )
