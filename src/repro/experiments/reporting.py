"""Uniform result container and text rendering for experiments.

Every experiment returns a :class:`FigureResult`: an ordered list of
row dicts plus labelling metadata.  ``render()`` produces the aligned
text table printed by the benchmark harness and the examples, and
``to_csv()`` emits machine-readable output for external plotting.
"""

from __future__ import annotations

import dataclasses
import io
from typing import Mapping, Sequence


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        # Errors are fractions; render as percentages with sign intact.
        if abs(value) < 10.0:
            return f"{value * 100:.2f}%"
        return f"{value:.1f}"
    return str(value)


@dataclasses.dataclass(frozen=True)
class FigureResult:
    """Result of one paper experiment.

    Attributes
    ----------
    figure_id:
        Paper reference, e.g. ``"fig-8"`` or ``"table-2"``.
    title:
        Human-readable description of what the experiment shows.
    rows:
        Ordered records; all rows share the same keys.  Float values
        are error fractions unless the column name says otherwise.
    notes:
        Reproduction caveats worth keeping next to the numbers.
    """

    figure_id: str
    title: str
    rows: tuple[Mapping[str, object], ...]
    notes: str = ""

    def __post_init__(self) -> None:
        if not self.rows:
            raise ValueError(f"{self.figure_id}: experiment produced no rows")
        keys = list(self.rows[0].keys())
        for row in self.rows:
            if list(row.keys()) != keys:
                raise ValueError(f"{self.figure_id}: rows have inconsistent columns")

    @property
    def columns(self) -> list[str]:
        """Column names, in row order."""
        return list(self.rows[0].keys())

    def column(self, name: str) -> list[object]:
        """All values of one column, in row order."""
        if name not in self.rows[0]:
            raise KeyError(f"{self.figure_id} has no column {name!r}; has {self.columns}")
        return [row[name] for row in self.rows]

    def render(self) -> str:
        """Aligned text table with the figure header."""
        columns = self.columns
        cells = [[_format_cell(row[c]) for c in columns] for row in self.rows]
        widths = [
            max(len(column), max(len(row[i]) for row in cells))
            for i, column in enumerate(columns)
        ]
        out = io.StringIO()
        out.write(f"== {self.figure_id}: {self.title} ==\n")
        header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
        out.write(header + "\n")
        out.write("-" * len(header) + "\n")
        for row in cells:
            out.write("  ".join(c.rjust(w) for c, w in zip(row, widths)) + "\n")
        if self.notes:
            out.write(f"note: {self.notes}\n")
        return out.getvalue()

    def to_csv(self) -> str:
        """Comma-separated rendering (raw values, no formatting)."""
        columns = self.columns
        lines = [",".join(columns)]
        for row in self.rows:
            lines.append(",".join(str(row[c]) for c in columns))
        return "\n".join(lines) + "\n"

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly rendering (numpy scalars converted).

        This is the ``rows`` payload embedded in telemetry run
        manifests (see :mod:`repro.telemetry.manifest`).
        """
        from repro.telemetry.manifest import to_jsonable

        return {
            "figure_id": self.figure_id,
            "title": self.title,
            "rows": [to_jsonable(dict(row)) for row in self.rows],
            "notes": self.notes,
        }


def make_result(
    figure_id: str,
    title: str,
    rows: Sequence[Mapping[str, object]],
    notes: str = "",
) -> FigureResult:
    """Convenience constructor normalizing ``rows`` to a tuple."""
    return FigureResult(figure_id, title, tuple(rows), notes)
