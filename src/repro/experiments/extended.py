"""Beyond the paper: the full estimator zoo on the paper's workload.

Runs every estimator family in the library — the paper's line-up plus
the cited state-of-the-art comparators it references but does not
evaluate (V-optimal [7], wavelet [4], end-biased) — over the standard
1 % query files.  This answers the natural follow-up question the
paper leaves open: would the optimal-histogram and wavelet families
have changed the conclusions?
"""

from __future__ import annotations

from repro.bandwidth.normal_scale import histogram_bin_count
from repro.bandwidth.plugin import plugin_bandwidth
from repro.bandwidth.scale import clamp_bandwidth
from repro.core.histogram import (
    EndBiasedHistogram,
    EquiWidthHistogram,
    VOptimalHistogram,
    WaveletHistogram,
)
from repro.core.hybrid import HybridEstimator
from repro.core.kernel import make_kernel_estimator
from repro.experiments.fig12 import HYBRID_KWARGS
from repro.experiments.harness import DEFAULT, ExperimentConfig, load_context
from repro.experiments.reporting import FigureResult, make_result
from repro.workload.metrics import mean_relative_error


def run(config: ExperimentConfig = DEFAULT) -> FigureResult:
    """All families, NS-family smoothing defaults, 1% queries."""
    rows = []
    for name in config.datasets:
        context = load_context(name, config)
        sample, domain, queries = context.sample, context.relation.domain, context.queries
        bins = histogram_bin_count(sample, domain)
        h_dpi = clamp_bandwidth(
            plugin_bandwidth(sample, steps=2, domain=domain), domain.width
        )
        estimators = {
            "EWH": EquiWidthHistogram(sample, domain, bins),
            "V-opt": VOptimalHistogram(sample, domain, bins),
            # Match the V-opt/EWH statistic size: a bucket stores a
            # boundary and a count, a wavelet coefficient one value.
            "Wavelet": WaveletHistogram(sample, domain, coefficients=2 * bins),
            "End-biased": EndBiasedHistogram(sample, domain, top=2 * bins),
            "Kernel": make_kernel_estimator(sample, h_dpi, domain, boundary="kernel"),
            "Hybrid": HybridEstimator(sample, domain, **HYBRID_KWARGS),
        }
        row: dict[str, object] = {"dataset": name}
        for label, estimator in estimators.items():
            row[f"{label} MRE"] = mean_relative_error(estimator, queries)
        rows.append(row)
    return make_result(
        "extended-comparison",
        "Every estimator family (paper line-up + cited comparators), 1% queries",
        rows,
        notes=(
            "V-opt/wavelet/end-biased are the families the paper cites but "
            "does not evaluate; statistic sizes matched to the EWH budget"
        ),
    )
