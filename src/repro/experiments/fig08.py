"""Fig. 8: histogram estimators at their observed-optimal bin counts.

Compares equi-width, equi-depth and max-diff histograms — each with
the bin count that minimizes the observed MRE (the workload oracle) —
against pure sampling and the uniform estimator.  On large metric
domains the paper finds equi-width generally the winner, max-diff
clearly behind (contradicting the small-domain results of Poosala et
al.), and the uniform estimator collapsing on the skewed real files
(≈600 % on the census file).
"""

from __future__ import annotations

import numpy as np

from repro.bandwidth.oracle import oracle_bin_count
from repro.core.histogram import (
    EquiDepthHistogram,
    EquiWidthHistogram,
    MaxDiffHistogram,
    UniformEstimator,
)
from repro.core.sampling import SamplingEstimator
from repro.experiments.harness import DEFAULT, ExperimentConfig, load_context
from repro.experiments.reporting import FigureResult, make_result
from repro.workload.metrics import mean_relative_error


def bin_candidates(max_bins: int = 1_500, points: int = 22) -> np.ndarray:
    """Candidate bin counts for the oracle sweep."""
    return np.unique(np.round(np.geomspace(2, max_bins, num=points)).astype(int))


def run(config: ExperimentConfig = DEFAULT) -> FigureResult:
    """Oracle-tuned histogram comparison per data file."""
    candidates = bin_candidates()
    rows = []
    for name in config.datasets:
        context = load_context(name, config)
        sample, domain, queries = context.sample, context.relation.domain, context.queries
        ewh = oracle_bin_count(
            lambda k: EquiWidthHistogram(sample, domain, k), queries, candidates
        )
        edh = oracle_bin_count(
            lambda k: EquiDepthHistogram(sample, k, domain), queries, candidates
        )
        mdh = oracle_bin_count(
            lambda k: MaxDiffHistogram(sample, k, domain), queries, candidates
        )
        rows.append(
            {
                "dataset": name,
                "EWH MRE": ewh.best_error,
                "EDH MRE": edh.best_error,
                "MDH MRE": mdh.best_error,
                "sampling MRE": mean_relative_error(SamplingEstimator(sample), queries),
                "uniform MRE": mean_relative_error(UniformEstimator(domain), queries),
                "EWH bins": int(ewh.best),
                "EDH bins": int(edh.best),
                "MDH bins": int(mdh.best),
            }
        )
    return make_result(
        "fig-8",
        "Histogram estimators at observed-optimal bins vs. sampling and uniform (1% queries)",
        rows,
        notes=(
            "expected shape: EWH generally best, MDH clearly worse, uniform "
            "collapses on skewed files"
        ),
    )
