"""Fig. 5: the impact of the domain cardinality.

The same bin sweep as Fig. 4 for Normal files on domains of growing
cardinality (p = 10, 15, 20).  Small domains pack many duplicates per
value, which *helps* histograms — the paper finds the error grows
considerably with the domain cardinality, the reason its remaining
experiments focus on large domains.
"""

from __future__ import annotations

import numpy as np

from repro.core.histogram import EquiWidthHistogram
from repro.experiments.fig04 import default_bin_grid
from repro.experiments.harness import DEFAULT, ExperimentConfig, load_context
from repro.experiments.reporting import FigureResult, make_result
from repro.workload.metrics import mean_relative_error

#: The Normal files of growing domain cardinality.
DATASETS = ("n(10)", "n(15)", "n(20)")


def run(
    config: ExperimentConfig = DEFAULT,
    bin_grid: np.ndarray | None = None,
) -> FigureResult:
    """Bin sweep per domain cardinality."""
    if bin_grid is None:
        bin_grid = default_bin_grid()
    contexts = {name: load_context(name, config) for name in DATASETS}
    rows = []
    for bins in bin_grid:
        row: dict[str, object] = {"bins": int(bins)}
        for name, context in contexts.items():
            histogram = EquiWidthHistogram(
                context.sample, context.relation.domain, int(bins)
            )
            row[f"{name} MRE"] = mean_relative_error(histogram, context.queries)
        rows.append(row)
    return make_result(
        "fig-5",
        "MRE vs. number of bins for different domain cardinalities (Normal data)",
        rows,
        notes="expected shape: error grows with domain cardinality (n(10) lowest, n(20) highest)",
    )
