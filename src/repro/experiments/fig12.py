"""Fig. 12: the final comparison of the most promising estimators.

MRE of 1 % queries per data file for:

* **EWH** — equi-width histogram, normal-scale bin count,
* **Kernel** — boundary kernels + direct plug-in bandwidth (2 steps),
* **Hybrid** — the paper's change-point hybrid (boundary kernels),
* **ASH** — average shifted histogram with ten shifts.

Expected outcome (paper §5.2.6): the kernel estimator wins on the
smooth synthetic files (with ASH close behind), the hybrid wins on
the TIGER-like files whose densities have pronounced change points,
and all methods are roughly tied on the census file.
"""

from __future__ import annotations

from repro.bandwidth.plugin import plugin_bandwidth
from repro.bandwidth.scale import clamp_bandwidth
from repro.core.histogram import AverageShiftedHistogram
from repro.core.kernel import make_kernel_estimator
from repro.core.hybrid import HybridEstimator
from repro.bandwidth.normal_scale import histogram_bin_count
from repro.core.histogram import EquiWidthHistogram
from repro.experiments.harness import DEFAULT, ExperimentConfig, load_context
from repro.experiments.reporting import FigureResult, make_result
from repro.workload.metrics import mean_relative_error

def _per_bin_plugin_bandwidth(bin_sample):
    """The paper: "the bandwidth of the kernel estimator is
    individually chosen for every bin" — per-bin direct plug-in."""
    return plugin_bandwidth(bin_sample, steps=2)


#: Hybrid configuration used by the figure.  More change points, finer
#: separation and a lower merge threshold than the class defaults (the
#: TIGER-like files have many narrow structures worth isolating), and
#: per-bin plug-in bandwidths.
HYBRID_KWARGS = dict(
    max_changepoints=20,
    min_bin_fraction=0.015,
    changepoint_kwargs={"min_separation": 0.012},
    bandwidth_rule=_per_bin_plugin_bandwidth,
)


def run(config: ExperimentConfig = DEFAULT) -> FigureResult:
    """Final shoot-out per data file."""
    rows = []
    for name in config.datasets:
        context = load_context(name, config)
        sample, domain, queries = context.sample, context.relation.domain, context.queries
        bins = histogram_bin_count(sample, domain)
        h_dpi = clamp_bandwidth(
            plugin_bandwidth(sample, steps=2, domain=domain), domain.width
        )
        estimators = {
            "EWH": EquiWidthHistogram(sample, domain, bins),
            "Kernel": make_kernel_estimator(sample, h_dpi, domain, boundary="kernel"),
            "Hybrid": HybridEstimator(sample, domain, **HYBRID_KWARGS),
            "ASH": AverageShiftedHistogram(sample, domain, bins, shifts=10),
        }
        row: dict[str, object] = {"dataset": name}
        for label, estimator in estimators.items():
            row[f"{label} MRE"] = mean_relative_error(estimator, queries)
        rows.append(row)
    return make_result(
        "fig-12",
        "Comparison of the most promising estimators (1% queries)",
        rows,
        notes=(
            "expected shape: Kernel best on u/n/e(20) with ASH close; Hybrid "
            "best on the TIGER-like files; near-tie on the census file"
        ),
    )
