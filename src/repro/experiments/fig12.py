"""Fig. 12: the final comparison of the most promising estimators.

MRE of 1 % queries per data file for:

* **EWH** — equi-width histogram, normal-scale bin count,
* **Kernel** — boundary kernels + direct plug-in bandwidth (2 steps),
* **Hybrid** — the paper's change-point hybrid (boundary kernels),
* **ASH** — average shifted histogram with ten shifts.

Expected outcome (paper §5.2.6): the kernel estimator wins on the
smooth synthetic files (with ASH close behind), the hybrid wins on
the TIGER-like files whose densities have pronounced change points,
and all methods are roughly tied on the census file.
"""

from __future__ import annotations

import numpy as np

from repro.bandwidth.plugin import plugin_bandwidth
from repro.bandwidth.scale import clamp_bandwidth
from repro.core.histogram import AverageShiftedHistogram
from repro.core.kernel import make_kernel_estimator
from repro.core.hybrid import HybridEstimator
from repro.bandwidth.normal_scale import histogram_bin_count
from repro.core.histogram import EquiWidthHistogram
from repro.experiments.harness import DEFAULT, ExperimentConfig, load_context, run_cells
from repro.experiments.reporting import FigureResult, make_result
from repro.workload.metrics import mean_relative_error

def _per_bin_plugin_bandwidth(bin_sample: np.ndarray) -> float:
    """The paper: "the bandwidth of the kernel estimator is
    individually chosen for every bin" — per-bin direct plug-in."""
    return plugin_bandwidth(bin_sample, steps=2)


#: Hybrid configuration used by the figure.  More change points, finer
#: separation and a lower merge threshold than the class defaults (the
#: TIGER-like files have many narrow structures worth isolating), and
#: per-bin plug-in bandwidths.
HYBRID_KWARGS = dict(
    max_changepoints=20,
    min_bin_fraction=0.015,
    changepoint_kwargs={"min_separation": 0.012},
    bandwidth_rule=_per_bin_plugin_bandwidth,
)


#: Estimator builders of the final comparison, by figure label.  Each
#: takes ``(sample, domain)`` — the smoothing parameters are chosen
#: inside so a (dataset, estimator) cell is self-contained and the
#: harness can run cells in parallel.
ESTIMATOR_BUILDERS = {
    "EWH": lambda sample, domain: EquiWidthHistogram(
        sample, domain, histogram_bin_count(sample, domain)
    ),
    "Kernel": lambda sample, domain: make_kernel_estimator(
        sample,
        clamp_bandwidth(plugin_bandwidth(sample, steps=2, domain=domain), domain.width),
        domain,
        boundary="kernel",
    ),
    "Hybrid": lambda sample, domain: HybridEstimator(sample, domain, **HYBRID_KWARGS),
    "ASH": lambda sample, domain: AverageShiftedHistogram(
        sample, domain, histogram_bin_count(sample, domain), shifts=10
    ),
}


def run(config: ExperimentConfig = DEFAULT) -> FigureResult:
    """Final shoot-out per data file.

    Every (dataset, estimator) pair is an independent cell dispatched
    through :func:`repro.experiments.harness.run_cells`; contexts are
    shared through the harness cache, and per-cell determinism comes
    from the config's seed scheme, so the parallel schedule cannot
    change any number.
    """
    cells = [
        (name, label)
        for name in config.datasets
        for label in ESTIMATOR_BUILDERS
    ]

    def evaluate(cell: "tuple[str, str]") -> float:
        name, label = cell
        context = load_context(name, config)
        sample, domain = context.sample, context.relation.domain
        estimator = ESTIMATOR_BUILDERS[label](sample, domain)
        return mean_relative_error(estimator, context.queries)

    errors = run_cells(cells, evaluate, label=lambda cell: f"fig12:{cell[0]}:{cell[1]}")
    by_cell = dict(zip(cells, errors))
    rows = [
        {
            "dataset": name,
            **{f"{label} MRE": by_cell[(name, label)] for label in ESTIMATOR_BUILDERS},
        }
        for name in config.datasets
    ]
    return make_result(
        "fig-12",
        "Comparison of the most promising estimators (1% queries)",
        rows,
        notes=(
            "expected shape: Kernel best on u/n/e(20) with ASH close; Hybrid "
            "best on the TIGER-like files; near-tie on the census file"
        ),
    )
