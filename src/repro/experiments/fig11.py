"""Fig. 11: bandwidth selection rules for kernel estimators.

For every data file, the MRE of the boundary-kernel estimator with
(a) the observed-optimal bandwidth (``h-opt``, workload oracle),
(b) the normal scale rule (``h-NS``) and (c) the direct plug-in rule
with two steps (``h-DPI2``).  The paper finds NS excellent on the
synthetic distributions but badly oversmoothed on the real files,
where DPI2 clearly wins while staying within ~5 points of the oracle.
"""

from __future__ import annotations

import numpy as np

from repro.bandwidth.normal_scale import kernel_bandwidth
from repro.bandwidth.oracle import default_bandwidth_grid, oracle_bandwidth
from repro.bandwidth.plugin import plugin_bandwidth
from repro.bandwidth.scale import clamp_bandwidth
from repro.core.kernel import KernelSelectivityEstimator, make_kernel_estimator
from repro.experiments.harness import DEFAULT, ExperimentConfig, load_context
from repro.experiments.reporting import FigureResult, make_result
from repro.workload.metrics import mean_relative_error


def run(config: ExperimentConfig = DEFAULT) -> FigureResult:
    """h-opt vs. h-NS vs. h-DPI2 per data file (boundary kernels)."""
    rows = []
    for name in config.datasets:
        context = load_context(name, config)
        sample, domain, queries = context.sample, context.relation.domain, context.queries

        def factory(h: float) -> KernelSelectivityEstimator:
            return make_kernel_estimator(sample, h, domain, boundary="kernel")

        h_ns = clamp_bandwidth(kernel_bandwidth(sample), domain.width)
        h_dpi = clamp_bandwidth(
            plugin_bandwidth(sample, steps=2, domain=domain), domain.width
        )
        # Include the rules' own picks so the oracle never loses to a
        # rule on grid granularity alone.
        grid = np.concatenate(
            [default_bandwidth_grid(h_ns, span=40.0, points=25), [h_ns, h_dpi]]
        )
        oracle = oracle_bandwidth(factory, queries, grid)
        rows.append(
            {
                "dataset": name,
                "h-opt MRE": oracle.best_error,
                "h-NS MRE": mean_relative_error(factory(h_ns), queries),
                "h-DPI2 MRE": mean_relative_error(factory(h_dpi), queries),
                "h-opt": float(oracle.best),
                "h-NS": h_ns,
                "h-DPI2": h_dpi,
            }
        )
    return make_result(
        "fig-11",
        "Kernel estimators: bandwidth selection rules (1% queries, boundary kernels)",
        rows,
        notes=(
            "expected shape: h-NS close to h-opt on u/n/e files, far off on "
            "the real files where h-DPI2 clearly outperforms it"
        ),
    )
