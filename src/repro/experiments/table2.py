"""Table 2: properties of the data files.

Regenerates the paper's data-file inventory from the actual generated
relations, so the table doubles as a self-check that every file has
the declared domain exponent and record count.
"""

from __future__ import annotations

from repro.data import registry
from repro.experiments.harness import DEFAULT, ExperimentConfig
from repro.experiments.reporting import FigureResult, make_result


def run(config: ExperimentConfig = DEFAULT) -> FigureResult:
    """Build Table 2 from the generated data files."""
    rows = registry.table2(seed=config.seed)
    return make_result(
        "table-2",
        "Properties of the data files",
        rows,
        notes=(
            "TIGER/Line and census files are simulated stand-ins "
            "(DESIGN.md section 3); record counts and domain exponents "
            "match the paper exactly."
        ),
    )
