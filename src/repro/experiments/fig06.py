"""Fig. 6: the impact of the sample size (consistency in practice).

MRE of 1 % queries on n(20) as a function of the sample size, for
pure sampling, equi-width histograms (normal-scale bins, which adapt
to n) and kernel estimators (normal-scale bandwidth, boundary
kernels).  All three are consistent — the error falls with n — and
the ordering kernel < histogram < sampling holds throughout,
matching the theory's convergence rates n^(-4/5), n^(-2/3), n^(-1/2).
"""

from __future__ import annotations

from repro.bandwidth.normal_scale import histogram_bin_count, kernel_bandwidth
from repro.bandwidth.scale import clamp_bandwidth
from repro.core.histogram import EquiWidthHistogram
from repro.core.kernel import make_kernel_estimator
from repro.core.sampling import SamplingEstimator
from repro.data import registry
from repro.experiments.harness import DEFAULT, ExperimentConfig
from repro.experiments.reporting import FigureResult, make_result
from repro.workload.metrics import mean_relative_error
from repro.workload.queries import generate_query_file

#: Data file used by the paper for this figure.
DATASET = "n(20)"

#: Sample sizes swept (the paper spans 200 to 10,000).
SAMPLE_SIZES = (200, 500, 1_000, 2_000, 5_000, 10_000)


def run(
    config: ExperimentConfig = DEFAULT,
    sample_sizes: tuple[int, ...] = SAMPLE_SIZES,
) -> FigureResult:
    """Sweep the sample size for sampling, histogram and kernel."""
    relation = registry.load(DATASET, seed=config.seed)
    queries = generate_query_file(
        relation,
        config.query_size,
        n_queries=config.n_queries,
        seed=config.query_seed(DATASET, config.query_size),
    )
    rows = []
    for n in sample_sizes:
        sample = relation.sample(n, seed=config.sample_seed(f"{DATASET}#{n}"))
        bins = histogram_bin_count(sample, relation.domain)
        bandwidth = clamp_bandwidth(kernel_bandwidth(sample), relation.domain.width)
        rows.append(
            {
                "sample size": n,
                "sampling MRE": mean_relative_error(SamplingEstimator(sample), queries),
                "equi-width MRE": mean_relative_error(
                    EquiWidthHistogram(sample, relation.domain, bins), queries
                ),
                "kernel MRE": mean_relative_error(
                    make_kernel_estimator(
                        sample, bandwidth, relation.domain, boundary="kernel"
                    ),
                    queries,
                ),
            }
        )
    return make_result(
        "fig-6",
        "MRE(n(20), 1%) vs. sample size for sampling, equi-width and kernel",
        rows,
        notes="expected shape: all errors fall with n; kernel < equi-width < sampling",
    )
