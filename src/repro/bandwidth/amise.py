"""AMISE formulas and their minimizers (paper §§4.1-4.2).

The mean integrated squared error of a histogram with bin width ``h``
built from ``n`` samples is asymptotically

.. math::

   AMISE_{EW}(h) = \\frac{1}{nh} + \\frac{h^2}{12} R(f')

and of a kernel estimator with kernel ``K`` and bandwidth ``h``

.. math::

   AMISE_K(h) = \\frac{R(K)}{nh} + \\frac{h^4 k_2^2}{4} R(f'')

where ``R(g) = int g(x)^2 dx`` is the roughness functional.  Setting
the derivatives to zero yields the asymptotically optimal smoothing
parameters (paper eq. 7 and §4.2) with convergence rates
``O(n^(-2/3))`` and ``O(n^(-4/5))``.

The functionals ``R(f')`` and ``R(f'')`` depend on the unknown PDF;
:func:`normal_roughness` and :func:`exponential_roughness` give them
exactly for the reference distributions (used by the normal scale
rule, by tests and by the theory examples), while
:mod:`repro.bandwidth.plugin` estimates them from the sample.
"""

from __future__ import annotations

import math

from repro.core.base import InvalidSampleError
from repro.core.kernel.functions import KernelFunction, get_kernel


def _check_positive(**values: float) -> None:
    for name, value in values.items():
        if value <= 0 or not math.isfinite(value):
            raise InvalidSampleError(f"{name} must be positive and finite, got {value}")


def amise_histogram(h: float, n: int, roughness_f1: float) -> float:
    """AMISE of an equi-width histogram with bin width ``h``."""
    _check_positive(h=h, n=n, roughness_f1=roughness_f1)
    return 1.0 / (n * h) + (h * h / 12.0) * roughness_f1


def optimal_bin_width(n: int, roughness_f1: float) -> float:
    """The AMISE-minimizing bin width ``(6 / (n R(f')))^(1/3)`` (eq. 7)."""
    _check_positive(n=n, roughness_f1=roughness_f1)
    return (6.0 / (n * roughness_f1)) ** (1.0 / 3.0)


def amise_kernel(
    h: float,
    n: int,
    roughness_f2: float,
    kernel: "KernelFunction | str" = "epanechnikov",
) -> float:
    """AMISE of a kernel estimator with bandwidth ``h`` (from eq. 9)."""
    _check_positive(h=h, n=n, roughness_f2=roughness_f2)
    resolved = get_kernel(kernel)
    bias_sq = 0.25 * h**4 * resolved.k2**2 * roughness_f2
    variance = resolved.roughness / (n * h)
    return bias_sq + variance


def optimal_bandwidth(
    n: int,
    roughness_f2: float,
    kernel: "KernelFunction | str" = "epanechnikov",
) -> float:
    """The AMISE-minimizing bandwidth
    ``(R(K) / (n k2^2 R(f'')))^(1/5)`` (paper §4.2)."""
    _check_positive(n=n, roughness_f2=roughness_f2)
    resolved = get_kernel(kernel)
    return (resolved.roughness / (n * resolved.k2**2 * roughness_f2)) ** 0.2


def normal_roughness(order: int, sigma: float = 1.0) -> float:
    """Exact ``R(f^(order))`` for the Normal(mu, sigma^2) density.

    ``R(f') = 1 / (4 sqrt(pi) sigma^3)`` and
    ``R(f'') = 3 / (8 sqrt(pi) sigma^5)`` — substituting these into the
    optimal formulas yields precisely the paper's normal scale rules.
    """
    _check_positive(sigma=sigma)
    if order == 0:
        result = 1.0 / (2.0 * math.sqrt(math.pi) * sigma)
    elif order == 1:
        denominator = 4.0 * math.sqrt(math.pi) * sigma**3
        if denominator == 0.0:
            raise InvalidSampleError(f"scale {sigma} too small: sigma^3 underflows")
        result = 1.0 / denominator
    elif order == 2:
        denominator = 8.0 * math.sqrt(math.pi) * sigma**5
        if denominator == 0.0:
            raise InvalidSampleError(f"scale {sigma} too small: sigma^5 underflows")
        result = 3.0 / denominator
    else:
        raise InvalidSampleError(
            f"normal roughness implemented for orders 0-2, got {order}"
        )
    if not math.isfinite(result):
        raise InvalidSampleError(f"roughness overflows for scale {sigma}")
    return result


def exponential_roughness(order: int, rate: float = 1.0) -> float:
    """Exact ``R(f^(order))`` for the Exponential(rate) density.

    ``f^(r)(x) = (-rate)^r f(x)`` on ``x > 0``, so
    ``R(f^(r)) = rate^(2r+1) / 2``.
    """
    _check_positive(rate=rate)
    if order < 0:
        raise InvalidSampleError(f"derivative order must be non-negative, got {order}")
    return rate ** (2 * order + 1) / 2.0
