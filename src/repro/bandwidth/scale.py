"""Robust scale estimation (paper §4.1).

The normal scale rules need the standard deviation ``s`` of the
unknown PDF.  The paper estimates it as the **minimum** of the sample
standard deviation and the interquartile range divided by 1.348 (the
IQR of a standard normal), because the plain standard deviation was
observed to oversmooth: outliers and heavy tails inflate the standard
deviation while barely moving the IQR.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import InvalidSampleError, validate_sample
from repro.telemetry import get_telemetry

#: IQR of the standard normal distribution: ``2 * Phi^-1(0.75)``.
NORMAL_IQR = 1.348

#: Largest bandwidth-to-width ratio the boundary treatments allow: the
#: left and right boundary regions (each one bandwidth wide) must not
#: overlap, so ``h`` is capped just below half the domain width.
MAX_BANDWIDTH_FRACTION = 0.499

#: Canonical-bandwidth ratio between the Gaussian and Epanechnikov
#: kernels, ``delta_gauss / delta_epan`` with
#: ``delta = (R(K) / k2^2)^(1/5)``.  Multiplying an Epanechnikov
#: bandwidth by this converts it to the Gaussian bandwidth with the
#: same amount of smoothing.
GAUSS_TO_EPANECHNIKOV = ((0.5 / np.sqrt(np.pi)) / 15.0) ** 0.2


def iqr(sample: np.ndarray) -> float:
    """Interquartile range (0.75 quantile minus 0.25 quantile)."""
    values = validate_sample(sample)
    q1, q3 = np.quantile(values, [0.25, 0.75])
    return float(q3 - q1)


def robust_scale(sample: np.ndarray) -> float:
    """The paper's scale estimate ``min(sd, IQR / 1.348)``.

    Falls back to whichever of the two is positive when the other
    collapses to zero (heavy duplicates can zero the IQR while the
    standard deviation stays informative, and vice versa).

    Raises
    ------
    InvalidSampleError
        If both estimates are zero — every sample value is identical,
        so no scale exists.
    """
    values = validate_sample(sample)
    sd = float(np.std(values, ddof=1)) if values.size > 1 else 0.0
    robust = iqr(values) / NORMAL_IQR
    candidates = [x for x in (sd, robust) if x > 0]
    if not candidates:
        raise InvalidSampleError("sample has zero scale (all values identical)")
    return min(candidates)


def clamp_bandwidth(bandwidth: float, width: float) -> float:
    """Cap ``bandwidth`` at :data:`MAX_BANDWIDTH_FRACTION` of ``width``.

    Boundary treatments assume the two boundary regions are disjoint;
    selection rules occasionally propose a bandwidth wider than half
    the (sub)domain, especially on narrow hybrid bins.  Each clamp is
    counted as the ``estimator.bandwidth.clamp`` telemetry event so
    traced runs reveal how often the rules run into the cap.
    """
    limit = MAX_BANDWIDTH_FRACTION * float(width)
    if bandwidth <= limit:
        return float(bandwidth)
    telemetry = get_telemetry()
    if telemetry.enabled:
        telemetry.metrics.inc("estimator.bandwidth.clamp")
    return limit


def to_gaussian_bandwidth(epanechnikov_bandwidth: float) -> float:
    """Convert an Epanechnikov bandwidth to its Gaussian equivalent.

    Uses the canonical-kernel rescaling, so a Gaussian KDE with the
    returned bandwidth smooths as much as the Epanechnikov estimator
    with the input bandwidth.  Needed wherever the pipeline mixes the
    two kernels (plug-in pilots, change-point detection).
    """
    if epanechnikov_bandwidth <= 0:
        raise InvalidSampleError(
            f"bandwidth must be positive, got {epanechnikov_bandwidth}"
        )
    return float(epanechnikov_bandwidth * GAUSS_TO_EPANECHNIKOV)
