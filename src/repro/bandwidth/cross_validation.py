"""Least-squares cross-validation bandwidth selection (Rudemo; Bowman).

The third classical selector from the literature the paper cites
(Silverman §3.4.3; Wand & Jones ch. 3), complementing the normal scale
and direct plug-in rules: choose ``h`` minimizing the unbiased
estimate of ``ISE(h) - R(f)``,

.. math::

   LSCV(h) = \\int \\hat f_h^2
             - \\frac{2}{n} \\sum_i \\hat f_{h,-i}(X_i)

where ``f_{h,-i}`` is the leave-one-out estimator.  Both terms have
closed forms for the kernels here:

* ``int f_hat^2 = (1/(n^2 h)) * sum_{i,j} (K*K)((X_i - X_j)/h)`` with
  the kernel's self-convolution ``K*K``,
* the leave-one-out sum is a pairwise kernel sum.

The histogram analogue (Rudemo's rule) scores a bin width by
``2/((n-1)h) - (n+1)/((n-1)h) * sum p_k^2`` with ``p_k`` the bin
proportions.

Cross-validation needs no reference distribution at all — its selling
point over the normal scale rule — at the price of higher variance and
``O(n^2)`` cost (fine at the paper's n = 2,000).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import InvalidSampleError, validate_sample
from repro.core.kernel.functions import EPANECHNIKOV, KernelFunction, get_kernel
from repro.data.domain import Interval


def _epanechnikov_convolution(t: np.ndarray) -> np.ndarray:
    """Self-convolution ``(K*K)(t)`` of the Epanechnikov kernel.

    Supported on ``[-2, 2]``:
    ``(K*K)(t) = (3/160)(2 - |t|)^3 (|t|^2 + 6|t| + 4)``.
    """
    u = np.abs(np.asarray(t, dtype=np.float64))
    inside = u <= 2.0
    value = (3.0 / 160.0) * (2.0 - u) ** 3 * (u * u + 6.0 * u + 4.0)
    return np.where(inside, value, 0.0)


def _gaussian_convolution(t: np.ndarray) -> np.ndarray:
    """Self-convolution of the Gaussian kernel: ``N(0, 2)`` density."""
    t = np.asarray(t, dtype=np.float64)
    return np.exp(-0.25 * t * t) / np.sqrt(4.0 * np.pi)


_CONVOLUTIONS = {
    "epanechnikov": _epanechnikov_convolution,
    "gaussian": _gaussian_convolution,
}


def lscv_score(
    sample: np.ndarray,
    bandwidth: float,
    kernel: "KernelFunction | str" = EPANECHNIKOV,
) -> float:
    """The LSCV criterion at one bandwidth (lower is better)."""
    values = validate_sample(sample)
    resolved = get_kernel(kernel)
    if resolved.name not in _CONVOLUTIONS:
        raise InvalidSampleError(
            f"LSCV implemented for {sorted(_CONVOLUTIONS)}, got {resolved.name!r}"
        )
    if bandwidth <= 0 or not np.isfinite(bandwidth):
        raise InvalidSampleError(f"bandwidth must be positive, got {bandwidth}")
    n = values.size
    if n < 2:
        raise InvalidSampleError("LSCV needs at least two samples")
    convolution = _CONVOLUTIONS[resolved.name]
    # Pairwise differences; n = 2,000 gives a 4M-entry matrix (32 MB).
    diff = (values[:, None] - values[None, :]) / bandwidth
    conv_sum = convolution(diff).sum()
    pdf_sum = resolved.pdf(diff).sum() - n * float(resolved.pdf(0.0))
    integral_term = conv_sum / (n * n * bandwidth)
    loo_term = 2.0 * pdf_sum / (n * (n - 1) * bandwidth)
    return float(integral_term - loo_term)


def lscv_bandwidth(
    sample: np.ndarray,
    kernel: "KernelFunction | str" = EPANECHNIKOV,
    grid: np.ndarray | None = None,
) -> float:
    """Bandwidth minimizing the LSCV criterion over a grid.

    The default grid spans the normal-scale bandwidth by a factor of
    30 in both directions (log-spaced), then refines once around the
    winner.
    """
    values = validate_sample(sample)
    if grid is None:
        from repro.bandwidth.normal_scale import kernel_bandwidth

        reference = kernel_bandwidth(values, kernel)
        grid = np.geomspace(reference / 30.0, reference * 30.0, 25)
    scores = [lscv_score(values, float(h), kernel) for h in grid]
    best = float(grid[int(np.argmin(scores))])
    local = np.geomspace(best / 1.6, best * 1.6, 9)
    local_scores = [lscv_score(values, float(h), kernel) for h in local]
    refined = float(local[int(np.argmin(local_scores))])
    return refined if min(local_scores) < min(scores) else best


def rudemo_score(sample: np.ndarray, bins: int, domain: Interval) -> float:
    """Rudemo's cross-validation criterion for an equi-width histogram."""
    values = validate_sample(sample, domain)
    if bins < 1:
        raise InvalidSampleError(f"need at least one bin, got {bins}")
    n = values.size
    if n < 2:
        raise InvalidSampleError("cross-validation needs at least two samples")
    h = domain.width / bins
    counts, _ = np.histogram(values, bins=bins, range=(domain.low, domain.high))
    proportions = counts / n
    return float(
        2.0 / ((n - 1) * h)
        - (n + 1) / ((n - 1) * h) * np.square(proportions).sum()
    )


def rudemo_bin_count(
    sample: np.ndarray,
    domain: Interval,
    candidates: np.ndarray | None = None,
) -> int:
    """Bin count minimizing Rudemo's criterion."""
    values = validate_sample(sample, domain)
    if candidates is None:
        candidates = np.unique(
            np.round(np.geomspace(2, max(4, values.size // 4), 30)).astype(int)
        )
    scores = [rudemo_score(values, int(k), domain) for k in candidates]
    return int(candidates[int(np.argmin(scores))])
