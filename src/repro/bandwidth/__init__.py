"""Smoothing-parameter selection (paper §4).

Both estimator families hinge on one tuning knob: the histogram bin
width (equivalently the number of bins) and the kernel bandwidth.
This package implements the paper's full selection toolbox:

* :mod:`repro.bandwidth.scale` — the robust scale estimate
  ``min(sd, IQR / 1.348)`` both rules build on.
* :mod:`repro.bandwidth.amise` — the AMISE formulas and their exact
  minimizers (paper eqs. 7 and 9), plus exact roughness functionals
  for reference distributions (used in tests and examples).
* :mod:`repro.bandwidth.normal_scale` — the normal scale rules
  ``h_EW ~ (24 sqrt(pi))^(1/3) s n^(-1/3)`` and
  ``h_K ~ 2.345 s n^(-1/5)``.
* :mod:`repro.bandwidth.plugin` — the iterative direct plug-in rule
  (paper §4.3).
* :mod:`repro.bandwidth.oracle` — workload-based search for the
  best-possible smoothing parameter (the paper's ``h-opt`` columns).
"""

from repro.bandwidth.amise import (
    amise_histogram,
    amise_kernel,
    exponential_roughness,
    normal_roughness,
    optimal_bandwidth,
    optimal_bin_width,
)
from repro.bandwidth.cross_validation import (
    lscv_bandwidth,
    lscv_score,
    rudemo_bin_count,
    rudemo_score,
)
from repro.bandwidth.normal_scale import (
    histogram_bin_count,
    histogram_bin_width,
    kernel_bandwidth,
)
from repro.bandwidth.oracle import oracle_bandwidth, oracle_bin_count
from repro.bandwidth.plugin import plugin_bandwidth, plugin_bin_count, plugin_bin_width
from repro.bandwidth.sample_size import (
    histogram_sample_size,
    kernel_sample_size,
    sampling_sample_size,
)
from repro.bandwidth.scale import (
    clamp_bandwidth,
    iqr,
    robust_scale,
    to_gaussian_bandwidth,
)

__all__ = [
    "amise_histogram",
    "amise_kernel",
    "clamp_bandwidth",
    "exponential_roughness",
    "histogram_bin_count",
    "histogram_bin_width",
    "histogram_sample_size",
    "iqr",
    "kernel_sample_size",
    "kernel_bandwidth",
    "lscv_bandwidth",
    "lscv_score",
    "normal_roughness",
    "optimal_bandwidth",
    "optimal_bin_width",
    "oracle_bandwidth",
    "oracle_bin_count",
    "plugin_bandwidth",
    "plugin_bin_count",
    "plugin_bin_width",
    "robust_scale",
    "sampling_sample_size",
    "rudemo_bin_count",
    "rudemo_score",
    "to_gaussian_bandwidth",
]
