"""The direct plug-in rule (paper §4.3).

The normal scale rule replaces the unknown roughness ``R(f')`` /
``R(f'')`` with its value under a fitted Normal — fine for smooth
unimodal data, badly oversmoothed otherwise.  The direct plug-in rule
instead *estimates the functional from the sample itself*, iterating:

1. Start from the normal scale smoothing parameter.
2. Build a pilot density estimate with the current parameter and
   compute the roughness functional of its derivative.
3. Plug the estimated functional into the AMISE-optimal formula to get
   the next smoothing parameter.

Two or three iterations suffice (paper: "In general, two or three
iteration steps are sufficient"); the influence of the initial normal
scale guess fades with each step.

Pilot derivative estimation uses a Gaussian KDE (analytic
derivatives); Epanechnikov bandwidths are converted to equivalent
Gaussian ones through the canonical-kernel rescaling.
"""

from __future__ import annotations

import math

import numpy as np

from repro.bandwidth.amise import optimal_bandwidth, optimal_bin_width
from repro.bandwidth.normal_scale import histogram_bin_width, kernel_bandwidth
from repro.bandwidth.scale import to_gaussian_bandwidth
from repro.core.base import InvalidSampleError, validate_sample
from repro.core.kernel.density import KernelDensity
from repro.core.kernel.functions import KernelFunction, get_kernel
from repro.data.domain import Interval

#: Number of iteration steps used in the paper's experiments ("direct
#: plug-in rule (with 2 iteration steps)", §5.2.5).
PAPER_STEPS = 2


#: Above this sample size the roughness functionals switch to the
#: linear-binned KDE, whose grid evaluation cost is independent of n.
BINNED_THRESHOLD = 5_000


def _estimate_roughness(
    sample: np.ndarray,
    pilot_gaussian_bandwidth: float,
    order: int,
    domain: Interval | None,
    grid_points: int,
) -> float:
    if sample.size > BINNED_THRESHOLD:
        from repro.core.kernel.binned import BinnedKernelDensity

        kde = BinnedKernelDensity(
            sample, pilot_gaussian_bandwidth, domain, grid_points=grid_points
        )
        return kde.roughness(order)
    kde = KernelDensity(sample, pilot_gaussian_bandwidth, domain)
    return kde.roughness(order, points=grid_points)


def plugin_bandwidth(
    sample: np.ndarray,
    steps: int = PAPER_STEPS,
    kernel: "KernelFunction | str" = "epanechnikov",
    domain: Interval | None = None,
    grid_points: int = 512,
) -> float:
    """Direct plug-in kernel bandwidth.

    Parameters
    ----------
    sample:
        Sample set.
    steps:
        Number of refinement iterations (>= 1); the paper uses 2.
    kernel:
        Target kernel of the final selectivity estimator.
    domain:
        Optional domain bounding the functional-estimation grid.
    grid_points:
        Grid resolution of the numerical roughness integral.
    """
    if steps < 1:
        raise InvalidSampleError(f"plug-in needs at least one step, got {steps}")
    values = validate_sample(sample, domain)
    resolved = get_kernel(kernel)
    h = kernel_bandwidth(values, resolved)
    for _ in range(steps):
        pilot = to_gaussian_bandwidth(h) if resolved.name != "gaussian" else h
        roughness_f2 = _estimate_roughness(values, pilot, 2, domain, grid_points)
        if roughness_f2 <= 0 or not math.isfinite(roughness_f2):
            # Flat pilot estimate (e.g. one repeated value): keep the
            # current bandwidth rather than exploding it.
            break
        h = optimal_bandwidth(values.size, roughness_f2, resolved)
    return h


def plugin_bin_width(
    sample: np.ndarray,
    steps: int = PAPER_STEPS,
    domain: Interval | None = None,
    grid_points: int = 512,
) -> float:
    """Direct plug-in equi-width bin width (functional ``R(f')``)."""
    if steps < 1:
        raise InvalidSampleError(f"plug-in needs at least one step, got {steps}")
    values = validate_sample(sample, domain)
    h = histogram_bin_width(values)
    for _ in range(steps):
        # A histogram bin width is not a kernel bandwidth; reuse it as
        # the pilot's effective smoothing scale.  The bin width and the
        # Epanechnikov bandwidth play the same "impact range" role, so
        # the canonical conversion applies.
        pilot = to_gaussian_bandwidth(h)
        roughness_f1 = _estimate_roughness(values, pilot, 1, domain, grid_points)
        if roughness_f1 <= 0 or not math.isfinite(roughness_f1):
            break
        h = optimal_bin_width(values.size, roughness_f1)
    return h


def plugin_bin_count(
    sample: np.ndarray,
    domain: Interval,
    steps: int = PAPER_STEPS,
    grid_points: int = 512,
) -> int:
    """Direct plug-in number of equi-width bins."""
    width = plugin_bin_width(sample, steps, domain, grid_points)
    return max(1, int(np.ceil(domain.width / width)))
