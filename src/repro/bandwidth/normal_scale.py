"""Normal scale rules (paper §§4.1-4.2).

Approximate the unknown roughness functionals by pretending the data
is Normal with the sample's (robust) scale ``s``:

* equi-width bin width: ``h_EW ~ (24 sqrt(pi))^(1/3) * s * n^(-1/3)``
  (paper eq. 8),
* Epanechnikov bandwidth: ``h_K ~ 2.345 * s * n^(-1/5)``
  (paper §4.2; the constant is
  ``(40 sqrt(pi))^(1/5) = 2.3449...``).

The rules are exact when the data really is Normal and degrade
gracefully on other smooth unimodal shapes; on the paper's real data
they oversmooth badly (Fig. 11), which is what motivates the plug-in
rule.
"""

from __future__ import annotations

import math

import numpy as np

from repro.bandwidth.amise import normal_roughness, optimal_bandwidth, optimal_bin_width
from repro.bandwidth.scale import robust_scale
from repro.core.base import InvalidSampleError, validate_sample
from repro.core.kernel.functions import KernelFunction
from repro.data.domain import Interval

#: The paper's equi-width constant ``(24 sqrt(pi))^(1/3)``.
EQUI_WIDTH_CONSTANT = (24.0 * math.sqrt(math.pi)) ** (1.0 / 3.0)

#: The paper's Epanechnikov constant ``(40 sqrt(pi))^(1/5) = 2.345``.
EPANECHNIKOV_CONSTANT = (40.0 * math.sqrt(math.pi)) ** 0.2


def histogram_bin_width(sample: np.ndarray) -> float:
    """Normal-scale equi-width bin width (paper eq. 8)."""
    values = validate_sample(sample)
    s = robust_scale(values)
    return optimal_bin_width(values.size, normal_roughness(1, s))


def histogram_bin_count(sample: np.ndarray, domain: Interval) -> int:
    """Normal-scale number of equi-width bins for a domain.

    The bin count is the domain width divided by the normal-scale bin
    width, rounded up (at least one bin).
    """
    width = histogram_bin_width(sample)
    return max(1, int(math.ceil(domain.width / width)))


def kernel_bandwidth(
    sample: np.ndarray,
    kernel: "KernelFunction | str" = "epanechnikov",
) -> float:
    """Normal-scale kernel bandwidth (``2.345 s n^(-1/5)`` for
    Epanechnikov; other kernels rescale through their own constants)."""
    values = validate_sample(sample)
    if values.size < 2:
        raise InvalidSampleError("bandwidth selection needs at least two samples")
    s = robust_scale(values)
    return optimal_bandwidth(values.size, normal_roughness(2, s), kernel)
