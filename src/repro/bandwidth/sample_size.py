"""Sample-size planning: how many samples are enough? (ref [5]).

Chaudhuri, Motwani & Narasayya (SIGMOD 1998) — cited by the paper —
ask the planning question the AMISE theory can answer: given a target
accuracy, how large must the sample be?  Inverting the AMISE-optimal
error formulas of §4 gives closed forms:

* equi-width histogram at its optimal bin width:
  ``AMISE*(n) = (3/2) * (6 R(f') / n^2)^(1/3)``  — solve for ``n``;
* kernel estimator at its optimal bandwidth:
  ``AMISE*(n) = (5/4) * (k2^2 R(f'') R(K)^4 / n^4)^(1/5)`` — solve for
  ``n``;
* pure sampling for a single query of selectivity ``sigma``:
  the binomial standard error gives
  ``n >= sigma (1 - sigma) / target_se^2``.

The density-level targets use the same roughness functionals as the
smoothing rules, so all the estimation machinery (normal scale,
plug-in) plugs straight in.
"""

from __future__ import annotations

import math

from repro.core.base import InvalidSampleError
from repro.core.kernel.functions import KernelFunction, get_kernel


def _check_target(target: float) -> float:
    if target <= 0 or not math.isfinite(target):
        raise InvalidSampleError(f"target must be positive and finite, got {target}")
    return float(target)


def histogram_optimal_amise(n: int, roughness_f1: float) -> float:
    """AMISE of the equi-width histogram at its optimal bin width.

    Substitutes eq. (7) back into the AMISE formula — evaluated
    numerically from the two terms rather than via a pre-simplified
    constant, so it stays correct if either formula changes.
    """
    from repro.bandwidth.amise import amise_histogram, optimal_bin_width

    return amise_histogram(optimal_bin_width(n, roughness_f1), n, roughness_f1)


def kernel_optimal_amise(
    n: int, roughness_f2: float, kernel: "KernelFunction | str" = "epanechnikov"
) -> float:
    """AMISE of the kernel estimator at its optimal bandwidth."""
    from repro.bandwidth.amise import amise_kernel, optimal_bandwidth

    return amise_kernel(optimal_bandwidth(n, roughness_f2, kernel), n, roughness_f2, kernel)


def histogram_sample_size(target_amise: float, roughness_f1: float) -> int:
    """Samples needed for an optimally-binned equi-width histogram to
    reach the target AMISE.

    At the optimal width ``AMISE* = c * n^(-2/3)`` exactly, so the
    coefficient ``c`` is measured once at a reference ``n`` and the
    power law inverted.
    """
    target = _check_target(target_amise)
    reference_n = 1_000
    coefficient = histogram_optimal_amise(reference_n, roughness_f1) * reference_n ** (
        2.0 / 3.0
    )
    return max(1, math.ceil((coefficient / target) ** 1.5))


def kernel_sample_size(
    target_amise: float,
    roughness_f2: float,
    kernel: "KernelFunction | str" = "epanechnikov",
) -> int:
    """Samples needed for an optimally-smoothed kernel estimator to
    reach the target AMISE (inverts the exact ``n^(-4/5)`` law)."""
    target = _check_target(target_amise)
    resolved = get_kernel(kernel)
    reference_n = 1_000
    coefficient = kernel_optimal_amise(reference_n, roughness_f2, resolved) * (
        reference_n ** (4.0 / 5.0)
    )
    return max(1, math.ceil((coefficient / target) ** 1.25))


def sampling_sample_size(selectivity: float, target_standard_error: float) -> int:
    """Samples for pure sampling to hit a target standard error on one
    query of the given selectivity (the binomial bound; ref [5]'s
    starting point)."""
    if not 0.0 <= selectivity <= 1.0:
        raise InvalidSampleError(f"selectivity must be in [0, 1], got {selectivity}")
    target = _check_target(target_standard_error)
    variance = selectivity * (1.0 - selectivity)
    if variance == 0.0:
        return 1
    return max(1, math.ceil(variance / (target * target)))
