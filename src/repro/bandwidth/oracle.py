"""Workload oracles: the best observable smoothing parameter.

The paper's ``h-opt`` columns (Figs. 8, 9, 11) report the error of an
estimator whose smoothing parameter was chosen *with knowledge of the
query workload and the true result sizes* — not a practical method,
but the yardstick the practical rules are judged against.

The oracles here sweep a candidate grid, evaluate the mean relative
error of each candidate estimator on a query file, and return the
winner together with the whole sweep (the sweep itself is the paper's
Fig. 4 / Fig. 5 material).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence

import numpy as np

from repro.core.base import InvalidQueryError, SelectivityEstimator
from repro.workload.metrics import mean_relative_error
from repro.workload.queries import QueryFile


@dataclasses.dataclass(frozen=True)
class SweepResult:
    """Outcome of an oracle sweep."""

    best: float
    best_error: float
    candidates: tuple[float, ...]
    errors: tuple[float, ...]

    def as_rows(self) -> list[tuple[float, float]]:
        """``(candidate, error)`` pairs, sweep order."""
        return list(zip(self.candidates, self.errors))


def sweep(
    factory: Callable[[float], SelectivityEstimator],
    candidates: Sequence[float],
    queries: QueryFile,
) -> SweepResult:
    """Evaluate ``factory(candidate)`` for every candidate.

    Candidates for which the factory raises are skipped (e.g. a
    bandwidth too large for the boundary machinery); at least one
    candidate must survive.
    """
    errors: list[float] = []
    kept: list[float] = []
    for candidate in candidates:
        try:
            estimator = factory(candidate)
        except Exception:
            continue
        kept.append(float(candidate))
        errors.append(mean_relative_error(estimator, queries))
    if not kept:
        raise InvalidQueryError("no oracle candidate produced a usable estimator")
    best_index = int(np.argmin(errors))
    return SweepResult(
        best=kept[best_index],
        best_error=errors[best_index],
        candidates=tuple(kept),
        errors=tuple(errors),
    )


def default_bin_grid(max_bins: int = 2_000, points: int = 40) -> np.ndarray:
    """Geometric grid of candidate bin counts from 1 to ``max_bins``."""
    if max_bins < 1:
        raise InvalidQueryError(f"max_bins must be >= 1, got {max_bins}")
    grid = np.unique(
        np.round(np.geomspace(1, max_bins, num=points)).astype(int)
    )
    return grid


def oracle_bin_count(
    factory: Callable[[int], SelectivityEstimator],
    queries: QueryFile,
    candidates: Sequence[int] | None = None,
) -> SweepResult:
    """Best-observed number of bins for a histogram factory.

    ``factory(k)`` must build a ``k``-bin histogram estimator.
    """
    if candidates is None:
        candidates = default_bin_grid()
    return sweep(lambda k: factory(int(round(k))), [float(c) for c in candidates], queries)


def default_bandwidth_grid(
    reference: float, span: float = 30.0, points: int = 40
) -> np.ndarray:
    """Log-spaced bandwidth candidates around a reference value.

    Covers ``reference / span`` to ``reference * span`` — wide enough
    that the normal scale starting point never pins the oracle.
    """
    if reference <= 0 or span <= 1:
        raise InvalidQueryError(
            f"need positive reference and span > 1, got {reference}, {span}"
        )
    return np.geomspace(reference / span, reference * span, num=points)


def oracle_bandwidth(
    factory: Callable[[float], SelectivityEstimator],
    queries: QueryFile,
    candidates: Sequence[float],
    refine: int = 1,
) -> SweepResult:
    """Best-observed kernel bandwidth for an estimator factory.

    After the initial grid sweep, ``refine`` extra sweeps zoom into the
    neighbourhood of the current best candidate.
    """
    result = sweep(factory, candidates, queries)
    for _ in range(max(0, refine)):
        local = np.geomspace(result.best / 1.8, result.best * 1.8, num=9)
        refined = sweep(factory, local, queries)
        if refined.best_error < result.best_error:
            merged_candidates = result.candidates + refined.candidates
            merged_errors = result.errors + refined.errors
            result = SweepResult(
                best=refined.best,
                best_error=refined.best_error,
                candidates=merged_candidates,
                errors=merged_errors,
            )
    return result
